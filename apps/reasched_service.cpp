// reasched_service - the online scheduling daemon: an RJMS-shaped JSON-lines
// protocol over stdin/stdout in front of the discrete-event engine.
//
//   reasched_service --method fcfs --seed 42
//   reasched_service --scenario bursty_idle --batch-jobs 100 --batches 2
//   reasched_service --restore snap.json          # resume a checkpoint
//   reasched_service --stress-submitters 4        # concurrent smoke (TSan)
//
// Protocol (one JSON object per line; see src/service/protocol.hpp):
//   {"op":"submit","job":{"duration":60,"nodes":4}}
//   {"op":"advance","to":3600}
//   {"op":"query"} / {"op":"query","id":1} / {"op":"cancel","id":1}
//   {"op":"checkpoint","path":"snap.json"}
//   {"op":"drain"} / {"op":"shutdown"}
//
// --trace-out writes the decision trace (exact times) on exit - the
// artifact CI diffs bit-for-bit between an uninterrupted session and a
// checkpoint/kill/restore/resume one.
//
// Telemetry (all observe-only; decisions are bit-identical with or without):
//   --obs                 enable the metrics registry + span tracer
//   --obs-trace-out PATH  write a Chrome trace-event JSON (Perfetto) on exit
//   --runlog-out PATH     stream one row per completed job (.jsonl or CSV)
//   {"op":"stats"}        live registry snapshot over the protocol

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "obs/metrics_registry.hpp"
#include "obs/runlog.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"
#include "service/service_engine.hpp"
#include "service/session.hpp"
#include "service/snapshot.hpp"
#include "util/cli.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: reasched_service [options]\n"
      "  --method SPEC          scheduling method spec (default fcfs)\n"
      "  --seed N               root seed (default 42)\n"
      "  --scenario SPEC        arrival-stream scenario spec (default: no stream)\n"
      "  --batch-jobs N         jobs per stream batch (default 0 = no stream)\n"
      "  --batches N            stream batches; 0 = endless (default 1)\n"
      "  --rate-scale X         arrival-rate multiplier (default 1.0)\n"
      "  --enforce-walltime     kill jobs at their walltime estimate\n"
      "  --restore PATH         resume from a snapshot (overrides the flags above)\n"
      "  --trace-out PATH       write the decision trace (JSON lines) on exit\n"
      "  --obs                  enable telemetry (metrics registry + span tracer)\n"
      "  --obs-trace-out PATH   write a Chrome trace-event JSON on exit (implies --obs)\n"
      "  --runlog-out PATH      stream completed-job rows (.jsonl = JSON lines, else CSV)\n"
      "  --stress-submitters N  run the concurrent smoke instead of the stdin loop\n"
      "  --stress-requests N    requests per stress submitter (default 64)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reasched;
  const util::CliArgs args(argc, argv);
  if (args.has("help")) {
    print_usage();
    return 0;
  }

  std::unique_ptr<service::ServiceEngine> engine;
  try {
    if (args.has("restore")) {
      engine = service::load_snapshot(args.get("restore", ""));
    } else {
      service::ServiceConfig config;
      config.method = harness::MethodSpec::parse(args.get("method", "fcfs"));
      config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
      config.engine.enforce_walltime = args.has("enforce-walltime");
      const auto batch_jobs = static_cast<std::size_t>(args.get_int("batch-jobs", 0));
      if (batch_jobs > 0) {
        config.stream = workload::make_stream_spec(
            args.get("scenario", "hetero_mix"), batch_jobs,
            static_cast<std::size_t>(args.get_int("batches", 1)),
            args.get_double("rate-scale", 1.0));
      }
      engine = std::make_unique<service::ServiceEngine>(config);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "reasched_service: %s\n", e.what());
    return 1;
  }

  if (args.has("obs") || args.has("obs-trace-out")) obs::set_enabled(true);
  if (args.has("runlog-out")) {
    // Attached after construction, so it works for --restore sessions too
    // (telemetry is not part of the snapshot: observe-only state).
    engine->set_runlog(std::make_shared<obs::RunLog>(
        obs::make_file_sink(args.get("runlog-out", "")), service::ServiceEngine::runlog_columns()));
  }

  service::LoopStats stats;
  const auto n_stress = static_cast<std::size_t>(args.get_int("stress-submitters", 0));
  if (n_stress > 0) {
    service::SessionTable sessions;
    service::ResultSink sink(nullptr, /*keep=*/false);
    stats = service::run_concurrent_session(
        *engine, n_stress, static_cast<std::size_t>(args.get_int("stress-requests", 64)),
        sessions, sink);
    std::fprintf(stderr, "stress: %zu sessions, %zu requests, %zu errors, %zu responses\n",
                 sessions.snapshot().size(), stats.n_requests, stats.n_errors, sink.count());
  } else {
    stats = service::run_service_loop(*engine, std::cin, std::cout);
  }

  if (args.has("trace-out")) {
    const std::string path = args.get("trace-out", "");
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "reasched_service: cannot open %s\n", path.c_str());
      return 1;
    }
    f << service::render_decision_trace(engine->schedule_view());
  }
  if (args.has("obs-trace-out")) {
    try {
      obs::TraceRecorder::global().save_chrome_trace(args.get("obs-trace-out", ""));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "reasched_service: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
