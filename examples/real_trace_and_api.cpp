// Bridging to the real world: (a) replay a Standard Workload Format trace -
// the format of the Parallel Workloads Archive - through the schedulers, and
// (b) show the HTTP client seam a production deployment would use to talk
// to the actual Claude / O4 endpoints the paper evaluated.
//
// No network access is needed: the demo exports a synthetic workload as SWF,
// reads it back, and drives the HTTP client through a mock transport that
// answers with a provider-shaped JSON payload.
//
//   ./examples/real_trace_and_api [--swf path/to/trace.swf] [--jobs 40]

#include <cstdio>

#include "core/react_agent.hpp"
#include "harness/experiment.hpp"
#include "llm/http_client.hpp"
#include "metrics/report.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"
#include "workload/swf.hpp"

using namespace reasched;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto n_jobs = static_cast<std::size_t>(args.get_int("jobs", 40));

  // --- Part A: SWF replay ---------------------------------------------------
  std::vector<sim::Job> jobs;
  if (args.has("swf")) {
    workload::SwfOptions options;
    options.max_jobs = n_jobs;
    options.max_nodes = sim::ClusterSpec::paper_default().total_nodes;
    jobs = workload::load_swf(args.get("swf", ""), options);
    std::printf("Loaded %zu completed jobs from SWF trace %s\n", jobs.size(),
                args.get("swf", "").c_str());
  } else {
    // Round-trip a synthetic workload through the SWF format to demonstrate
    // the exact path a real archive trace would take.
    const auto synthetic =
        workload::make_generator(workload::Scenario::kHeterogeneousMix)
            ->generate(n_jobs, 77);
    const std::string swf_text = workload::jobs_to_swf(synthetic);
    jobs = workload::parse_swf(swf_text);
    std::printf("Round-tripped %zu synthetic jobs through SWF (no --swf given)\n",
                jobs.size());
  }

  std::vector<metrics::MethodResult> rows;
  for (const harness::MethodSpec method : {"fcfs", "easy", "agent:claude37"}) {
    const auto outcome = harness::run_method(jobs, method, 77);
    rows.push_back({harness::method_name(method), outcome.metrics});
  }
  std::printf("\nSWF replay, normalized to FCFS:\n%s\n",
              metrics::render_normalized_table(rows, "FCFS").c_str());

  // --- Part B: the real-API seam ---------------------------------------------
  // A mock transport standing in for libcurl: answers every POST with a
  // fixed Anthropic-shaped completion. Swap this lambda for a real HTTP call
  // and the ReAct agent runs against the live API unchanged.
  auto mock_transport = [](const llm::HttpExchange& exchange) {
    std::printf("  POST %s (payload %zu bytes)\n", exchange.url.c_str(),
                exchange.body.size());
    return std::string(
        R"json({"content": [{"type": "text", "text": "Thought: demo transport\nAction: Delay"}],
                "usage": {"input_tokens": 1000, "output_tokens": 25}})json");
  };
  auto client = std::make_shared<llm::HttpClient>(
      llm::HttpClient::Options{llm::ProviderKind::kAnthropic,
                               "https://vertex.example/v1/messages",
                               "x-api-key: $ANTHROPIC_KEY"},
      llm::claude37_profile(), mock_transport);

  std::printf("HTTP-client seam demo (mock transport; first two calls shown):\n");
  core::ReActAgent agent(client, llm::claude37_profile());
  sim::Engine engine;
  // The mock always answers Delay, so the engine's livelock protection will
  // force progress - handy for demonstrating that the system stays safe even
  // against a completely unhelpful model.
  const auto result = engine.run(
      workload::make_generator(workload::Scenario::kResourceSparse)->generate(3, 5),
      agent);
  std::printf("Completed %zu jobs with %zu forced starts despite a Delay-only model.\n",
              result.completed.size(), result.n_forced_delays);
  return 0;
}
