// Build a custom simulated-model profile with user-chosen objective
// temperament and compare it against the stock Claude/O4 profiles - the
// knob the paper turns implicitly when it contrasts the two models'
// fairness/efficiency trade-offs (Section 3.5).
//
//   ./examples/custom_objectives [--fairness 0.5] [--throughput 0.2]
//                                [--utilization 0.2] [--makespan 0.1]
//                                [--jobs 60] [--seed 21]

#include <cstdio>

#include "core/factory.hpp"
#include "harness/experiment.hpp"
#include "metrics/report.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"

using namespace reasched;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto n_jobs = static_cast<std::size_t>(args.get_int("jobs", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 21));

  // A custom temperament: the four prompt objectives, weighted your way.
  llm::ModelProfile custom = llm::claude37_profile();
  custom.display_name = "Custom";
  custom.api_id = "custom-reasoner";
  custom.temperament.w_fairness = args.get_double("fairness", 0.50);
  custom.temperament.w_throughput = args.get_double("throughput", 0.20);
  custom.temperament.w_utilization = args.get_double("utilization", 0.20);
  custom.temperament.w_makespan = args.get_double("makespan", 0.10);

  const auto jobs =
      workload::make_generator(workload::Scenario::kLongJobDominant)->generate(n_jobs, seed);

  sim::Engine engine;
  std::vector<metrics::MethodResult> rows;

  // FCFS baseline first (the normalization anchor), then the three agents.
  {
    const auto outcome = harness::run_method(jobs, "fcfs", seed);
    rows.push_back({"FCFS", outcome.metrics});
  }
  for (const auto& profile :
       {llm::claude37_profile(), llm::o4mini_profile(), custom}) {
    auto agent = core::make_agent(profile, seed);
    const auto result = engine.run(jobs, *agent);
    rows.push_back(
        {profile.display_name, metrics::compute_metrics(result, engine.config().cluster)});
  }

  std::printf("Long-Job Dominant, %zu jobs - objective-temperament comparison\n", jobs.size());
  std::printf("Custom weights: fairness=%.2f throughput=%.2f utilization=%.2f makespan=%.2f\n\n",
              custom.temperament.w_fairness, custom.temperament.w_throughput,
              custom.temperament.w_utilization, custom.temperament.w_makespan);
  std::printf("%s", metrics::render_normalized_table(rows, "FCFS").c_str());
  return 0;
}
