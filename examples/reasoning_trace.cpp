// Reproduce the paper's Figure 2: full interpretable reasoning traces from
// the ReAct agent, including a constraint rejection recovered through
// natural-language feedback, on the Adversarial convoy scenario.
//
//   ./examples/reasoning_trace [--model claude|o4] [--jobs 20] [--seed 3]
//                              [--show-prompt]

#include <cstdio>

#include "core/factory.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"

using namespace reasched;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto n_jobs = static_cast<std::size_t>(args.get_int("jobs", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  const bool use_o4 = args.get("model", "claude") == "o4";

  const auto jobs =
      workload::make_generator(workload::Scenario::kAdversarial)->generate(n_jobs, seed);
  auto agent = use_o4 ? core::make_o4mini_agent(seed) : core::make_claude37_agent(seed);

  sim::Engine engine;
  const auto result = engine.run(jobs, *agent);

  if (args.has("show-prompt")) {
    std::printf("=== final prompt sent to %s ===\n%s\n=== end prompt ===\n\n",
                agent->name().c_str(), agent->last_prompt().c_str());
  }

  std::printf("=== %s reasoning trace: %zu decisions, %zu rejected, %zu backfills ===\n\n",
              agent->name().c_str(), result.decisions.size(), result.n_invalid_actions,
              result.n_backfills);
  for (const auto& d : result.decisions) {
    std::printf("# Decision at t=%.0f\n", d.time);
    if (!d.thought.empty()) std::printf("# Thought\n%s\n", d.thought.c_str());
    std::printf("# Action\n%s\n", d.action.to_string().c_str());
    if (!d.accepted) {
      std::printf("# Feedback from Environment (appended to scratchpad)\n%s\n",
                  d.feedback.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
