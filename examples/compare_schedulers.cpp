// Compare all five paper methods (plus optional extensions) on one scenario,
// printing the FCFS-normalized metric table exactly as the paper's figures
// report it.
//
//   ./examples/compare_schedulers [--scenario hetmix] [--jobs 60] [--seed 42]
//                                 [--static] [--extensions] [--raw]

#include <cstdio>

#include "harness/experiment.hpp"
#include "metrics/report.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"

using namespace reasched;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto scenario =
      workload::scenario_from_string(args.get("scenario", "hetmix"))
          .value_or(workload::Scenario::kHeterogeneousMix);
  const auto n_jobs = static_cast<std::size_t>(args.get_int("jobs", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto mode = args.has("static") ? workload::ArrivalMode::kStatic
                                       : workload::ArrivalMode::kPoisson;

  const auto jobs = workload::make_generator(scenario)->generate(n_jobs, seed, mode);
  std::printf("Scenario: %s - %zu jobs, %s arrivals\n%s\n\n",
              workload::to_string(scenario).c_str(), jobs.size(),
              mode == workload::ArrivalMode::kStatic ? "static (all at t=0)" : "Poisson",
              workload::describe(scenario).c_str());

  std::vector<harness::Method> methods = harness::paper_methods();
  if (args.has("extensions")) {
    methods.push_back(harness::Method::kEasyBackfill);
    methods.push_back(harness::Method::kFastLocal);
  }

  std::vector<metrics::MethodResult> rows;
  for (const auto method : methods) {
    const auto outcome = harness::run_method(jobs, method, seed);
    rows.push_back({harness::method_name(method), outcome.metrics});
    if (outcome.overhead) {
      std::printf("  %-12s %3zu LLM calls, %.0f s simulated API time\n",
                  harness::method_name(method).c_str(), outcome.overhead->n_calls,
                  outcome.overhead->total_elapsed_s);
    }
  }
  std::printf("\nAll metrics normalized to FCFS = 1.0 (lower is better for "
              "makespan/wait/turnaround; higher for the rest; n/a = undefined 0/0):\n\n%s",
              metrics::render_normalized_table(rows, "FCFS", args.has("raw")).c_str());
  return 0;
}
