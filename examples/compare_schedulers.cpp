// Compare scheduler methods on one scenario, printing the FCFS-normalized
// metric table exactly as the paper's figures report it. Methods run through
// the sweep harness, so independent cells run concurrently across --threads
// workers while results stay deterministic.
//
// Both grid axes are spec-keyed: the method panel defaults to the paper's
// five and any registered method spec can be swept via repeated --method
// flags; the workload defaults to Heterogeneous Mix and any scenario spec -
// parameterized bases, mix(...) combinations, piped transforms - can be
// selected via --scenario:
//
//   ./examples/compare_schedulers [--scenario SPEC] [--jobs 60] [--seed 42]
//                                 [--threads 0] [--static] [--extensions] [--raw]
//                                 [--method SPEC]... [--list-methods] [--list-scenarios]
//                                 [--obs] [--trace-out trace.json] [--runlog-out cells.csv]
//   ./examples/compare_schedulers --scenario "mix(long_job:0.2,resource_sparse:0.8)" \
//       --method fcfs --method "opt:portfolio?budget=2000&window=sjf:64"
//   ./examples/compare_schedulers \
//       --scenario "hetero_mix?walltime_noise=1.0:3.0|dag?fanout=4&depth=3"

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "harness/export.hpp"
#include "harness/method_spec.hpp"
#include "harness/sweep.hpp"
#include "metrics/report.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/runlog.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"
#include "workload/scenario_spec.hpp"

using namespace reasched;

namespace {

void print_usage(std::ostream& os, const char* argv0) {
  os << "Usage:\n"
     << "  " << argv0
     << " [--scenario SPEC] [--jobs N] [--seed N] [--threads N] [--method SPEC]... [flags]\n"
     << "\n"
     << "Options:\n"
     << "  --scenario SPEC    Workload scenario spec: a registered base with optional\n"
     << "                     parameters (hetero_mix?walltime_noise=1.0:3.0), a weighted\n"
     << "                     mix(spec:weight,...), and/or '|'-piped transforms\n"
     << "                     (bursty_idle|stretch?load=1.5). Legacy aliases (hetmix,\n"
     << "                     sparse, ...) still work. Default: hetero_mix\n"
     << "  --jobs N           Jobs to generate (default: 60)\n"
     << "  --seed N           Base seed for the sweep's per-cell seed derivation\n"
     << "                     (default: 42; numbers differ from pre-harness versions\n"
     << "                     of this example, which seeded the generator directly)\n"
     << "  --threads N        Worker threads for independent method runs;\n"
     << "                     0 = hardware concurrency (default: 0)\n"
     << "  --method SPEC      Add a method spec to the panel (repeatable). A spec is\n"
     << "                     name[?key=value&...], e.g. fcfs or\n"
     << "                     \"opt:portfolio?budget=2000&window=sjf:64\". When given,\n"
     << "                     replaces the default paper panel.\n"
     << "  --trace-out PATH   Write a Chrome trace-event JSON (load in Perfetto) of the\n"
     << "                     sampled decision/step spans on exit (implies --obs)\n"
     << "  --runlog-out PATH  Stream one row per finished grid cell (.jsonl = JSON\n"
     << "                     lines, else CSV); rows arrive in completion order\n"
     << "\n"
     << "Flags:\n"
     << "  --obs              Enable telemetry (metrics registry + span tracer).\n"
     << "                     Observe-only: results are bit-identical either way\n"
     << "  --list-methods     Print every registered method with its parameters and exit\n"
     << "  --list-scenarios   Print every registered scenario and transform and exit\n"
     << "  --static           All jobs submitted at t=0 instead of Poisson arrivals\n"
     << "  --extensions       Also run EASY backfilling and the fast local optimizer\n"
     << "  --raw              Print raw metric values next to normalized ones\n"
     << "  --help             Show this message\n";
}

/// Accepts both the legacy aliases (hetmix, sparse, ...) and full scenario
/// specs, validated against the registry before any cell runs.
workload::ScenarioSpec parse_scenario_arg(const std::string& arg) {
  if (const auto legacy = workload::scenario_from_string(arg)) return *legacy;
  const auto spec = workload::ScenarioSpec::parse(arg);
  workload::ScenarioRegistry::instance().validate(spec);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  if (args.has("help")) {
    print_usage(std::cout, argv[0]);
    return 0;
  }
  if (args.has("list-methods")) {
    std::printf("Registered methods (spec grammar: name[?key=value&...]):\n\n%s",
                harness::MethodRegistry::instance().describe().c_str());
    return 0;
  }
  if (args.has("list-scenarios")) {
    std::printf("%s", workload::ScenarioRegistry::instance().describe().c_str());
    return 0;
  }
  const auto n_jobs = static_cast<std::size_t>(args.get_int("jobs", 60));

  harness::SweepConfig config;
  workload::ScenarioSpec scenario;
  try {
    scenario = parse_scenario_arg(args.get("scenario", "hetero_mix"));
  } catch (const workload::ScenarioSpecError& e) {
    std::fprintf(stderr, "error: %s\n(--list-scenarios prints the registry)\n", e.what());
    return 1;
  }
  config.scenarios = {scenario};
  config.job_counts = {n_jobs};
  const auto method_specs = args.get_all("method");
  if (method_specs.empty()) {
    config.methods = harness::paper_methods();
  } else {
    try {
      for (const auto& spec : method_specs) {
        config.methods.push_back(harness::MethodSpec::parse(spec));
        // Fail fast on unknown names/parameters, before any cell runs.
        harness::make_scheduler(config.methods.back(), /*seed=*/1);
      }
    } catch (const harness::MethodSpecError& e) {
      std::fprintf(stderr, "error: %s\n(--list-methods prints the registry)\n", e.what());
      return 1;
    }
  }
  if (args.has("extensions")) {  // composes with --method panels too
    config.methods.push_back(harness::Method::kEasyBackfill);
    config.methods.push_back(harness::Method::kFastLocal);
  }
  // The sweep's duplicate-spec dedup, applied up front so the printed table
  // has one column per method, matching the one cell the grid actually ran.
  config.methods = harness::dedup_methods(config.methods);
  config.repetitions = 1;
  config.arrival_mode = args.has("static") ? workload::ArrivalMode::kStatic
                                           : workload::ArrivalMode::kPoisson;
  config.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  // Non-positive values (including a stray negative) mean "use all cores".
  const long long threads_arg = args.get_int("threads", 0);
  config.threads = threads_arg > 0 ? static_cast<std::size_t>(threads_arg) : 0;

  // Generate once up front, so ill-typed parameter *values* (validate()
  // checks names/keys only; values are typed at generation) and unreadable
  // trace paths fail here with the friendly error, not inside the sweep.
  std::vector<sim::Job> jobs;
  try {
    jobs = harness::cell_jobs(config, scenario, n_jobs, 0);
  } catch (const workload::ScenarioSpecError& e) {
    std::fprintf(stderr, "error: %s\n(--list-scenarios prints the registry)\n", e.what());
    return 1;
  } catch (const std::runtime_error& e) {  // e.g. an unreadable swf/trace path
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const auto* info = workload::ScenarioRegistry::instance().find(scenario.base.name);
  std::printf("Scenario: %s - %zu jobs, %s arrivals\nspec: %s\n%s\n\n",
              workload::scenario_label(scenario).c_str(), jobs.size(),
              config.arrival_mode == workload::ArrivalMode::kStatic ? "static (all at t=0)"
                                                                    : "Poisson",
              scenario.to_string().c_str(), info != nullptr ? info->doc.c_str() : "");

  if (args.has("obs") || args.has("trace-out")) obs::set_enabled(true);
  std::shared_ptr<obs::RunLog> runlog;
  if (args.has("runlog-out")) {
    runlog = std::make_shared<obs::RunLog>(obs::make_file_sink(args.get("runlog-out", "")),
                                           harness::cell_runlog_columns());
  }

  // The streaming sweep: identical cells, seeding and results as run_sweep,
  // but each outcome is seen once by on_cell (serialized, completion order)
  // and then dropped. The table only needs each cell's metrics + overhead
  // summary, so keep those; the run log, when attached, gets one row per
  // cell as it finishes.
  std::map<harness::Cell, std::pair<metrics::MetricSet, std::optional<harness::OverheadSummary>>>
      outcomes;
  harness::run_sweep_streaming(
      config, [&](const harness::Cell& cell, const harness::RunOutcome& outcome) {
        outcomes[cell] = {outcome.metrics, outcome.overhead};
        if (runlog) runlog->append(harness::cell_runlog_row(cell, outcome));
      });
  if (runlog) runlog->flush();

  std::vector<metrics::MethodResult> rows;
  for (const auto& method : config.methods) {
    const auto& [cell_metrics, overhead] =
        outcomes.at(harness::Cell{scenario, n_jobs, method, 0});
    rows.push_back({harness::method_name(method), cell_metrics});
    if (overhead) {
      std::printf("  %-12s %3zu LLM calls, %.0f s simulated API time\n",
                  harness::method_name(method).c_str(), overhead->n_calls,
                  overhead->total_elapsed_s);
    }
  }
  const std::string anchor = harness::method_name(config.methods.front());
  std::printf("\nAll metrics normalized to %s = 1.0 (lower is better for "
              "makespan/wait/turnaround; higher for the rest; n/a = undefined 0/0):\n\n%s",
              anchor.c_str(),
              metrics::render_normalized_table(rows, anchor, args.has("raw")).c_str());
  if (args.has("trace-out")) {
    try {
      obs::TraceRecorder::global().save_chrome_trace(args.get("trace-out", ""));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}
