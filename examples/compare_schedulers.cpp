// Compare scheduler methods on one scenario, printing the FCFS-normalized
// metric table exactly as the paper's figures report it. Methods run through
// the sweep harness, so independent cells run concurrently across --threads
// workers while results stay deterministic.
//
// The method panel defaults to the paper's five; any registered spec can be
// swept instead via repeated --method flags, parameters included:
//
//   ./examples/compare_schedulers [--scenario hetmix] [--jobs 60] [--seed 42]
//                                 [--threads 0] [--static] [--extensions] [--raw]
//                                 [--method SPEC]... [--list-methods]
//   ./examples/compare_schedulers --method fcfs \
//       --method "opt:portfolio?budget=2000&window=sjf:64" \
//       --method "agent:claude37?window=arrival:32"

#include <cstdio>
#include <iostream>

#include "harness/method_spec.hpp"
#include "harness/sweep.hpp"
#include "metrics/report.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"

using namespace reasched;

namespace {

void print_usage(std::ostream& os, const char* argv0) {
  os << "Usage:\n"
     << "  " << argv0
     << " [--scenario NAME] [--jobs N] [--seed N] [--threads N] [--method SPEC]... [flags]\n"
     << "\n"
     << "Options:\n"
     << "  --scenario NAME    Workload scenario: homogeneous, hetmix, longjob, parallel,\n"
     << "                     sparse, bursty, adversarial (default: hetmix)\n"
     << "  --jobs N           Jobs to generate (default: 60)\n"
     << "  --seed N           Base seed for the sweep's per-cell seed derivation\n"
     << "                     (default: 42; numbers differ from pre-harness versions\n"
     << "                     of this example, which seeded the generator directly)\n"
     << "  --threads N        Worker threads for independent method runs;\n"
     << "                     0 = hardware concurrency (default: 0)\n"
     << "  --method SPEC      Add a method spec to the panel (repeatable). A spec is\n"
     << "                     name[?key=value&...], e.g. fcfs or\n"
     << "                     \"opt:portfolio?budget=2000&window=sjf:64\". When given,\n"
     << "                     replaces the default paper panel.\n"
     << "\n"
     << "Flags:\n"
     << "  --list-methods     Print every registered method with its parameters and exit\n"
     << "  --static           All jobs submitted at t=0 instead of Poisson arrivals\n"
     << "  --extensions       Also run EASY backfilling and the fast local optimizer\n"
     << "  --raw              Print raw metric values next to normalized ones\n"
     << "  --help             Show this message\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  if (args.has("help")) {
    print_usage(std::cout, argv[0]);
    return 0;
  }
  if (args.has("list-methods")) {
    std::printf("Registered methods (spec grammar: name[?key=value&...]):\n\n%s",
                harness::MethodRegistry::instance().describe().c_str());
    return 0;
  }
  const auto scenario =
      workload::scenario_from_string(args.get("scenario", "hetmix"))
          .value_or(workload::Scenario::kHeterogeneousMix);
  const auto n_jobs = static_cast<std::size_t>(args.get_int("jobs", 60));

  harness::SweepConfig config;
  config.scenarios = {scenario};
  config.job_counts = {n_jobs};
  const auto method_specs = args.get_all("method");
  if (method_specs.empty()) {
    config.methods = harness::paper_methods();
  } else {
    try {
      for (const auto& spec : method_specs) {
        config.methods.push_back(harness::MethodSpec::parse(spec));
        // Fail fast on unknown names/parameters, before any cell runs.
        harness::make_scheduler(config.methods.back(), /*seed=*/1);
      }
    } catch (const harness::MethodSpecError& e) {
      std::fprintf(stderr, "error: %s\n(--list-methods prints the registry)\n", e.what());
      return 1;
    }
  }
  if (args.has("extensions")) {  // composes with --method panels too
    config.methods.push_back(harness::Method::kEasyBackfill);
    config.methods.push_back(harness::Method::kFastLocal);
  }
  // The sweep's duplicate-spec dedup, applied up front so the printed table
  // has one column per method, matching the one cell the grid actually ran.
  config.methods = harness::dedup_methods(config.methods);
  config.repetitions = 1;
  config.arrival_mode = args.has("static") ? workload::ArrivalMode::kStatic
                                           : workload::ArrivalMode::kPoisson;
  config.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  // Non-positive values (including a stray negative) mean "use all cores".
  const long long threads_arg = args.get_int("threads", 0);
  config.threads = threads_arg > 0 ? static_cast<std::size_t>(threads_arg) : 0;

  const auto jobs = harness::cell_jobs(config, scenario, n_jobs, 0);
  std::printf("Scenario: %s - %zu jobs, %s arrivals\n%s\n\n",
              workload::to_string(scenario).c_str(), jobs.size(),
              config.arrival_mode == workload::ArrivalMode::kStatic ? "static (all at t=0)"
                                                                    : "Poisson",
              workload::describe(scenario).c_str());

  const auto results = harness::run_sweep(config);

  std::vector<metrics::MethodResult> rows;
  for (const auto& method : config.methods) {
    const auto& outcome = results.at(harness::Cell{scenario, n_jobs, method, 0});
    rows.push_back({harness::method_name(method), outcome.metrics});
    if (outcome.overhead) {
      std::printf("  %-12s %3zu LLM calls, %.0f s simulated API time\n",
                  harness::method_name(method).c_str(), outcome.overhead->n_calls,
                  outcome.overhead->total_elapsed_s);
    }
  }
  const std::string anchor = harness::method_name(config.methods.front());
  std::printf("\nAll metrics normalized to %s = 1.0 (lower is better for "
              "makespan/wait/turnaround; higher for the rest; n/a = undefined 0/0):\n\n%s",
              anchor.c_str(),
              metrics::render_normalized_table(rows, anchor, args.has("raw")).c_str());
  return 0;
}
