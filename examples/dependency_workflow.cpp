// Extension demo (paper Section 6, future work): scheduling a workflow DAG.
// A preprocessing stage fans out into parallel analysis jobs which join into
// a final aggregation job; the engine tracks eligibility and the ReAct agent
// sees dependency state in its prompt.
//
//   ./examples/dependency_workflow [--fanout 6] [--seed 5]

#include <cstdio>

#include "core/factory.hpp"
#include "metrics/metrics.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace reasched;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const int fanout = static_cast<int>(args.get_int("fanout", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  // Build the DAG: job 1 (prep) -> jobs 2..fanout+1 (parallel) -> final job.
  std::vector<sim::Job> jobs;
  sim::Job prep;
  prep.id = 1;
  prep.user = 1;
  prep.duration = prep.walltime = 300;
  prep.nodes = 16;
  prep.memory_gb = 64;
  jobs.push_back(prep);
  for (int i = 0; i < fanout; ++i) {
    sim::Job j;
    j.id = 2 + i;
    j.user = 1 + i % 3;
    j.duration = j.walltime = 600 + 60.0 * i;
    j.nodes = 32;
    j.memory_gb = 128;
    j.dependencies = {1};
    jobs.push_back(j);
  }
  sim::Job join;
  join.id = 2 + fanout;
  join.user = 1;
  join.duration = join.walltime = 450;
  join.nodes = 64;
  join.memory_gb = 256;
  for (int i = 0; i < fanout; ++i) join.dependencies.push_back(2 + i);
  jobs.push_back(join);

  const auto agent = core::make_claude37_agent(seed);
  sim::Engine engine;
  const auto result = engine.run(jobs, *agent);

  util::TextTable table({"Job", "Deps", "Start", "End"});
  for (const auto& c : result.completed) {
    table.add_row({std::to_string(c.job.id), std::to_string(c.job.dependencies.size()),
                   util::TextTable::num(c.start_time, 0), util::TextTable::num(c.end_time, 0)});
  }
  std::printf("Workflow DAG (1 -> %d parallel -> join) scheduled by %s:\n%s\n", fanout,
              agent->name().c_str(), table.render().c_str());

  const auto m = metrics::compute_metrics(result, engine.config().cluster);
  std::printf("Makespan %.0f s - the join job started only after all %d analysis jobs "
              "finished (dependency enforcement held).\n",
              m.makespan, fanout);
  return 0;
}
