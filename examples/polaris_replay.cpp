// Reproduce the paper's Section 5 workflow on the Polaris-like trace
// substrate: generate (or load) a raw job-history CSV, run the preprocessing
// pipeline (filter failures, normalize, factorize, derive memory), replay
// the jobs through every scheduler on the 560-node Polaris partition, and
// print the Figure-8-style normalized table.
//
//   ./examples/polaris_replay [--jobs 100] [--seed 11] [--trace file.csv]
//                             [--save-raw results/polaris_raw.csv]
//                             [--via-sweep] [--threads N]
//
// --via-sweep routes the replay through run_sweep's workload_source hook
// instead of calling run_method per method: the methods then run in
// parallel on the harness thread pool, which is how month-scale traces
// (10^5+ jobs - see bench/micro_policy_scaling) should be replayed.

#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "metrics/report.hpp"
#include "util/cli.hpp"
#include "workload/polaris.hpp"

using namespace reasched;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto n_jobs = static_cast<std::size_t>(args.get_int("jobs", 100));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  // Raw trace: from disk if provided, otherwise the synthetic generator.
  util::CsvTable raw;
  if (args.has("trace")) {
    raw = util::CsvTable::load(args.get("trace", ""));
    std::printf("Loaded raw trace: %zu rows\n", raw.rows());
  } else {
    workload::PolarisTraceConfig config;
    config.n_jobs = n_jobs + n_jobs / 2 + 20;
    raw = workload::generate_polaris_raw_trace(config, seed);
    std::printf("Generated synthetic Polaris-like raw trace: %zu rows\n", raw.rows());
  }
  if (args.has("save-raw")) {
    raw.save(args.get("save-raw", "results/polaris_raw.csv"));
    std::printf("Saved raw trace to %s\n", args.get("save-raw", "").c_str());
  }

  const auto jobs = workload::preprocess_polaris_trace(raw, n_jobs);
  std::printf("After preprocessing: %zu completed jobs (failed filtered, timestamps "
              "normalized, users factorized, memory = nodes x 512 GB)\n\n",
              jobs.size());

  sim::EngineConfig engine;
  engine.cluster = sim::ClusterSpec::polaris();  // 560 nodes, idle at t=0

  std::vector<metrics::MethodResult> rows;
  if (args.has("via-sweep")) {
    harness::SweepConfig sweep;
    sweep.scenarios = {"polaris"};  // label only: workload_source overrides generation
    sweep.job_counts = {jobs.size()};
    sweep.methods = harness::paper_methods();
    sweep.base_seed = seed;
    sweep.engine = engine;
    sweep.threads = static_cast<std::size_t>(args.get_int("threads", 0));
    // Every cell replays the identical preprocessed trace; the sweep's value
    // here is the method-parallel thread pool and the shared result plumbing.
    // (Without --trace, `--scenario polaris` on compare_schedulers reaches
    // the same substrate through the scenario registry instead.)
    sweep.workload_source = [&jobs](const workload::ScenarioSpec&, std::size_t,
                                    std::uint64_t) { return jobs; };
    const auto results = harness::run_sweep(sweep);
    for (const auto& method : harness::paper_methods()) {  // presentation order
      const harness::Cell cell{sweep.scenarios[0], jobs.size(), method, 0};
      rows.push_back({harness::method_name(method), results.at(cell).metrics});
    }
  } else {
    for (const auto& method : harness::paper_methods()) {
      const auto outcome = harness::run_method(jobs, method, seed, engine);
      rows.push_back({harness::method_name(method), outcome.metrics});
    }
  }
  std::printf("Normalized performance on the Polaris trace (FCFS = 1.0):\n\n%s",
              metrics::render_normalized_table(rows, "FCFS").c_str());
  std::printf("\nNote: as in the paper, the cluster is assumed idle at time zero, so this "
              "is not a comparison against the real Polaris scheduler.\n");
  return 0;
}
