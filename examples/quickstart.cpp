// Quickstart: generate a small heterogeneous workload, schedule it with the
// Claude-profile ReAct agent, and print the schedule, metrics and an excerpt
// of the reasoning trace.
//
//   ./examples/quickstart [--jobs 12] [--seed 7]

#include <cstdio>

#include "core/factory.hpp"
#include "metrics/gantt.hpp"
#include "metrics/metrics.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace reasched;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto n_jobs = static_cast<std::size_t>(args.get_int("jobs", 12));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  // 1. Generate a workload: the paper's Heterogeneous Mix scenario with
  //    Poisson arrivals on the default 256-node / 2048 GB cluster.
  const auto generator = workload::make_generator(workload::Scenario::kHeterogeneousMix);
  const auto jobs = generator->generate(n_jobs, seed);
  std::printf("Generated %zu jobs for scenario '%s'\n\n", jobs.size(),
              generator->name().c_str());

  // 2. Build the ReAct scheduling agent (simulated Claude 3.7 backend) and
  //    run it through the discrete-event simulator.
  const auto agent = core::make_claude37_agent(seed);
  sim::Engine engine;  // paper-default cluster, constraint enforcement on
  const sim::ScheduleResult result = engine.run(jobs, *agent);

  // 3. Print the realized schedule.
  util::TextTable schedule({"Job", "User", "Nodes", "Mem GB", "Submit", "Start", "End", "Wait"});
  for (const auto& c : result.completed) {
    schedule.add_row({std::to_string(c.job.id), util::format("user_%d", c.job.user),
                      std::to_string(c.job.nodes), util::TextTable::num(c.job.memory_gb, 0),
                      util::TextTable::num(c.job.submit_time, 0),
                      util::TextTable::num(c.start_time, 0),
                      util::TextTable::num(c.end_time, 0),
                      util::TextTable::num(c.wait_time(), 0)});
  }
  std::printf("%s\n", schedule.render().c_str());

  // 4. Metrics (the paper's seven objectives).
  const auto m = metrics::compute_metrics(result, engine.config().cluster);
  std::printf("Makespan        %.0f s\n", m.makespan);
  std::printf("Avg wait        %.1f s\n", m.avg_wait);
  std::printf("Avg turnaround  %.1f s\n", m.avg_turnaround);
  std::printf("Throughput      %.4f jobs/s\n", m.throughput);
  std::printf("Node util       %.1f%%\n", m.node_util * 100);
  std::printf("Memory util     %.1f%%\n", m.mem_util * 100);
  std::printf("Wait fairness   %.3f (Jain)\n", m.wait_fairness);
  std::printf("User fairness   %.3f (Jain)\n", m.user_fairness);
  std::printf("Energy          %.1f kWh\n\n", m.energy_kwh);

  // 5. The schedule at a glance ('.' = queued, '#' = running).
  std::printf("%s\n",
              metrics::render_gantt(result, engine.config().cluster).c_str());

  // 6. A slice of the interpretable reasoning trace (paper Figure 2).
  std::printf("--- first two decisions ---\n");
  std::size_t shown = 0;
  for (const auto& d : result.decisions) {
    std::printf("[t=%.0f] Action: %s%s\n", d.time, d.action.to_string().c_str(),
                d.accepted ? "" : "  [rejected]");
    if (!d.thought.empty()) std::printf("Thought: %s\n", d.thought.c_str());
    if (!d.feedback.empty()) std::printf("%s\n", d.feedback.c_str());
    std::printf("\n");
    if (++shown == 2) break;
  }
  std::printf("LLM calls: %zu (%zu accepted placements), simulated API time %.1f s\n",
              agent->transcript().n_calls(), agent->transcript().n_successful(),
              agent->transcript().total_elapsed_successful());
  return 0;
}
