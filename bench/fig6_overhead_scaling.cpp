// Figure 6: LLM computational overhead scaling with job queue size for the
// Heterogeneous Mix workload: total elapsed time (left), LLM call count
// (middle), per-call latency distribution (right).
//
// Expected shape (paper Section 3.7.2): both models grow monotonically;
// O4-Mini super-linear from ~40 jobs (paper reaches ~4000 s at 100 jobs
// with a transient spike at 80; we reproduce the super-linearity, not the
// one-off network spike), Claude near-linear (~700 s at 100); call counts
// scale linearly for both; O4's latency spread widens with scale, with
// outliers beyond 200 s.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "util/csv.hpp"
#include "util/time_format.hpp"
#include "workload/scenario_spec.hpp"

using namespace reasched;

int main() {
  bench::print_header("Figure 6 - overhead scaling (Heterogeneous Mix, 10..100 jobs)",
                      "successful StartJob/BackfillJob calls only");

  const std::vector<harness::MethodSpec> models = {"agent:claude37", "agent:o4mini"};
  util::TextTable table({"Jobs", "Model", "Elapsed", "Calls", "Placed", "Mean s",
                         "Median s", "p95 s", "Max s", "Outliers"});
  util::CsvTable csv({"n_jobs", "model", "elapsed_s", "calls", "successful",
                      "latency_mean_s", "latency_p95_s", "latency_max_s"});

  std::map<harness::MethodSpec, std::vector<double>> elapsed_series;
  for (const auto n : workload::paper_job_counts()) {
    const auto jobs = workload::generate_scenario("hetero_mix", n, 9229);
    for (const auto& model : models) {
      const auto outcome = harness::run_method(jobs, model, 9229);
      const auto& o = outcome.overhead.value();
      elapsed_series[model].push_back(o.total_elapsed_s);

      std::vector<std::string> cells = {std::to_string(n), harness::method_name(model),
                                        util::format_duration(o.total_elapsed_s),
                                        std::to_string(o.n_calls),
                                        std::to_string(o.n_successful)};
      for (auto& c : bench::latency_stat_cells(o.latencies)) cells.push_back(std::move(c));
      table.add_row(std::move(cells));
      csv.add_row({std::to_string(n), harness::method_name(model),
                   util::format("%.3f", o.total_elapsed_s), std::to_string(o.n_calls),
                   std::to_string(o.n_successful),
                   util::format("%.3f", util::mean(o.latencies)),
                   util::format("%.3f", util::quantile(o.latencies, 0.95)),
                   util::format("%.3f", util::max_of(o.latencies))});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());

  // Growth-shape check: elapsed(100)/elapsed(40) vs linear expectation 2.5x.
  for (const auto& model : models) {
    const auto& series = elapsed_series[model];
    const double growth = series[2] > 0 ? series.back() / series[2] : 0.0;
    std::printf("%s: elapsed grows %.1fx from 40 to 100 jobs (linear would be 2.5x)\n",
                harness::method_name(model).c_str(), growth);
  }

  const std::string path = bench::results_path("fig6_overhead_scaling.csv");
  csv.save(path);
  std::printf("\nCSV written to %s\n", path.c_str());
  return 0;
}
