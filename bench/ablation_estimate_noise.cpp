// Ablation: how fragile is each scheduling policy to walltime-estimate
// noise? The paper's related work (Naghshnejad & Singhal 2020) motivates
// runtime-prediction reliability; this bench quantifies it by inflating
// user walltime requests by U(1, f) over the true runtime and watching who
// suffers.
//
// Expected: FCFS is invariant (ignores estimates); OR-Tools is invariant by
// the paper's formulation (Section 3.3 gives the solver the true durations
// d_j); SJF mis-orders jobs as estimates blur; EASY's backfilling weakens
// (inflated estimates disqualify safe backfills, raising wait); the LLM
// agent degrades mildly - estimates feed only one of its four objectives,
// so it is naturally hedged.

#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "workload/scenario_spec.hpp"

using namespace reasched;

int main() {
  bench::print_header("Ablation - walltime-estimate noise (Heterogeneous Mix, 60 jobs)",
                      "walltime = runtime x U(1, f); schedulers see walltime only");

  const std::vector<harness::MethodSpec> methods = {"fcfs", "sjf", "easy", "opt:portfolio",
                                                    "agent:claude37"};

  util::TextTable table({"f (over-request)", "Method", "Avg wait", "Makespan",
                         "Node util", "Backfills"});
  util::CsvTable csv({"factor", "method", "avg_wait", "makespan", "node_util",
                      "backfills"});

  for (const double factor : {1.0, 1.5, 3.0, 6.0}) {
    // The noise knob is an ordinary scenario-spec parameter now - the same
    // string works as a sweep axis value or on compare_schedulers
    // --scenario. The base draws are noise-invariant (paired comparison).
    const workload::ScenarioSpec scenario(
        util::format("hetero_mix?walltime_noise=1.0:%.1f", factor));
    const auto jobs = workload::generate_scenario(scenario, 60, 8088);
    for (const auto& method : methods) {
      const auto outcome = harness::run_method(jobs, method, 8088);
      table.add_row({util::TextTable::num(factor, 1), harness::method_name(method),
                     util::TextTable::num(outcome.metrics.avg_wait, 1),
                     util::TextTable::num(outcome.metrics.makespan, 0),
                     util::TextTable::num(outcome.metrics.node_util, 3),
                     std::to_string(outcome.schedule.n_backfills)});
      csv.add_row({util::format("%.1f", factor), harness::method_name(method),
                   util::format("%.3f", outcome.metrics.avg_wait),
                   util::format("%.3f", outcome.metrics.makespan),
                   util::format("%.5f", outcome.metrics.node_util),
                   std::to_string(outcome.schedule.n_backfills)});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  csv.save(bench::results_path("ablation_estimate_noise.csv"));
  std::printf("CSV written to %s\n",
              bench::results_path("ablation_estimate_noise.csv").c_str());
  return 0;
}
