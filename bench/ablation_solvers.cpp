// Ablation: solver portfolio for the OR-Tools substitute. The paper's
// related work cites GA, SA and PSO as the classical metaheuristics applied
// to HPC scheduling; this bench compares them (plus local search and exact
// branch & bound where tractable) on identical instances and budgets,
// justifying the SA+LS portfolio the OptimizingScheduler ships with.
//
// Expected: all metaheuristics land within a few percent of each other; SA
// and GA edge out PSO at equal evaluation budgets; B&B certifies the optimum
// on small instances and validates the gap.
//
// PR 6 columns attribute the incremental-evaluation speedup: "cutoff%" is
// the fraction of candidate evaluations the admissible bound aborted early,
// "memo" the duplicates GA/PSO served from the score memo (neither changes
// any solver decision - tests/test_opt_incremental_golden.cpp proves
// bit-identity against the naive full-decode pipeline).

#include <cstdio>

#include "bench_common.hpp"
#include "opt/branch_and_bound.hpp"
#include "opt/genetic_algorithm.hpp"
#include "opt/list_scheduler.hpp"
#include "opt/local_search.hpp"
#include "opt/particle_swarm.hpp"
#include "opt/simulated_annealing.hpp"
#include "workload/scenario_spec.hpp"

using namespace reasched;

int main() {
  bench::print_header("Ablation - optimization solvers (Heterogeneous Mix, makespan)",
                      "identical instances, ~comparable evaluation budgets");

  util::TextTable table({"Jobs", "Solver", "Makespan", "vs best", "Evals", "Cutoff%", "Memo"});
  util::CsvTable csv({"n_jobs", "solver", "score", "ratio_vs_best", "evaluations",
                      "cutoff_hit_rate", "memo_hits"});

  for (const std::size_t n : {8u, 30u, 60u}) {
    opt::Problem p;
    p.total_nodes = 256;
    p.total_memory_gb = 2048;
    workload::GenerateOptions static_arrivals;
    static_arrivals.arrival_mode = workload::ArrivalMode::kStatic;
    p.jobs = workload::generate_scenario("hetero_mix", n, 1618, static_arrivals);
    const opt::ObjectiveWeights w;
    const auto seed_order = opt::order_by_arrival(p);
    const double seed_score = opt::evaluate(opt::decode_order(p, seed_order), w);

    struct Row {
      std::string name;
      double score;
      std::size_t evals;
      double cutoff_rate = 0.0;  ///< aborted fraction of evaluator calls
      std::size_t memo_hits = 0;
    };
    std::vector<Row> rows;
    rows.push_back({"arrival seed", seed_score, 1});

    const auto cutoff_rate = [](const opt::EvalStats& s) {
      return s.evaluations == 0
                 ? 0.0
                 : static_cast<double>(s.cutoff_hits) / static_cast<double>(s.evaluations);
    };
    {
      const auto r = opt::local_search(p, seed_order, w, 3000);
      rows.push_back({"local search", r.score, r.evaluations, cutoff_rate(r.eval)});
    }
    {
      util::Rng rng(1);
      opt::SaConfig config;
      config.iterations = 4000;
      const auto r = opt::simulated_annealing(p, seed_order, w, config, rng);
      rows.push_back({"simulated annealing", r.score, r.evaluations, cutoff_rate(r.eval)});
    }
    {
      util::Rng rng(1);
      opt::GaConfig config;  // 40 pop x 60 gen + init ~ 2400 evals
      const auto r = opt::genetic_algorithm(p, seed_order, w, config, rng);
      rows.push_back(
          {"genetic algorithm", r.score, r.evaluations, cutoff_rate(r.eval), r.memo_hits});
    }
    {
      util::Rng rng(1);
      opt::PsoConfig config;  // 24 particles x 80 iters ~ 1900 evals
      const auto r = opt::particle_swarm(p, seed_order, w, config, rng);
      rows.push_back(
          {"particle swarm", r.score, r.evaluations, cutoff_rate(r.eval), r.memo_hits});
    }
    if (n <= 9) {
      const auto r = opt::branch_and_bound(p, w);
      rows.push_back({r.proven_optimal ? "branch&bound (optimal)" : "branch&bound (capped)",
                      r.score, r.explored,
                      r.explored == 0 ? 0.0
                                      : static_cast<double>(r.pruned) /
                                            static_cast<double>(r.explored)});
    }

    double best = rows.front().score;
    for (const auto& r : rows) best = std::min(best, r.score);
    for (const auto& r : rows) {
      table.add_row({std::to_string(n), r.name, util::TextTable::num(r.score, 1),
                     util::TextTable::ratio(r.score / best), std::to_string(r.evals),
                     util::format("%.1f%%", 100.0 * r.cutoff_rate),
                     std::to_string(r.memo_hits)});
      csv.add_row({std::to_string(n), r.name, util::format("%.3f", r.score),
                   util::format("%.4f", r.score / best), std::to_string(r.evals),
                   util::format("%.4f", r.cutoff_rate), std::to_string(r.memo_hits)});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  csv.save(bench::results_path("ablation_solvers.csv"));
  std::printf("CSV written to %s\n", bench::results_path("ablation_solvers.csv").c_str());
  return 0;
}
