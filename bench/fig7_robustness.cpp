// Figure 7 (Section 4, statistical robustness): distribution of normalized
// metrics for the Heterogeneous Mix workload with 100 dynamically arriving
// jobs over 5 independent repetitions per method, normalized to FCFS.
//
// Expected shape: LLM schedulers show tight variance with consistent
// improvements; OR-Tools attains top utilization but larger fairness
// variance (stochastic annealing); FCFS/SJF are deterministic and flat; no
// significant LLM outliers on the negative metrics.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "metrics/aggregate.hpp"
#include "metrics/normalize.hpp"
#include "util/csv.hpp"
#include "workload/generator.hpp"

using namespace reasched;

int main() {
  bench::print_header(
      "Figure 7 - robustness (Heterogeneous Mix, 100 jobs, 5 repetitions)",
      "box statistics of FCFS-normalized metrics across repeated runs");

  constexpr std::size_t kReps = 5;
  const auto jobs = workload::make_generator(workload::Scenario::kHeterogeneousMix)
                        ->generate(100, 424242);

  // FCFS is deterministic: one run defines the normalization baseline.
  const auto baseline = harness::run_method(jobs, harness::Method::kFcfs, 1).metrics;

  util::TextTable table(
      {"Metric", "Method", "Min", "Q1", "Median", "Q3", "Max", "Mean", "StdDev"});
  util::CsvTable csv({"metric", "method", "rep", "value", "normalized"});

  std::map<harness::MethodSpec, metrics::MetricAggregate> aggregates;
  for (const auto& method : harness::paper_methods()) {
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      const auto outcome =
          harness::run_method(jobs, method, util::derive_seed(5150, "rep", rep + 1));
      aggregates[method].add(outcome.metrics);
      for (const auto metric : metrics::all_metrics()) {
        const auto norm = metrics::normalize(outcome.metrics, baseline, metric);
        csv.add_row({metrics::to_string(metric), harness::method_name(method),
                     std::to_string(rep), util::format("%.6f", outcome.metrics.get(metric)),
                     util::format("%.6f", norm.value)});
      }
    }
  }

  for (const auto metric : metrics::all_metrics()) {
    const double base = baseline.get(metric);
    for (const auto& method : harness::paper_methods()) {
      auto values = aggregates[method].values(metric);
      if (base != 0.0) {
        for (auto& v : values) v /= base;
      }
      const auto box = util::box_stats(values);
      table.add_row({metrics::to_string(metric), harness::method_name(method),
                     util::TextTable::num(box.min, 3), util::TextTable::num(box.q1, 3),
                     util::TextTable::num(box.median, 3), util::TextTable::num(box.q3, 3),
                     util::TextTable::num(box.max, 3), util::TextTable::num(box.mean, 3),
                     util::TextTable::num(util::stddev(values), 4)});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());

  // Variance headline: deterministic heuristics flat, LLMs tight, OR looser
  // on fairness.
  auto fairness_std = [&](const harness::MethodSpec& m) {
    return util::stddev(aggregates[m].values(metrics::Metric::kWaitFairness));
  };
  std::printf("Wait-fairness stddev across reps: FCFS %.4f | SJF %.4f | OR-Tools* %.4f | "
              "Claude %.4f | O4 %.4f\n",
              fairness_std(harness::Method::kFcfs), fairness_std(harness::Method::kSjf),
              fairness_std(harness::Method::kOrTools),
              fairness_std(harness::Method::kClaude37),
              fairness_std(harness::Method::kO4Mini));

  const std::string path = bench::results_path("fig7_robustness.csv");
  csv.save(path);
  std::printf("CSV written to %s\n", path.c_str());
  return 0;
}
