// Ablation: topology-aware placement (the paper's named future-work item,
// Section 3.3). Replays each method's Heterogeneous Mix schedule onto an
// 8-rack x 32-node map under two allocation strategies and reports locality:
// mean racks spanned per job, single-rack placement rate, and peak rack
// fragmentation.
//
// Expected: contiguous best-fit improves locality for every scheduling
// policy; schedules that pack tightly in *time* (OR-Tools, LLM agents) are
// also somewhat harder to keep local in *space*, quantifying the tension
// the future-work item would have to resolve.

#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "sim/topology.hpp"
#include "workload/scenario_spec.hpp"

using namespace reasched;

int main() {
  bench::print_header("Ablation - topology-aware placement (HetMix, 60 jobs)",
                      "post-hoc node placement replay, 8 racks x 32 nodes");

  const auto jobs = workload::generate_scenario("hetero_mix", 60, 5151);
  const sim::TopologySpec spec;

  util::TextTable table({"Method", "Strategy", "Mean racks/job", "Single-rack %",
                         "Peak fragmented racks"});
  util::CsvTable csv({"method", "strategy", "mean_racks_spanned", "single_rack_fraction",
                      "peak_fragmented_racks"});

  for (const auto& method : harness::paper_methods()) {
    const auto outcome = harness::run_method(jobs, method, 5151);
    for (const auto strategy :
         {sim::PlacementStrategy::kFirstFit, sim::PlacementStrategy::kContiguousBestFit}) {
      const auto report = sim::analyze_topology(outcome.schedule, spec, strategy);
      table.add_row({harness::method_name(method), sim::to_string(strategy),
                     util::TextTable::num(report.mean_racks_spanned, 3),
                     util::TextTable::pct(report.single_rack_fraction),
                     std::to_string(report.peak_fragmented_racks)});
      csv.add_row({harness::method_name(method), sim::to_string(strategy),
                   util::format("%.4f", report.mean_racks_spanned),
                   util::format("%.4f", report.single_rack_fraction),
                   std::to_string(report.peak_fragmented_racks)});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  csv.save(bench::results_path("ablation_topology.csv"));
  std::printf("CSV written to %s\n", bench::results_path("ablation_topology.csv").c_str());
  return 0;
}
