// Deployment-implications projection (paper Sections 3.7.3 and 6): the
// paper concludes cloud-hosted reasoning is too slow for real-time
// scheduling (up to an hour for 100 jobs) and calls for on-prem fast
// reasoning models. This bench quantifies that future-work direction by
// running the same ReAct agent against three latency profiles.
//
// Expected: Fast-Local keeps Claude-profile schedule quality while cutting
// total elapsed time by >10x, pushing the practical deployment limit far
// beyond the paper's ~100-200 job estimate.

#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "util/time_format.hpp"
#include "workload/scenario_spec.hpp"

using namespace reasched;

int main() {
  bench::print_header("Ablation - deployment profiles (Heterogeneous Mix)",
                      "cloud Claude 3.7 / cloud O4-Mini / on-prem Fast-Local");

  const std::vector<harness::MethodSpec> models = {"agent:claude37", "agent:o4mini",
                                                   "agent:fastlocal"};

  util::TextTable table({"Jobs", "Model", "Elapsed", "s/job", "Makespan", "Avg wait",
                         "Wait fairness"});
  util::CsvTable csv({"n_jobs", "model", "elapsed_s", "seconds_per_job", "makespan",
                      "avg_wait", "wait_fairness"});

  for (const std::size_t n : {20u, 60u, 100u}) {
    const auto jobs = workload::generate_scenario("hetero_mix", n, 3141);
    for (const auto& model : models) {
      const auto outcome = harness::run_method(jobs, model, 3141);
      const auto& o = outcome.overhead.value();
      const double per_job = o.n_successful > 0
                                 ? o.total_elapsed_s / static_cast<double>(o.n_successful)
                                 : 0.0;
      table.add_row({std::to_string(n), harness::method_name(model),
                     util::format_duration(o.total_elapsed_s),
                     util::TextTable::num(per_job, 2),
                     util::TextTable::num(outcome.metrics.makespan, 0),
                     util::TextTable::num(outcome.metrics.avg_wait, 1),
                     util::TextTable::num(outcome.metrics.wait_fairness, 3)});
      csv.add_row({std::to_string(n), harness::method_name(model),
                   util::format("%.3f", o.total_elapsed_s), util::format("%.4f", per_job),
                   util::format("%.3f", outcome.metrics.makespan),
                   util::format("%.3f", outcome.metrics.avg_wait),
                   util::format("%.5f", outcome.metrics.wait_fairness)});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Deployment read-out: with per-decision latencies in the paper's cloud\n"
              "range, scheduling 100 jobs costs tens of minutes of API time; the\n"
              "on-prem profile brings it under a minute at equal schedule quality.\n\n");
  csv.save(bench::results_path("ablation_deployment.csv"));
  std::printf("CSV written to %s\n", bench::results_path("ablation_deployment.csv").c_str());
  return 0;
}
