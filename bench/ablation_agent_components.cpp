// Ablation: how much do the ReAct agent's components matter?
//
//  - scratchpad memory (Section 2.2): without it the agent forgets decision
//    history and, crucially, which jobs were just rejected;
//  - natural-language feedback (Section 2.4): without it rejections are
//    silent, so the agent re-proposes infeasible actions.
//
// The headline finding mirrors the paper's Section 2.4 argument from the
// other side: because constraint enforcement is separate from reasoning,
// *schedule quality is identical across all variants* - a memory-less or
// feedback-less agent cannot corrupt the cluster. What degrades is the
// reasoning bill: extra LLM calls burned on rejected proposals and the
// simulated API seconds they waste (measured with the O4-Mini profile,
// whose per-call latency makes waste expensive).

#include <cstdio>

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "metrics/metrics.hpp"
#include "sim/engine.hpp"
#include "util/time_format.hpp"
#include "workload/scenario_spec.hpp"

using namespace reasched;

namespace {
struct Variant {
  const char* name;
  bool scratchpad;
  bool feedback;
};
}  // namespace

int main() {
  bench::print_header("Ablation - agent components (O4 profile, HetMix, 60 jobs)",
                      "scratchpad memory and constraint feedback on/off");

  const auto jobs = workload::generate_scenario("hetero_mix", 60, 616);

  const Variant variants[] = {
      {"full agent", true, true},
      {"no scratchpad", false, true},
      {"no feedback", true, false},
      {"neither", false, false},
  };

  util::TextTable table({"Variant", "LLM calls", "Rejected", "Wasted API", "Useful API",
                         "Makespan", "Node util"});
  util::CsvTable csv({"variant", "llm_calls", "invalid_actions", "wasted_api_s",
                      "useful_api_s", "makespan", "node_util"});

  for (const auto& v : variants) {
    core::AgentConfig agent_config;
    agent_config.scratchpad_enabled = v.scratchpad;
    // Stress the feasibility-reasoning failure mode: the model frequently
    // "decides" on a high-scoring job that does not fit. With scratchpad +
    // feedback a single rejection is remembered and avoided; without them
    // the agent keeps re-proposing blocked jobs.
    auto profile = llm::o4mini_profile();
    profile.temperament.hallucination_rate = 0.45;
    const auto agent = core::make_agent(profile, 616, agent_config);

    sim::EngineConfig engine_config;
    engine_config.feedback_enabled = v.feedback;
    engine_config.max_invalid_retries = 6;
    sim::Engine engine(engine_config);
    const auto result = engine.run(jobs, *agent);
    const auto m = metrics::compute_metrics(result, engine_config.cluster);

    // Wasted = latency of calls whose action was rejected.
    double wasted = 0.0;
    for (const auto& call : agent->transcript().calls()) {
      if (!call.accepted && (call.action == sim::ActionType::kStartJob ||
                             call.action == sim::ActionType::kBackfillJob)) {
        wasted += call.latency_seconds;
      }
    }
    const double useful = agent->transcript().total_elapsed_successful();

    table.add_row({v.name, std::to_string(agent->transcript().n_calls()),
                   std::to_string(result.n_invalid_actions),
                   util::format_duration(wasted), util::format_duration(useful),
                   util::TextTable::num(m.makespan, 0),
                   util::TextTable::num(m.node_util, 3)});
    csv.add_row({v.name, std::to_string(agent->transcript().n_calls()),
                 std::to_string(result.n_invalid_actions), util::format("%.1f", wasted),
                 util::format("%.1f", useful), util::format("%.3f", m.makespan),
                 util::format("%.5f", m.node_util)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Read-out: schedule quality is invariant (constraint enforcement protects\n"
              "the cluster - the paper's Section 2.4 separation), but removing memory or\n"
              "feedback burns extra LLM calls and API time on re-proposed infeasible\n"
              "actions.\n\n");
  csv.save(bench::results_path("ablation_agent_components.csv"));
  std::printf("CSV written to %s\n",
              bench::results_path("ablation_agent_components.csv").c_str());
  return 0;
}
