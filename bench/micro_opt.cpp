// Micro-benchmarks for the optimization substrate: the list-schedule
// decoder (the SA inner loop), resource-profile queries, simulated
// annealing and exact branch-and-bound - establishing that the OR-Tools
// substitute can replan at interactive rates for the paper's queue sizes.

#include <benchmark/benchmark.h>

#include "opt/branch_and_bound.hpp"
#include "opt/list_scheduler.hpp"
#include "opt/resource_profile.hpp"
#include "opt/simulated_annealing.hpp"
#include "workload/generator.hpp"

using namespace reasched;

namespace {

opt::Problem hetmix_problem(std::size_t n) {
  opt::Problem p;
  p.total_nodes = 256;
  p.total_memory_gb = 2048;
  p.jobs = workload::make_generator(workload::Scenario::kHeterogeneousMix)
               ->generate(n, 777, workload::ArrivalMode::kStatic);
  return p;
}

void BM_DecodeOrder(benchmark::State& state) {
  const auto p = hetmix_problem(static_cast<std::size_t>(state.range(0)));
  const auto order = opt::order_by_arrival(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::decode_order(p, order));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeOrder)->Arg(10)->Arg(50)->Arg(100)->Arg(400);

void BM_SimulatedAnnealing(benchmark::State& state) {
  const auto p = hetmix_problem(60);
  const auto seed_order = opt::order_spt(p);
  opt::SaConfig config;
  config.iterations = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(42);
    benchmark::DoNotOptimize(
        opt::simulated_annealing(p, seed_order, {}, config, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatedAnnealing)->Arg(500)->Arg(4000);

void BM_BranchAndBoundExact(benchmark::State& state) {
  const auto p = hetmix_problem(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::branch_and_bound(p, {}));
  }
}
BENCHMARK(BM_BranchAndBoundExact)->Arg(6)->Arg(8)->Arg(9);

void BM_ResourceProfileAdd(benchmark::State& state) {
  const auto p = hetmix_problem(static_cast<std::size_t>(state.range(0)));
  const auto plan = opt::decode_order(p, opt::order_by_arrival(p));
  for (auto _ : state) {
    opt::ResourceProfile profile(p.total_nodes, p.total_memory_gb);
    for (const auto& job : p.jobs) {
      profile.add(plan.start_times.at(job.id), job.duration, job.nodes, job.memory_gb);
    }
    benchmark::DoNotOptimize(profile.peak_nodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ResourceProfileAdd)->Arg(50)->Arg(100);

void BM_EarliestFit(benchmark::State& state) {
  const auto p = hetmix_problem(100);
  opt::ResourceProfile profile(p.total_nodes, p.total_memory_gb);
  const auto plan = opt::decode_order(p, opt::order_by_arrival(p));
  for (const auto& job : p.jobs) {
    profile.add(plan.start_times.at(job.id), job.duration, job.nodes, job.memory_gb);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.earliest_fit(0.0, 300.0, 128, 512.0));
  }
}
BENCHMARK(BM_EarliestFit);

}  // namespace

BENCHMARK_MAIN();
