// Sustained-load service-mode bench: steady-state throughput of the online
// ServiceEngine - an ArrivalStream feeding 10^4+ jobs through the live
// submit/advance path (buffer admission, stream pumping, event stepping)
// instead of one batch load. This is the service analogue of
// micro_engine_scaling and the profiling harness for the backfill
// candidate-descent question: `homog_short` at a high rate_scale is exactly
// the pathological homogeneous backlog where the descent's subtree pruning
// has the least to cut, so comparing easy against fcfs (no descent) under
// identical sustained overload bounds what the descent costs in practice.
//
//   ./bench/service_sustained_load [--jobs 10000] [--batch 1000]
//       [--methods fcfs,sjf,easy] [--scenarios homog_short,bursty_idle]
//       [--rate 64] [--advances 200] [--seed 12345] [--reps 3]
//       [--max-overhead-pct 2.0] [--json out.json]
//
// --rate scales arrival density (gaps divided by rate): high rates keep a
// deep waiting queue throughout, which is the sustained-load regime. The
// clock is advanced in --advances equal slices of the arrival span before a
// final drain, so stream pumping and buffer flushing run interleaved with
// event stepping the way a live RJMS session drives them.
//
// --json records `service/<scenario>/<method>/jobsN/jobs_per_s` for the CI
// bench-regression gate (tools/compare_bench.py --gate-suffix jobs_per_s);
// peak queue depth and decisions/sec ride along as informational metrics.
//
// Each cell also reruns with telemetry enabled (obs counters + sampled
// spans + per-completion run-log accounting), records `obs_on_jobs_per_s`,
// and the aggregate slowdown must stay under --max-overhead-pct (default
// 2%, 0 disables) - the service-path half of the observability overhead
// gate (micro_engine_scaling gates the batch engine path).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics_registry.hpp"
#include "service/service_engine.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace reasched;

namespace {

struct RunStats {
  double elapsed_s = 0.0;
  double jobs_per_s = 0.0;
  double dec_per_s = 0.0;
  std::size_t completed = 0;
  std::size_t decisions = 0;
  std::size_t peak_waiting = 0;
  double makespan = 0.0;
};

RunStats run_sustained_once(const std::string& method, const std::string& scenario,
                            std::size_t jobs, std::size_t batch, double rate,
                            std::size_t advances, std::uint64_t seed) {
  service::ServiceConfig config;
  config.method = harness::MethodSpec::parse(method);
  config.seed = seed;
  config.engine.record_traces = false;  // isolate scheduling cost
  const std::size_t batches = (jobs + batch - 1) / batch;
  config.stream = workload::make_stream_spec(scenario, batch, batches, rate);

  // Probe the arrival span once so the advance slices cover the whole
  // stream; the probe stream is independent of the session's.
  double span = 0.0;
  {
    workload::ArrivalStream probe(config.stream, util::derive_seed(seed, "stream"), {});
    while (!probe.exhausted()) span = probe.pop().submit_time;
  }

  service::ServiceEngine engine(config);
  RunStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 1; i <= advances; ++i) {
    engine.advance_to(span * static_cast<double>(i) / static_cast<double>(advances));
    const std::size_t waiting = engine.status().n_waiting;
    if (waiting > stats.peak_waiting) stats.peak_waiting = waiting;
  }
  const service::DrainResult result = engine.drain();
  const auto t1 = std::chrono::steady_clock::now();

  stats.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  stats.completed = result.schedule.completed.size();
  stats.decisions = result.schedule.n_decisions;
  stats.jobs_per_s = static_cast<double>(stats.completed) / stats.elapsed_s;
  stats.dec_per_s = static_cast<double>(stats.decisions) / stats.elapsed_s;
  stats.makespan = result.metrics.makespan;
  return stats;
}

/// One cell measured `reps` times with telemetry off and on, as interleaved
/// off/on pairs (the session is deterministic, so every rep produces the
/// identical schedule; only timing varies). `off`/`on` carry the best-of
/// wall time (the reported throughput figures); `off_s`/`on_s` keep every
/// rep's wall time so the overhead gate can aggregate per-rep pairs.
struct PairedTiming {
  RunStats off, on;
  std::vector<double> off_s, on_s;
};

PairedTiming run_sustained_pair(const std::string& method, const std::string& scenario,
                                std::size_t jobs, std::size_t batch, double rate,
                                std::size_t advances, std::uint64_t seed, std::size_t reps) {
  PairedTiming t;
  for (std::size_t r = 0; r < reps; ++r) {
    // Alternate which side of the pair runs first: a fixed off-then-on
    // order would systematically hand the off side the cooler/boosted CPU
    // and bias the overhead estimate upward.
    RunStats first, second;
    const bool on_first = (r % 2) == 1;
    obs::set_enabled(on_first);
    first = run_sustained_once(method, scenario, jobs, batch, rate, advances, seed);
    obs::set_enabled(!on_first);
    second = run_sustained_once(method, scenario, jobs, batch, rate, advances, seed);
    obs::set_enabled(false);
    const RunStats& off = on_first ? second : first;
    const RunStats& on = on_first ? first : second;
    t.off_s.push_back(off.elapsed_s);
    t.on_s.push_back(on.elapsed_s);
    if (r == 0 || off.elapsed_s < t.off.elapsed_s) t.off = off;
    if (r == 0 || on.elapsed_s < t.on.elapsed_s) t.on = on;
  }
  // Throughput figures recomputed from the best wall time.
  t.off.jobs_per_s = static_cast<double>(t.off.completed) / t.off.elapsed_s;
  t.off.dec_per_s = static_cast<double>(t.off.decisions) / t.off.elapsed_s;
  t.on.jobs_per_s = static_cast<double>(t.on.completed) / t.on.elapsed_s;
  t.on.dec_per_s = static_cast<double>(t.on.decisions) / t.on.elapsed_s;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 10000));
  const auto batch = static_cast<std::size_t>(args.get_int("batch", 1000));
  const auto advances = static_cast<std::size_t>(args.get_int("advances", 200));
  const double rate = args.get_double("rate", 64.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 12345));
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 3));
  const std::string json_path = args.get("json", "");
  const double max_overhead_pct = args.get_double("max-overhead-pct", 2.0);
  bench::BenchJson json;

  std::vector<std::string> methods = util::split(args.get("methods", "fcfs,sjf,easy"), ',');
  std::vector<std::string> scenarios =
      util::split(args.get("scenarios", "homog_short,bursty_idle"), ',');

  bench::print_header(
      "Service sustained load",
      "Online ServiceEngine throughput under a rate-scaled arrival stream\n"
      "(live submit/advance/drain path; jobs/s is the gated figure).");
  std::printf("jobs=%zu batch=%zu rate=%.0fx advances=%zu seed=%llu best-of=%zu\n\n", jobs,
              batch, rate, advances, static_cast<unsigned long long>(seed), reps);

  bool all_match = true;
  // Per-rep wall-time totals across every cell: rep r's telemetry-off runs
  // summed, and its telemetry-on runs summed. The gate uses the median of
  // the per-rep on/off ratios - pairing cancels common-mode drift (both
  // sides of a pair share the machine's current speed) and the median
  // discards the occasional scheduling spike that poisons min- or
  // mean-based comparisons on ~25ms measurements.
  std::vector<double> rep_off_s(reps, 0.0), rep_on_s(reps, 0.0);
  for (const std::string& scenario : scenarios) {
    util::TextTable table({"method", "jobs/s", "dec/s", "decisions", "peak wait", "wall (s)",
                           "obs ovh"});
    for (const std::string& method : methods) {
      const PairedTiming t =
          run_sustained_pair(method, scenario, jobs, batch, rate, advances, seed, reps);
      const RunStats& s = t.off;
      const RunStats& on = t.on;
      // Observe-only cross-check: the instrumented session is the same
      // deterministic session, so its schedule must be identical.
      all_match = all_match && on.decisions == s.decisions && on.completed == s.completed &&
                  on.makespan == s.makespan;
      const double overhead_pct = (on.elapsed_s - s.elapsed_s) / s.elapsed_s * 100.0;
      for (std::size_t r = 0; r < reps; ++r) {
        rep_off_s[r] += t.off_s[r];
        rep_on_s[r] += t.on_s[r];
      }
      table.add_row({method, util::TextTable::num(s.jobs_per_s, 0),
                     util::TextTable::num(s.dec_per_s, 0), std::to_string(s.decisions),
                     std::to_string(s.peak_waiting), util::TextTable::num(s.elapsed_s, 3),
                     util::format("%+.2f%%", overhead_pct)});
      const std::string prefix =
          util::format("service/%s/%s/jobs%zu", scenario.c_str(), method.c_str(), jobs);
      json.add(prefix + "/jobs_per_s", s.jobs_per_s);
      json.add(prefix + "/obs_on_jobs_per_s", on.jobs_per_s);
      json.add(prefix + "/peak_waiting", static_cast<double>(s.peak_waiting));
      json.add(prefix + "/decisions", static_cast<double>(s.decisions));
    }
    std::printf("%s (span-sliced advances, then drain):\n", scenario.c_str());
    std::printf("%s\n", table.render().c_str());
  }

  json.save_if(json_path);

  if (!all_match) {
    std::printf("\nFAIL: telemetry-on session diverged from telemetry-off.\n");
    return 1;
  }
  std::vector<double> rep_ratios;
  for (std::size_t r = 0; r < reps; ++r) rep_ratios.push_back(rep_on_s[r] / rep_off_s[r]);
  const double total_overhead_pct = (util::quantile(rep_ratios, 0.5) - 1.0) * 100.0;
  std::printf("telemetry overhead: %+.2f%% (median of %zu paired reps; gate: <%.1f%%)\n",
              total_overhead_pct, reps, max_overhead_pct);
  if (max_overhead_pct > 0.0 && total_overhead_pct > max_overhead_pct) {
    std::printf("FAIL: telemetry overhead above the gate.\n");
    return 1;
  }
  return 0;
}
