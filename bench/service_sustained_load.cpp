// Sustained-load service-mode bench: steady-state throughput of the online
// ServiceEngine - an ArrivalStream feeding 10^4+ jobs through the live
// submit/advance path (buffer admission, stream pumping, event stepping)
// instead of one batch load. This is the service analogue of
// micro_engine_scaling and the profiling harness for the backfill
// candidate-descent question: `homog_short` at a high rate_scale is exactly
// the pathological homogeneous backlog where the descent's subtree pruning
// has the least to cut, so comparing easy against fcfs (no descent) under
// identical sustained overload bounds what the descent costs in practice.
//
//   ./bench/service_sustained_load [--jobs 10000] [--batch 1000]
//       [--methods fcfs,sjf,easy] [--scenarios homog_short,bursty_idle]
//       [--rate 64] [--advances 200] [--seed 12345] [--json out.json]
//
// --rate scales arrival density (gaps divided by rate): high rates keep a
// deep waiting queue throughout, which is the sustained-load regime. The
// clock is advanced in --advances equal slices of the arrival span before a
// final drain, so stream pumping and buffer flushing run interleaved with
// event stepping the way a live RJMS session drives them.
//
// --json records `service/<scenario>/<method>/jobsN/jobs_per_s` for the CI
// bench-regression gate (tools/compare_bench.py --gate-suffix jobs_per_s);
// peak queue depth and decisions/sec ride along as informational metrics.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/service_engine.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace reasched;

namespace {

struct RunStats {
  double elapsed_s = 0.0;
  double jobs_per_s = 0.0;
  double dec_per_s = 0.0;
  std::size_t completed = 0;
  std::size_t decisions = 0;
  std::size_t peak_waiting = 0;
  double makespan = 0.0;
};

RunStats run_sustained(const std::string& method, const std::string& scenario,
                       std::size_t jobs, std::size_t batch, double rate,
                       std::size_t advances, std::uint64_t seed) {
  service::ServiceConfig config;
  config.method = harness::MethodSpec::parse(method);
  config.seed = seed;
  config.engine.record_traces = false;  // isolate scheduling cost
  const std::size_t batches = (jobs + batch - 1) / batch;
  config.stream = workload::make_stream_spec(scenario, batch, batches, rate);

  // Probe the arrival span once so the advance slices cover the whole
  // stream; the probe stream is independent of the session's.
  double span = 0.0;
  {
    workload::ArrivalStream probe(config.stream, util::derive_seed(seed, "stream"), {});
    while (!probe.exhausted()) span = probe.pop().submit_time;
  }

  service::ServiceEngine engine(config);
  RunStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 1; i <= advances; ++i) {
    engine.advance_to(span * static_cast<double>(i) / static_cast<double>(advances));
    const std::size_t waiting = engine.status().n_waiting;
    if (waiting > stats.peak_waiting) stats.peak_waiting = waiting;
  }
  const service::DrainResult result = engine.drain();
  const auto t1 = std::chrono::steady_clock::now();

  stats.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  stats.completed = result.schedule.completed.size();
  stats.decisions = result.schedule.n_decisions;
  stats.jobs_per_s = static_cast<double>(stats.completed) / stats.elapsed_s;
  stats.dec_per_s = static_cast<double>(stats.decisions) / stats.elapsed_s;
  stats.makespan = result.metrics.makespan;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 10000));
  const auto batch = static_cast<std::size_t>(args.get_int("batch", 1000));
  const auto advances = static_cast<std::size_t>(args.get_int("advances", 200));
  const double rate = args.get_double("rate", 64.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 12345));
  const std::string json_path = args.get("json", "");
  bench::BenchJson json;

  std::vector<std::string> methods = util::split(args.get("methods", "fcfs,sjf,easy"), ',');
  std::vector<std::string> scenarios =
      util::split(args.get("scenarios", "homog_short,bursty_idle"), ',');

  bench::print_header(
      "Service sustained load",
      "Online ServiceEngine throughput under a rate-scaled arrival stream\n"
      "(live submit/advance/drain path; jobs/s is the gated figure).");
  std::printf("jobs=%zu batch=%zu rate=%.0fx advances=%zu seed=%llu\n\n", jobs, batch, rate,
              advances, static_cast<unsigned long long>(seed));

  for (const std::string& scenario : scenarios) {
    util::TextTable table({"method", "jobs/s", "dec/s", "decisions", "peak wait", "wall (s)"});
    for (const std::string& method : methods) {
      const RunStats s = run_sustained(method, scenario, jobs, batch, rate, advances, seed);
      table.add_row({method, util::TextTable::num(s.jobs_per_s, 0),
                     util::TextTable::num(s.dec_per_s, 0), std::to_string(s.decisions),
                     std::to_string(s.peak_waiting), util::TextTable::num(s.elapsed_s, 3)});
      const std::string prefix =
          util::format("service/%s/%s/jobs%zu", scenario.c_str(), method.c_str(), jobs);
      json.add(prefix + "/jobs_per_s", s.jobs_per_s);
      json.add(prefix + "/peak_waiting", static_cast<double>(s.peak_waiting));
      json.add(prefix + "/decisions", static_cast<double>(s.decisions));
    }
    std::printf("%s (span-sliced advances, then drain):\n", scenario.c_str());
    std::printf("%s\n", table.render().c_str());
  }

  json.save_if(json_path);
  return 0;
}
