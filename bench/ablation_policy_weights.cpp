// Ablation: objective temperament drives the fairness/efficiency trade-off
// the paper attributes to the two models (Section 3.5), and the optimizer's
// missing fairness term explains its degradation.
//
// Part A sweeps the LLM temperament's fairness weight (renormalizing the
// rest) on Long-Job Dominant; Part B adds a wait term to the OR objective.
// Expected: fairness metrics rise monotonically-ish with the fairness
// weight while utilization/throughput give ground; the OR optimizer regains
// fairness as wait_weight grows, at a makespan/utilization cost.

#include <cstdio>

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "metrics/metrics.hpp"
#include "opt/optimizing_scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/scenario_spec.hpp"

using namespace reasched;

int main() {
  bench::print_header("Ablation - objective weights",
                      "A: LLM fairness-weight sweep; B: OR wait-term sweep");

  const auto jobs = workload::generate_scenario("long_job", 60, 2718);
  sim::Engine engine;

  std::printf("A) LLM temperament: fairness weight sweep (Long-Job Dominant, 60 jobs)\n");
  util::TextTable a({"w_fairness", "Avg wait", "Wait fairness", "User fairness",
                     "Node util", "Makespan"});
  util::CsvTable csv({"part", "knob", "avg_wait", "wait_fairness", "user_fairness",
                      "node_util", "makespan"});
  for (const double wf : {0.0, 0.15, 0.3, 0.5, 0.7}) {
    auto profile = llm::claude37_profile();
    const double rest = 1.0 - wf;
    profile.temperament.w_fairness = wf;
    profile.temperament.w_makespan = rest * 0.28;
    profile.temperament.w_utilization = rest * 0.34;
    profile.temperament.w_throughput = rest * 0.38;
    profile.display_name = util::format("fairness=%.2f", wf);
    const auto agent = core::make_agent(profile, 2718);
    const auto m =
        metrics::compute_metrics(engine.run(jobs, *agent), engine.config().cluster);
    a.add_row({util::TextTable::num(wf, 2), util::TextTable::num(m.avg_wait, 1),
               util::TextTable::num(m.wait_fairness, 3),
               util::TextTable::num(m.user_fairness, 3),
               util::TextTable::num(m.node_util, 3),
               util::TextTable::num(m.makespan, 0)});
    csv.add_row({"llm_fairness", util::format("%.2f", wf), util::format("%.3f", m.avg_wait),
                 util::format("%.5f", m.wait_fairness),
                 util::format("%.5f", m.user_fairness), util::format("%.5f", m.node_util),
                 util::format("%.3f", m.makespan)});
  }
  std::printf("%s\n", a.render().c_str());

  std::printf("B) OR-Tools* objective: wait-term sweep (same workload)\n");
  util::TextTable b({"wait_weight", "Avg wait", "Wait fairness", "Node util", "Makespan"});
  for (const double ww : {0.0, 0.01, 0.05, 0.2}) {
    opt::OptimizingSchedulerConfig config;
    config.seed = 2718;
    config.weights.wait_weight = ww;
    opt::OptimizingScheduler scheduler(config);
    const auto m =
        metrics::compute_metrics(engine.run(jobs, scheduler), engine.config().cluster);
    b.add_row({util::TextTable::num(ww, 2), util::TextTable::num(m.avg_wait, 1),
               util::TextTable::num(m.wait_fairness, 3),
               util::TextTable::num(m.node_util, 3),
               util::TextTable::num(m.makespan, 0)});
    csv.add_row({"or_wait", util::format("%.2f", ww), util::format("%.3f", m.avg_wait),
                 util::format("%.5f", m.wait_fairness), "",
                 util::format("%.5f", m.node_util), util::format("%.3f", m.makespan)});
  }
  std::printf("%s\n", b.render().c_str());

  csv.save(bench::results_path("ablation_policy_weights.csv"));
  std::printf("CSV written to %s\n",
              bench::results_path("ablation_policy_weights.csv").c_str());
  return 0;
}
