// Engine scaling: indexed Engine vs the seed path (ReferenceEngine) on
// identical workloads. The refactor's claim is that per-decision cost no
// longer grows with queue length - sorted-vector re-sorts, erase-by-scan and
// per-query running-allocation copies are gone - so the speedup must widen
// with job count and clear 5x at 10k jobs.
//
//   ./bench/micro_engine_scaling [--jobs 1000,10000] [--seed 12345]
//                                [--scheduler fcfs|sjf|easy] [--reps 1]
//                                [--json out.json]
//
// --json writes the indexed-engine decisions/sec per size as a flat JSON
// object for the CI bench-regression gate (tools/compare_bench.py).
//
// Prints per-size wall times for both engines, the speedup, and a
// decisions-equal cross-check (the golden test proves full equality; the
// cross-check here guards against benchmarking two diverged paths).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "sched/sjf.hpp"
#include "sim/engine.hpp"
#include "sim/reference_engine.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "workload/generator.hpp"

using namespace reasched;

namespace {

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name) {
  if (name == "sjf") return std::make_unique<sched::SjfScheduler>();
  if (name == "easy") return std::make_unique<sched::EasyBackfillScheduler>();
  return std::make_unique<sched::FcfsScheduler>();
}

template <typename EngineT>
double time_run(EngineT& engine, const std::vector<sim::Job>& jobs, sim::Scheduler& scheduler,
                std::size_t reps, sim::ScheduleResult& last) {
  double best_s = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    last = engine.run(jobs, scheduler);
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < best_s) best_s = s;
  }
  return best_s;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto sizes_arg = args.get("jobs", "1000,10000");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 12345));
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 1));
  const std::string scheduler_name = args.get("scheduler", "fcfs");
  const std::string json_path = args.get("json", "");
  bench::BenchJson json;

  std::vector<std::size_t> sizes;
  for (const auto& tok : util::split(sizes_arg, ',')) {
    sizes.push_back(static_cast<std::size_t>(std::stoull(tok)));
  }

  sim::EngineConfig config;
  config.record_traces = false;  // isolate engine cost from trace strings

  std::printf("Engine scaling, %s over Heterogeneous Mix (record_traces=off, best of %zu):\n\n",
              scheduler_name.c_str(), reps);
  std::printf("  %10s  %14s  %14s  %9s  %s\n", "jobs", "indexed (s)", "seed path (s)",
              "speedup", "decisions");

  bool all_match = true;
  for (const std::size_t n : sizes) {
    const auto jobs =
        workload::make_generator(workload::Scenario::kHeterogeneousMix)->generate(n, seed);

    const auto scheduler = make_scheduler(scheduler_name);
    sim::Engine engine(config);
    sim::ReferenceEngine reference(config);

    sim::ScheduleResult indexed_result, seed_result;
    const double indexed_s = time_run(engine, jobs, *scheduler, reps, indexed_result);
    const double seed_s = time_run(reference, jobs, *scheduler, reps, seed_result);

    const bool match = indexed_result.n_decisions == seed_result.n_decisions &&
                       indexed_result.final_time == seed_result.final_time &&
                       indexed_result.n_backfills == seed_result.n_backfills;
    all_match = all_match && match;
    std::printf("  %10zu  %14.4f  %14.4f  %8.1fx  %s\n", n, indexed_s, seed_s,
                seed_s / indexed_s, match ? "equal" : "MISMATCH");
    json.add(util::format("engine/%s/jobs%zu/dec_per_s", scheduler_name.c_str(), n),
             static_cast<double>(indexed_result.n_decisions) / indexed_s);
  }
  json.save_if(json_path);

  if (!all_match) {
    std::printf("\nFAIL: engines diverged - run the golden determinism test.\n");
    return 1;
  }
  return 0;
}
