// Engine scaling: indexed Engine vs the seed path (ReferenceEngine) on
// identical workloads. The refactor's claim is that per-decision cost no
// longer grows with queue length - sorted-vector re-sorts, erase-by-scan and
// per-query running-allocation copies are gone - so the speedup must widen
// with job count and clear 5x at 10k jobs.
//
//   ./bench/micro_engine_scaling [--jobs 1000,10000] [--seed 12345]
//                                [--scheduler fcfs|sjf|easy] [--reps 1]
//                                [--max-overhead-pct 0] [--json out.json]
//
// --json writes the indexed-engine decisions/sec per size as a flat JSON
// object for the CI bench-regression gate (tools/compare_bench.py), with
// telemetry-on throughput (`obs_on_dec_per_s`) alongside so a regression in
// the instrumented path gates too.
//
// Each size also runs with telemetry enabled (obs counters + sampled
// spans), as alternating off/on pairs per rep so neither side
// systematically gets the cooler CPU. --max-overhead-pct fails the bench
// when the median paired slowdown exceeds it; it defaults to 0 (report
// only) because a sub-20ms cell cannot support a small wall-clock
// threshold reliably - service_sustained_load, whose cells run long
// enough, is where CI enforces the <2% telemetry-overhead gate.
//
// Prints per-size wall times for both engines, the speedup, and a
// decisions-equal cross-check (the golden test proves full equality; the
// cross-check here guards against benchmarking two diverged paths).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics_registry.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "sched/sjf.hpp"
#include "sim/engine.hpp"
#include "sim/reference_engine.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "workload/generator.hpp"

using namespace reasched;

namespace {

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name) {
  if (name == "sjf") return std::make_unique<sched::SjfScheduler>();
  if (name == "easy") return std::make_unique<sched::EasyBackfillScheduler>();
  return std::make_unique<sched::FcfsScheduler>();
}

template <typename EngineT>
double time_once(EngineT& engine, const std::vector<sim::Job>& jobs, sim::Scheduler& scheduler,
                 sim::ScheduleResult& last) {
  const auto t0 = std::chrono::steady_clock::now();
  last = engine.run(jobs, scheduler);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

template <typename EngineT>
double time_run(EngineT& engine, const std::vector<sim::Job>& jobs, sim::Scheduler& scheduler,
                std::size_t reps, sim::ScheduleResult& last) {
  double best_s = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const double s = time_once(engine, jobs, scheduler, last);
    if (r == 0 || s < best_s) best_s = s;
  }
  return best_s;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto sizes_arg = args.get("jobs", "1000,10000");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 12345));
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 1));
  const std::string scheduler_name = args.get("scheduler", "fcfs");
  const std::string json_path = args.get("json", "");
  const double max_overhead_pct = args.get_double("max-overhead-pct", 0.0);
  bench::BenchJson json;

  std::vector<std::size_t> sizes;
  for (const auto& tok : util::split(sizes_arg, ',')) {
    sizes.push_back(static_cast<std::size_t>(std::stoull(tok)));
  }

  sim::EngineConfig config;
  config.record_traces = false;  // isolate engine cost from trace strings

  std::printf("Engine scaling, %s over Heterogeneous Mix (record_traces=off, best of %zu):\n\n",
              scheduler_name.c_str(), reps);
  std::printf("  %10s  %14s  %14s  %14s  %9s  %9s  %s\n", "jobs", "indexed (s)", "obs on (s)",
              "seed path (s)", "speedup", "obs ovh", "decisions");

  bool all_match = true;
  std::vector<double> rep_off_s(reps, 0.0), rep_on_s(reps, 0.0);
  for (const std::size_t n : sizes) {
    const auto jobs =
        workload::make_generator(workload::Scenario::kHeterogeneousMix)->generate(n, seed);

    const auto scheduler = make_scheduler(scheduler_name);
    sim::Engine engine(config);
    sim::ReferenceEngine reference(config);

    // Telemetry off/on as alternating pairs per rep (a fixed order would
    // systematically hand one side the cooler/boosted CPU).
    sim::ScheduleResult indexed_result, obs_result, seed_result;
    double indexed_s = 0.0, obs_s = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      const bool on_first = (r % 2) == 1;
      obs::set_enabled(on_first);
      double first_s = time_once(engine, jobs, *scheduler, on_first ? obs_result : indexed_result);
      obs::set_enabled(!on_first);
      double second_s =
          time_once(engine, jobs, *scheduler, on_first ? indexed_result : obs_result);
      obs::set_enabled(false);
      const double off_r = on_first ? second_s : first_s;
      const double on_r = on_first ? first_s : second_s;
      rep_off_s[r] += off_r;
      rep_on_s[r] += on_r;
      if (r == 0 || off_r < indexed_s) indexed_s = off_r;
      if (r == 0 || on_r < obs_s) obs_s = on_r;
    }
    const double seed_s = time_run(reference, jobs, *scheduler, reps, seed_result);

    // Telemetry must be observe-only: the obs-on run is the same engine on
    // the same jobs, so any divergence is an instrumentation bug (the
    // golden test proves full trace equality; this is the cheap guard).
    const bool match = indexed_result.n_decisions == seed_result.n_decisions &&
                       indexed_result.final_time == seed_result.final_time &&
                       indexed_result.n_backfills == seed_result.n_backfills &&
                       obs_result.n_decisions == indexed_result.n_decisions &&
                       obs_result.final_time == indexed_result.final_time &&
                       obs_result.n_backfills == indexed_result.n_backfills;
    all_match = all_match && match;
    const double overhead_pct = (obs_s - indexed_s) / indexed_s * 100.0;
    std::printf("  %10zu  %14.4f  %14.4f  %14.4f  %8.1fx  %+8.2f%%  %s\n", n, indexed_s, obs_s,
                seed_s, seed_s / indexed_s, overhead_pct, match ? "equal" : "MISMATCH");
    const std::string prefix = util::format("engine/%s/jobs%zu", scheduler_name.c_str(), n);
    json.add(prefix + "/dec_per_s", static_cast<double>(indexed_result.n_decisions) / indexed_s);
    json.add(prefix + "/obs_on_dec_per_s",
             static_cast<double>(obs_result.n_decisions) / obs_s);
  }
  json.save_if(json_path);

  if (!all_match) {
    std::printf("\nFAIL: engines diverged - run the golden determinism test.\n");
    return 1;
  }
  // Median of the per-rep paired slowdown ratios, aggregated across sizes
  // (per-size numbers are informational: small sizes are noise-dominated).
  std::vector<double> rep_ratios;
  for (std::size_t r = 0; r < reps; ++r) rep_ratios.push_back(rep_on_s[r] / rep_off_s[r]);
  const double total_overhead_pct = (util::quantile(rep_ratios, 0.5) - 1.0) * 100.0;
  if (max_overhead_pct > 0.0) {
    std::printf("\ntelemetry overhead: %+.2f%% (median of %zu paired reps; gate: <%.1f%%)\n",
                total_overhead_pct, reps, max_overhead_pct);
    if (total_overhead_pct > max_overhead_pct) {
      std::printf("FAIL: telemetry overhead above the gate.\n");
      return 1;
    }
  } else {
    std::printf("\ntelemetry overhead: %+.2f%% (median of %zu paired reps; gate off - see "
                "service_sustained_load)\n",
                total_overhead_pct, reps);
  }
  return 0;
}
