// Figure 5: computational overhead across six workload scenarios (60 jobs):
// total elapsed scheduling time (left), number of LLM calls (middle), and
// the per-call latency distribution (right) for Claude 3.7 vs O4-Mini.
// Following Section 3.7.1, only calls that produced feasible, accepted
// StartJob/BackfillJob actions are measured.
//
// Expected shape: Claude consistently lower total elapsed time (paper: up
// to ~7x faster on Heterogeneous Mix) with per-call latencies tightly
// clustered below 10 s; O4-Mini heavy-tailed with >100 s outliers
// concentrated in heterogeneous queues; call counts approximately equal to
// the job count for both models.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "util/csv.hpp"
#include "util/time_format.hpp"
#include "workload/scenario_spec.hpp"

using namespace reasched;

int main() {
  bench::print_header(
      "Figure 5 - overhead per workload (60 jobs, successful calls only)",
      "simulated API latencies; elapsed = sum of successful-call latencies");

  // Panels assembled from spec strings (same cells as the enum lists they
  // replace); a parameterized variant is now a one-line edit here.
  const std::vector<workload::ScenarioSpec> scenarios = {
      "homog_short", "long_job",   "high_parallel", "resource_sparse",
      "bursty_idle", "adversarial", "hetero_mix"};
  const std::vector<harness::MethodSpec> models = {"agent:claude37", "agent:o4mini"};

  util::TextTable table({"Scenario", "Model", "Elapsed", "Calls", "Placed", "Mean s",
                         "Median s", "p95 s", "Max s", "Outliers"});
  util::CsvTable csv({"scenario", "model", "elapsed_s", "calls", "successful",
                      "latency_mean_s", "latency_median_s", "latency_p95_s",
                      "latency_max_s"});

  std::map<workload::ScenarioSpec, std::map<harness::MethodSpec, double>> elapsed;
  for (const auto& scenario : scenarios) {
    const auto jobs = workload::generate_scenario(scenario, 60, 7331);
    for (const auto& model : models) {
      const auto outcome = harness::run_method(jobs, model, 7331);
      const auto& o = outcome.overhead.value();
      elapsed[scenario][model] = o.total_elapsed_s;

      std::vector<std::string> cells = {workload::scenario_label(scenario),
                                        harness::method_name(model),
                                        util::format_duration(o.total_elapsed_s),
                                        std::to_string(o.n_calls),
                                        std::to_string(o.n_successful)};
      for (auto& c : bench::latency_stat_cells(o.latencies)) cells.push_back(std::move(c));
      table.add_row(std::move(cells));

      const auto box = util::box_stats(o.latencies);
      csv.add_row({workload::scenario_label(scenario), harness::method_name(model),
                   util::format("%.3f", o.total_elapsed_s), std::to_string(o.n_calls),
                   std::to_string(o.n_successful),
                   util::format("%.3f", util::mean(o.latencies)),
                   util::format("%.3f", box.median),
                   util::format("%.3f", util::quantile(o.latencies, 0.95)),
                   util::format("%.3f", box.max)});
    }
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());

  // Headline ratio: Claude vs O4 elapsed per scenario.
  util::TextTable speed({"Scenario", "O4/Claude elapsed ratio"});
  for (const auto& scenario : scenarios) {
    const double claude = elapsed[scenario][models[0]];
    const double o4 = elapsed[scenario][models[1]];
    speed.add_row({workload::scenario_label(scenario),
                   claude > 0 ? util::TextTable::ratio(o4 / claude) : "n/a"});
  }
  std::printf("%s\n", speed.render().c_str());

  const std::string path = bench::results_path("fig5_overhead_workloads.csv");
  csv.save(path);
  std::printf("CSV written to %s\n", path.c_str());
  return 0;
}
