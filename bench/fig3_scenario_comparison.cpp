// Figure 3: normalized performance metrics across six workload scenarios
// with 60 jobs each, all metrics relative to FCFS (= 1.0). Heterogeneous Mix
// is covered by the scalability analysis (fig4), exactly as in the paper.
//
// Expected shape (paper Section 3.5): LLM schedulers stay balanced across
// objectives; OR-Tools leads utilization/throughput but degrades fairness;
// FCFS/SJF suffer the convoy effect in Long-Job Dominant; Adversarial,
// Homogeneous Short and Resource Sparse flatten differences; undefined 0/0
// wait-time normalizations are printed as n/a and omitted from comparison.

#include <cstdio>

#include "bench_common.hpp"
#include "harness/sweep.hpp"
#include "metrics/report.hpp"

using namespace reasched;

int main() {
  bench::print_header("Figure 3 - scenario comparison (60 jobs, normalized to FCFS)",
                      "six scenarios x five methods, Poisson arrivals, 2 repetitions");

  harness::SweepConfig config;
  // The figure-3 panel as spec strings - same cells and seeds as the enum
  // list it replaces (canonical specs label as the legacy display names).
  config.scenarios = {"homog_short", "long_job", "high_parallel",
                      "resource_sparse", "bursty_idle", "adversarial"};
  config.job_counts = {60};
  config.methods = harness::paper_methods();
  config.repetitions = 2;
  config.base_seed = 20250611;

  const auto results = harness::run_sweep(config);
  const auto groups = harness::aggregate_sweep(results);

  util::CsvTable csv({"scenario", "method", "metric", "value", "normalized", "defined"});
  for (const auto& scenario : config.scenarios) {
    std::vector<metrics::MethodResult> rows;
    for (const auto method : config.methods) {
      const auto& agg = groups.at({scenario, 60, method});
      rows.push_back({harness::method_name(method), agg.mean_set()});
    }
    std::printf("--- %s ---\n%s\n", workload::scenario_label(scenario).c_str(),
                workload::ScenarioRegistry::instance().at(scenario.base.name).doc.c_str());
    std::printf("%s\n", metrics::render_normalized_table(rows, "FCFS").c_str());

    const auto& baseline = rows.front().metrics;
    for (const auto& row : rows) {
      for (const auto metric : metrics::all_metrics()) {
        const auto n = metrics::normalize(row.metrics, baseline, metric);
        csv.add_row({workload::scenario_label(scenario), row.method,
                     metrics::to_string(metric),
                     util::format("%.6f", row.metrics.get(metric)),
                     util::format("%.6f", n.value), n.defined ? "1" : "0"});
      }
    }
  }
  const std::string path = bench::results_path("fig3_scenario_comparison.csv");
  csv.save(path);
  std::printf("CSV written to %s\n", path.c_str());
  return 0;
}
