// Optimizer/agent-layer scaling: per-decision solver cost on a deep waiting
// queue, with and without the planning window (sim::PlanningWindow). PR 1/2
// made the engine and the classical policies flat in queue depth; this bench
// pins the remaining layer the paper evaluates - the src/opt solver
// portfolio behind the OR-Tools* baseline - whose every plan evaluation
// decodes the whole visible job set (O(n log n) per evaluation). The claim:
// with a bounded window the per-decision cost stops growing with queue
// depth, so windowed decisions/sec must clear 5x over the unbounded path at
// 10k waiting jobs for the portfolio solvers, while the zero-copy
// ProblemView stays bit-identical to the copying Problem oracle
// (tests/test_opt_golden.cpp proves it; the cross-check column here guards
// against benchmarking diverged paths).
//
//   ./bench/micro_opt_scaling [--jobs 1000,10000] [--seed 12345] [--reps 3]
//       [--window 64] [--unbounded-max 30000] [--json out.json]
//
// Budgets are bench-sized (a few hundred evaluations per solver) so the
// unbounded 10k runs stay tractable; the windowed/unbounded ratio is what
// matters, not absolute plan quality. --json writes windowed and unbounded
// decisions/sec per (solver, size) for the CI bench-regression gate
// (tools/compare_bench.py).
//
// PR 6 adds evaluations/sec (the unit the incremental-evaluation layer with
// bound cutoffs targets; for B&B the count is explored nodes) and the
// windowed-over-full decisions/sec ratio, so speedups decompose into
// "cheaper evaluations" vs "fewer jobs decoded".

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "opt/branch_and_bound.hpp"
#include "opt/genetic_algorithm.hpp"
#include "opt/list_scheduler.hpp"
#include "opt/local_search.hpp"
#include "opt/particle_swarm.hpp"
#include "opt/simulated_annealing.hpp"
#include "sim/planning_window.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

using namespace reasched;

namespace {

/// A frozen deep-queue decision point: every generated job waiting, a few
/// synthetic running allocations pinning resources, clock past the last
/// arrival. Owns all storage the DecisionContext views borrow.
struct DeepQueue {
  sim::JobTable table;
  sim::ClusterState cluster;
  std::vector<sim::CompletedJob> completed;
  double now = 0.0;

  DeepQueue(std::size_t n_jobs, std::uint64_t seed)
      : cluster(sim::ClusterSpec::paper_default()) {
    const auto jobs = workload::make_generator(workload::Scenario::kHeterogeneousMix)
                          ->generate(n_jobs, seed);
    table.build(jobs);
    for (const auto& j : jobs) now = std::max(now, j.submit_time);
    now += 1.0;
    for (const auto& j : jobs) table.arrive(j.id);

    // Pin part of the cluster with running work so decode's release loop is
    // exercised (ids outside the table's arena).
    for (int r = 0; r < 6; ++r) {
      sim::Job running;
      running.id = 1000000 + r;
      running.nodes = 8;
      running.memory_gb = 64.0;
      running.duration = 300.0 + 60.0 * r;
      running.walltime = running.duration;
      running.submit_time = 0.0;
      cluster.allocate(running, now - 10.0 * r);
    }
  }

  sim::DecisionContext context() const {
    return sim::DecisionContext{now,
                                cluster,
                                table.waiting_view(),
                                table.ineligible_view(),
                                cluster.running_view(),
                                completed,
                                false,
                                table.size(),
                                &table};
  }
};

struct Solver {
  const char* label;
  /// One decision's worth of solver work over the visible job set. Reports
  /// the candidate evaluations it performed (B&B: explored nodes) so the
  /// bench can express throughput as evaluations/sec.
  double (*plan)(const opt::ProblemView&, util::Rng&, std::size_t& evals);
};

const opt::ObjectiveWeights kWeights;

double plan_list(const opt::ProblemView& p, util::Rng&, std::size_t& evals) {
  double best = opt::evaluate(opt::decode_order(p, opt::order_spt(p)), kWeights);
  for (const auto& seed :
       {opt::order_by_arrival(p), opt::order_lpt(p), opt::order_widest(p)}) {
    best = std::min(best, opt::evaluate(opt::decode_order(p, seed), kWeights));
  }
  evals = 4;
  return best;
}

double plan_bnb(const opt::ProblemView& p, util::Rng&, std::size_t& evals) {
  opt::BnbConfig config;
  config.max_nodes = 2000;
  const auto r = opt::branch_and_bound(p, kWeights, config);
  evals = r.explored;
  return r.score;
}

double plan_local(const opt::ProblemView& p, util::Rng&, std::size_t& evals) {
  const auto r = opt::local_search(p, opt::order_spt(p), kWeights, 200);
  evals = r.evaluations;
  return r.score;
}

double plan_sa(const opt::ProblemView& p, util::Rng& rng, std::size_t& evals) {
  opt::SaConfig config;
  config.iterations = 400;
  const auto r = opt::simulated_annealing(p, opt::order_spt(p), kWeights, config, rng);
  evals = r.evaluations;
  return r.score;
}

double plan_ga(const opt::ProblemView& p, util::Rng& rng, std::size_t& evals) {
  opt::GaConfig config;
  config.population = 16;
  config.generations = 8;
  const auto r = opt::genetic_algorithm(p, opt::order_spt(p), kWeights, config, rng);
  evals = r.evaluations;
  return r.score;
}

double plan_pso(const opt::ProblemView& p, util::Rng& rng, std::size_t& evals) {
  opt::PsoConfig config;
  config.particles = 12;
  config.iterations = 10;
  const auto r = opt::particle_swarm(p, opt::order_spt(p), kWeights, config, rng);
  evals = r.evaluations;
  return r.score;
}

/// Best-of-reps seconds for one plan invocation (fresh deterministic rng per
/// rep so repetitions measure the same work).
double time_plan(const Solver& solver, const opt::ProblemView& view, std::uint64_t seed,
                 std::size_t reps, double& score_out, std::size_t& evals_out) {
  double best_s = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    util::Rng rng(seed);
    const auto t0 = std::chrono::steady_clock::now();
    score_out = solver.plan(view, rng, evals_out);
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < best_s) best_s = s;
  }
  return best_s;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto sizes_arg = args.get("jobs", "1000,10000");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 12345));
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 3));
  const auto window_k = static_cast<std::size_t>(args.get_int("window", 64));
  const auto unbounded_max = static_cast<std::size_t>(args.get_int("unbounded-max", 30000));
  const std::string json_path = args.get("json", "");
  bench::BenchJson json;

  std::vector<std::size_t> sizes;
  for (const auto& tok : util::split(sizes_arg, ',')) {
    sizes.push_back(static_cast<std::size_t>(std::stoull(tok)));
  }

  const Solver solvers[] = {{"list", plan_list}, {"bnb", plan_bnb},   {"local", plan_local},
                            {"sa", plan_sa},     {"ga", plan_ga},     {"pso", plan_pso}};

  std::printf(
      "Optimizer-layer scaling over Heterogeneous Mix deep queues, windowed\n"
      "(top-%zu by arrival) vs unbounded ProblemView, bench-sized budgets,\n"
      "best of %zu:\n\n",
      window_k, reps);
  std::printf("  %6s  %8s  %14s  %14s  %9s  %12s  %s\n", "solver", "jobs", "windowed dec/s",
              "unbounded dec/s", "speedup", "full evals/s", "check");

  bool all_match = true;
  for (const std::size_t n : sizes) {
    const DeepQueue state(n, seed);
    const sim::DecisionContext ctx = state.context();

    // Cross-check: the zero-copy view and the copying oracle must agree on
    // the decoded cost of the same permutation, bitwise.
    const opt::Problem oracle = opt::Problem::from_context(ctx);
    const opt::ProblemView view = opt::ProblemView::from_context(ctx);
    const auto spt = opt::order_spt(view);
    const bool match = opt::evaluate(opt::decode_order(view, spt), kWeights) ==
                       opt::evaluate(opt::decode_order(oracle, spt), kWeights);
    all_match = all_match && match;

    sim::PlanningWindow window;
    window.top_k = window_k;
    std::vector<std::uint32_t> positions;
    const bool bounded = window.select(ctx.waiting, positions);
    const opt::ProblemView windowed =
        opt::ProblemView::from_context(ctx, bounded ? &positions : nullptr);

    for (const Solver& solver : solvers) {
      double score = 0.0;
      std::size_t evals = 0;
      const double win_s = time_plan(solver, windowed, seed, reps, score, evals);
      const double win_dps = 1.0 / win_s;
      json.add(util::format("opt/%s/jobs%zu/win%zu/dec_per_s", solver.label, n, window_k),
               win_dps);
      json.add(util::format("opt/%s/jobs%zu/win%zu/evals_per_s", solver.label, n, window_k),
               static_cast<double>(evals) / win_s);

      if (n > unbounded_max) {
        std::printf("  %6s  %8zu  %14.1f  %14s  %9s  %12s  %s\n", solver.label, n, win_dps,
                    "-", "-", "-", match ? "equal" : "MISMATCH");
        continue;
      }
      const double full_s = time_plan(solver, view, seed, reps, score, evals);
      const double full_dps = 1.0 / full_s;
      const double full_eps = static_cast<double>(evals) / full_s;
      json.add(util::format("opt/%s/jobs%zu/full/dec_per_s", solver.label, n), full_dps);
      json.add(util::format("opt/%s/jobs%zu/full/evals_per_s", solver.label, n), full_eps);
      json.add(util::format("opt/%s/jobs%zu/win%zu_over_full_ratio", solver.label, n, window_k),
               win_dps / full_dps);
      std::printf("  %6s  %8zu  %14.1f  %14.1f  %8.1fx  %12.0f  %s\n", solver.label, n, win_dps,
                  full_dps, win_dps / full_dps, full_eps, match ? "equal" : "MISMATCH");
    }
  }
  json.save_if(json_path);

  if (!all_match) {
    std::printf("\nFAIL: ProblemView diverged from the Problem oracle - run "
                "test_opt_golden.\n");
    return 1;
  }
  return 0;
}
