// Workload-generation scaling: jobs/sec for the scenario registry's three
// shapes at trace scale - a plain base generator, a piped transform
// pipeline (rate scaling + estimate noise + DAG injection + load stretch)
// and a weighted mix - so the spec-keyed scenario axis stays cheap relative
// to the simulations it feeds (generation must never be the sweep
// bottleneck; the 10^5-job pipelines here cost milliseconds against
// multi-second cells).
//
//   ./bench/micro_workload_scaling [--jobs 10000,100000] [--seed 4242]
//       [--reps 3] [--json out.json]
//
// --json writes jobs/sec per (shape, size) as a flat JSON object for the CI
// bench-regression gate (tools/compare_bench.py --gate-suffix jobs_per_s).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "workload/scenario_spec.hpp"

using namespace reasched;

namespace {

struct Shape {
  const char* label;  ///< JSON metric family segment
  const char* spec;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto sizes_arg = args.get("jobs", "10000,100000");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 4242));
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 3));
  const std::string json_path = args.get("json", "");
  bench::BenchJson json;

  std::vector<std::size_t> sizes;
  for (const auto& tok : util::split(sizes_arg, ',')) {
    sizes.push_back(static_cast<std::size_t>(std::stoull(tok)));
  }

  const Shape shapes[] = {
      {"generate", "hetero_mix"},
      {"pipeline",
       "hetero_mix?rate_scale=1.5|perturb?walltime_noise=1.2:2.0|dag?fanout=4&depth=6"
       "|stretch?load=1.25"},
      {"mix", "mix(long_job:0.2,resource_sparse:0.8)"},
  };

  std::printf("Scenario-registry generation throughput (best of %zu):\n\n", reps);
  std::printf("  %-9s %9s %14s  %s\n", "shape", "jobs", "jobs/s", "spec");

  for (const auto& shape : shapes) {
    const workload::ScenarioSpec spec(shape.spec);
    for (const std::size_t n : sizes) {
      double best_s = 0.0;
      std::size_t produced = 0;
      for (std::size_t r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto jobs = workload::generate_scenario(spec, n, seed);
        const auto t1 = std::chrono::steady_clock::now();
        produced = jobs.size();
        const double s = std::chrono::duration<double>(t1 - t0).count();
        if (r == 0 || s < best_s) best_s = s;
      }
      const double jobs_per_s = static_cast<double>(produced) / best_s;
      json.add(util::format("workload/%s/jobs%zu/jobs_per_s", shape.label, n), jobs_per_s);
      std::printf("  %-9s %9zu %14.0f  %s\n", shape.label, produced, jobs_per_s, shape.spec);
    }
  }

  json.save_if(json_path);
  return 0;
}
