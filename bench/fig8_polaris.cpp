// Figure 8 (Section 5): normalized performance metrics for 100 jobs from
// the Polaris-like trace substrate, replayed on the 560-node / 512 GB-per-
// node partition with the cluster assumed idle at time zero.
//
// Expected shape: LLM schedulers substantially reduce wait and turnaround
// (comparable to SJF), utilization/throughput on par with all baselines,
// strong fairness for the LLM agents. As in the paper, this is NOT a
// comparison against the real Polaris scheduler.

#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "metrics/report.hpp"
#include "workload/polaris.hpp"

using namespace reasched;

int main() {
  bench::print_header("Figure 8 - Polaris trace replay (100 jobs, normalized to FCFS)",
                      "synthetic Polaris-like trace -> paper preprocessing -> replay");

  const auto raw_config = [] {
    workload::PolarisTraceConfig c;
    c.n_jobs = 170;
    return c;
  }();
  const auto raw = workload::generate_polaris_raw_trace(raw_config, 20241101);
  raw.save(bench::results_path("fig8_polaris_raw_trace.csv"));
  const auto jobs = workload::preprocess_polaris_trace(raw, 100);
  std::printf("Raw rows: %zu -> preprocessed completed jobs: %zu\n\n", raw.rows(),
              jobs.size());

  sim::EngineConfig engine;
  engine.cluster = sim::ClusterSpec::polaris();

  std::vector<metrics::MethodResult> rows;
  for (const auto& method : harness::paper_methods()) {
    const auto outcome = harness::run_method(jobs, method, 20241101, engine);
    rows.push_back({harness::method_name(method), outcome.metrics});
    if (outcome.overhead) {
      std::printf("%-12s: %zu LLM calls, %.0f s simulated API time\n",
                  harness::method_name(method).c_str(), outcome.overhead->n_calls,
                  outcome.overhead->total_elapsed_s);
    }
  }
  std::printf("\n%s\n", metrics::render_normalized_table(rows, "FCFS").c_str());
  std::printf("(raw values)\n%s\n",
              metrics::render_normalized_table(rows, "FCFS", /*raw=*/true).c_str());

  metrics::normalized_csv(rows, "FCFS").save(bench::results_path("fig8_polaris.csv"));
  std::printf("CSV written to %s\n", bench::results_path("fig8_polaris.csv").c_str());
  return 0;
}
