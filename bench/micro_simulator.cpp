// Micro-benchmarks for the simulation substrate: event-engine throughput,
// first-fit checks, prompt rendering, response parsing and scratchpad
// rendering - the per-decision costs that bound how far the simulator
// scales beyond the paper's 100-job experiments.

#include <benchmark/benchmark.h>

#include "core/action_parser.hpp"
#include "core/prompt_builder.hpp"
#include "core/scratchpad.hpp"
#include "sched/fcfs.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

using namespace reasched;

namespace {

std::vector<sim::Job> hetmix_jobs(std::size_t n) {
  return workload::make_generator(workload::Scenario::kHeterogeneousMix)
      ->generate(n, 12345);
}

void BM_EngineFcfsRun(benchmark::State& state) {
  const auto jobs = hetmix_jobs(static_cast<std::size_t>(state.range(0)));
  sim::EngineConfig config;
  config.record_traces = false;
  sim::Engine engine(config);
  sched::FcfsScheduler fcfs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(jobs, fcfs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineFcfsRun)->Arg(10)->Arg(100)->Arg(1000);

void BM_ClusterFirstFitCheck(benchmark::State& state) {
  sim::ClusterState cluster(sim::ClusterSpec::paper_default());
  const auto jobs = hetmix_jobs(64);
  for (const auto& j : jobs) {
    if (cluster.fits(j) && cluster.running_count() < 16) cluster.allocate(j, 0.0);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.fits(jobs[i++ % jobs.size()]));
  }
}
BENCHMARK(BM_ClusterFirstFitCheck);

void BM_WorkloadGeneration(benchmark::State& state) {
  const auto gen = workload::make_generator(workload::Scenario::kHeterogeneousMix);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gen->generate(static_cast<std::size_t>(state.range(0)), ++seed));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorkloadGeneration)->Arg(100)->Arg(1000);

void BM_PromptBuild(benchmark::State& state) {
  const auto jobs = hetmix_jobs(static_cast<std::size_t>(state.range(0)));
  sim::ClusterState cluster(sim::ClusterSpec::paper_default());
  std::vector<sim::Job> ineligible;
  std::vector<sim::ClusterState::Allocation> running;
  std::vector<sim::CompletedJob> completed;
  const sim::DecisionContext ctx{0.0,     cluster,   jobs, ineligible,
                                 running, completed, true, jobs.size()};
  const core::PromptBuilder builder{core::AgentConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(ctx, "(nothing yet)\n"));
  }
}
BENCHMARK(BM_PromptBuild)->Arg(10)->Arg(100);

void BM_ActionParse(benchmark::State& state) {
  const std::string text =
      "Thought: I need to analyze the current system state and the job queue to make an "
      "optimal scheduling decision. Job 40 requires only 4 nodes and finishes quickly.\n"
      "Action: BackfillJob(job_id=40)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::parse_response(text));
  }
}
BENCHMARK(BM_ActionParse);

void BM_ScratchpadRender(benchmark::State& state) {
  core::Scratchpad pad;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    pad.record_decision(i, "thought about job " + std::to_string(i),
                        sim::Action::start(i + 1));
    pad.record_verdict(i % 7 != 0, "rejected for test");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pad.render(8000));
  }
}
BENCHMARK(BM_ScratchpadRender)->Arg(50)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
