#pragma once

// Shared helpers for the figure benches: results directory resolution and
// latency-summary formatting.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace reasched::bench {

/// Directory for CSV outputs; created on demand. Override with the
/// REASCHED_RESULTS_DIR environment variable.
inline std::string results_dir() {
  const char* env = std::getenv("REASCHED_RESULTS_DIR");
  std::string dir = env != nullptr ? env : "results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline std::string results_path(const std::string& filename) {
  return results_dir() + "/" + filename;
}

/// One row of latency-distribution statistics (Figures 5-6, right panels).
inline std::vector<std::string> latency_stat_cells(const std::vector<double>& xs) {
  const auto box = util::box_stats(xs);
  return {util::TextTable::num(util::mean(xs), 1), util::TextTable::num(box.median, 1),
          util::TextTable::num(util::quantile(xs, 0.95), 1),
          util::TextTable::num(box.max, 1), std::to_string(box.outliers.size())};
}

inline void print_header(const char* figure, const char* description) {
  std::printf("=====================================================================\n");
  std::printf("%s\n%s\n", figure, description);
  std::printf("=====================================================================\n\n");
}

}  // namespace reasched::bench
