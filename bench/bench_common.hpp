#pragma once

// Shared helpers for the figure benches: results directory resolution and
// latency-summary formatting.

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/csv.hpp"
#include "util/json_writer.hpp"
#include "util/stats.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace reasched::bench {

/// Directory for CSV outputs; created on demand. Override with the
/// REASCHED_RESULTS_DIR environment variable.
inline std::string results_dir() {
  const char* env = std::getenv("REASCHED_RESULTS_DIR");
  std::string dir = env != nullptr ? env : "results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline std::string results_path(const std::string& filename) {
  return results_dir() + "/" + filename;
}

/// One row of latency-distribution statistics (Figures 5-6, right panels).
inline std::vector<std::string> latency_stat_cells(const std::vector<double>& xs) {
  const auto box = util::box_stats(xs);
  return {util::TextTable::num(util::mean(xs), 1), util::TextTable::num(box.median, 1),
          util::TextTable::num(util::quantile(xs, 0.95), 1),
          util::TextTable::num(box.max, 1), std::to_string(box.outliers.size())};
}

/// Flat {"metric/name": value} JSON collector for the CI bench-regression
/// gate: the scaling benches record their decisions/sec figures here and
/// tools/compare_bench.py diffs the file against the checked-in
/// BENCH_baseline.json (>25% drop on a gated metric fails the job).
class BenchJson {
 public:
  /// Duplicate names would emit duplicate JSON keys, which every parser
  /// downstream (compare_bench.py included) collapses last-wins - a silent
  /// drop of the first measurement. A bench emitting the same metric twice
  /// is a bug in the bench, so fail loudly here.
  void add(const std::string& name, double value) {
    for (const auto& [existing, v] : entries_) {
      (void)v;
      if (existing == name) {
        throw std::logic_error("BenchJson: duplicate metric name \"" + name + "\"");
      }
    }
    entries_.emplace_back(name, value);
  }

  /// Write to `path` when non-empty (the --json flag's argument).
  void save_if(const std::string& path) const {
    if (path.empty()) return;
    util::JsonWriter w;
    w.begin_object();
    for (const auto& [k, v] : entries_) w.kv(k, v);
    w.end_object();
    w.save(path);
    std::printf("\nwrote %zu metric(s) to %s\n", entries_.size(), path.c_str());
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

inline void print_header(const char* figure, const char* description) {
  std::printf("=====================================================================\n");
  std::printf("%s\n%s\n", figure, description);
  std::printf("=====================================================================\n\n");
}

}  // namespace reasched::bench
