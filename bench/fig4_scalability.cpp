// Figure 4: scalability analysis - normalized performance metrics across
// increasing queue sizes (10..100 jobs) for the Heterogeneous Mix workload.
//
// Expected shape (paper Section 3.6): at 10-20 jobs all methods are close;
// differentiation grows with scale; OR-Tools reaches the highest resource
// utilization (paper: up to ~1.8x) while its fairness collapses; the LLM
// agents keep balanced profiles (throughput/utilization >1.2x with fairness
// maintained); FCFS/SJF stay static.

#include <cstdio>

#include "bench_common.hpp"
#include "harness/sweep.hpp"
#include "metrics/report.hpp"

using namespace reasched;

int main() {
  bench::print_header("Figure 4 - scalability (Heterogeneous Mix, 10..100 jobs)",
                      "normalized to FCFS per size; series per metric below");

  harness::SweepConfig config;
  config.scenarios = {workload::Scenario::kHeterogeneousMix};
  config.job_counts = workload::paper_job_counts();
  config.methods = harness::paper_methods();
  config.repetitions = 2;
  config.base_seed = 20250612;

  const auto results = harness::run_sweep(config);
  const auto groups = harness::aggregate_sweep(results);

  util::CsvTable csv({"n_jobs", "method", "metric", "value", "normalized", "defined"});

  // Per-size normalized tables.
  for (const auto n : config.job_counts) {
    std::vector<metrics::MethodResult> rows;
    for (const auto method : config.methods) {
      rows.push_back({harness::method_name(method),
                      groups.at({workload::Scenario::kHeterogeneousMix, n, method})
                          .mean_set()});
    }
    std::printf("--- %zu jobs ---\n%s\n", n,
                metrics::render_normalized_table(rows, "FCFS").c_str());
    const auto& baseline = rows.front().metrics;
    for (const auto& row : rows) {
      for (const auto metric : metrics::all_metrics()) {
        const auto norm = metrics::normalize(row.metrics, baseline, metric);
        csv.add_row({std::to_string(n), row.method, metrics::to_string(metric),
                     util::format("%.6f", row.metrics.get(metric)),
                     util::format("%.6f", norm.value), norm.defined ? "1" : "0"});
      }
    }
  }

  // Series view: one table per metric, sizes as columns (the figure's lines).
  for (const auto metric :
       {metrics::Metric::kNodeUtil, metrics::Metric::kThroughput,
        metrics::Metric::kWaitFairness, metrics::Metric::kAvgWait}) {
    std::vector<std::string> header = {"Method \\ jobs"};
    for (const auto n : config.job_counts) header.push_back(std::to_string(n));
    util::TextTable series(std::move(header));
    for (const auto method : config.methods) {
      std::vector<std::string> cells = {harness::method_name(method)};
      for (const auto n : config.job_counts) {
        const auto& baseline =
            groups.at({workload::Scenario::kHeterogeneousMix, n, harness::Method::kFcfs})
                .mean_set();
        const auto& mine =
            groups.at({workload::Scenario::kHeterogeneousMix, n, method}).mean_set();
        const auto norm = metrics::normalize(mine, baseline, metric);
        cells.push_back(norm.defined ? util::TextTable::num(norm.value, 2)
                                     : util::TextTable::na());
      }
      series.add_row(std::move(cells));
    }
    std::printf("Series: %s (normalized to FCFS)\n%s\n",
                metrics::to_string(metric).c_str(), series.render().c_str());
  }

  const std::string path = bench::results_path("fig4_scalability.csv");
  csv.save(path);
  std::printf("CSV written to %s\n", path.c_str());
  return 0;
}
