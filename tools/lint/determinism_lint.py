#!/usr/bin/env python3
"""Repo-specific determinism & concurrency invariant linter.

Every result in this repo rests on bit-identical determinism: golden decision
traces, seed-derived RNG streams, and paper-mode LLM-vs-heuristic comparisons
are only meaningful if no wall-clock read, unordered-container iteration or
libstdc++ distribution leaks into a decision path. This tool machine-checks
the rules the codebase already lives by (see ARCHITECTURE.md, "Determinism
invariants"):

  wallclock       no std::chrono::{system,steady,high_resolution}_clock,
                  time()/clock()/gettimeofday, std::random_device or
                  std::rand outside the allowlist (llm/http_client is the
                  real-API boundary; optimizing_scheduler timing blocks carry
                  inline LINT-ALLOWs; bench/ measures wall time by design).
  distribution    no std::*_distribution / std::shuffle / std::sample outside
                  util/rng: libstdc++'s draw algorithms are not pinned by the
                  standard, so every distribution the results depend on is
                  hand-rolled once in util::Rng and golden-tested.
  unordered-iter  no range-for / iterator loop over std::unordered_{map,set}:
                  iteration order is hash/libc++-dependent, so anything
                  aggregated, exported or decided from it is nondeterministic.
                  Look up per key, or copy keys out and sort.
  sort-order      std::sort over a range whose comparator admits ties is an
                  unspecified permutation. Use std::stable_sort, or assert
                  tie-freedom with a `// total-order: <why>` comment.
  epsilon         no absolute `< 1e-N` float compares outside util/sim
                  tolerance helpers: absolute epsilons silently stop working
                  at large magnitudes (PR 2/6 replaced several). Use the
                  relative tol_* helpers.
  coverage        with --compile-commands, every src/**/*.cpp must appear in
                  the database (headers are linted by a tree walk). A TU that
                  drops out of the build would otherwise be linted never -
                  silently - rather than loudly.

Escape hatch: `// LINT-ALLOW(rule): reason` on the offending line or the line
above suppresses that rule there. The reason is mandatory and an allow that
suppresses nothing is itself an error, so stale or unexplained allows fail CI.

Usage:
  determinism_lint.py --src-root src                  # lint a tree
  determinism_lint.py --compile-commands build/compile_commands.json
  determinism_lint.py file.cpp [file2.cpp ...]        # explicit files
  determinism_lint.py --list-rules

Exit status: 0 clean, 1 findings, 2 usage error. Stdlib-only (no libclang):
a comment/string-aware lexer plus rule-specific token scans, which is exactly
as much parsing as these rules need and keeps the tool dependency-free.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_common  # noqa: E402  (the shared PR 7 lexer + allow protocol)

RULES = {
    "wallclock": "wall-clock / entropy source outside the allowlist",
    "distribution": "std random distribution/shuffle outside util/rng",
    "unordered-iter": "iteration over std::unordered_{map,set}",
    "sort-order": "std::sort without stable_sort or total-order assertion",
    "epsilon": "absolute epsilon float compare outside tolerance helpers",
    "lint-allow": "malformed or unused LINT-ALLOW",
    "coverage": "src translation unit absent from compile_commands.json",
}

# Path-prefix allowlists, relative to the repo root (forward slashes). A rule
# listed here is simply not applied under the prefix; use inline LINT-ALLOW
# for sub-file granularity (e.g. one timing block inside a decision module).
PATH_ALLOW = {
    "wallclock": [
        "src/llm/http_client.",  # real-API boundary: HTTP latency is wall time
        "src/obs/wallclock.",  # the one sanctioned timer TU (span durations)
        "bench/",  # benches measure wall time by design
        "tools/",
        "tests/",
    ],
    "distribution": [
        "src/util/rng.",  # the one sanctioned wrapper over std <random>
        "tests/",  # differential tests compare Rng vs std streams
    ],
    "unordered-iter": [],
    "sort-order": ["bench/", "tools/"],
    "epsilon": [
        "src/util/",  # tolerance helpers and stats kernels live here
        "src/sim/event.hpp",  # tol_leq / tol_eq definitions
        "tests/",
        "bench/",
    ],
}

TOTAL_ORDER_TOKEN = "total-order"

# ---------------------------------------------------------------------------
# Rule scanners. Each yields (line_index, rule, message).

WALLCLOCK_RES = [
    (re.compile(r"\bstd\s*::\s*chrono\s*::\s*(system|steady|high_resolution)_clock\b"),
     "std::chrono::{}_clock read"),
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device is nondeterministic entropy"),
    (re.compile(r"\bstd\s*::\s*s?rand\b|(?<![\w:])s?rand\s*\("), "C rand/srand"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(nullptr|NULL|0|&)"), "C time() wall-clock read"),
    (re.compile(r"\b(gettimeofday|clock_gettime|timespec_get)\s*\("), "{} wall-clock read"),
    (re.compile(r"(?<![\w:.])clock\s*\(\s*\)"), "C clock() read"),
]

DISTRIBUTION_RE = re.compile(
    r"\bstd\s*::\s*(\w+_distribution)\b|\bstd\s*::\s*(shuffle|sample)\b")

SORT_RE = re.compile(r"\bstd\s*::\s*sort\s*\(")

# A comparison against an absolute epsilon literal, either side: `x < 1e-9`,
# `1e-9 > x`, `fabs(a-b) <= 1.5e-12`, ...
EPSILON_RES = [
    re.compile(r"[<>]=?\s*\d+(?:\.\d+)?[eE]-\d+"),
    re.compile(r"\b\d+(?:\.\d+)?[eE]-\d+\s*[<>]=?"),
]

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
USING_ALIAS_RE = re.compile(r"\b(?:using|typedef)\s+(\w+)\s*=")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def match_angle(code, start):
    """code[start] == '<'; return index one past the matching '>'."""
    depth = 0
    i = start
    n = len(code)
    while i < n:
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":
            return i  # malformed / operator<; bail out
        i += 1
    return n


def unordered_names(code_text):
    """Names (variables, members, aliases) declared with an unordered type."""
    names = set()
    aliases = set()
    for m in UNORDERED_DECL_RE.finditer(code_text):
        open_angle = code_text.index("<", m.start())
        end = match_angle(code_text, open_angle)
        # `using Foo = std::unordered_map<...>;` declares an alias type.
        line_start = code_text.rfind("\n", 0, m.start()) + 1
        prefix = code_text[line_start:m.start()]
        am = USING_ALIAS_RE.search(prefix)
        if am:
            aliases.add(am.group(1))
            continue
        tail = code_text[end:]
        im = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;{=(,)]", tail)
        if im:
            names.add(im.group(1))
    if aliases:
        alias_decl = re.compile(
            r"\b(" + "|".join(re.escape(a) for a in aliases) + r")\s+([A-Za-z_]\w*)\s*[;{=(]")
        for m in alias_decl.finditer(code_text):
            names.add(m.group(2))
    return names


def range_for_heads(code_text):
    """Yield (offset, decl, range_expr) for every range-based for head."""
    for m in re.finditer(r"\bfor\s*\(", code_text):
        start = m.end() - 1
        depth = 0
        i = start
        n = len(code_text)
        while i < n:
            c = code_text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        head = code_text[start + 1:i]
        if ";" in head:
            continue  # classic for
        # Find the top-level ':' separator (skip '::' and bracket nests).
        d_par = d_ang = d_brk = 0
        sep = -1
        j = 0
        while j < len(head):
            c = head[j]
            if c == "(":
                d_par += 1
            elif c == ")":
                d_par -= 1
            elif c == "[":
                d_brk += 1
            elif c == "]":
                d_brk -= 1
            elif c == "<":
                d_ang += 1
            elif c == ">":
                d_ang = max(0, d_ang - 1)
            elif c == ":":
                if j + 1 < len(head) and head[j + 1] == ":":
                    j += 2
                    continue
                if d_par == d_ang == d_brk == 0:
                    sep = j
                    break
            j += 1
        if sep < 0:
            continue
        yield m.start(), head[:sep], head[sep + 1:]


def scan_file(path, rel, args):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    code_lines, comment_lines = lint_common.strip_code_and_comments(text)
    code_text = "\n".join(code_lines)

    def line_of(offset):
        return code_text.count("\n", 0, offset)

    findings = []  # (line_idx, rule, message)

    def applies(rule):
        return not any(rel.startswith(p) for p in PATH_ALLOW.get(rule, []))

    if applies("wallclock"):
        for idx, line in enumerate(code_lines):
            for rx, msg in WALLCLOCK_RES:
                m = rx.search(line)
                if m:
                    findings.append((idx, "wallclock",
                                     msg.format(m.group(1) if m.groups() and m.group(1) else "")))
    if applies("distribution"):
        for idx, line in enumerate(code_lines):
            m = DISTRIBUTION_RE.search(line)
            if m:
                what = m.group(1) or m.group(2)
                findings.append((idx, "distribution",
                                 f"std::{what} outside util/rng (draw algorithm is not pinned "
                                 "by the standard; use util::Rng)"))
    if applies("unordered-iter"):
        names = unordered_names(code_text)
        if names:
            word = re.compile(r"\b(" + "|".join(re.escape(x) for x in sorted(names)) + r")\b")
            for offset, _decl, range_expr in range_for_heads(code_text):
                m = word.search(range_expr)
                if m:
                    findings.append((line_of(offset), "unordered-iter",
                                     f"range-for over unordered container '{m.group(1)}' "
                                     "(iteration order is hash-dependent; copy keys out and "
                                     "sort, or look up per key)"))
            iter_loop = re.compile(
                r"=\s*(" + "|".join(re.escape(x) for x in sorted(names)) +
                r")\s*\.\s*c?begin\s*\(")
            for m in iter_loop.finditer(code_text):
                findings.append((line_of(m.start()), "unordered-iter",
                                 f"iterator loop over unordered container '{m.group(1)}' "
                                 "(iteration order is hash-dependent)"))
    if applies("sort-order"):
        for idx, line in enumerate(code_lines):
            if SORT_RE.search(line):
                window = " ".join(comment_lines[max(0, idx - 3):idx + 1])
                if TOTAL_ORDER_TOKEN not in window:
                    findings.append((idx, "sort-order",
                                     "std::sort: ties produce an unspecified permutation; use "
                                     "std::stable_sort or assert tie-freedom with a "
                                     "'// total-order: <why>' comment"))
    if applies("epsilon"):
        for idx, line in enumerate(code_lines):
            if any(rx.search(line) for rx in EPSILON_RES):
                findings.append((idx, "epsilon",
                                 "absolute epsilon compare: breaks at large magnitudes; use the "
                                 "relative tolerance helpers (sim/event.hpp, util)"))

    kept = lint_common.apply_allows(findings, code_lines, comment_lines, RULES)

    if args.rules:
        kept = [k for k in kept if k[1] in args.rules]
    return [(idx + 1, rule, msg) for idx, rule, msg in sorted(kept)]


# ---------------------------------------------------------------------------


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*", help="explicit files to lint")
    ap.add_argument("--compile-commands", help="path to compile_commands.json")
    ap.add_argument("--src-root", default=None, help="lint every C++ file under this tree")
    ap.add_argument("--root", default=None,
                    help="repo root for allowlist-relative paths (default: auto-detect)")
    ap.add_argument("--all", action="store_true",
                    help="with --compile-commands, lint bench/tests/examples too")
    ap.add_argument("--rule", dest="rules", action="append",
                    help="restrict to RULE (repeatable); default: all rules")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rule, doc in sorted(RULES.items()):
            print(f"{rule:16s} {doc}")
        return 0
    if args.rules:
        unknown = [r for r in args.rules if r not in RULES]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    if not args.files and not args.compile_commands and not args.src_root:
        ap.print_usage(sys.stderr)
        print("need files, --compile-commands or --src-root", file=sys.stderr)
        return 2

    root = os.path.abspath(args.root) if args.root else lint_common.default_root(__file__)

    n_findings = 0
    files, uncovered = lint_common.collect_files(args, root)
    # Silent-coverage gate: a src/ TU absent from the compile database would
    # never be linted by the CI invocation - that is a finding, not a skip.
    if not args.rules or "coverage" in args.rules:
        for rel in uncovered:
            print(f"{rel}:1: [coverage] not in compile_commands.json (stale build dir, "
                  "dead file, or a TU the build no longer compiles); every src/ .cpp "
                  "must be covered by the lint run")
            n_findings += 1
    for path in files:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        for line, rule, msg in scan_file(path, rel, args):
            print(f"{rel}:{line}: [{rule}] {msg}")
            n_findings += 1
    if n_findings:
        print(f"\n{n_findings} finding(s) across {len(files)} file(s); "
              "see tools/lint/determinism_lint.py --list-rules", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
