#!/usr/bin/env python3
"""Include-graph layering linter: machine-checks the dependency DAG.

The repo's layers form a DAG (ARCHITECTURE.md, "Layering contract"):

    util -> obs -> sim -> {sched, opt, workload, llm, core, metrics}
         -> harness -> service -> apps

An arrow means "may be included by": obs (telemetry) may include util, sim
may include obs and util, harness may include any middle-tier module,
service may include harness, and apps sit on top. The middle tier is flat
except core -> llm (the ReAct agent drives the LLM client stack); siblings
there must not include each other - anything two of them share belongs in
sim or util, and anything that needs two of them belongs in harness. obs
sits below sim so every simulation/decision layer can emit telemetry, while
obs itself can never observe-and-steer by reaching upward.

Two rules:

  layering     an `#include "mod/..."` edge from module A to module B where
               B is not A itself and not in A's allowed dependency set. The
               finding names the edge and A's allowed set.
  layer-cycle  a cycle in the *file-level* include graph (two headers
               including each other compiles by include-guard accident in
               some TU orders and not others). The offending chain is
               printed file by file.

Escape hatch: `// LINT-ALLOW(layering): reason` on the include line (see
lint_common.apply_allows; reasons are mandatory, stale allows are findings).
There is deliberately no allow for layer-cycle: break the cycle.

Usage:
  layer_lint.py                                  # lint <repo>/src + <repo>/apps
  layer_lint.py --root path/to/tree              # fixture trees
  layer_lint.py --compile-commands build/compile_commands.json
  layer_lint.py --print-dag                      # canonical DAG, one edge/line

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_common  # noqa: E402

RULES = {
    "layering": "include edge violating the layer DAG",
    "layer-cycle": "cycle in the file-level include graph",
    "lint-allow": "malformed or unused LINT-ALLOW",
}

# The canonical layer DAG: module -> modules it may include. Self-includes
# are always legal. Pinned by tools/lint/lint_fixture_test.py so an edit here
# is a deliberate, reviewed decision, not a drive-by.
MIDDLE_TIER = ("sched", "opt", "workload", "llm", "core", "metrics")
LAYER_DEPS = {
    "util": frozenset(),
    # obs (telemetry) sits between util and sim: everything above can emit
    # metrics/spans, while obs itself can only see util - the observe-only
    # invariant is structural, not just policy.
    "obs": frozenset({"util"}),
    "sim": frozenset({"obs", "util"}),
    "sched": frozenset({"obs", "sim", "util"}),
    "opt": frozenset({"obs", "sim", "util"}),
    "workload": frozenset({"obs", "sim", "util"}),
    "llm": frozenset({"obs", "sim", "util"}),
    "metrics": frozenset({"obs", "sim", "util"}),
    # core (the ReAct agent) composes prompts/actions over the llm client
    # stack; the only sanctioned middle-tier sibling edge.
    "core": frozenset({"llm", "obs", "sim", "util"}),
    "harness": frozenset({*MIDDLE_TIER, "obs", "sim", "util"}),
    "service": frozenset({"harness", *MIDDLE_TIER, "obs", "sim", "util"}),
    "apps": frozenset({"service", "harness", *MIDDLE_TIER, "obs", "sim", "util"}),
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def module_of(rel):
    """Module name for a repo-relative path, or None when out of scope."""
    parts = rel.split("/")
    if parts[0] == "src" and len(parts) > 2 and parts[1] in LAYER_DEPS:
        return parts[1]
    if parts[0] == "apps":
        return "apps"
    return None


def include_module(inc):
    """Module an include path points into (quoted includes are src/-rooted)."""
    head = inc.split("/", 1)[0]
    return head if head in LAYER_DEPS else None


def parse_includes(path):
    """(line_idx, include_path) for every quoted include, skipping includes
    that only exist inside comments or string literals."""
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    code_lines, comment_lines = lint_common.strip_code_and_comments(text)
    out = []
    for idx, raw in enumerate(text.split("\n")):
        m = INCLUDE_RE.match(raw)
        if m and idx < len(code_lines) and "include" in code_lines[idx]:
            out.append((idx, m.group(1)))
    return out, code_lines, comment_lines


def find_file_cycles(include_graph):
    """Cycles in the file-level include graph as lists of rel paths.
    Iterative DFS with the classic white/grey/black coloring; each cycle is
    reported once, rooted at its lexicographically smallest member so the
    output is deterministic."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {f: WHITE for f in include_graph}
    cycles = []
    seen_cycles = set()
    for start in sorted(include_graph):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(sorted(include_graph[start])))]
        path = [start]
        color[start] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in include_graph:
                    continue
                if color[nxt] == GREY:
                    cycle = path[path.index(nxt):] + [nxt]
                    pivot = min(cycle[:-1])
                    canon = tuple(cycle[cycle.index(pivot):-1] + cycle[:cycle.index(pivot)])
                    if canon not in seen_cycles:
                        seen_cycles.add(canon)
                        cycles.append(cycle)
                elif color[nxt] == WHITE:
                    color[nxt] = GREY
                    stack.append((nxt, iter(sorted(include_graph[nxt]))))
                    path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return cycles


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None,
                    help="tree root containing src/ (+ optional apps/); default: repo root")
    ap.add_argument("--compile-commands", default=None,
                    help="lint the TUs listed here (plus the src/ header walk); "
                    "the file list source, the DAG is unchanged")
    ap.add_argument("--print-dag", action="store_true",
                    help="print the canonical layer DAG, one 'module: deps' line each")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rule, doc in sorted(RULES.items()):
            print(f"{rule:12s} {doc}")
        return 0
    if args.print_dag:
        for mod in sorted(LAYER_DEPS):
            print(f"{mod}: {' '.join(sorted(LAYER_DEPS[mod])) or '-'}")
        return 0

    root = os.path.abspath(args.root) if args.root else lint_common.default_root(__file__)

    files = []
    if args.compile_commands:
        files = lint_common.compile_db_files(args.compile_commands)
        seen = set(files)
        for p in lint_common.walk_tree(os.path.join(root, "src"), lint_common.HEADER_EXTS):
            if p not in seen:
                files.append(p)
    else:
        for sub in ("src", "apps"):
            d = os.path.join(root, sub)
            if os.path.isdir(d):
                files.extend(lint_common.walk_tree(d))
    scoped = []
    for path in sorted(set(files)):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if module_of(rel) is not None:
            scoped.append((path, rel))

    n_findings = 0
    include_graph = {}  # rel -> set of rel targets (file level, in-scope only)
    for path, rel in scoped:
        mod = module_of(rel)
        includes, code_lines, comment_lines = parse_includes(path)
        findings = []
        targets = set()
        for idx, inc in includes:
            tmod = include_module(inc)
            if tmod is None:
                continue  # third-party or test-support include; out of scope
            target_rel = "src/" + inc
            if os.path.isfile(os.path.join(root, target_rel)):
                targets.add(target_rel)
            if tmod != mod and tmod not in LAYER_DEPS[mod]:
                allowed = ", ".join(sorted(LAYER_DEPS[mod])) or "(nothing)"
                findings.append((idx, "layering",
                                 f'include "{inc}": {mod} -> {tmod} violates the layer DAG '
                                 f"(modules {mod} may include: {allowed}); move the shared "
                                 "code down a layer or invert the dependency"))
        include_graph[rel] = targets
        for idx, rule, msg in sorted(
                lint_common.apply_allows(findings, code_lines, comment_lines, RULES)):
            print(f"{rel}:{idx + 1}: [{rule}] {msg}")
            n_findings += 1

    for cycle in find_file_cycles(include_graph):
        chain = " -> ".join(cycle)
        print(f"{cycle[0]}:1: [layer-cycle] include cycle: {chain}")
        n_findings += 1

    if n_findings:
        print(f"\n{n_findings} finding(s) across {len(scoped)} file(s); "
              "see tools/lint/layer_lint.py --list-rules", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
