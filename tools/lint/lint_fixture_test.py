#!/usr/bin/env python3
"""Fixture suite for determinism_lint.py, run as a ctest (label: lint).

Contract, encoded in fixture file names:
  fixtures/fail_<rule>[_variant].cpp  must trigger >= 1 finding, and every
                                      finding must be of exactly <rule>
  fixtures/pass_*.cpp                 must be completely clean

So a rule that stops firing breaks its must-fail fixture, and a rule that
starts over-firing breaks the must-pass set (or another rule's must-fail
set) — rule regressions fail like any other test.

The linter is invoked with --root pointing *at* the fixture directory so the
repo's path allowlists (tools/, bench/, ...) cannot mask fixture findings.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(HERE, "determinism_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
FINDING_RE = re.compile(r"^[^:]+:\d+: \[([a-z-]+)\] ")


def run_linter(path):
    proc = subprocess.run(
        [sys.executable, LINTER, "--root", FIXTURES, path],
        capture_output=True, text=True, check=False)
    rules = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            rules.append(m.group(1))
    return proc.returncode, rules, proc.stdout


def main():
    failures = []
    checked = 0
    names = sorted(os.listdir(FIXTURES))
    if not any(n.startswith("fail_") for n in names) or \
       not any(n.startswith("pass_") for n in names):
        print("FAIL: fixture directory is missing fail_/pass_ cases")
        return 1
    for name in names:
        if not name.endswith(".cpp"):
            continue
        path = os.path.join(FIXTURES, name)
        rc, rules, out = run_linter(path)
        checked += 1
        if name.startswith("pass_"):
            if rc != 0 or rules:
                failures.append(f"{name}: expected clean, got rc={rc}:\n{out}")
        elif name.startswith("fail_"):
            expected = None
            for rule in ("lint-allow", "wallclock", "distribution",
                         "unordered-iter", "sort-order", "epsilon"):
                if name.startswith("fail_" + rule.replace("-", "_")):
                    expected = rule
                    break
            if expected is None:
                failures.append(f"{name}: cannot derive expected rule from file name")
                continue
            if rc != 1 or not rules:
                failures.append(f"{name}: expected >=1 [{expected}] finding, got rc={rc}:\n{out}")
            elif set(rules) != {expected}:
                failures.append(
                    f"{name}: expected only [{expected}], got {sorted(set(rules))}:\n{out}")
        else:
            failures.append(f"{name}: fixture names must start with pass_ or fail_")
    for f in failures:
        print("FAIL:", f)
    print(f"{checked - len(failures)}/{checked} fixtures behaved as named")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
