#!/usr/bin/env python3
"""Fixture suite for the tools/lint analyzers, run as a ctest (label: lint).

Contract, encoded in fixture names (one subdirectory per linter):

  fixtures/determinism/fail_<rule>[_variant].cpp   determinism_lint.py
  fixtures/determinism/<pass|fail>_.../            determinism_lint.py over a
                                                   tree (src/<module>/...),
                                                   exercising path allowlists
  fixtures/view/fail_<rule>[_variant].cpp          view_lint.py
  fixtures/layering/fail_<rule>[_variant]/         layer_lint.py (a tree:
                                                   src/<module>/... files)

A fail fixture must trigger >= 1 finding and every finding must be of
exactly <rule> (rules are spelled with '_' in file names: fail_view_refresh
-> view-refresh). A pass fixture/tree must be completely clean. So a rule
that stops firing breaks its must-fail fixture, and a rule that starts
over-firing breaks the must-pass set - rule regressions fail like any other
test.

Beyond the fixtures, two pins:
  * the canonical layer DAG (layer_lint.py --print-dag) is asserted verbatim,
    so an edit to LAYER_DEPS is a deliberate reviewed decision;
  * the compile_commands.json coverage contract: a src/ TU missing from the
    database must be reported (the silent-gap regression).

File-based linters are invoked with --root/--src-root at the fixture
directory so the repo's path allowlists cannot mask fixture findings.
"""

import json
import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
FINDING_RE = re.compile(r"^[^:]+:\d+: \[([a-z-]+)\] ")

# linter script, fixture subdir, fixture shape, rules (longest spelling
# first so fail_view_refresh_* never prefix-matches a shorter rule).
SUITES = [
    ("determinism_lint.py", "determinism", "file",
     ("unordered-iter", "sort-order", "distribution", "lint-allow",
      "wallclock", "epsilon", "coverage")),
    ("view_lint.py", "view", "file",
     ("view-invalidation", "view-refresh", "lint-allow")),
    ("layer_lint.py", "layering", "tree",
     ("layer-cycle", "layering", "lint-allow")),
]

CANONICAL_DAG = """\
apps: core harness llm metrics obs opt sched service sim util workload
core: llm obs sim util
harness: core llm metrics obs opt sched sim util workload
llm: obs sim util
metrics: obs sim util
obs: util
opt: obs sim util
sched: obs sim util
service: core harness llm metrics obs opt sched sim util workload
sim: obs util
util: -
workload: obs sim util
"""


def run(cmd):
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    rules = [m.group(1) for m in
             (FINDING_RE.match(line) for line in proc.stdout.splitlines()) if m]
    return proc.returncode, rules, proc.stdout + proc.stderr


def expected_rule(name, rules):
    for rule in rules:
        if name.startswith("fail_" + rule.replace("-", "_")):
            return rule
    return None


def check_case(name, cmd, rules, failures):
    rc, found, out = run(cmd)
    if os.path.basename(name).startswith("pass_"):
        if rc != 0 or found:
            failures.append(f"{name}: expected clean, got rc={rc}:\n{out}")
        return
    expected = expected_rule(os.path.basename(name), rules)
    if expected is None:
        failures.append(f"{name}: cannot derive expected rule from fixture name")
    elif rc != 1 or not found:
        failures.append(f"{name}: expected >=1 [{expected}] finding, got rc={rc}:\n{out}")
    elif set(found) != {expected}:
        failures.append(f"{name}: expected only [{expected}], got {sorted(set(found))}:\n{out}")


def fixture_cases():
    cases = []
    for linter, sub, shape, rules in SUITES:
        directory = os.path.join(FIXTURES, sub)
        script = os.path.join(HERE, linter)
        names = sorted(os.listdir(directory))
        if not any(n.startswith("fail_") for n in names) or \
           not any(n.startswith("pass_") for n in names):
            cases.append((f"{sub}/", None, rules, "missing fail_/pass_ cases"))
            continue
        for name in names:
            if not (name.startswith("fail_") or name.startswith("pass_")):
                cases.append((f"{sub}/{name}", None, rules,
                              "fixture names must start with pass_ or fail_"))
                continue
            path = os.path.join(directory, name)
            if shape == "file":
                if os.path.isdir(path):
                    # Tree-shaped fixture under a file-shaped suite: lint the
                    # tree's src/ rooted at the fixture, so path allowlists
                    # (e.g. the sanctioned src/obs wall-clock TU) apply
                    # exactly as they do against the repo.
                    cmd = [sys.executable, script, "--root", path, "--src-root", "src"]
                elif not name.endswith(".cpp"):
                    continue
                elif linter == "determinism_lint.py":
                    cmd = [sys.executable, script, "--root", directory, path]
                else:
                    cmd = [sys.executable, script, path]
            else:
                cmd = [sys.executable, script, "--root", path]
            cases.append((f"{sub}/{name}", cmd, rules, None))
    return cases


def check_dag_pin(failures):
    rc, _rules, out = run([sys.executable, os.path.join(HERE, "layer_lint.py"),
                           "--print-dag"])
    got = {line.split(":")[0]: set(line.split(":", 1)[1].split())
           for line in out.strip().splitlines() if ":" in line}
    want = {line.split(":")[0]: set(line.split(":", 1)[1].split())
            for line in CANONICAL_DAG.strip().splitlines()}
    if rc != 0 or got != want:
        failures.append("layer DAG pin: --print-dag diverged from the canonical DAG "
                        f"(rc={rc}); if the layering contract really changed, update "
                        f"CANONICAL_DAG here and ARCHITECTURE.md together:\n{out}")


def check_coverage_gap(failures):
    """A src/ .cpp absent from compile_commands.json must be reported."""
    sys.path.insert(0, HERE)
    import lint_common  # noqa: E402 (the unit under test)
    with tempfile.TemporaryDirectory() as tmp:
        src = os.path.join(tmp, "src", "sim")
        os.makedirs(src)
        covered = os.path.join(src, "covered.cpp")
        orphan = os.path.join(src, "orphan.cpp")
        for p in (covered, orphan):
            with open(p, "w", encoding="utf-8") as f:
                f.write("int x;\n")
        db = os.path.join(tmp, "compile_commands.json")
        with open(db, "w", encoding="utf-8") as f:
            json.dump([{"directory": tmp, "file": covered,
                        "command": "c++ -c covered.cpp"}], f)
        uncovered = lint_common.check_coverage(lint_common.compile_db_files(db), tmp)
        if uncovered != ["src/sim/orphan.cpp"]:
            failures.append(f"coverage: expected ['src/sim/orphan.cpp'], got {uncovered}")
    # And against the real repo database, when one exists, the linter must
    # exit clean - i.e. no TU has silently dropped out of the build.
    repo_db = os.path.join(os.path.dirname(os.path.dirname(HERE)),
                           "build", "compile_commands.json")
    if os.path.isfile(repo_db):
        rc, rules, out = run([sys.executable,
                              os.path.join(HERE, "determinism_lint.py"),
                              "--compile-commands", repo_db, "--rule", "coverage"])
        if rc != 0 or rules:
            failures.append(f"coverage: src/ TUs missing from {repo_db} (rc={rc}):\n{out}")


def main():
    failures = []
    checked = 0
    for name, cmd, rules, err in fixture_cases():
        checked += 1
        if err:
            failures.append(f"{name}: {err}")
            continue
        check_case(name, cmd, rules, failures)
    check_dag_pin(failures)
    check_coverage_gap(failures)
    checked += 2
    for f in failures:
        print("FAIL:", f)
    print(f"{checked - len(failures)}/{checked} lint fixture checks behaved as named")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
