// must-fail: epsilon — absolute epsilons silently stop working once values
// outgrow them (one ulp at 1e7 s is already ~2e-9).
#include <cmath>

bool times_equal(double a, double b) { return std::fabs(a - b) < 1e-9; }

bool fits(double free_gb, double need_gb) { return need_gb <= free_gb + 1e-6; }
