// must-pass: the sanctioned observability timer TU. src/obs/wallclock.* is
// the one library location allowed to read the wall clock (PATH_ALLOW);
// span durations come from here and never feed a scheduling decision.
#include <chrono>

namespace reasched::obs {

double monotonic_us() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::micro>(now).count();
}

}  // namespace reasched::obs
