// must-fail: sort-order — comparator admits ties, so std::sort yields an
// unspecified permutation of equal keys.
#include <algorithm>
#include <vector>

struct Row {
  double key;
  int payload;
};

void order_rows(std::vector<Row>& rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) { return a.key < b.key; });
}
