// must-pass: the determinism-correct spellings of everything the rules flag.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

struct Row {
  double key;
  int id;
};

void order_rows(std::vector<Row>& rows) {
  // stable_sort needs no total-order proof: tied keys keep insertion order.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.key < b.key; });
  // total-order: key ties broken by unique id.
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.key != b.key ? a.key < b.key : a.id < b.id;
  });
}

struct Aggregator {
  std::unordered_map<int, double> totals_;  // lookups only: fine
  std::map<int, double> ordered_;

  double lookup(int id) const {
    const auto it = totals_.find(id);
    return it == totals_.end() ? 0.0 : it->second;
  }

  double reduce() const {
    double sum = 0.0;
    for (const auto& [id, value] : ordered_) sum = sum * 0.5 + value;
    return sum;
  }
};

bool tol_leq_local(double x, double y) {
  // Relative tolerance: scales with magnitude instead of breaking at it.
  return x <= y + std::max(1e-9, (y < 0 ? -y : y) * 1e-12);
}
