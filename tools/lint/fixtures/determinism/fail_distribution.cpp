// must-fail: distribution — libstdc++ draw algorithms are not pinned by the
// standard; all distributions must go through util::Rng.
#include <algorithm>
#include <random>
#include <vector>

int draw(std::mt19937_64& engine) {
  std::uniform_int_distribution<int> d(0, 10);
  return d(engine);
}

void scramble(std::vector<int>& v, std::mt19937_64& engine) {
  std::shuffle(v.begin(), v.end(), engine);
}
