// must-fail: lint-allow — an allow without a reason is unexplained; CI
// requires every escape hatch to say why the site is exempt.
#include <chrono>

double now_s() {
  // LINT-ALLOW(wallclock)
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
