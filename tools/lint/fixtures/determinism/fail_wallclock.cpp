// must-fail: wallclock — a wall-clock read in a decision path makes results
// depend on the machine, not the seed.
#include <chrono>

double elapsed_since_epoch() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
