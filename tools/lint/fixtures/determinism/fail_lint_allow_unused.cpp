// must-fail: lint-allow — a stale allow that suppresses nothing must be
// removed, otherwise escapes accumulate and rot.

// LINT-ALLOW(wallclock): this function used to read the clock before v2.
double now_s() { return 0.0; }
