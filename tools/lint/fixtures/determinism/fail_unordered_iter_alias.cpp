// must-fail: unordered-iter — the alias and explicit-iterator forms.
#include <unordered_set>

using IdSet = std::unordered_set<int>;

int first_id(const IdSet& make) {
  IdSet ids = make;
  int out = -1;
  for (auto it = ids.begin(); it != ids.end(); ++it) {
    out = *it;
    break;  // "first" element of a hash set: implementation-defined
  }
  return out;
}
