// must-fail: unordered-iter — iteration order over a hash container is
// implementation-defined; anything reduced from it is nondeterministic.
#include <string>
#include <unordered_map>

struct Aggregator {
  std::unordered_map<int, double> totals_;

  double reduce() const {
    double sum = 0.0;
    for (const auto& [id, value] : totals_) {
      sum = sum * 0.5 + value;  // order-dependent reduction
    }
    return sum;
  }
};
