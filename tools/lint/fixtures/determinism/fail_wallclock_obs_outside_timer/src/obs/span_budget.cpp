// must-fail: wallclock - being inside src/obs does not sanction clock reads;
// only the dedicated timer TU (src/obs/wallclock.*) is allowlisted. Any
// other obs file reaching for the clock must route through obs::monotonic_us.
#include <chrono>

namespace reasched::obs {

double span_budget_remaining_us(double budget_us, double started_us) {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const double now_us = std::chrono::duration<double, std::micro>(now).count();
  return budget_us - (now_us - started_us);
}

}  // namespace reasched::obs
