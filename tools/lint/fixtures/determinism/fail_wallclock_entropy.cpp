// must-fail: wallclock — nondeterministic entropy sources.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned nondeterministic_seed() {
  std::random_device rd;
  std::srand(static_cast<unsigned>(time(nullptr)));
  return rd() + static_cast<unsigned>(std::rand());
}
