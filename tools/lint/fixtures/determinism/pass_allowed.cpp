// must-pass: every rule suppressed through the sanctioned escape hatch, each
// with a reason — the linter accepts these and flags none.
#include <chrono>
#include <cmath>
#include <random>
#include <unordered_map>

double probe_elapsed() {
  // LINT-ALLOW(wallclock): calibration probe; the measurement is the point.
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

double std_reference_draw(std::mt19937_64& engine) {
  // LINT-ALLOW(distribution): differential test comparing util::Rng vs std.
  std::normal_distribution<double> d(0.0, 1.0);
  return d(engine);
}

double commutative_reduce(const std::unordered_map<int, double>& totals) {
  double sum = 0.0;
  // LINT-ALLOW(unordered-iter): plain sum is order-insensitive up to float
  // association; this value is diagnostic-only and never exported.
  for (const auto& [id, value] : totals) sum += value;
  return sum;
}

bool zero_guard(double denom) {
  // LINT-ALLOW(epsilon): zero-magnitude guard before division.
  return std::fabs(denom) < 1e-12;
}
