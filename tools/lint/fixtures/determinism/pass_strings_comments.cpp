// must-pass: forbidden tokens inside comments, strings and raw strings are
// text, not code — the lexer must not flag them.
//
// Historical note: this file once used std::random_device and std::shuffle,
// iterated an unordered_map, and compared against 1e-9 via std::sort.
#include <string>

/* block comment: std::chrono::steady_clock::now(), time(nullptr) */

std::string docs() {
  std::string s = "call std::rand or std::uniform_int_distribution<int> here";
  s += R"(for (auto& kv : unordered_things_) { if (x < 1e-12) std::sort(v); })";
  s += 'c';
  return s;
}
