#include "service/session.hpp"
int main() { return 0; }
