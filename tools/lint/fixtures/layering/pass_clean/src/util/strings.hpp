#pragma once
