#pragma once
#include "sim/engine.hpp"
#include "util/strings.hpp"
