#pragma once
#include "util/strings.hpp"
