#pragma once
#include "harness/sweep.hpp"
