#pragma once
#include "sched/fcfs.hpp"
#include "sim/engine.hpp"
