#pragma once
#include "util/a.hpp"
