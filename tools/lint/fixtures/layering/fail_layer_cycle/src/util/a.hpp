#pragma once
#include "util/b.hpp"
