#pragma once
#include "harness/sweep.hpp"  // LINT-ALLOW(layering)
