#pragma once
