#pragma once
