#pragma once
// obs may include util: telemetry cells are built on the annotated
// synchronization primitives.
#include "util/strings.hpp"
