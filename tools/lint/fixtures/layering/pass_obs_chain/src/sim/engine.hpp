#pragma once
// sim may include obs (and util): the engine emits spans and counters
// through the layer below it.
#include "obs/metrics.hpp"
#include "util/strings.hpp"
