#pragma once
// The obs header the fixture's util layer illegally reaches up to.
