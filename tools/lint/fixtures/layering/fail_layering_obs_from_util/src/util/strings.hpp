#pragma once
// A util header illegally reaching up into the observability layer: util is
// the bottom of the DAG and may include nothing.
#include "obs/metrics.hpp"
