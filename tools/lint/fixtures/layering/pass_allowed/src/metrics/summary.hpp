#pragma once
