#pragma once
// The fixture's sanctioned exception, reason and all.
#include "metrics/summary.hpp"  // LINT-ALLOW(layering): fixture pretends this edge was grandfathered
