#pragma once
// A middle-tier scheduler header the fixture's sim layer illegally reaches up to.
