#pragma once
#include "sched/fcfs.hpp"
