#pragma once
