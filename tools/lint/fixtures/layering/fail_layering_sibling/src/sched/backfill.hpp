#pragma once
#include "opt/model.hpp"
