// Must-pass: read-only traffic over views, mutations only before borrowing.
void digest(const reasched::sim::EngineCore& core) {
  const AllocationListView running = core.cluster().running_view();
  double acc = 0.0;
  for (const Allocation& a : running) acc += a.end;
  (void)acc;
}
void mutate_then_borrow(reasched::sim::EngineCore& core) {
  core.step();
  const DecisionContext ctx = core.context_for_test();
  (void)ctx.now;
}
