// Must-fail: container mutated inside a range-for over its own view.
void mutate_while_iterating(reasched::sim::JobTable& table) {
  for (const Job& job : table.waiting_view()) {
    table.start(job.id);  // next iteration reads the reshuffled index
  }
}
