// Must-pass: a reasoned sanction annotation covers a read the heuristic
// cannot prove fresh (and revalidates the view from that line on).
void sanctioned_read(reasched::sim::JobTable& table) {
  JobListView waiting = table.waiting_view();
  table.complete(waiting.front().id);
  // VIEW-REFRESH: complete() pops the tail index only; front() stays stable here
  double d = waiting.front().walltime;
  (void)d;
}
