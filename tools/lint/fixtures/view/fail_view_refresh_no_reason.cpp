// Must-fail: sanction annotations must say why the view is fresh.
void annotated_without_reason(reasched::sim::JobTable& table) {
  JobListView waiting = table.waiting_view();
  table.arrive(7);
  // VIEW-REFRESH
  double d = waiting.front().walltime;
  (void)d;
}
