// Must-pass: LINT-ALLOW with a reason suppresses one stale-use finding.
void allowed_stale_read(reasched::sim::JobTable& table) {
  JobListView waiting = table.waiting_view();
  table.cancel(waiting.front().id);
  // LINT-ALLOW(view-invalidation): test asserts on the pre-cancel snapshot semantics
  double d = waiting.size() ? 1.0 : 0.0;
  (void)d;
}
