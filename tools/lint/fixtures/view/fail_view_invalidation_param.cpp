// Must-fail: a DecisionContext parameter borrows engine state through an
// opaque producer, so mutating any known container invalidates it.
void stale_context(const DecisionContext& ctx, reasched::sim::JobTable& table) {
  table.add_job(Job{});
  const Job* j = ctx.find_waiting(3);  // ctx views predate the add_job
  (void)j;
}
