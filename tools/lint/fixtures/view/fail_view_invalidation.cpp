// Must-fail: stale borrowed view read after a source-container mutation.
namespace reasched::sim {
class JobTable;
}
void stale_after_start(reasched::sim::JobTable& table) {
  JobListView waiting = table.waiting_view();
  table.start(waiting.front().id);
  double d = waiting.front().walltime;  // stale: start() reindexed the table
  (void)d;
}
