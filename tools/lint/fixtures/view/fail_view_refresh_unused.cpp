// Must-fail: a stale sanction annotation (covers no flagged read) must go.
void refresh_with_nothing_stale(reasched::sim::JobTable& table) {
  JobListView waiting = table.waiting_view();
  // VIEW-REFRESH: nothing on the next line is actually invalidated
  double d = waiting.front().walltime;
  (void)d;
}
