// Must-fail: an allow annotation covering a line where no view
// is stale is itself a finding (stale allows rot).
void allow_without_finding(reasched::sim::JobTable& table) {
  JobListView waiting = table.waiting_view();
  // LINT-ALLOW(view-invalidation): nothing here needs it
  double d = waiting.front().walltime;
  (void)d;
}
