// Must-pass: the sanctioned patterns - re-derive after mutating, finish all
// reads before mutating, or mutate-and-return out of a loop.
void rederive_after_mutation(reasched::sim::JobTable& table) {
  JobListView waiting = table.waiting_view();
  table.start(waiting.front().id);
  waiting = table.waiting_view();  // fresh borrow; reads below are fine
  double d = waiting.empty() ? 0.0 : waiting.front().walltime;
  (void)d;
}
void reads_then_mutation(reasched::sim::JobTable& table) {
  JobListView waiting = table.waiting_view();
  const double total = sum_walltimes(waiting);
  table.arrive(9);  // view never read again: no finding
  (void)total;
}
void mutate_and_leave_loop(reasched::sim::JobTable& table, reasched::sim::ClusterState& cluster) {
  for (const Job& job : table.waiting_view()) {
    if (cluster.fits(job)) {
      start_one(table, job.id);  // opaque helper; receiver is not a mutator call
      return;
    }
  }
}
