#!/usr/bin/env python3
"""Shared infrastructure for the tools/lint analyzers.

Three stdlib-only building blocks every linter in this directory uses:

  strip_code_and_comments  the PR 7 comment/string-aware lexer: per-line
                           (code, comment) channels with literal contents
                           blanked, so rule scans never fire inside strings
                           or prose.
  apply_allows             the `// LINT-ALLOW(rule): reason` escape-hatch
                           protocol: an allow suppresses its rule on its own
                           line and the next code line, must carry a reason,
                           and must suppress something (stale allows are
                           findings themselves).
  collect_files / check_coverage
                           file discovery from an explicit list, a source
                           tree, or compile_commands.json - with the
                           coverage contract that every src/ translation
                           unit is accounted for (a .cpp missing from the
                           compile database is an error, not a silent skip).

Keeping these in one module means a lexer fix or a protocol change lands in
every analyzer at once instead of drifting per tool.
"""

import json
import os
import re

ALLOW_RE = re.compile(r"LINT-ALLOW\(([a-z-]+)\)\s*(?::\s*(\S.*))?")

# Every rule any analyzer in this directory owns. apply_allows() needs the
# full registry so a LINT-ALLOW for a *sibling* linter's rule is ignored
# (not "unknown") by the linters that do not own it - each rule's owner
# alone judges reasons, staleness and suppression.
ALL_RULES = frozenset({
    # determinism_lint.py
    "wallclock", "distribution", "unordered-iter", "sort-order", "epsilon", "coverage",
    # layer_lint.py
    "layering", "layer-cycle",
    # view_lint.py
    "view-invalidation", "view-refresh",
    # shared
    "lint-allow",
})

CPP_EXTS = (".cpp", ".hpp", ".cc", ".h", ".cxx", ".hxx")
HEADER_EXTS = (".hpp", ".h", ".hxx")

# ---------------------------------------------------------------------------
# Lexer: split each line into (code, comment) with string/char literals
# blanked out of the code channel. Handles //, /* */, "...", '...', and
# R"delim(...)delim" raw strings well enough for this codebase.


def strip_code_and_comments(text):
    """Return (code_lines, comment_lines): per-line code with comments and
    literal contents replaced by spaces, and per-line comment text."""
    code = []
    comments = []
    cur_code = []
    cur_comment = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_terminator = ""

    def endline():
        code.append("".join(cur_code))
        comments.append("".join(cur_comment))
        cur_code.clear()
        cur_comment.clear()

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            if state == "line_comment":
                state = "code"
            endline()
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                cur_code.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s"]*)\(', text[i:])
                if m:
                    raw_terminator = ")" + m.group(1) + '"'
                    state = "raw"
                    cur_code.append('"')
                    i += m.end()
                    continue
            if c == '"':
                state = "string"
                cur_code.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                cur_code.append("'")
                i += 1
                continue
            cur_code.append(c)
            i += 1
        elif state == "line_comment":
            cur_comment.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                cur_code.append("  ")
                i += 2
            else:
                cur_comment.append(c)
                i += 1
        elif state == "string":
            if c == "\\":
                cur_code.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                cur_code.append('"')
                i += 1
            else:
                cur_code.append(" ")
                i += 1
        elif state == "char":
            if c == "\\":
                cur_code.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                cur_code.append("'")
                i += 1
            else:
                cur_code.append(" ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_terminator, i):
                state = "code"
                cur_code.append('"')
                i += len(raw_terminator)
            else:
                cur_code.append(" " if c != "\n" else c)
                i += 1
    endline()
    return code, comments


# ---------------------------------------------------------------------------
# LINT-ALLOW processing: an allow suppresses its rule on its own line and on
# the next line that contains code (a multi-line explanation comment may sit
# between the allow and the statement it covers). Allows must carry a reason
# and must suppress something.


def apply_allows(findings, code_lines, comment_lines, known_rules):
    """Filter (line_idx, rule, message) findings through the LINT-ALLOW
    protocol. Returns the kept findings (unsorted), with malformed or unused
    allows reported under the 'lint-allow' rule."""

    def allow_targets(idx):
        targets = {idx}
        for j in range(idx + 1, min(idx + 8, len(code_lines))):
            if code_lines[j].strip():
                targets.add(j)
                break
        return targets

    allows = {}  # (line_idx, rule) -> [used]
    kept = []
    for idx, comment in enumerate(comment_lines):
        for m in ALLOW_RE.finditer(comment):
            rule, reason = m.group(1), m.group(2)
            if rule not in known_rules or rule == "lint-allow":
                # A rule some sibling analyzer owns is that analyzer's
                # business; only a rule no linter knows is an error here.
                if rule not in ALL_RULES:
                    kept.append((idx, "lint-allow", f"unknown rule '{rule}' in LINT-ALLOW"))
                continue
            if not reason or not reason.strip():
                kept.append((idx, "lint-allow",
                             f"LINT-ALLOW({rule}) without a reason; write "
                             f"'LINT-ALLOW({rule}): <why this site is exempt>'"))
                # Still suppress the target rule: the actionable diagnostic is
                # the missing reason, not a duplicate report of the finding.
                # Mark pre-used so it cannot also count as stale.
                allows[(idx, rule)] = [True]
                continue
            allows[(idx, rule)] = [False]

    covered = {}  # (target_line, rule) -> allow entry
    for (idx, rule), entry in allows.items():
        for target in allow_targets(idx):
            covered.setdefault((target, rule), entry)

    for idx, rule, msg in findings:
        entry = covered.get((idx, rule))
        if entry is not None:
            entry[0] = True
        else:
            kept.append((idx, rule, msg))
    for (idx, rule), entry in sorted(allows.items()):
        if not entry[0]:
            kept.append((idx, "lint-allow",
                         f"unused LINT-ALLOW({rule}): nothing on this or the next line "
                         "triggers that rule; remove the stale allow"))
    return kept


# ---------------------------------------------------------------------------
# Small parsing helpers shared by the rule scanners.


def match_angle(code, start):
    """code[start] == '<'; return index one past the matching '>'."""
    depth = 0
    i = start
    n = len(code)
    while i < n:
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":
            return i  # malformed / operator<; bail out
        i += 1
    return n


def range_for_heads(code_text):
    """Yield (offset, decl, range_expr) for every range-based for head."""
    for m in re.finditer(r"\bfor\s*\(", code_text):
        start = m.end() - 1
        depth = 0
        i = start
        n = len(code_text)
        while i < n:
            c = code_text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        head = code_text[start + 1:i]
        if ";" in head:
            continue  # classic for
        # Find the top-level ':' separator (skip '::' and bracket nests).
        d_par = d_ang = d_brk = 0
        sep = -1
        j = 0
        while j < len(head):
            c = head[j]
            if c == "(":
                d_par += 1
            elif c == ")":
                d_par -= 1
            elif c == "[":
                d_brk += 1
            elif c == "]":
                d_brk -= 1
            elif c == "<":
                d_ang += 1
            elif c == ">":
                d_ang = max(0, d_ang - 1)
            elif c == ":":
                if j + 1 < len(head) and head[j + 1] == ":":
                    j += 2
                    continue
                if d_par == d_ang == d_brk == 0:
                    sep = j
                    break
            j += 1
        if sep < 0:
            continue
        yield m.start(), head[:sep], head[sep + 1:]


# ---------------------------------------------------------------------------
# File discovery.


def walk_tree(root_dir, exts=CPP_EXTS):
    files = []
    for dirpath, _dirs, names in os.walk(root_dir):
        for name in names:
            if name.endswith(exts):
                files.append(os.path.abspath(os.path.join(dirpath, name)))
    return sorted(files)


def compile_db_files(compile_commands_path):
    """Absolute paths of every distinct translation unit in the database."""
    with open(compile_commands_path, encoding="utf-8") as f:
        db = json.load(f)
    seen = set()
    files = []
    for entry in db:
        p = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
        if p not in seen:
            seen.add(p)
            files.append(p)
    return files


def check_coverage(db_paths, root, subtree="src"):
    """The compile database must account for every .cpp under `subtree`:
    a source file that silently dropped out of the build (stale CMake glob,
    renamed file, dead TU) would otherwise be linted never rather than
    loudly. Returns a list of repo-relative uncovered .cpp paths."""
    covered = {os.path.abspath(p) for p in db_paths}
    uncovered = []
    for path in walk_tree(os.path.join(root, subtree)):
        if not path.endswith((".cpp", ".cc", ".cxx")):
            continue
        if path not in covered:
            uncovered.append(os.path.relpath(path, root).replace(os.sep, "/"))
    return sorted(uncovered)


def collect_files(args, root):
    """Shared file-discovery for determinism_lint/view_lint: explicit files,
    a compile database (library TUs + every src/ header, with the src/
    coverage check), or a source tree. Returns (files, coverage_errors)."""
    coverage_errors = []
    if args.files:
        files = [os.path.abspath(f) for f in args.files]
    elif args.compile_commands:
        files = compile_db_files(args.compile_commands)
        coverage_errors = check_coverage(files, root)
        # Headers do not appear in the database; lint the tree's headers too.
        seen = set(files)
        for p in walk_tree(os.path.join(root, "src"), HEADER_EXTS):
            if p not in seen:
                seen.add(p)
                files.append(p)
        if not args.all:
            files = [f for f in files
                     if os.path.relpath(f, root).replace(os.sep, "/").startswith("src/")]
    else:
        files = walk_tree(os.path.join(root, args.src_root))
    return sorted(files), coverage_errors


def default_root(tool_file):
    """Repo root assuming the tool lives in <root>/tools/lint/."""
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(tool_file))))
