#!/usr/bin/env python3
"""Borrowed-view invalidation linter.

The simulator's hot path hands schedulers zero-copy views (sim::ListView and
friends, DecisionContext, opt::ProblemView) over indexed engine state instead
of materialized snapshots. The lifetime contract (src/sim/views.hpp,
ARCHITECTURE.md "borrowed-view lifetimes") is: a view is valid only while the
container it borrows from is unmodified. The compiler cannot see that
contract - a stale view still dereferences *something* - so this linter
checks it statically, function by function.

Model (intra-procedural, heuristic by design):

  * Containers with maintained mutator lists:
        JobTable:     build, add_job, cancel, arrive, start, complete
        ClusterState: allocate, release
        EngineCore:   load, admit, cancel, step
    Container variables are found by declaration scan in the linted file and
    its companion header (same basename), so member containers like
    EngineCore's `table_` are known inside engine_core.cpp.
  * A view binding records its *sources*: the container variables (and,
    transitively, other views' sources) named in its initializer. A view
    built by an opaque call with no visible container (`context(t)`, a
    function parameter) has UNKNOWN sources and is treated as borrowing from
    every known container - conservative on purpose.
  * `recv.mutator(...)` / `recv->mutator(...)` invalidates every live view
    whose sources contain `recv`, and every UNKNOWN-source view when `recv`
    is a known container variable. A later use of the invalidated name is
    the finding. Rebinding/assignment revalidates with fresh sources.
  * A range-for iterating a view (or a fresh `container.x_view()` range)
    with a mutator call on a source container inside the loop body is
    reported at the mutation: the next iteration reads reshuffled state.

Escape hatches, both with mandatory reasons:
  `// VIEW-REFRESH: <why this view is fresh here>` sanctions a flagged use
    on its own or the next code line and revalidates the view from there -
    for sites that re-derive freshness in a way the heuristic cannot see.
    Reasonless or unused VIEW-REFRESH comments are `view-refresh` findings.
  `// LINT-ALLOW(view-invalidation): <reason>` suppresses one finding site
    without revalidating (lint_common protocol; stale allows are findings).

Rules: view-invalidation, view-refresh, lint-allow.

Usage mirrors determinism_lint.py:
  view_lint.py [--src-root src] [--compile-commands db.json] [files...]

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import bisect
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_common  # noqa: E402

RULES = {
    "view-invalidation": "borrowed view used after a source-container mutation",
    "view-refresh": "malformed or unused VIEW-REFRESH annotation",
    "lint-allow": "malformed or unused LINT-ALLOW",
}

CONTAINERS = {
    "JobTable": ("build", "add_job", "cancel", "arrive", "start", "complete"),
    "ClusterState": ("allocate", "release"),
    "EngineCore": ("load", "admit", "cancel", "step"),
}
MUTATORS = sorted({m for muts in CONTAINERS.values() for m in muts})

VIEW_TYPE_PAT = (
    r"(?:reasched::)?(?:sim::|opt::)?"
    r"(?:ListView\s*<[^;{}]*?>|JobListView|CompletedListView|AllocationListView"
    r"|DecisionContext|ProblemView)"
)
BIND_RE = re.compile(rf"\b(?:const\s+)?{VIEW_TYPE_PAT}\s*(?:&\s*)?(\w+)\s*(=(?!=)|\{{|;|,|\))")
CONT_NAMES = "|".join(CONTAINERS)
CONT_DECL_RE = re.compile(
    rf"\b(?:reasched::)?(?:sim::)?({CONT_NAMES})\b\s*(?:&\s*|\*\s*)?(\w+)\s*[;={{(,)]")
PTR_DECL_RE = re.compile(
    rf"\bunique_ptr\s*<\s*(?:reasched::)?(?:sim::)?({CONT_NAMES})\s*>\s*(\w+)")
MUT_RE = re.compile(rf"\b(\w+)\s*(?:\.|->)\s*({'|'.join(MUTATORS)})\s*\(")
ASSIGN_RE = re.compile(r"\b(\w+)\s*=(?![=<>])")
REFRESH_RE = re.compile(r"VIEW-REFRESH\s*(?::\s*(\S.*))?")

UNKNOWN = None  # sources sentinel: borrows from "some engine state"


class View:
    __slots__ = ("decl_depth", "sources", "valid", "inert",
                 "inv_line", "inv_desc", "scan_from", "reported")

    def __init__(self, decl_depth, sources, inert=False):
        self.decl_depth = decl_depth
        self.sources = sources  # frozenset of container vars, or UNKNOWN
        self.valid = True
        self.inert = inert  # default-constructed: holds nothing yet
        self.inv_line = self.inv_desc = None
        self.scan_from = 0
        self.reported = False


def container_vars_of(path, text_code):
    """Container-typed variable names declared in this file's code channel
    plus its companion header (foo.cpp <-> foo.hpp/.h), so .cpp member
    function bodies know the containers their class declares."""
    names = {}
    texts = [text_code]
    base, ext = os.path.splitext(path)
    if ext not in (".hpp", ".h", ".hxx"):
        for hext in (".hpp", ".h", ".hxx"):
            companion = base + hext
            if os.path.isfile(companion):
                with open(companion, encoding="utf-8", errors="replace") as f:
                    code_lines, _ = lint_common.strip_code_and_comments(f.read())
                texts.append("\n".join(code_lines))
                break
    for code in texts:
        for m in CONT_DECL_RE.finditer(code):
            names[m.group(2)] = m.group(1)
        for m in PTR_DECL_RE.finditer(code):
            names[m.group(2)] = m.group(1)
    return names


def statement_end(code, start):
    """Offset one past the ';' ending the statement at `start` (balance-aware
    for (), {}, [] so initializer lists and lambdas do not end early)."""
    depth = 0
    i = start
    n = len(code)
    while i < n:
        c = code[i]
        if c in "({[":
            depth += 1
        elif c in ")}]":
            depth -= 1
        elif c == ";" and depth <= 0:
            return i + 1
        i += 1
    return n


def init_sources(init_text, container_vars, views):
    """(sources, inert) for a view initializer: named containers plus the
    sources of any live view it derives from; opaque calls -> UNKNOWN."""
    ids = set(re.findall(r"[A-Za-z_]\w*", init_text))
    sources = {v for v in container_vars if v in ids}
    unknown = False
    derived = False
    for name, view in views.items():
        if name in ids and not view.inert:
            derived = True
            if view.sources is UNKNOWN:
                unknown = True
            else:
                sources.update(view.sources)
    if unknown:
        return UNKNOWN, False
    if sources:
        return frozenset(sources), False
    if "(" in init_text and (derived or ids):
        return UNKNOWN, False  # opaque producer call; assume engine state
    return frozenset(), True  # `{}` / empty: holds nothing


def body_span(code, head_off):
    """(start, end) offsets of a for-loop body whose head starts at the
    'for' keyword offset."""
    i = code.find("(", head_off)
    depth = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    j = i + 1
    while j < n and code[j] in " \t\n":
        j += 1
    if j < n and code[j] == "{":
        depth = 0
        k = j
        while k < n:
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
                if depth == 0:
                    return j, k + 1
            k += 1
        return j, n
    return j, statement_end(code, j)


def src_desc(sources):
    if sources is UNKNOWN:
        return "engine state via an opaque call"
    return "'" + "', '".join(sorted(sources)) + "'"


def lint_file(path, root):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    code_lines, comment_lines = lint_common.strip_code_and_comments(text)
    code = "\n".join(code_lines)
    line_starts = [0]
    for line in code_lines[:-1]:
        line_starts.append(line_starts[-1] + len(line) + 1)

    def line_of(off):
        return bisect.bisect_right(line_starts, off) - 1

    container_vars = container_vars_of(path, code)

    # VIEW-REFRESH annotations: refresh_lines maps a covered code line to its
    # annotation entry [used, ann_line]; same own-line + next-code-line
    # coverage as LINT-ALLOW.
    findings = []
    refresh_lines = {}
    refresh_entries = []
    for idx, comment in enumerate(comment_lines):
        m = REFRESH_RE.search(comment)
        if not m:
            continue
        reasonless = not m.group(1) or not m.group(1).strip()
        if reasonless and not comment.strip().startswith("VIEW-REFRESH"):
            continue  # prose mentioning the token, not an annotation
        if reasonless:
            findings.append((idx, "view-refresh",
                            "VIEW-REFRESH without a reason; write "
                            "'VIEW-REFRESH: <why the view is fresh here>'"))
        # A reasonless annotation still sanctions its target - the one
        # actionable diagnostic is the missing reason (same policy as
        # LINT-ALLOW) - so mark it pre-used; it cannot also count as stale.
        entry = [reasonless, idx]
        refresh_entries.append(entry)
        refresh_lines[idx] = entry
        for j in range(idx + 1, min(idx + 8, len(code_lines))):
            if code_lines[j].strip():
                refresh_lines.setdefault(j, entry)
                break

    # Event streams, merged by offset.
    events = []  # (offset, order, kind, payload)
    for m in re.finditer(r"[{}]", code):
        events.append((m.start(), 1, "brace", m.group()))
    bind_spans = []
    for m in BIND_RE.finditer(code):
        events.append((m.start(), 0, "bind", m))
        bind_spans.append((m.start(), m.end()))
    for m in MUT_RE.finditer(code):
        events.append((m.start(), 0, "mut", m))
    for m in ASSIGN_RE.finditer(code):
        if not any(s <= m.start() < e for s, e in bind_spans):
            events.append((m.start(), 0, "assign", m))
    loops = []  # (sources, body_start, body_end, range_desc) - filled lazily
    for off, _decl, range_expr in lint_common.range_for_heads(code):
        events.append((off, 0, "rfor", range_expr))
    events.sort(key=lambda e: (e[0], e[1]))

    views = {}
    depth = 0
    name_res = {}

    def uses_of(name):
        if name not in name_res:
            name_res[name] = re.compile(rf"(?<![.\w:>]){re.escape(name)}\b")
        return name_res[name]

    def flush(name, view, end_off):
        """Scan [scan_from, end_off) for uses of an invalidated view."""
        if view.valid or view.reported:
            view.scan_from = max(view.scan_from, end_off)
            return
        for m in uses_of(name).finditer(code, view.scan_from, end_off):
            line = line_of(m.start())
            entry = refresh_lines.get(line)
            if entry is not None:
                entry[0] = True
                view.valid = True
                view.inv_line = view.inv_desc = None
                break
            findings.append((line, "view-invalidation",
                             f"view '{name}' (borrowed from {src_desc(view.sources)}) "
                             f"used after '{view.inv_desc}' at line {view.inv_line + 1} "
                             "invalidated it; re-derive the view after the mutation, or "
                             "annotate a provably-fresh site with "
                             "// VIEW-REFRESH: <why>"))
            view.reported = True
            break
        view.scan_from = max(view.scan_from, end_off)

    def flush_all(end_off):
        for name, view in views.items():
            flush(name, view, end_off)

    for off, _order, kind, payload in events:
        flush_all(off)
        if kind == "brace":
            if payload == "{":
                depth += 1
            else:
                depth -= 1
                for name in [n for n, v in views.items() if v.decl_depth > depth]:
                    flush(name, views[name], off)
                    del views[name]
        elif kind == "bind":
            m = payload
            name, delim = m.group(1), m.group(2)
            if delim in (",", ")"):
                # Parameter only when this is a definition (a '{' body opens
                # before the next ';'): pure declarations bind nothing.
                next_semi = code.find(";", m.end())
                next_brace = code.find("{", m.end())
                if next_brace == -1 or (next_semi != -1 and next_semi < next_brace):
                    continue
                views[name] = View(depth + 1, UNKNOWN)
                views[name].scan_from = m.end()
            elif delim == ";":
                views[name] = View(depth, frozenset(), inert=True)
                views[name].scan_from = m.end()
            else:  # '=' or '{' initializer
                end = statement_end(code, m.end() - 1)
                sources, inert = init_sources(code[m.end() - 1:end], container_vars, views)
                views[name] = View(depth, sources, inert=inert)
                views[name].scan_from = end
                entry = refresh_lines.get(line_of(m.start()))
                if entry is not None:
                    entry[0] = True  # annotated re-derivation site
        elif kind == "assign":
            m = payload
            name = m.group(1)
            view = views.get(name)
            if view is None:
                continue
            end = statement_end(code, m.end())
            sources, inert = init_sources(code[m.end():end], container_vars, views)
            view.sources, view.inert = sources, inert
            view.valid, view.reported = True, False
            view.inv_line = view.inv_desc = None
            view.scan_from = end
            entry = refresh_lines.get(line_of(m.start()))
            if entry is not None:
                entry[0] = True
        elif kind == "rfor":
            range_expr = payload.strip()
            sources, inert = init_sources(range_expr, container_vars, views)
            if inert and sources is not UNKNOWN and not sources:
                # Plain vector/array iteration: check whether the range *is*
                # a view-producing call on a container we cannot name.
                if not re.search(r"_view\s*\(", range_expr):
                    continue
                sources = UNKNOWN
            loops.append((sources, *body_span(code, off)[0:2], range_expr))
        elif kind == "mut":
            m = payload
            recv, mut = m.group(1), m.group(2)
            known = recv in container_vars
            if not known and recv not in {s for v in views.values()
                                          if v.sources
                                          for s in v.sources} \
                    and not any(lp[0] is not UNKNOWN and recv in lp[0] for lp in loops):
                continue  # e.g. unique_ptr::release(), unrelated .start(...)
            line = line_of(m.start())
            desc = f"{recv}{'->' if '->' in m.group(0) else '.'}{mut}(...)"
            for view in views.values():
                if view.inert or not view.valid:
                    continue
                hit = (view.sources is UNKNOWN and known) or \
                      (view.sources is not UNKNOWN and recv in view.sources)
                if hit:
                    view.valid = False
                    view.inv_line, view.inv_desc = line, desc
                    view.reported = False
                    view.scan_from = max(view.scan_from, statement_end(code, m.start()))
            for sources, b_start, b_end, range_desc in loops:
                if not (b_start <= m.start() < b_end):
                    continue
                hit = (sources is UNKNOWN and known) or \
                      (sources is not UNKNOWN and recv in sources)
                if hit:
                    findings.append((line, "view-invalidation",
                                     f"'{desc}' mutates a container inside a range-for "
                                     f"over a view borrowed from it (`{range_desc}`); "
                                     "the loop's next dereference reads reshuffled "
                                     "state - break/return after the mutation or "
                                     "collect ids first and mutate after the loop"))
    flush_all(len(code))

    for used, idx in refresh_entries:
        if not used:
            findings.append((idx, "view-refresh",
                             "unused VIEW-REFRESH: no tracked view is re-derived or "
                             "read on this or the next code line; remove the stale "
                             "annotation"))

    rel = os.path.relpath(path, root).replace(os.sep, "/")
    out = []
    for idx, rule, msg in sorted(
            lint_common.apply_allows(findings, code_lines, comment_lines, RULES)):
        out.append(f"{rel}:{idx + 1}: [{rule}] {msg}")
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*", help="explicit files; default: tree walk")
    ap.add_argument("--src-root", default="src")
    ap.add_argument("--compile-commands", default=None)
    ap.add_argument("--all", action="store_true",
                    help="with --compile-commands, lint tests/apps TUs too")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to report")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rule, doc in sorted(RULES.items()):
            print(f"{rule:18s} {doc}")
        return 0

    rules = None
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = rules - set(RULES)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    root = lint_common.default_root(__file__)
    files, _coverage = lint_common.collect_files(args, root)

    n = 0
    for path in files:
        if not os.path.isfile(path):
            print(f"{path}: no such file", file=sys.stderr)
            return 2
        for line in lint_file(path, root):
            rule = line.split("[", 1)[1].split("]", 1)[0]
            if rules is not None and rule not in rules:
                continue
            print(line)
            n += 1
    if n:
        print(f"\n{n} finding(s) across {len(files)} file(s); "
              "see tools/lint/view_lint.py --list-rules", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
