#!/usr/bin/env python3
"""Tolerance-aware bench-regression gate.

Compares one or more current bench JSON files (flat {"metric": value}
objects produced by the scaling benches' --json flag) against the checked-in
baseline and fails on regressions:

    python3 tools/compare_bench.py --baseline BENCH_baseline.json \
        current_engine.json current_policy.json current_opt.json \
        [--tolerance 0.25] [--gate-suffix dec_per_s] [--gate-suffix jobs_per_s]

Gating rules
------------
* Only metrics whose name ends with a --gate-suffix (repeatable; default
  "dec_per_s", i.e. decisions/sec, higher is better - CI adds "jobs_per_s"
  for the workload-generation bench) are gated; anything else in the files
  is informational.
* A gated metric regresses when current < baseline * scale * (1 -
  tolerance), where scale is 1.0 by default. The default tolerance of 0.25
  is deliberately wide so the gate catches algorithmic slowdowns (the
  deliberate no-op-loop test commit trips it immediately), not jitter.
* With --calibrate (what CI uses), scale is the median over *per-family*
  medians of the current/baseline ratio, where a metric's family is its
  name up to the first '/' (engine/, policy/, opt/). The baseline values
  are machine-specific (generated on a reference dev machine), so raw
  comparison on a slower CI runner would false-fail everything; calibration
  makes the gate machine-independent and catches *selective* regressions.
  Taking the median of family medians - rather than of all metrics - stops
  the family with the most metrics (opt/ contributes 24 of 30) from
  dragging the scale with it: a uniform slowdown of one whole family still
  fails against the other families' scale. The residual blind spot is a
  change that slows a *majority of families* by the same factor - that is
  indistinguishable from a slower machine; the per-metric raw mode (no
  --calibrate) on a known machine covers it.
* A gated baseline metric missing from the current run fails too - a
  renamed or silently dropped bench metric must be an explicit baseline
  update, not a quiet gap in coverage.
* Metrics present only in the current run are reported (they become gated
  once added to the baseline).

Updating the baseline
---------------------
After an intentional perf change (or on a new reference machine), rebuild
Release, rerun the three scaling benches with --json, merge and commit:

    python3 tools/compare_bench.py --merge-to BENCH_baseline.json \
        current_engine.json current_policy.json current_opt.json
"""

import argparse
import json
import statistics
import sys


def load_merged(paths):
    merged = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        if not isinstance(data, dict):
            sys.exit(f"error: {path} is not a flat JSON object")
        for key, value in data.items():
            if key in merged:
                sys.exit(f"error: duplicate metric '{key}' (second copy in {path})")
            merged[key] = value
    return merged


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("current", nargs="+", help="bench --json output file(s)")
    parser.add_argument("--baseline", help="checked-in baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop on gated metrics (default 0.25)")
    parser.add_argument("--gate-suffix", action="append", default=None,
                        help="gate metrics whose name ends with this (repeatable; "
                             "default dec_per_s)")
    parser.add_argument("--calibrate", action="store_true",
                        help="rescale the baseline by the median of per-family median "
                             "current/baseline ratios before gating (machine-independent; "
                             "catches selective regressions - see docstring)")
    parser.add_argument("--merge-to", metavar="PATH",
                        help="write the merged current metrics to PATH and exit "
                             "(baseline regeneration)")
    args = parser.parse_args()

    current = load_merged(args.current)

    if args.merge_to:
        with open(args.merge_to, "w") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {len(current)} metric(s) to {args.merge_to}")
        return

    if not args.baseline:
        sys.exit("error: --baseline is required unless --merge-to is given")
    with open(args.baseline) as f:
        baseline = json.load(f)

    suffixes = args.gate_suffix or ["dec_per_s"]
    gated = lambda name: any(name.endswith(suffix) for suffix in suffixes)
    regressions, missing, ok = [], [], 0

    scale = 1.0
    if args.calibrate:
        family_ratios = {}
        for k in baseline:
            if gated(k) and k in current and float(baseline[k]) > 0.0:
                family_ratios.setdefault(k.split("/", 1)[0], []).append(
                    float(current[k]) / float(baseline[k]))
        if family_ratios:
            family_medians = {fam: statistics.median(rs) for fam, rs in family_ratios.items()}
            scale = statistics.median(family_medians.values())
            per_family = ", ".join(f"{fam}={m:.3f}" for fam, m in sorted(family_medians.items()))
            print(f"calibration: scale = {scale:.3f} (median of family medians: {per_family})\n")

    for name in sorted(baseline):
        if not gated(name):
            continue
        base = float(baseline[name])
        if name not in current:
            missing.append(name)
            continue
        cur = float(current[name])
        floor = base * scale * (1.0 - args.tolerance)
        status = "REGRESSION" if cur < floor else "ok"
        if cur < floor:
            regressions.append(name)
        else:
            ok += 1
        print(f"  {status:>10}  {name}: {cur:.1f} vs baseline {base:.1f} "
              f"(floor {floor:.1f}, {cur / (base * scale) - 1.0:+.1%} after calibration)")

    new = sorted(k for k in current if gated(k) and k not in baseline)
    for name in new:
        print(f"  {'new':>10}  {name}: {float(current[name]):.1f} (not in baseline)")

    print(f"\n{ok} gated metric(s) within tolerance, {len(regressions)} regression(s), "
          f"{len(missing)} missing, {len(new)} new")
    if missing:
        print("missing from current run (baseline out of date or bench metric dropped):")
        for name in missing:
            print(f"  {name}")
    if regressions or missing:
        sys.exit(1)


if __name__ == "__main__":
    main()
