#!/usr/bin/env python3
"""Structural validator for exported telemetry artifacts (stdlib only).

Checks that a Chrome trace-event JSON written by obs::TraceRecorder
(--obs-trace-out / --trace-out on the tools) actually loads the way
Perfetto and chrome://tracing will load it, and optionally that a
JSON-lines run log (--runlog-out) is one well-formed object per row:

    python3 tools/validate_trace.py service-trace.json \
        [--runlog service-runlog.jsonl] [--min-events 1] [--min-rows 0]

Trace rules (the subset of the trace-event format the exporter emits):
* top level is an object with a "traceEvents" array;
* every event is a complete ("ph": "X") event carrying string name/cat,
  numeric ts/dur (dur >= 0), integer pid/tid, and an "args" object.

Run-log rules: every line parses as a JSON object and all rows carry the
identical key set (the open()-time columns).

Exit status 0 on success; 1 with a one-line reason on the first violation.
CI runs this after the service-mode telemetry smoke so a malformed export
fails the build rather than a later interactive Perfetto load.
"""

from __future__ import annotations

import argparse
import json
import numbers
import sys


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}")
    sys.exit(1)


def check_trace(path: str, min_events: int) -> int:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: {exc}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not an array")
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        if ev.get("ph") != "X":
            fail(f"{where}: ph must be 'X' (complete event), got {ev.get('ph')!r}")
        for key in ("name", "cat"):
            if not isinstance(ev.get(key), str):
                fail(f"{where}: {key} must be a string")
        for key in ("ts", "dur"):
            if not isinstance(ev.get(key), numbers.Real):
                fail(f"{where}: {key} must be a number")
        if ev["dur"] < 0:
            fail(f"{where}: negative dur")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                fail(f"{where}: {key} must be an integer")
        if not isinstance(ev.get("args"), dict):
            fail(f"{where}: args must be an object")
    if len(events) < min_events:
        fail(f"{path}: {len(events)} event(s), expected at least {min_events}")
    return len(events)


def check_runlog(path: str, min_rows: int) -> int:
    columns = None
    rows = 0
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                if not line.strip():
                    fail(f"{path}:{lineno}: blank line in JSON-lines run log")
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    fail(f"{path}:{lineno}: {exc}")
                if not isinstance(row, dict):
                    fail(f"{path}:{lineno}: row is not an object")
                if columns is None:
                    columns = set(row)
                elif set(row) != columns:
                    fail(f"{path}:{lineno}: row keys differ from the first row's")
                rows += 1
    except OSError as exc:
        fail(f"{path}: {exc}")
    if rows < min_rows:
        fail(f"{path}: {rows} row(s), expected at least {min_rows}")
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--runlog", help="JSON-lines run log to validate too")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum traceEvents entries (default 1)")
    parser.add_argument("--min-rows", type=int, default=0,
                        help="minimum run-log rows (default 0)")
    args = parser.parse_args()

    n_events = check_trace(args.trace, args.min_events)
    summary = f"{args.trace}: {n_events} trace event(s) OK"
    if args.runlog:
        n_rows = check_runlog(args.runlog, args.min_rows)
        summary += f"; {args.runlog}: {n_rows} run-log row(s) OK"
    print(f"validate_trace: {summary}")


if __name__ == "__main__":
    main()
