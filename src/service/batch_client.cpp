#include "harness/experiment.hpp"

#include "core/react_agent.hpp"
#include "service/service_engine.hpp"

namespace reasched::harness {

// harness::run_method is *declared* in harness/experiment.hpp but *defined*
// here in the service layer: the batch harness is one client of the
// scheduling service (PR 8), and the layering contract (layer_lint.py) says
// service may include harness, never the reverse. The harness declares the
// seam; the layer that owns ServiceEngine binds it. Linking is unaffected -
// every binary that uses run_method links the one reasched archive.
RunOutcome run_method(const std::vector<sim::Job>& jobs, const MethodSpec& method,
                      std::uint64_t seed, const sim::EngineConfig& engine_config) {
  // The batch harness is one client of the scheduling service: a replay
  // session that loads the whole trace and drains it. ServiceEngine drives
  // the same sim::EngineCore steps sim::Engine::run performs, so batch
  // results are bit-identical to the pre-service harness (pinned by the
  // golden tests) while every harness run exercises the service path.
  service::ServiceConfig config;
  config.method = method;
  config.engine = engine_config;
  config.seed = seed;
  service::ServiceEngine session(config);

  service::DrainResult drained = session.replay(jobs);

  RunOutcome outcome;
  outcome.schedule = std::move(drained.schedule);
  outcome.metrics = drained.metrics;

  if (const auto* agent = dynamic_cast<const core::ReActAgent*>(&session.scheduler())) {
    OverheadSummary o;
    const llm::Transcript& t = agent->transcript();
    o.n_calls = t.n_calls();
    o.n_successful = t.n_successful();
    o.total_elapsed_s = t.total_elapsed_successful();
    o.latencies = t.successful_latencies();
    o.prompt_tokens = t.total_prompt_tokens();
    o.completion_tokens = t.total_completion_tokens();
    outcome.overhead = std::move(o);
  }
  return outcome;
}

}  // namespace reasched::harness
