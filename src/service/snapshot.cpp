#include "service/snapshot.hpp"

#include <fstream>
#include <sstream>

#include "service/protocol.hpp"
#include "util/json_parser.hpp"
#include "util/json_writer.hpp"
#include "util/string_utils.hpp"

namespace reasched::service {

namespace {

constexpr int kSnapshotVersion = 1;

const char* op_name(ServiceOp::Kind kind) {
  switch (kind) {
    case ServiceOp::Kind::kSubmit: return "submit";
    case ServiceOp::Kind::kCancel: return "cancel";
    case ServiceOp::Kind::kAdvance: return "advance";
    case ServiceOp::Kind::kDrain: return "drain";
    case ServiceOp::Kind::kReplay: return "replay";
  }
  return "?";  // unreachable
}

std::string digest_hex(std::uint64_t digest) {
  return util::format("%016llx", static_cast<unsigned long long>(digest));
}

double exact_number(const util::JsonValue& v, const char* key) {
  if (!v.contains(key) || !v.at(key).is_number()) {
    throw SnapshotError(util::format("snapshot: missing numeric field \"%s\"", key));
  }
  return v.at(key).as_number();
}

}  // namespace

std::string snapshot_to_json(const ServiceEngine& engine) {
  const ServiceConfig& config = engine.config();
  util::JsonWriter w;
  w.begin_object();
  w.kv("version", kSnapshotVersion);

  w.key("config").begin_object();
  w.kv("method", config.method.to_string());
  w.kv("seed", std::to_string(config.seed));
  w.key("engine").begin_object();
  w.kv("max_invalid_retries", config.engine.max_invalid_retries);
  w.kv("feedback_enabled", config.engine.feedback_enabled);
  w.kv("record_traces", config.engine.record_traces);
  w.kv("enforce_walltime", config.engine.enforce_walltime);
  w.key("cluster").begin_object();
  w.kv("total_nodes", config.engine.cluster.total_nodes);
  w.kv_exact("total_memory_gb", config.engine.cluster.total_memory_gb);
  w.kv_exact("watts_per_busy_node", config.engine.cluster.watts_per_busy_node);
  w.kv_exact("watts_per_idle_node", config.engine.cluster.watts_per_idle_node);
  w.end_object();
  w.end_object();
  w.key("stream").begin_object();
  w.kv("scenario", config.stream.scenario.to_string());
  w.kv("batch_jobs", config.stream.batch_jobs);
  w.kv("max_batches", config.stream.max_batches);
  w.kv_exact("rate_scale", config.stream.rate_scale);
  w.end_object();
  w.end_object();

  w.key("ops").begin_array();
  for (const ServiceOp& op : engine.ops()) {
    w.begin_object();
    w.kv("op", op_name(op.kind));
    switch (op.kind) {
      case ServiceOp::Kind::kSubmit:
        w.key("job");
        job_to_json(w, op.job);
        break;
      case ServiceOp::Kind::kCancel: w.kv("id", op.id); break;
      case ServiceOp::Kind::kAdvance: w.kv_exact("to", op.to); break;
      case ServiceOp::Kind::kDrain: break;
      case ServiceOp::Kind::kReplay:
        w.key("jobs").begin_array();
        for (const sim::Job& j : op.jobs) job_to_json(w, j);
        w.end_array();
        break;
    }
    w.end_object();
  }
  w.end_array();

  w.kv("digest", digest_hex(engine.state_digest()));
  w.end_object();
  return w.str();
}

void save_snapshot(const ServiceEngine& engine, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw SnapshotError("snapshot: cannot open " + path + " for writing");
  f << snapshot_to_json(engine) << '\n';
  if (!f) throw SnapshotError("snapshot: write to " + path + " failed");
}

std::unique_ptr<ServiceEngine> restore_snapshot_text(const std::string& json) {
  util::JsonValue doc;
  try {
    doc = util::parse_json(json);
  } catch (const std::exception& e) {
    throw SnapshotError(util::format("snapshot: invalid JSON (%s)", e.what()));
  }
  if (!doc.is_object()) throw SnapshotError("snapshot: expected a JSON object");
  const double version = exact_number(doc, "version");
  if (version != kSnapshotVersion) {
    throw SnapshotError(util::format("snapshot: unsupported version %g", version));
  }
  if (!doc.contains("config") || !doc.at("config").is_object()) {
    throw SnapshotError("snapshot: missing \"config\" object");
  }
  const util::JsonValue& cfg = doc.at("config");

  ServiceConfig config;
  try {
    config.method = harness::MethodSpec::parse(cfg.at("method").as_string());
    config.seed = std::stoull(cfg.at("seed").as_string());
    const util::JsonValue& eng = cfg.at("engine");
    config.engine.max_invalid_retries = static_cast<int>(exact_number(eng, "max_invalid_retries"));
    config.engine.feedback_enabled = eng.at("feedback_enabled").as_bool();
    config.engine.record_traces = eng.at("record_traces").as_bool();
    config.engine.enforce_walltime = eng.at("enforce_walltime").as_bool();
    const util::JsonValue& cluster = eng.at("cluster");
    config.engine.cluster.total_nodes = static_cast<int>(exact_number(cluster, "total_nodes"));
    config.engine.cluster.total_memory_gb = exact_number(cluster, "total_memory_gb");
    config.engine.cluster.watts_per_busy_node = exact_number(cluster, "watts_per_busy_node");
    config.engine.cluster.watts_per_idle_node = exact_number(cluster, "watts_per_idle_node");
    const util::JsonValue& stream = cfg.at("stream");
    const auto batch_jobs = static_cast<std::size_t>(exact_number(stream, "batch_jobs"));
    if (batch_jobs > 0) {
      config.stream = workload::make_stream_spec(
          stream.at("scenario").as_string(), batch_jobs,
          static_cast<std::size_t>(exact_number(stream, "max_batches")),
          exact_number(stream, "rate_scale"));
    }
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& e) {
    throw SnapshotError(util::format("snapshot: bad config (%s)", e.what()));
  }

  auto engine = std::make_unique<ServiceEngine>(config);

  if (!doc.contains("ops") || !doc.at("ops").is_array()) {
    throw SnapshotError("snapshot: missing \"ops\" array");
  }
  const util::JsonValue::Array& ops = doc.at("ops").as_array();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const util::JsonValue& entry = ops[i];
    ServiceOp op;
    try {
      const std::string& kind = entry.at("op").as_string();
      if (kind == "submit") {
        op.kind = ServiceOp::Kind::kSubmit;
        op.job = job_from_json(entry.at("job"));
      } else if (kind == "cancel") {
        op.kind = ServiceOp::Kind::kCancel;
        op.id = static_cast<sim::JobId>(exact_number(entry, "id"));
      } else if (kind == "advance") {
        op.kind = ServiceOp::Kind::kAdvance;
        op.to = exact_number(entry, "to");
      } else if (kind == "drain") {
        op.kind = ServiceOp::Kind::kDrain;
      } else if (kind == "replay") {
        op.kind = ServiceOp::Kind::kReplay;
        for (const util::JsonValue& j : entry.at("jobs").as_array()) {
          op.jobs.push_back(job_from_json(j));
        }
      } else {
        throw SnapshotError(util::format("snapshot: unknown op \"%s\"", kind.c_str()));
      }
      engine->apply(op);
    } catch (const SnapshotError&) {
      throw;
    } catch (const std::exception& e) {
      throw SnapshotError(
          util::format("snapshot: replay of op %zu failed (%s)", i, e.what()));
    }
  }

  if (!doc.contains("digest") || !doc.at("digest").is_string()) {
    throw SnapshotError("snapshot: missing \"digest\"");
  }
  const std::string recomputed = digest_hex(engine->state_digest());
  const std::string& stored = doc.at("digest").as_string();
  if (recomputed != stored) {
    throw SnapshotError(util::format(
        "snapshot: digest mismatch after replay (stored %s, recomputed %s) - the restoring "
        "build does not reproduce the checkpointed session bit-for-bit",
        stored.c_str(), recomputed.c_str()));
  }
  return engine;
}

std::unique_ptr<ServiceEngine> load_snapshot(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw SnapshotError("snapshot: cannot open " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return restore_snapshot_text(buffer.str());
}

}  // namespace reasched::service
