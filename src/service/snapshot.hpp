#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "service/service_engine.hpp"

namespace reasched::service {

/// Checkpoint/restart via deterministic replay. A snapshot is NOT a dump of
/// engine internals: it is the ServiceConfig plus the logged operation
/// sequence plus a digest of the observable state. Restore rebuilds a fresh
/// ServiceEngine from the config, re-applies every op, and verifies the
/// recomputed digest against the stored one - bit-identical by construction,
/// because every component (engine, schedulers, solvers, workload
/// generation) is deterministic (the determinism lint enforces this
/// statically; the checkpoint golden test enforces it dynamically).
///
/// This model sidesteps serializing arbitrary scheduler/solver internals at
/// the cost of replay time proportional to the session so far - the right
/// trade for scheduling sessions, where ops are few and decisions are
/// cheap. Limitation: methods must be deterministic; a live HTTP LLM client
/// (llm/http_client) cannot be checkpointed this way (the simulated-profile
/// agents can - their latency/decision draws are seeded).
///
/// All doubles travel round-trip exact (util::format_double_exact); the
/// seed travels as a decimal string (JSON numbers cannot hold a full
/// uint64).

/// Malformed snapshot: bad JSON, unsupported version, or - the important
/// one - a digest mismatch after replay, meaning the restoring build does
/// not reproduce the checkpointed session bit-for-bit.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialize the session (config + op log + state digest) as one JSON doc.
std::string snapshot_to_json(const ServiceEngine& engine);

/// snapshot_to_json + write to `path`; throws SnapshotError on I/O failure.
void save_snapshot(const ServiceEngine& engine, const std::string& path);

/// Rebuild a session from snapshot text: construct from the embedded
/// config, re-apply every op, verify the digest. Throws SnapshotError on
/// malformed input or digest mismatch.
std::unique_ptr<ServiceEngine> restore_snapshot_text(const std::string& json);

/// Read `path` and restore_snapshot_text it.
std::unique_ptr<ServiceEngine> load_snapshot(const std::string& path);

}  // namespace reasched::service
