#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "harness/method_spec.hpp"
#include "metrics/metrics.hpp"
#include "obs/runlog.hpp"
#include "sim/engine_core.hpp"
#include "workload/arrival_stream.hpp"

namespace reasched::service {

/// Everything needed to (re)build a service session from scratch: the
/// scheduling method, the engine knobs, the root seed and the optional
/// arrival stream. A snapshot is exactly this config plus the op log - the
/// deterministic-replay checkpoint model (see snapshot.hpp).
struct ServiceConfig {
  harness::MethodSpec method = harness::Method::kFcfs;
  sim::EngineConfig engine;
  std::uint64_t seed = 0;
  /// Streamed arrival source; `stream.batch_jobs == 0` means none (clients
  /// submit every job). The engine runs on
  /// `workload::effective_cluster(stream.scenario, engine.cluster)` so
  /// `cluster?...` pipeline overrides behave exactly as in the batch sweep.
  workload::StreamSpec stream;
};

/// One logged client operation. The op log is the mutable half of a
/// checkpoint: replaying it against a fresh ServiceEngine built from the
/// same ServiceConfig reproduces the session bit-for-bit (every component -
/// engine, schedulers, solvers, generators - is deterministic, which the
/// determinism lint enforces statically).
struct ServiceOp {
  enum class Kind { kSubmit, kCancel, kAdvance, kDrain, kReplay };
  Kind kind = Kind::kSubmit;
  sim::Job job;                ///< kSubmit (post-normalization: id assigned)
  std::vector<sim::Job> jobs;  ///< kReplay
  sim::JobId id = 0;           ///< kCancel
  double to = 0.0;             ///< kAdvance
};

/// Aggregate session counters for `query` responses and smoke checks.
struct ServiceStatus {
  double clock = 0.0;       ///< advance watermark (client time)
  double engine_now = 0.0;  ///< last processed event time
  std::uint64_t steps = 0;
  std::size_t n_admitted = 0;  ///< jobs the engine knows (any state)
  std::size_t n_buffered = 0;  ///< accepted, not yet handed to the engine
  std::size_t n_waiting = 0;
  std::size_t n_running = 0;
  std::size_t n_completed = 0;
  std::size_t n_cancelled = 0;
  std::size_t n_decisions = 0;
  std::size_t stream_emitted = 0;
  bool drained = false;
};

/// Result of drain()/replay(): the finished schedule plus its metrics -
/// what the batch harness consumes.
struct DrainResult {
  metrics::MetricSet metrics;
  sim::ScheduleResult schedule;
};

/// The online scheduling session: an RJMS-shaped facade over
/// sim::EngineCore. Clients submit/cancel jobs and advance simulated time;
/// a configured ArrivalStream feeds additional jobs as the clock moves. All
/// externally-visible mutations go through the five logged operations
/// (submit, cancel, advance, drain, replay), which is what makes
/// checkpoint/restart exact: config + op log fully determine the state.
///
/// Ordering contract: the engine's job table appends in arrival order, so
/// the service holds accepted jobs in a (submit_time, id)-ordered buffer
/// and only admits them to the engine when the clock passes their submit
/// time. External submissions are normalized to `submit_time >= clock`;
/// client-chosen ids that would land behind the admission watermark are
/// rejected at submit (choose a larger id or let the service assign one).
/// Dependencies must reference already-accepted, non-cancelled jobs
/// (backward in arrival order) - arbitrary forward DAGs remain a
/// batch-mode (replay) feature.
class ServiceEngine {
 public:
  explicit ServiceEngine(ServiceConfig config);

  /// Accept one job. `job.id == 0` lets the service assign the next id;
  /// a non-zero id is kept (replay fidelity) if unused and ahead of the
  /// admission watermark. `submit_time` is clamped up to the clock. Returns
  /// the assigned id. Throws std::invalid_argument on malformed jobs,
  /// duplicate ids, capacity-impossible requests or bad dependencies.
  sim::JobId submit(sim::Job job);

  /// Withdraw `id` and, transitively, every dependent that can no longer
  /// run - whether buffered or already inside the engine. Returns the
  /// cancelled ids (empty when the job is running/completed/already
  /// cancelled: nothing changes). Throws for unknown ids.
  std::vector<sim::JobId> cancel(sim::JobId id);

  /// Advance simulated time to `t` (monotone): pump stream arrivals with
  /// submit_time <= t, admit buffered jobs, process every event up to t.
  /// Jobs left waiting stay queued for the next advance - with a live
  /// session the engine never forces livelock starts.
  void advance_to(double t);

  /// Run the session to completion: flush the entire stream and buffer,
  /// drop the more-arrivals hint (Stop becomes legal, the terminal query
  /// fires) and step until no events remain. Batch-equivalent: a drain of
  /// jobs submitted at clock 0 executes the identical per-step code path
  /// as sim::Engine::run over the same jobs. Throws std::logic_error on
  /// endless streams (max_batches == 0). The session becomes kDrained.
  DrainResult drain();

  /// Batch client entry: load `jobs` wholesale (arbitrary DAGs, exactly
  /// Engine::run's validation) and drain. Legal only as the first
  /// operation of a stream-less session. This is how harness::run_method
  /// is expressed as one client of the service.
  DrainResult replay(const std::vector<sim::Job>& jobs);

  /// Re-apply one logged operation (snapshot restore path).
  void apply(const ServiceOp& op);

  ServiceStatus status() const;
  /// Lifecycle of a job the service knows; throws for unknown ids.
  sim::JobState job_state(sim::JobId id) const;

  // LINT-ALLOW(wallclock): session-clock accessor declaration, not C clock()
  double clock() const { return clock_; }
  bool drained() const { return drained_; }
  const ServiceConfig& config() const { return config_; }
  const std::vector<ServiceOp>& ops() const { return ops_; }
  const sim::EngineCore& core() const { return *core_; }
  const sim::Scheduler& scheduler() const { return *scheduler_; }
  /// The cluster the engine actually runs (stream `cluster?...` overrides
  /// applied).
  const sim::ClusterSpec& effective_cluster() const { return engine_config_.cluster; }
  /// Accepted-but-not-admitted jobs in admission ((submit_time, id)) order.
  const std::map<std::pair<double, sim::JobId>, sim::Job>& buffered() const { return buffer_; }
  /// Every cancellation the session performed, in application order.
  const std::vector<sim::JobId>& cancelled_log() const { return cancelled_log_; }
  /// Schedule state for traces: the drained outcome when finished, the
  /// engine's in-progress result otherwise.
  const sim::ScheduleResult& schedule_view() const;

  /// FNV-1a 64 digest over the observable session state (clock, buffer,
  /// job table, pending events, running allocations, result records; all
  /// doubles hashed by bit pattern). Two sessions with equal digests have
  /// executed bit-identically; snapshots store it and restore verifies it.
  /// Telemetry state is deliberately excluded: observability must never
  /// alter what two sessions consider "identical".
  std::uint64_t state_digest() const;

  /// Publish the current session state (clock, queue depths, decision
  /// counters, the scheduler's own counters) as gauges in the global
  /// metric registry - the live half of a `stats` response. Works whether
  /// or not obs::enabled(): an explicit stats request implies the caller
  /// wants a snapshot. Observe-only; session state is untouched.
  void publish_obs() const;

  /// Attach a streaming run log: one row per newly completed job, appended
  /// as advances/drains complete (see obs::RunLog for the degrade-on-failure
  /// contract). Pass nullptr to detach.
  void set_runlog(std::shared_ptr<obs::RunLog> runlog) { runlog_ = std::move(runlog); }
  /// Columns of the per-completion run-log rows.
  static std::vector<std::string> runlog_columns();

 private:
  void ensure_accepting(const char* op) const;
  bool known_id(sim::JobId id) const;
  void pump_stream(double t);
  void flush_buffer(double t);
  void cascade_buffer_cancel(std::vector<sim::JobId>& cancelled);
  DrainResult finish_drain();
  /// Append run-log rows for completions past runlog_emitted_ (observe-only;
  /// called after advances and before finish() moves the result out).
  void emit_runlog_rows(const sim::ScheduleResult& result);

  ServiceConfig config_;
  sim::EngineConfig engine_config_;  ///< config_.engine with effective cluster
  std::unique_ptr<sim::Scheduler> scheduler_;
  std::unique_ptr<sim::EngineCore> core_;
  std::optional<workload::ArrivalStream> stream_;
  /// Stream-internal id -> assigned global id (dependency remapping).
  std::map<sim::JobId, sim::JobId> stream_to_global_;

  std::map<std::pair<double, sim::JobId>, sim::Job> buffer_;
  std::map<sim::JobId, double> buffered_ids_;  ///< id -> buffered submit time
  std::set<sim::JobId> cancelled_ids_;
  std::vector<sim::JobId> cancelled_log_;
  std::pair<double, sim::JobId> admit_watermark_{-1.0, 0};

  std::vector<ServiceOp> ops_;
  std::optional<DrainResult> outcome_;
  double clock_ = 0.0;
  sim::JobId next_id_ = 1;
  bool drained_ = false;

  /// Streaming run log (optional; telemetry only - absent from the digest
  /// and the op log by design).
  std::shared_ptr<obs::RunLog> runlog_;
  std::size_t runlog_emitted_ = 0;  ///< completions already written
};

}  // namespace reasched::service
