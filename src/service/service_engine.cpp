#include "service/service_engine.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

#include "harness/methods.hpp"
#include "obs/metrics_registry.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"

namespace reasched::service {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Streaming FNV-1a 64 over 8-byte words (doubles fed by bit pattern).
class Digest {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 1099511628211ull;
    }
  }
  void mix(double d) { mix(std::bit_cast<std::uint64_t>(d)); }
  void mix(sim::JobId id) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(id))); }
  void mix(bool b) { mix(static_cast<std::uint64_t>(b ? 1 : 0)); }
  void mix(const std::string& s) {
    mix(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 1099511628211ull;
    }
  }
  void mix_job(const sim::Job& j) {
    mix(j.id);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(j.user)));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(j.group)));
    mix(j.submit_time);
    mix(j.duration);
    mix(j.walltime);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(j.nodes)));
    mix(j.memory_gb);
    mix(static_cast<std::uint64_t>(j.dependencies.size()));
    for (const sim::JobId dep : j.dependencies) mix(dep);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};

}  // namespace

ServiceEngine::ServiceEngine(ServiceConfig config)
    : config_(std::move(config)), engine_config_(config_.engine) {
  if (config_.stream.batch_jobs > 0) {
    engine_config_.cluster =
        workload::effective_cluster(config_.stream.scenario, config_.engine.cluster);
  }
  scheduler_ = harness::make_scheduler(config_.method, config_.seed);
  core_ = std::make_unique<sim::EngineCore>(engine_config_, *scheduler_);
  if (config_.stream.batch_jobs > 0) {
    workload::GenerateOptions options;
    options.cluster = engine_config_.cluster;
    stream_.emplace(config_.stream, util::derive_seed(config_.seed, "stream"), options);
  }
}

void ServiceEngine::ensure_accepting(const char* op) const {
  if (drained_) {
    throw std::logic_error(util::format("ServiceEngine: %s on a drained session", op));
  }
}

bool ServiceEngine::known_id(sim::JobId id) const {
  return buffered_ids_.count(id) != 0 || cancelled_ids_.count(id) != 0 ||
         core_->table().contains(id);
}

sim::JobId ServiceEngine::submit(sim::Job job) {
  ensure_accepting("submit");
  if (job.id == 0) job.id = next_id_;
  if (job.id < 0) {
    throw std::invalid_argument(util::format("ServiceEngine: negative job id %d", job.id));
  }
  if (known_id(job.id)) {
    throw std::invalid_argument(util::format("ServiceEngine: duplicate job id %d", job.id));
  }
  if (!job.valid()) {
    throw std::invalid_argument(util::format("ServiceEngine: job %d is malformed", job.id));
  }
  if (!core_->cluster().fits_empty(job)) {
    throw std::invalid_argument(util::format(
        "ServiceEngine: job %d requests %d nodes / %.0f GB, exceeding cluster capacity", job.id,
        job.nodes, job.memory_gb));
  }
  job.submit_time = std::max(job.submit_time, clock_);
  const std::pair<double, sim::JobId> key{job.submit_time, job.id};
  if (key <= admit_watermark_) {
    throw std::invalid_argument(util::format(
        "ServiceEngine: job %d (submit %.3f) is behind the admission watermark; omit the id or "
        "choose one past every admitted job",
        job.id, job.submit_time));
  }
  for (const sim::JobId dep : job.dependencies) {
    if (dep == job.id) {
      throw std::invalid_argument(util::format("ServiceEngine: job %d depends on itself", job.id));
    }
    if (cancelled_ids_.count(dep) != 0) {
      throw std::invalid_argument(
          util::format("ServiceEngine: job %d depends on cancelled job %d", job.id, dep));
    }
    if (const auto it = buffered_ids_.find(dep); it != buffered_ids_.end()) {
      if (std::pair<double, sim::JobId>{it->second, dep} >= key) {
        throw std::invalid_argument(util::format(
            "ServiceEngine: job %d depends on job %d, which is not earlier in arrival order "
            "(forward dependencies are a batch replay feature)",
            job.id, dep));
      }
    } else if (!core_->table().contains(dep)) {
      throw std::invalid_argument(
          util::format("ServiceEngine: job %d depends on unknown job %d", job.id, dep));
    }
  }
  next_id_ = std::max(next_id_, job.id + 1);
  buffered_ids_.emplace(job.id, job.submit_time);
  ServiceOp op;
  op.kind = ServiceOp::Kind::kSubmit;
  op.job = job;
  ops_.push_back(op);
  const sim::JobId id = job.id;
  buffer_.emplace(key, std::move(job));
  return id;
}

void ServiceEngine::cascade_buffer_cancel(std::vector<sim::JobId>& cancelled) {
  std::set<sim::JobId> dead(cancelled.begin(), cancelled.end());
  bool changed = !dead.empty();
  while (changed) {
    changed = false;
    for (auto it = buffer_.begin(); it != buffer_.end();) {
      const sim::Job& j = it->second;
      const bool hit = std::any_of(j.dependencies.begin(), j.dependencies.end(),
                                   [&](sim::JobId dep) { return dead.count(dep) != 0; });
      if (hit) {
        dead.insert(j.id);
        cancelled.push_back(j.id);
        buffered_ids_.erase(j.id);
        it = buffer_.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
}

std::vector<sim::JobId> ServiceEngine::cancel(sim::JobId id) {
  ensure_accepting("cancel");
  std::vector<sim::JobId> cancelled;
  if (const auto it = buffered_ids_.find(id); it != buffered_ids_.end()) {
    buffer_.erase({it->second, id});
    buffered_ids_.erase(it);
    cancelled.push_back(id);
  } else if (core_->table().contains(id)) {
    cancelled = core_->cancel(id);
  } else if (cancelled_ids_.count(id) == 0) {
    throw std::invalid_argument(util::format("ServiceEngine: cancel of unknown job %d", id));
  }
  cascade_buffer_cancel(cancelled);
  for (const sim::JobId c : cancelled) {
    cancelled_ids_.insert(c);
    cancelled_log_.push_back(c);
  }
  ServiceOp op;
  op.kind = ServiceOp::Kind::kCancel;
  op.id = id;
  ops_.push_back(op);
  return cancelled;
}

void ServiceEngine::pump_stream(double t) {
  if (!stream_) return;
  while (const sim::Job* peeked = stream_->peek()) {
    if (peeked->submit_time > t) break;
    sim::Job j = stream_->pop();
    const sim::JobId stream_id = j.id;
    j.id = next_id_++;
    stream_to_global_.emplace(stream_id, j.id);
    bool dep_cancelled = false;
    for (sim::JobId& dep : j.dependencies) {
      dep = stream_to_global_.at(dep);  // backward-only: always pumped earlier
      if (cancelled_ids_.count(dep) != 0) dep_cancelled = true;
    }
    if (dep_cancelled) {
      // A client cancelled an ancestor before this emission was pumped: the
      // job can never run, so it is cancelled on arrival.
      cancelled_ids_.insert(j.id);
      cancelled_log_.push_back(j.id);
      continue;
    }
    buffered_ids_.emplace(j.id, j.submit_time);
    buffer_.emplace(std::pair<double, sim::JobId>{j.submit_time, j.id}, std::move(j));
  }
}

void ServiceEngine::flush_buffer(double t) {
  while (!buffer_.empty() && buffer_.begin()->first.first <= t) {
    const auto it = buffer_.begin();
    core_->admit(it->second);
    admit_watermark_ = it->first;
    buffered_ids_.erase(it->first.second);
    buffer_.erase(it);
  }
}

void ServiceEngine::advance_to(double t) {
  ensure_accepting("advance");
  if (t < clock_) {
    throw std::invalid_argument(
        util::format("ServiceEngine: advance to %.3f behind the clock %.3f", t, clock_));
  }
  clock_ = t;
  pump_stream(t);
  flush_buffer(t);
  core_->set_more_arrivals_hint(true);
  while (core_->has_events() && core_->next_event_time() <= t) {
    core_->step();
  }
  ServiceOp op;
  op.kind = ServiceOp::Kind::kAdvance;
  op.to = t;
  ops_.push_back(op);
  emit_runlog_rows(core_->result());
}

DrainResult ServiceEngine::finish_drain() {
  core_->set_more_arrivals_hint(false);
  while (core_->step()) {
  }
  // Rows must go out before finish() moves the result and re-sorts
  // completions into job-id order - the run log streams completion order.
  emit_runlog_rows(core_->result());
  DrainResult out;
  out.schedule = core_->finish();
  clock_ = std::max(clock_, out.schedule.final_time);
  if (!out.schedule.completed.empty()) {
    out.metrics = metrics::compute_metrics(out.schedule, engine_config_.cluster);
  }
  drained_ = true;
  outcome_ = std::move(out);
  return *outcome_;
}

DrainResult ServiceEngine::drain() {
  ensure_accepting("drain");
  if (stream_ && stream_->endless()) {
    throw std::logic_error(
        "ServiceEngine: drain of an endless stream (max_batches=0) would never terminate");
  }
  pump_stream(kInf);
  flush_buffer(kInf);
  ServiceOp op;
  op.kind = ServiceOp::Kind::kDrain;
  ops_.push_back(op);
  return finish_drain();
}

DrainResult ServiceEngine::replay(const std::vector<sim::Job>& jobs) {
  ensure_accepting("replay");
  if (!ops_.empty() || stream_.has_value()) {
    throw std::logic_error(
        "ServiceEngine: replay must be the first operation of a stream-less session");
  }
  sim::validate_jobs(jobs, engine_config_.cluster);
  core_->load(jobs);
  for (const sim::Job& j : jobs) next_id_ = std::max(next_id_, j.id + 1);
  ServiceOp op;
  op.kind = ServiceOp::Kind::kReplay;
  op.jobs = jobs;
  ops_.push_back(std::move(op));
  return finish_drain();
}

void ServiceEngine::apply(const ServiceOp& op) {
  switch (op.kind) {
    case ServiceOp::Kind::kSubmit: submit(op.job); break;
    case ServiceOp::Kind::kCancel: cancel(op.id); break;
    case ServiceOp::Kind::kAdvance: advance_to(op.to); break;
    case ServiceOp::Kind::kDrain: drain(); break;
    case ServiceOp::Kind::kReplay: replay(op.jobs); break;
  }
}

const sim::ScheduleResult& ServiceEngine::schedule_view() const {
  return drained_ ? outcome_->schedule : core_->result();
}

ServiceStatus ServiceEngine::status() const {
  ServiceStatus s;
  s.clock = clock_;
  s.engine_now = core_->now();
  s.steps = core_->steps();
  s.n_admitted = core_->table().size();
  s.n_buffered = buffer_.size();
  s.n_waiting = core_->table().n_waiting();
  s.n_running = core_->cluster().running_count();
  s.n_completed = schedule_view().completed.size();
  s.n_cancelled = cancelled_log_.size();
  s.n_decisions = schedule_view().n_decisions;
  s.stream_emitted = stream_ ? stream_->emitted() : 0;
  s.drained = drained_;
  return s;
}

sim::JobState ServiceEngine::job_state(sim::JobId id) const {
  if (buffered_ids_.count(id) != 0) return sim::JobState::kPending;
  if (core_->table().contains(id)) return core_->table().state(id);
  if (cancelled_ids_.count(id) != 0) return sim::JobState::kCancelled;
  throw std::invalid_argument(util::format("ServiceEngine: query of unknown job %d", id));
}

std::vector<std::string> ServiceEngine::runlog_columns() {
  return {"job_id", "submit_time", "start_time", "end_time",
          "wait",   "turnaround",  "nodes",      "killed_at_walltime"};
}

void ServiceEngine::emit_runlog_rows(const sim::ScheduleResult& result) {
  if (runlog_ == nullptr) return;
  for (std::size_t i = runlog_emitted_; i < result.completed.size(); ++i) {
    const sim::CompletedJob& c = result.completed[i];
    runlog_->append({std::to_string(c.job.id), util::format_double_exact(c.job.submit_time),
                     util::format_double_exact(c.start_time),
                     util::format_double_exact(c.end_time),
                     util::format_double_exact(c.wait_time()),
                     util::format_double_exact(c.turnaround_time()), std::to_string(c.job.nodes),
                     c.killed_at_walltime ? "1" : "0"});
  }
  runlog_emitted_ = result.completed.size();
  runlog_->flush();
}

void ServiceEngine::publish_obs() const {
  // Exact engine counters at the stats boundary (the hot path flushes only
  // at sampled steps).
  core_->flush_obs();
  obs::MetricRegistry& reg = obs::MetricRegistry::global();
  const ServiceStatus s = status();
  reg.gauge("service/clock").set(s.clock);
  reg.gauge("service/now").set(s.engine_now);
  reg.gauge("service/steps").set(static_cast<double>(s.steps));
  reg.gauge("service/admitted").set(static_cast<double>(s.n_admitted));
  reg.gauge("service/buffered").set(static_cast<double>(s.n_buffered));
  reg.gauge("service/waiting").set(static_cast<double>(s.n_waiting));
  reg.gauge("service/running").set(static_cast<double>(s.n_running));
  reg.gauge("service/completed").set(static_cast<double>(s.n_completed));
  reg.gauge("service/cancelled").set(static_cast<double>(s.n_cancelled));
  reg.gauge("service/decisions").set(static_cast<double>(s.n_decisions));
  reg.gauge("service/stream_emitted").set(static_cast<double>(s.stream_emitted));
  reg.gauge("service/drained").set(s.drained ? 1.0 : 0.0);
  if (runlog_ != nullptr) {
    reg.gauge("service/runlog_rows").set(static_cast<double>(runlog_->rows()));
    reg.gauge("service/runlog_dropped").set(static_cast<double>(runlog_->dropped()));
  }
  for (const auto& [key, value] : scheduler_->obs_counters()) {
    reg.gauge(key).set(value);
  }
}

std::uint64_t ServiceEngine::state_digest() const {
  Digest d;
  d.mix(clock_);
  d.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(next_id_)));
  d.mix(drained_);
  d.mix(static_cast<std::uint64_t>(buffer_.size()));
  for (const auto& [key, job] : buffer_) d.mix_job(job);
  d.mix(static_cast<std::uint64_t>(cancelled_log_.size()));
  for (const sim::JobId id : cancelled_log_) d.mix(id);

  const sim::EngineCore& core = *core_;
  d.mix(core.now());
  d.mix(core.steps());
  d.mix(core.stopped());
  const sim::JobTable& table = core.table();
  d.mix(static_cast<std::uint64_t>(table.size()));
  for (const sim::Job& j : table.arena()) {
    d.mix_job(j);
    d.mix(static_cast<std::uint64_t>(table.state(j.id)));
  }
  for (const sim::Event& e : core.events().snapshot_events()) {
    d.mix(e.time);
    d.mix(static_cast<std::uint64_t>(e.type));
    d.mix(e.job_id);
    d.mix(e.seq);
  }
  const sim::AllocationListView running = core.cluster().running_view();
  d.mix(static_cast<std::uint64_t>(running.size()));
  for (const sim::Allocation& a : running) {
    d.mix(a.job.id);
    d.mix(a.start_time);
    d.mix(a.end_time);
  }
  const sim::ScheduleResult& r = schedule_view();
  d.mix(static_cast<std::uint64_t>(r.n_decisions));
  d.mix(static_cast<std::uint64_t>(r.n_invalid_actions));
  d.mix(static_cast<std::uint64_t>(r.n_forced_delays));
  d.mix(static_cast<std::uint64_t>(r.n_backfills));
  d.mix(r.final_time);
  d.mix(static_cast<std::uint64_t>(r.completed.size()));
  for (const sim::CompletedJob& c : r.completed) {
    d.mix(c.job.id);
    d.mix(c.start_time);
    d.mix(c.end_time);
    d.mix(c.killed_at_walltime);
  }
  d.mix(static_cast<std::uint64_t>(r.decisions.size()));
  for (const sim::DecisionRecord& rec : r.decisions) {
    d.mix(rec.time);
    d.mix(static_cast<std::uint64_t>(rec.action.type));
    d.mix(rec.action.job_id);
    d.mix(rec.accepted);
    d.mix(rec.thought);
    d.mix(rec.feedback);
  }
  return d.value();
}

}  // namespace reasched::service
