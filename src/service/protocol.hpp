#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "service/service_engine.hpp"
#include "sim/job.hpp"
#include "util/json_parser.hpp"
#include "util/json_writer.hpp"

namespace reasched::service {

/// The RJMS protocol boundary: newline-delimited JSON over stdin/stdout.
/// One request line in, one response line out, in order. Requests:
///
///   {"op":"submit","job":{"duration":60,"nodes":4,...}}   -> {"ok":true,"op":"submit","id":1}
///   {"op":"query"}                                        -> session status
///   {"op":"query","id":3}                                 -> one job's state
///   {"op":"cancel","id":3}                                -> cancelled id cascade
///   {"op":"advance","to":3600}                            -> process events up to t
///   {"op":"drain"}                                        -> run to completion + metrics
///   {"op":"checkpoint","path":"snap.json"}                -> write a snapshot
///   {"op":"stats"}                                        -> live telemetry snapshot
///   {"op":"shutdown"}                                     -> close the session
///
/// Every error - parse failure, unknown op, rejected operation - is a
/// `{"ok":false,"error":"..."}` line; the session keeps serving. Doubles in
/// responses that feed state (times, digests) are round-trip exact.

/// Malformed request line (bad JSON, missing fields, unknown op). The
/// message is safe to echo back to the client verbatim.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Request {
  enum class Op { kSubmit, kQuery, kCancel, kAdvance, kDrain, kCheckpoint, kStats, kShutdown };
  Op op = Op::kQuery;
  sim::Job job;          ///< kSubmit
  bool has_id = false;   ///< kQuery: id present?
  sim::JobId id = 0;     ///< kQuery / kCancel
  double to = 0.0;       ///< kAdvance
  std::string path;      ///< kCheckpoint
};

/// Parse one request line; throws ProtocolError naming what is wrong.
Request parse_request(const std::string& line);

/// Job JSON codec shared by the protocol and the snapshot format. Emits
/// every field with round-trip-exact doubles; parsing fills defaults
/// (id 0 = assign, walltime = duration) and throws ProtocolError on
/// missing/ill-typed required fields (duration, nodes).
void job_to_json(util::JsonWriter& w, const sim::Job& job);
sim::Job job_from_json(const util::JsonValue& v);

/// Response renderers - each returns one complete JSON line (no newline).
std::string render_submit(sim::JobId id);
std::string render_cancel(const std::vector<sim::JobId>& cancelled);
std::string render_status(const ServiceStatus& status);
std::string render_job_state(sim::JobId id, sim::JobState state);
std::string render_advance(const ServiceStatus& status);
std::string render_drain(const DrainResult& result);
std::string render_checkpoint(const std::string& path, std::uint64_t digest);
/// Live telemetry snapshot as one JSON line: the registry's counters,
/// gauges and histograms (name-sorted) plus span-ring occupancy. Purely
/// observational - nothing here feeds the digest, the op log or a decision.
std::string render_stats(bool obs_enabled, const obs::RegistrySnapshot& registry,
                         const obs::TraceStats& spans);
std::string render_shutdown();
std::string render_error(const std::string& message);

/// The decision trace as JSON lines with exact times - the artifact CI
/// diffs bit-for-bit between an uninterrupted run and a
/// checkpoint/restore/resume run.
std::string render_decision_trace(const sim::ScheduleResult& schedule);

}  // namespace reasched::service
