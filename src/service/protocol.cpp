#include "service/protocol.hpp"

#include <cmath>

#include "util/string_utils.hpp"

namespace reasched::service {

namespace {

double require_number(const util::JsonValue& v, const char* key) {
  if (!v.contains(key) || !v.at(key).is_number()) {
    throw ProtocolError(util::format("request: missing or non-numeric field \"%s\"", key));
  }
  return v.at(key).as_number();
}

sim::JobId id_from(const util::JsonValue& v, const char* key) {
  const double raw = require_number(v, key);
  const double rounded = std::nearbyint(raw);
  if (raw != rounded) {
    throw ProtocolError(util::format("request: field \"%s\" must be an integer", key));
  }
  return static_cast<sim::JobId>(rounded);
}

}  // namespace

void job_to_json(util::JsonWriter& w, const sim::Job& job) {
  w.begin_object();
  w.kv("id", job.id);
  w.kv("user", job.user);
  w.kv("group", job.group);
  w.kv_exact("submit_time", job.submit_time);
  w.kv_exact("duration", job.duration);
  w.kv_exact("walltime", job.walltime);
  w.kv("nodes", job.nodes);
  w.kv_exact("memory_gb", job.memory_gb);
  w.key("dependencies").begin_array();
  for (const sim::JobId dep : job.dependencies) w.value(dep);
  w.end_array();
  w.end_object();
}

sim::Job job_from_json(const util::JsonValue& v) {
  if (!v.is_object()) throw ProtocolError("request: \"job\" must be an object");
  sim::Job job;
  job.duration = require_number(v, "duration");
  job.walltime = v.number_or("walltime", job.duration);
  job.nodes = static_cast<int>(require_number(v, "nodes"));
  job.memory_gb = v.number_or("memory_gb", 1.0);
  job.submit_time = v.number_or("submit_time", 0.0);
  if (v.contains("id")) job.id = id_from(v, "id");
  if (v.contains("user")) job.user = id_from(v, "user");
  if (v.contains("group")) job.group = id_from(v, "group");
  if (v.contains("dependencies")) {
    const util::JsonValue& deps = v.at("dependencies");
    if (!deps.is_array()) throw ProtocolError("request: \"dependencies\" must be an array");
    for (std::size_t i = 0; i < deps.size(); ++i) {
      if (!deps.at(i).is_number()) {
        throw ProtocolError("request: \"dependencies\" entries must be job ids");
      }
      job.dependencies.push_back(static_cast<sim::JobId>(deps.at(i).as_number()));
    }
  }
  return job;
}

Request parse_request(const std::string& line) {
  util::JsonValue doc;
  try {
    doc = util::parse_json(line);
  } catch (const std::exception& e) {
    throw ProtocolError(util::format("request: invalid JSON (%s)", e.what()));
  }
  if (!doc.is_object()) throw ProtocolError("request: expected a JSON object");
  if (!doc.contains("op") || !doc.at("op").is_string()) {
    throw ProtocolError("request: missing string field \"op\"");
  }
  const std::string& op = doc.at("op").as_string();
  Request req;
  if (op == "submit") {
    req.op = Request::Op::kSubmit;
    if (!doc.contains("job")) throw ProtocolError("request: submit needs a \"job\" object");
    req.job = job_from_json(doc.at("job"));
  } else if (op == "query") {
    req.op = Request::Op::kQuery;
    if (doc.contains("id")) {
      req.has_id = true;
      req.id = id_from(doc, "id");
    }
  } else if (op == "cancel") {
    req.op = Request::Op::kCancel;
    req.id = id_from(doc, "id");
  } else if (op == "advance") {
    req.op = Request::Op::kAdvance;
    req.to = require_number(doc, "to");
  } else if (op == "drain") {
    req.op = Request::Op::kDrain;
  } else if (op == "checkpoint") {
    req.op = Request::Op::kCheckpoint;
    if (!doc.contains("path") || !doc.at("path").is_string()) {
      throw ProtocolError("request: checkpoint needs a string \"path\"");
    }
    req.path = doc.at("path").as_string();
  } else if (op == "stats") {
    req.op = Request::Op::kStats;
  } else if (op == "shutdown") {
    req.op = Request::Op::kShutdown;
  } else {
    throw ProtocolError(util::format(
        "request: unknown op \"%s\" (submit|query|cancel|advance|drain|checkpoint|stats|shutdown)",
        op.c_str()));
  }
  return req;
}

namespace {

void status_fields(util::JsonWriter& w, const ServiceStatus& s) {
  w.kv_exact("clock", s.clock);
  w.kv_exact("now", s.engine_now);
  w.kv("steps", static_cast<long long>(s.steps));
  w.kv("admitted", s.n_admitted);
  w.kv("buffered", s.n_buffered);
  w.kv("waiting", s.n_waiting);
  w.kv("running", s.n_running);
  w.kv("completed", s.n_completed);
  w.kv("cancelled", s.n_cancelled);
  w.kv("decisions", s.n_decisions);
  w.kv("stream_emitted", s.stream_emitted);
  w.kv("drained", s.drained);
}

}  // namespace

std::string render_submit(sim::JobId id) {
  util::JsonWriter w;
  w.begin_object().kv("ok", true).kv("op", "submit").kv("id", id).end_object();
  return w.str();
}

std::string render_cancel(const std::vector<sim::JobId>& cancelled) {
  util::JsonWriter w;
  w.begin_object().kv("ok", true).kv("op", "cancel");
  w.key("cancelled").begin_array();
  for (const sim::JobId id : cancelled) w.value(id);
  w.end_array().end_object();
  return w.str();
}

std::string render_status(const ServiceStatus& s) {
  util::JsonWriter w;
  w.begin_object().kv("ok", true).kv("op", "query");
  status_fields(w, s);
  w.end_object();
  return w.str();
}

std::string render_job_state(sim::JobId id, sim::JobState state) {
  util::JsonWriter w;
  w.begin_object().kv("ok", true).kv("op", "query").kv("id", id);
  w.kv("state", sim::to_string(state));
  w.end_object();
  return w.str();
}

std::string render_advance(const ServiceStatus& s) {
  util::JsonWriter w;
  w.begin_object().kv("ok", true).kv("op", "advance");
  status_fields(w, s);
  w.end_object();
  return w.str();
}

std::string render_drain(const DrainResult& result) {
  util::JsonWriter w;
  w.begin_object().kv("ok", true).kv("op", "drain");
  w.kv("completed", result.schedule.completed.size());
  w.kv_exact("final_time", result.schedule.final_time);
  w.kv("decisions", result.schedule.n_decisions);
  w.key("metrics").begin_object();
  for (const metrics::Metric m : metrics::all_metrics()) {
    w.kv_exact(metrics::to_string(m), result.metrics.get(m));
  }
  w.end_object().end_object();
  return w.str();
}

std::string render_checkpoint(const std::string& path, std::uint64_t digest) {
  util::JsonWriter w;
  w.begin_object().kv("ok", true).kv("op", "checkpoint").kv("path", path);
  w.kv("digest", util::format("%016llx", static_cast<unsigned long long>(digest)));
  w.end_object();
  return w.str();
}

std::string render_stats(bool obs_enabled, const obs::RegistrySnapshot& registry,
                         const obs::TraceStats& spans) {
  util::JsonWriter w;
  w.begin_object().kv("ok", true).kv("op", "stats");
  w.kv("obs_enabled", obs_enabled);
  w.key("counters").begin_object();
  for (const auto& [name, value] : registry.counters) w.kv(name, static_cast<long long>(value));
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : registry.gauges) w.kv_exact(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : registry.histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (const double b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const std::uint64_t c : h.counts) w.value(static_cast<long long>(c));
    w.end_array();
    w.kv("count", static_cast<long long>(h.count));
    w.kv_exact("sum", h.sum);
    w.end_object();
  }
  w.end_object();
  w.key("spans").begin_object();
  w.kv("recorded", spans.recorded);
  w.kv("dropped", spans.dropped);
  w.kv("capacity", spans.capacity);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string render_shutdown() {
  util::JsonWriter w;
  w.begin_object().kv("ok", true).kv("op", "shutdown").end_object();
  return w.str();
}

std::string render_error(const std::string& message) {
  util::JsonWriter w;
  w.begin_object().kv("ok", false).kv("error", message).end_object();
  return w.str();
}

std::string render_decision_trace(const sim::ScheduleResult& schedule) {
  std::string out;
  for (const sim::DecisionRecord& rec : schedule.decisions) {
    util::JsonWriter w;
    w.begin_object();
    w.kv_exact("t", rec.time);
    w.kv("action", rec.action.to_string());
    w.kv("accepted", rec.accepted);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

}  // namespace reasched::service
