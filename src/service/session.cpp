#include "service/session.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "service/snapshot.hpp"
#include "util/rng.hpp"
#include "util/string_utils.hpp"

namespace reasched::service {

MessageQueue::MessageQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

bool MessageQueue::push(Envelope e) {
  {
    util::MutexLock lock(mu_);
    while (items_.size() >= capacity_ && !closed_) not_full_.wait(mu_);
    if (closed_) return false;
    items_.push_back(std::move(e));
  }
  not_empty_.notify_one();
  return true;
}

std::optional<Envelope> MessageQueue::pop() {
  std::optional<Envelope> e;
  {
    util::MutexLock lock(mu_);
    while (items_.empty() && !closed_) not_empty_.wait(mu_);
    if (items_.empty()) return std::nullopt;  // closed and drained
    e.emplace(std::move(items_.front()));
    items_.pop_front();
  }
  not_full_.notify_one();
  return e;
}

void MessageQueue::close() {
  {
    util::MutexLock lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t MessageQueue::size() const {
  util::MutexLock lock(mu_);
  return items_.size();
}

bool MessageQueue::closed() const {
  util::MutexLock lock(mu_);
  return closed_;
}

std::uint64_t SessionTable::open(std::string name) {
  util::MutexLock lock(mu_);
  const std::uint64_t id = next_id_++;
  SessionInfo info;
  info.id = id;
  info.name = std::move(name);
  sessions_.emplace(id, std::move(info));
  return id;
}

void SessionTable::record(std::uint64_t id, bool ok) {
  util::MutexLock lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument(util::format("SessionTable: unknown session %llu",
                                             static_cast<unsigned long long>(id)));
  }
  ++it->second.n_requests;
  if (!ok) ++it->second.n_errors;
}

void SessionTable::close(std::uint64_t id) {
  util::MutexLock lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument(util::format("SessionTable: unknown session %llu",
                                             static_cast<unsigned long long>(id)));
  }
  it->second.open = false;
}

std::size_t SessionTable::n_open() const {
  util::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, info] : sessions_) {
    if (info.open) ++n;
  }
  return n;
}

std::size_t SessionTable::total_requests() const {
  util::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, info] : sessions_) n += info.n_requests;
  return n;
}

std::vector<SessionInfo> SessionTable::snapshot() const {
  util::MutexLock lock(mu_);
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [id, info] : sessions_) out.push_back(info);
  return out;
}

ResultSink::ResultSink(std::ostream* out, bool keep) : out_(out), keep_(keep) {}

void ResultSink::append(const std::string& line) {
  util::MutexLock lock(mu_);
  if (out_ != nullptr) *out_ << line << '\n';
  if (keep_) lines_.push_back(line);
  ++count_;
}

std::size_t ResultSink::count() const {
  util::MutexLock lock(mu_);
  return count_;
}

std::vector<std::string> ResultSink::lines() const {
  util::MutexLock lock(mu_);
  return lines_;
}

std::string handle_request(ServiceEngine& engine, const Request& request, bool& shutdown) {
  try {
    switch (request.op) {
      case Request::Op::kSubmit: return render_submit(engine.submit(request.job));
      case Request::Op::kQuery:
        if (request.has_id) {
          return render_job_state(request.id, engine.job_state(request.id));
        }
        return render_status(engine.status());
      case Request::Op::kCancel: return render_cancel(engine.cancel(request.id));
      case Request::Op::kAdvance:
        engine.advance_to(request.to);
        return render_advance(engine.status());
      case Request::Op::kDrain: return render_drain(engine.drain());
      case Request::Op::kCheckpoint:
        save_snapshot(engine, request.path);
        return render_checkpoint(request.path, engine.state_digest());
      case Request::Op::kStats:
        // Live snapshot: refresh the session gauges, then render whatever
        // the registry holds. Works with telemetry disabled too (the
        // request itself is the opt-in); observe-only either way.
        engine.publish_obs();
        return render_stats(obs::enabled(), obs::MetricRegistry::global().snapshot(),
                            obs::TraceRecorder::global().stats());
      case Request::Op::kShutdown:
        shutdown = true;
        return render_shutdown();
    }
    return render_error("unhandled op");  // unreachable
  } catch (const std::exception& e) {
    return render_error(e.what());
  }
}

LoopStats run_service_loop(ServiceEngine& engine, std::istream& in, std::ostream& out) {
  LoopStats stats;
  std::string line;
  while (!stats.shutdown && std::getline(in, line)) {
    if (line.empty()) continue;
    ++stats.n_requests;
    std::string response;
    try {
      const Request request = parse_request(line);
      response = handle_request(engine, request, stats.shutdown);
    } catch (const ProtocolError& e) {
      response = render_error(e.what());
    }
    if (response.rfind("{\"ok\":false", 0) == 0) ++stats.n_errors;
    // Flush per line: clients block on our responses (and the checkpoint ack
    // is the durability signal CI kills the process on), so responses must
    // not sit in a full-buffered redirect.
    out << response << std::endl;
  }
  return stats;
}

LoopStats run_concurrent_session(ServiceEngine& engine, std::size_t n_submitters,
                                 std::size_t requests_per_submitter, SessionTable& sessions,
                                 ResultSink& sink) {
  MessageQueue queue(/*capacity=*/64);
  const std::uint64_t seed = engine.config().seed;

  std::vector<std::thread> submitters;
  submitters.reserve(n_submitters);
  for (std::size_t s = 0; s < n_submitters; ++s) {
    submitters.emplace_back([&queue, &sessions, seed, s, requests_per_submitter] {
      const std::uint64_t session =
          sessions.open(util::format("submitter-%zu", s));
      util::Rng rng(util::derive_seed(seed, "stress-submitter", s));
      for (std::uint64_t i = 0; i < requests_per_submitter; ++i) {
        std::string line;
        const std::int64_t roll = rng.uniform_int(0, 9);
        if (roll < 8) {
          // Submit a small deterministic job; the service assigns the id.
          line = util::format(
              "{\"op\":\"submit\",\"job\":{\"duration\":%lld,\"nodes\":%lld,"
              "\"memory_gb\":%lld,\"user\":%lld}}",
              static_cast<long long>(rng.uniform_int(10, 600)),
              static_cast<long long>(rng.uniform_int(1, 8)),
              static_cast<long long>(rng.uniform_int(1, 32)),
              static_cast<long long>(rng.uniform_int(1, 5)));
        } else if (roll == 8) {
          line = "{\"op\":\"query\"}";
        } else {
          // Cancel a random id; often unknown or already placed - both are
          // legitimate protocol outcomes the consumer must survive.
          line = util::format("{\"op\":\"cancel\",\"id\":%lld}",
                              static_cast<long long>(rng.uniform_int(1, 50)));
        }
        if (!queue.push(Envelope{session, i, std::move(line)})) break;
      }
      sessions.close(session);
    });
  }

  LoopStats stats;
  std::thread consumer([&queue, &engine, &sessions, &sink, &stats] {
    while (auto envelope = queue.pop()) {
      ++stats.n_requests;
      std::string response;
      try {
        const Request request = parse_request(envelope->line);
        response = handle_request(engine, request, stats.shutdown);
      } catch (const ProtocolError& e) {
        response = render_error(e.what());
      }
      const bool ok = response.rfind("{\"ok\":false", 0) != 0;
      if (!ok) ++stats.n_errors;
      sessions.record(envelope->session, ok);
      sink.append(response);
    }
  });

  for (std::thread& t : submitters) t.join();
  queue.close();
  consumer.join();
  return stats;
}

}  // namespace reasched::service
