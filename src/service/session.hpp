#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "service/service_engine.hpp"
#include "util/sync.hpp"

namespace reasched::service {

/// Shared state between client-facing reader threads and the single engine
/// thread. The ServiceEngine itself is single-threaded by design (the
/// simulator is a sequential state machine); concurrency lives entirely in
/// these three primitives, which therefore carry ThreadPool-style contract
/// tests and run under TSan in CI with >= 4 concurrent submitters.

/// One inbound request line, stamped with its origin for response routing
/// and per-session accounting.
struct Envelope {
  std::uint64_t session = 0;  ///< SessionTable id of the submitter
  std::uint64_t seq = 0;      ///< submitter-local sequence number
  std::string line;           ///< raw protocol line
};

/// Bounded MPSC queue of inbound requests. push() blocks while the queue is
/// full (backpressure on submitters) and returns false once closed; pop()
/// blocks until an item arrives and returns nullopt once the queue is
/// closed *and* drained, so the consumer processes every accepted request
/// before exiting.
class MessageQueue {
 public:
  explicit MessageQueue(std::size_t capacity);

  bool push(Envelope e);
  std::optional<Envelope> pop();
  /// No further pushes accepted; wakes every blocked producer and, once the
  /// backlog drains, the consumer.
  void close();

  std::size_t size() const;
  bool closed() const;

 private:
  mutable util::Mutex mu_;
  util::CondVar not_full_;
  util::CondVar not_empty_;
  std::deque<Envelope> items_ GUARDED_BY(mu_);
  const std::size_t capacity_;  // set once at construction; no guard needed
  bool closed_ GUARDED_BY(mu_) = false;
};

/// One client session's accounting entry.
struct SessionInfo {
  std::uint64_t id = 0;
  std::string name;
  std::size_t n_requests = 0;
  std::size_t n_errors = 0;
  bool open = true;
};

/// Thread-safe registry of client sessions: who is connected and how many
/// requests/errors each produced. Reader threads open/record concurrently.
class SessionTable {
 public:
  std::uint64_t open(std::string name);
  /// Count one handled request (ok or error) for `id`; throws
  /// std::invalid_argument for unknown ids.
  void record(std::uint64_t id, bool ok);
  void close(std::uint64_t id);

  std::size_t n_open() const;
  std::size_t total_requests() const;
  /// Consistent copy, ordered by session id.
  std::vector<SessionInfo> snapshot() const;

 private:
  mutable util::Mutex mu_;
  std::map<std::uint64_t, SessionInfo> sessions_ GUARDED_BY(mu_);
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
};

/// Serialized response channel: appends are atomic lines, optionally
/// tee'd to an ostream (the service binary passes stdout) and optionally
/// retained for inspection (tests, stress harness).
class ResultSink {
 public:
  explicit ResultSink(std::ostream* out = nullptr, bool keep = true);

  void append(const std::string& line);
  std::size_t count() const;
  std::vector<std::string> lines() const;

 private:
  mutable util::Mutex mu_;
  /// The stream pointer and keep flag are set once at construction; only
  /// the stream's *contents* (written through the lock) are shared state.
  std::ostream* const out_;
  const bool keep_;
  std::vector<std::string> lines_ GUARDED_BY(mu_);
  std::size_t count_ GUARDED_BY(mu_) = 0;
};

/// Outcome of a service loop run.
struct LoopStats {
  std::size_t n_requests = 0;
  std::size_t n_errors = 0;
  bool shutdown = false;  ///< ended by a shutdown request (vs EOF)
};

/// Apply one parsed request to the engine and render the response line.
/// Never throws: every engine/protocol rejection becomes an error response.
/// Sets `shutdown` on a shutdown request.
std::string handle_request(ServiceEngine& engine, const Request& request, bool& shutdown);

/// The single-threaded service loop: one request line in, one response line
/// out, until EOF or shutdown. This is what `reasched_service` runs on
/// stdin/stdout.
LoopStats run_service_loop(ServiceEngine& engine, std::istream& in, std::ostream& out);

/// The concurrent smoke harness behind `reasched_service
/// --stress-submitters N` and the TSan service test: N submitter threads
/// push deterministic per-thread request streams (submits with occasional
/// queries and cancels) through a bounded MessageQueue while the single
/// consumer applies them to the engine, routes responses through a
/// ResultSink and accounts per-session in a SessionTable. The engine-side
/// interleaving is admission-order nondeterministic by nature; the point is
/// exercising the shared state under TSan, not a golden.
LoopStats run_concurrent_session(ServiceEngine& engine, std::size_t n_submitters,
                                 std::size_t requests_per_submitter, SessionTable& sessions,
                                 ResultSink& sink);

}  // namespace reasched::service
