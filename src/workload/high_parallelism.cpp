#include "workload/scenarios.hpp"

namespace reasched::workload {

sim::Job HighParallelismGenerator::make_job(sim::JobId id, util::Rng& rng) const {
  sim::Job j;
  j.id = id;
  // Tightly-coupled simulations: 64-256 nodes, Gamma walltime (Section 3.1).
  static const int kNodeChoices[] = {64, 96, 128, 192, 256};
  static const std::vector<double> kNodeWeights = {30, 20, 25, 10, 15};
  j.nodes = kNodeChoices[rng.weighted_index(kNodeWeights)];
  j.duration = std::max(60.0, rng.gamma(2.0, 400.0));
  j.walltime = j.duration;
  // Wide jobs tend to be memory-hungry in aggregate but modest per node.
  j.memory_gb = std::min(2048.0, static_cast<double>(j.nodes) * rng.uniform_real(1.0, 4.0));
  return j;
}

}  // namespace reasched::workload
