#pragma once

#include <memory>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/job.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/users.hpp"

namespace reasched::workload {

/// How submit times are assigned (Section 3.1 vs Section 3.3).
enum class ArrivalMode {
  kPoisson,  ///< dynamic arrivals, scenario-specific rate (scenario studies)
  kStatic,   ///< all jobs at t=0 (the static formulation in 3.3)
};

/// Full generation knobs (the four-argument generate() overload covers the
/// common cases).
struct GenerateOptions {
  ArrivalMode arrival_mode = ArrivalMode::kPoisson;
  sim::ClusterSpec cluster = sim::ClusterSpec::paper_default();
  /// Walltime-estimate noise: users over-request walltime by a factor drawn
  /// uniformly from [min, max] of the true runtime. 1.0/1.0 keeps estimates
  /// exact (the paper's setup); >1 models the estimate unreliability that
  /// runtime-prediction literature (cited in the paper's related work)
  /// studies - it degrades walltime-driven schedulers (SJF, EASY).
  double walltime_factor_min = 1.0;
  double walltime_factor_max = 1.0;
};

/// Base class for the seven scenario-driven workload generators. A generator
/// produces the per-job resource/runtime draws; arrival assignment and user
/// metadata are shared across scenarios.
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  virtual Scenario scenario() const = 0;
  std::string name() const { return to_string(scenario()); }

  /// Generate `n` jobs (ids 1..n) for the given seed. Deterministic:
  /// identical (n, seed, options) always yields identical jobs. All jobs are
  /// guaranteed to fit the given cluster.
  std::vector<sim::Job> generate(std::size_t n, std::uint64_t seed,
                                 const GenerateOptions& options) const;

  std::vector<sim::Job> generate(
      std::size_t n, std::uint64_t seed, ArrivalMode mode = ArrivalMode::kPoisson,
      const sim::ClusterSpec& cluster = sim::ClusterSpec::paper_default()) const {
    GenerateOptions options;
    options.arrival_mode = mode;
    options.cluster = cluster;
    return generate(n, seed, options);
  }

  const UserModel& user_model() const { return user_model_; }

 protected:
  /// Draw runtime / nodes / memory for one job (id and metadata are filled
  /// in by generate()).
  virtual sim::Job make_job(sim::JobId id, util::Rng& rng) const = 0;

  /// Scenario hook for arrival assignment; default is the Poisson process
  /// with the scenario's mean interarrival.
  virtual void assign_arrivals(std::vector<sim::Job>& jobs, util::Rng& rng) const;

  /// Scenario hook applied after generation (e.g. Adversarial forces the
  /// blocking job first).
  virtual void post_process(std::vector<sim::Job>& jobs, util::Rng& rng) const;

  UserModel user_model_;
};

/// Factory over all seven scenarios.
std::unique_ptr<WorkloadGenerator> make_generator(Scenario s);

/// The paper's queue-size sweep [10, 20, 40, 60, 80, 100] (Section 3.1).
const std::vector<std::size_t>& paper_job_counts();

}  // namespace reasched::workload
