#include "workload/scenario.hpp"

#include "util/string_utils.hpp"

namespace reasched::workload {

const std::vector<Scenario>& all_scenarios() {
  static const std::vector<Scenario> v = {
      Scenario::kHomogeneousShort, Scenario::kHeterogeneousMix, Scenario::kLongJobDominant,
      Scenario::kHighParallelism,  Scenario::kResourceSparse,   Scenario::kBurstyIdle,
      Scenario::kAdversarial,
  };
  return v;
}

const std::vector<Scenario>& figure3_scenarios() {
  static const std::vector<Scenario> v = {
      Scenario::kHomogeneousShort, Scenario::kLongJobDominant, Scenario::kHighParallelism,
      Scenario::kResourceSparse,   Scenario::kBurstyIdle,      Scenario::kAdversarial,
  };
  return v;
}

std::string to_string(Scenario s) {
  switch (s) {
    case Scenario::kHomogeneousShort: return "Homogeneous Short";
    case Scenario::kHeterogeneousMix: return "Heterogeneous Mix";
    case Scenario::kLongJobDominant: return "Long-Job Dominant";
    case Scenario::kHighParallelism: return "High Parallelism";
    case Scenario::kResourceSparse: return "Resource Sparse";
    case Scenario::kBurstyIdle: return "Bursty + Idle";
    case Scenario::kAdversarial: return "Adversarial";
  }
  return "?";
}

std::string describe(Scenario s) {
  switch (s) {
    case Scenario::kHomogeneousShort:
      return "uniform 30-120s jobs with 2 nodes / 4 GB; lightweight CI/test workloads";
    case Scenario::kHeterogeneousMix:
      return "Gamma(1.5, 300) runtimes with varied resources; realistic production mix";
    case Scenario::kLongJobDominant:
      return "20% extremely long jobs (50,000s, 128 nodes) among short jobs (500s, 2 nodes); "
             "tests convoy-effect handling";
    case Scenario::kHighParallelism:
      return "large parallel jobs (64-256 nodes, Gamma walltime); tightly-coupled simulations";
    case Scenario::kResourceSparse:
      return "lightweight jobs (1 node, <8 GB, 30-300s); sparse workload efficiency";
    case Scenario::kBurstyIdle:
      return "alternating bursts of short and long jobs with modest demands; responsiveness "
             "under uneven durations";
    case Scenario::kAdversarial:
      return "one blocking job (128 nodes, 100,000s) followed by many small jobs (1 node, 60s); "
             "exposes convoy effects";
  }
  return "?";
}

std::optional<Scenario> scenario_from_string(const std::string& name) {
  const std::string n = util::to_lower(name);
  for (const Scenario s : all_scenarios()) {
    if (util::to_lower(to_string(s)) == n) return s;
  }
  // Also accept compact aliases for CLI use.
  if (n == "homogeneous" || n == "homog-short" || n == "homogeneous_short") {
    return Scenario::kHomogeneousShort;
  }
  if (n == "hetmix" || n == "heterogeneous" || n == "heterogeneous_mix") {
    return Scenario::kHeterogeneousMix;
  }
  if (n == "longjob" || n == "long_job_dominant") return Scenario::kLongJobDominant;
  if (n == "parallel" || n == "high_parallelism") return Scenario::kHighParallelism;
  if (n == "sparse" || n == "resource_sparse") return Scenario::kResourceSparse;
  if (n == "bursty" || n == "bursty_idle") return Scenario::kBurstyIdle;
  if (n == "adversarial") return Scenario::kAdversarial;
  return std::nullopt;
}

double mean_interarrival_seconds(Scenario s) {
  switch (s) {
    case Scenario::kHomogeneousShort: return 20.0;
    case Scenario::kHeterogeneousMix: return 35.0;
    case Scenario::kLongJobDominant: return 90.0;
    case Scenario::kHighParallelism: return 150.0;
    case Scenario::kResourceSparse: return 15.0;
    case Scenario::kBurstyIdle: return 45.0;  // burst-modulated, see BurstyIdleGenerator
    case Scenario::kAdversarial: return 5.0;
  }
  return 60.0;
}

}  // namespace reasched::workload
