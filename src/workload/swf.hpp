#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/job.hpp"

namespace reasched::workload {

/// Standard Workload Format (SWF) support - the format of the Parallel
/// Workloads Archive, the standard source of public HPC traces. Lets this
/// library replay real production logs (e.g. ANL Intrepid, KIT FH2) through
/// the same pipeline as the synthetic scenarios and the Polaris substrate.
///
/// SWF records are 18 whitespace-separated fields per line; ';' starts a
/// comment. Field mapping used here (1-based SWF indices):
///   2 submit time [s]        -> Job::submit_time
///   4 run time [s]           -> Job::duration
///   8 requested processors   -> Job::nodes (fallback: field 5, allocated)
///  10 requested memory [KB/proc] -> Job::memory_gb (fallback: default/node)
///   9 requested time [s]     -> Job::walltime (fallback: run time)
///  11 status                 -> completed filter (1 = completed)
///  12 user id, 13 group id   -> Job::user / Job::group (factorized)
struct SwfOptions {
  /// Keep only completed jobs (SWF status == 1), like the paper's Polaris
  /// preprocessing drops failed jobs.
  bool completed_only = true;
  /// Stop after this many accepted jobs (0 = no limit).
  std::size_t max_jobs = 0;
  /// Memory per node when the trace reports none (-1), in GB.
  double default_memory_gb_per_node = 4.0;
  /// Clamp node requests to this cluster width (0 = no clamp).
  int max_nodes = 0;
};

/// Parse SWF text into jobs (ids renumbered 1..n, users/groups factorized,
/// submit times normalized so the earliest is 0). Malformed lines throw.
std::vector<sim::Job> parse_swf(std::string_view text, const SwfOptions& options = {});

std::vector<sim::Job> load_swf(const std::string& path, const SwfOptions& options = {});

/// Serialize jobs to SWF (inverse mapping; unknown fields written as -1).
std::string jobs_to_swf(const std::vector<sim::Job>& jobs);
void save_swf(const std::vector<sim::Job>& jobs, const std::string& path);

}  // namespace reasched::workload
