#include "workload/swf.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace reasched::workload {

namespace {

struct SwfRecord {
  double submit = 0, run = 0, requested_time = 0;
  int allocated = -1, requested = -1;
  double requested_memory_kb = -1;
  int status = 1, user = -1, group = -1;
};

bool parse_swf_line(const std::string& line, SwfRecord& rec) {
  std::istringstream is(line);
  std::vector<double> f;
  double v;
  while (is >> v) f.push_back(v);
  if (f.empty()) return false;  // blank line
  if (f.size() < 13) {
    throw std::runtime_error("SWF: line has fewer than 13 fields: " + line);
  }
  rec.submit = f[1];
  rec.run = f[3];
  rec.allocated = static_cast<int>(f[4]);
  rec.requested = static_cast<int>(f[7]);
  rec.requested_time = f[8];
  rec.requested_memory_kb = f[9];
  rec.status = static_cast<int>(f[10]);
  rec.user = static_cast<int>(f[11]);
  rec.group = static_cast<int>(f[12]);
  return true;
}

}  // namespace

std::vector<sim::Job> parse_swf(std::string_view text, const SwfOptions& options) {
  std::vector<SwfRecord> records;
  for (const auto& raw_line : util::split_lines(text)) {
    const std::string line = util::trim(raw_line);
    if (line.empty() || line[0] == ';') continue;  // header/comment
    SwfRecord rec;
    if (!parse_swf_line(line, rec)) continue;
    if (options.completed_only && rec.status != 1) continue;
    if (rec.run <= 0) continue;  // zero-length or cancelled
    records.push_back(rec);
  }
  // Same-second submissions are ubiquitous in real traces and `submit` is the
  // only key, so a non-stable sort would give them implementation-defined
  // order - and therefore implementation-defined JobIds. stable_sort keeps
  // ties in file order, which the archive documents as submission order.
  std::stable_sort(records.begin(), records.end(),
                   [](const SwfRecord& a, const SwfRecord& b) { return a.submit < b.submit; });
  if (options.max_jobs != 0 && records.size() > options.max_jobs) {
    records.resize(options.max_jobs);
  }
  if (records.empty()) return {};

  const double t0 = records.front().submit;
  std::map<int, int> users, groups;
  std::vector<sim::Job> jobs;
  jobs.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& rec = records[i];
    sim::Job j;
    j.id = static_cast<sim::JobId>(i + 1);
    j.submit_time = rec.submit - t0;
    j.duration = rec.run;
    j.walltime = rec.requested_time > 0 ? std::max(rec.requested_time, rec.run) : rec.run;
    int nodes = rec.requested > 0 ? rec.requested : rec.allocated;
    if (nodes <= 0) nodes = 1;
    if (options.max_nodes > 0) nodes = std::min(nodes, options.max_nodes);
    j.nodes = nodes;
    if (rec.requested_memory_kb > 0) {
      // SWF memory is KB per processor.
      j.memory_gb = rec.requested_memory_kb * nodes / (1024.0 * 1024.0);
    } else {
      j.memory_gb = options.default_memory_gb_per_node * nodes;
    }
    j.memory_gb = std::max(0.5, j.memory_gb);
    j.user = users.emplace(rec.user, static_cast<int>(users.size()) + 1).first->second;
    j.group = groups.emplace(rec.group, static_cast<int>(groups.size()) + 1).first->second;
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<sim::Job> load_swf(const std::string& path, const SwfOptions& options) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_swf: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_swf(ss.str(), options);
}

std::string jobs_to_swf(const std::vector<sim::Job>& jobs) {
  std::ostringstream os;
  os << "; SWF export from reasched (fields per the Parallel Workloads Archive)\n";
  for (const auto& j : jobs) {
    // 1 job, 2 submit, 3 wait(-1), 4 run, 5 alloc procs, 6 cpu(-1), 7 mem
    // used(-1), 8 req procs, 9 req time, 10 req mem [KB/proc], 11 status,
    // 12 user, 13 group, 14..18 -1.
    const double mem_kb_per_proc = j.memory_gb * 1024.0 * 1024.0 / std::max(1, j.nodes);
    os << util::format("%d %.0f -1 %.0f %d -1 -1 %d %.0f %.0f 1 %d %d -1 -1 -1 -1 -1\n",
                       j.id, j.submit_time, j.duration, j.nodes, j.nodes, j.walltime,
                       mem_kb_per_proc, j.user, j.group);
  }
  return os.str();
}

void save_swf(const std::vector<sim::Job>& jobs, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_swf: cannot open " + path);
  f << jobs_to_swf(jobs);
}

}  // namespace reasched::workload
