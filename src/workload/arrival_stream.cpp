#include "workload/arrival_stream.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/string_utils.hpp"

namespace reasched::workload {

ArrivalStream::ArrivalStream(StreamSpec spec, std::uint64_t seed, GenerateOptions options)
    : spec_(std::move(spec)), seed_(seed), options_(std::move(options)) {
  if (!(spec_.rate_scale > 0.0)) {
    throw std::invalid_argument(
        util::format("ArrivalStream: rate_scale must be positive (got %g)", spec_.rate_scale));
  }
}

void ArrivalStream::ensure_batch() {
  if (cursor_ < batch_.size() || spec_.batch_jobs == 0) return;
  if (spec_.max_batches != 0 && batch_index_ >= spec_.max_batches) return;

  const std::uint64_t batch_seed = util::derive_seed(seed_, "batch", batch_index_);
  batch_ = generate_scenario(spec_.scenario, spec_.batch_jobs, batch_seed, options_);
  cursor_ = 0;

  // Emission order is arrival order; generators already sort, but transforms
  // (e.g. adversarial's post-process) may not preserve it, and the stream's
  // contract is strict.
  // total-order: arrival_order breaks submit-time ties by unique JobId.
  std::sort(batch_.begin(), batch_.end(), sim::arrival_order);

  // Rate-scale and offset submit times into this batch's window, keeping the
  // batch's internal gap structure (divided by rate_scale).
  const double t0 = batch_.empty() ? 0.0 : batch_.front().submit_time;
  double span = 0.0;
  for (sim::Job& job : batch_) {
    const double t = time_offset_ + (job.submit_time - t0) / spec_.rate_scale;
    span = std::max(span, t - time_offset_);
    job.submit_time = t;
  }

  // Backward-only dependency normalization: a streamed job may depend only on
  // jobs that precede it in arrival order (the online table appends in
  // arrival order, so a forward edge could never be admitted). Looped-trace
  // DAG transforms are arrival-contiguous, so this is a no-op for them; it
  // guards arbitrary specs.
  std::map<sim::JobId, std::size_t> position;
  for (std::size_t i = 0; i < batch_.size(); ++i) position.emplace(batch_[i].id, i);
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    std::vector<sim::JobId>& deps = batch_[i].dependencies;
    std::erase_if(deps, [&](sim::JobId dep) {
      const auto it = position.find(dep);
      return it == position.end() || it->second >= i;
    });
  }

  // Remap batch-local ids (1..batch_jobs) into the stream-unique id space.
  const sim::JobId id_offset =
      static_cast<sim::JobId>(batch_index_ * spec_.batch_jobs);
  for (sim::Job& job : batch_) {
    job.id += id_offset;
    for (sim::JobId& dep : job.dependencies) dep += id_offset;
  }

  // Next batch starts one mean batch gap past this batch's last arrival, so
  // consecutive loops look like one continuous process rather than bursts.
  const double mean_gap =
      (batch_.size() > 1 && span > 0.0) ? span / static_cast<double>(batch_.size() - 1) : 1.0;
  time_offset_ += span + mean_gap;
  ++batch_index_;
}

const sim::Job* ArrivalStream::peek() {
  ensure_batch();
  if (cursor_ >= batch_.size()) return nullptr;
  return &batch_[cursor_];
}

sim::Job ArrivalStream::pop() {
  if (peek() == nullptr) {
    throw std::logic_error("ArrivalStream: pop() past the end of the stream");
  }
  ++emitted_;
  return std::move(batch_[cursor_++]);
}

StreamSpec make_stream_spec(const std::string& scenario, std::size_t batch_jobs,
                            std::size_t max_batches, double rate_scale) {
  StreamSpec spec;
  spec.scenario = ScenarioSpec::parse(scenario);
  spec.batch_jobs = batch_jobs;
  spec.max_batches = max_batches;
  spec.rate_scale = rate_scale;
  if (!(rate_scale > 0.0)) {
    throw std::invalid_argument(
        util::format("stream spec: rate_scale must be positive (got %g)", rate_scale));
  }
  return spec;
}

}  // namespace reasched::workload
