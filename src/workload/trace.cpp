#include "workload/trace.hpp"

#include <stdexcept>

#include "util/string_utils.hpp"

namespace reasched::workload {

namespace {
const std::vector<std::string> kHeader = {
    "job_id", "user", "group", "submit_time", "duration",
    "walltime", "nodes", "memory_gb", "dependencies"};
}

util::CsvTable jobs_to_csv(const std::vector<sim::Job>& jobs) {
  util::CsvTable t(kHeader);
  for (const auto& j : jobs) {
    std::vector<std::string> deps;
    deps.reserve(j.dependencies.size());
    for (const auto d : j.dependencies) deps.push_back(std::to_string(d));
    t.add_row({std::to_string(j.id), std::to_string(j.user), std::to_string(j.group),
               util::format("%.6f", j.submit_time), util::format("%.6f", j.duration),
               util::format("%.6f", j.walltime), std::to_string(j.nodes),
               util::format("%.6f", j.memory_gb), util::join(deps, ";")});
  }
  return t;
}

std::vector<sim::Job> jobs_from_csv(const util::CsvTable& table) {
  std::vector<sim::Job> jobs;
  jobs.reserve(table.rows());
  for (std::size_t i = 0; i < table.rows(); ++i) {
    sim::Job j;
    auto req_int = [&](const char* col) {
      const auto v = util::parse_int(table.cell(i, col));
      if (!v) throw std::runtime_error(util::format("trace row %zu: bad %s", i, col));
      return *v;
    };
    auto req_double = [&](const char* col) {
      const auto v = util::parse_double(table.cell(i, col));
      if (!v) throw std::runtime_error(util::format("trace row %zu: bad %s", i, col));
      return *v;
    };
    j.id = static_cast<sim::JobId>(req_int("job_id"));
    j.user = static_cast<sim::UserId>(req_int("user"));
    j.group = static_cast<sim::GroupId>(req_int("group"));
    j.submit_time = req_double("submit_time");
    j.duration = req_double("duration");
    j.walltime = req_double("walltime");
    j.nodes = static_cast<int>(req_int("nodes"));
    j.memory_gb = req_double("memory_gb");
    const std::string deps = table.cell(i, "dependencies");
    if (!deps.empty()) {
      for (const auto& part : util::split(deps, ';')) {
        const auto d = util::parse_int(part);
        if (!d) throw std::runtime_error(util::format("trace row %zu: bad dependency", i));
        j.dependencies.push_back(static_cast<sim::JobId>(*d));
      }
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

void save_jobs(const std::vector<sim::Job>& jobs, const std::string& path) {
  jobs_to_csv(jobs).save(path);
}

std::vector<sim::Job> load_jobs(const std::string& path) {
  return jobs_from_csv(util::CsvTable::load(path));
}

}  // namespace reasched::workload
