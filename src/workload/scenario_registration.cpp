#include "workload/scenario_registration.hpp"

#include <algorithm>
#include <set>

#include "workload/polaris.hpp"
#include "workload/scenario_spec.hpp"
#include "workload/swf.hpp"
#include "workload/trace.hpp"

namespace reasched::workload {

namespace {

/// Parameters every generator-backed scenario accepts on its base stage.
std::vector<util::SpecParamInfo> generator_params() {
  return {{"walltime_noise", "range", "1:1",
           "Walltime estimates = runtime x U(MIN:MAX); 1:1 keeps the paper's exact "
           "estimates."},
          {"rate_scale", "double", "1",
           "Arrival-rate multiplier: submit times divide by this (2 = twice the load)."}};
}

/// The shared builder for the seven paper scenarios. With no parameters it
/// is byte-for-byte the legacy `make_generator(s)->generate(n, seed,
/// options)` call, which the scenario-spec golden test pins; the two common
/// parameters compose on top without disturbing the base draws
/// (walltime_noise maps onto GenerateOptions' paired noise stream,
/// rate_scale rescales submit times after generation).
std::vector<sim::Job> generate_paper_scenario(Scenario scenario, const ScenarioStage& stage,
                                              std::size_t n, std::uint64_t seed,
                                              const GenerateOptions& options_in) {
  const StageParamReader params(stage);
  GenerateOptions options = options_in;
  const auto [noise_min, noise_max] =
      params.get_range("walltime_noise", options.walltime_factor_min,
                       options.walltime_factor_max, 1.0);
  options.walltime_factor_min = noise_min;
  options.walltime_factor_max = noise_max;
  auto jobs = make_generator(scenario)->generate(n, seed, options);

  const double rate_scale = params.get_double("rate_scale", 1.0, 1e-6, 1e6);
  if (rate_scale != 1.0) {
    for (auto& job : jobs) job.submit_time /= rate_scale;
  }
  return jobs;
}

/// Truncate to the first `n` jobs in arrival order, drop dependency edges
/// that point outside the kept set, and renumber ids 1..m (trace bases and
/// the crop transform share these semantics).
void truncate_and_renumber(std::vector<sim::Job>& jobs, std::size_t n) {
  if (n > 0 && jobs.size() > n) jobs.resize(n);
  std::set<sim::JobId> kept;
  std::map<sim::JobId, sim::JobId> renumber;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    kept.insert(jobs[i].id);
    renumber[jobs[i].id] = static_cast<sim::JobId>(i + 1);
  }
  for (auto& job : jobs) {
    std::vector<sim::JobId> deps;
    for (const auto dep : job.dependencies) {
      if (kept.count(dep) != 0) deps.push_back(renumber.at(dep));
    }
    job.dependencies = std::move(deps);
    job.id = renumber.at(job.id);
  }
}

/// Clamp demands to the (effective) cluster so trace-backed bases satisfy
/// the same fit guarantee as the synthetic generators. Raise the capacity
/// with `|cluster?nodes=...&memory_gb=...` to replay a trace unclamped.
void clamp_to_cluster(std::vector<sim::Job>& jobs, const sim::ClusterSpec& cluster) {
  for (auto& job : jobs) {
    job.nodes = std::clamp(job.nodes, 1, cluster.total_nodes);
    job.memory_gb = std::min(job.memory_gb, cluster.total_memory_gb);
  }
}

void register_paper_scenarios(ScenarioRegistry& registry) {
  for (const Scenario scenario : all_scenarios()) {
    const ScenarioSpec canonical(scenario);
    registry.add(
        {.name = canonical.base.name,
         .display_label = to_string(scenario),
         .doc = describe(scenario),
         .params = generator_params(),
         .generate = [scenario](const ScenarioStage& stage, std::size_t n, std::uint64_t seed,
                                const GenerateOptions& options) {
           return generate_paper_scenario(scenario, stage, n, seed, options);
         }});
  }
}

void register_trace_scenarios(ScenarioRegistry& registry) {
  registry.add(
      {.name = "swf",
       .display_label = "SWF trace",
       .doc = "Replay a Standard Workload Format file (Parallel Workloads Archive).",
       .params = {{"path", "string", "(required)", "SWF file to load."},
                  {"completed_only", "bool", "true",
                   "Keep only completed jobs (SWF status 1), like the paper's "
                   "preprocessing."},
                  {"max_jobs", "int", "0",
                   "Cap on accepted jobs; 0 defers to the grid's n_jobs axis."},
                  {"memory_gb_per_node", "double", "4",
                   "Memory per node when the trace reports none."},
                  {"horizon", "time", "0",
                   "Keep only jobs submitted before this offset (30d, 12h, 3600); 0 = all."}},
       .generate = [](const ScenarioStage& stage, std::size_t n, std::uint64_t /*seed*/,
                      const GenerateOptions& options) {
         const StageParamReader params(stage);
         SwfOptions swf_options;
         swf_options.completed_only = params.get_bool("completed_only", true);
         swf_options.default_memory_gb_per_node =
             params.get_double("memory_gb_per_node", 4.0, 0.0, 1e9);
         swf_options.max_nodes = options.cluster.total_nodes;
         auto jobs = load_swf(params.require_string("path"), swf_options);
         const double horizon = params.get_duration("horizon", 0.0);
         if (horizon > 0.0) {
           jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                                     [&](const sim::Job& j) { return j.submit_time >= horizon; }),
                      jobs.end());
         }
         const auto cap = static_cast<std::size_t>(params.get_int("max_jobs", 0, 0, 1 << 30));
         truncate_and_renumber(jobs, cap > 0 ? cap : n);
         clamp_to_cluster(jobs, options.cluster);
         return jobs;
       }});

  registry.add(
      {.name = "trace",
       .display_label = "CSV trace",
       .doc = "Replay a workload saved with workload::save_jobs (internal CSV format).",
       .params = {{"path", "string", "(required)", "Jobs CSV to load."},
                  {"max_jobs", "int", "0",
                   "Cap on replayed jobs; 0 defers to the grid's n_jobs axis."}},
       .generate = [](const ScenarioStage& stage, std::size_t n, std::uint64_t /*seed*/,
                      const GenerateOptions& options) {
         const StageParamReader params(stage);
         auto jobs = load_jobs(params.require_string("path"));
         // total-order: arrival_order breaks submit-time ties by unique JobId.
         std::sort(jobs.begin(), jobs.end(), sim::arrival_order);
         const auto cap = static_cast<std::size_t>(params.get_int("max_jobs", 0, 0, 1 << 30));
         truncate_and_renumber(jobs, cap > 0 ? cap : n);
         clamp_to_cluster(jobs, options.cluster);
         return jobs;
       }});

  registry.add(
      {.name = "polaris",
       .display_label = "Polaris",
       .doc = "Polaris-like raw trace substitute + the paper's Section 5 preprocessing.",
       .params = {{"interarrival", "double", "180",
                   "Busy-period mean interarrival of the raw submission process, seconds."}},
       .generate = [](const ScenarioStage& stage, std::size_t n, std::uint64_t seed,
                      const GenerateOptions& options) {
         const StageParamReader params(stage);
         PolarisTraceConfig config;
         config.mean_interarrival_s = params.get_double("interarrival", 180.0, 1e-3, 1e9);
         config.n_jobs = n + n / 2 + 20;  // post-filter count reaches n
         const auto raw = generate_polaris_raw_trace(config, seed);
         auto jobs = preprocess_polaris_trace(raw, n);
         clamp_to_cluster(jobs, options.cluster);
         return jobs;
       }});
}

void register_transforms(ScenarioRegistry& registry) {
  registry.add_transform(
      {.name = "perturb",
       .doc = "Re-draw walltime estimates: walltime = runtime x U(MIN:MAX).",
       .params = {{"walltime_noise", "range", "1:1",
                   "Estimate over-request factor range; 1:1 resets estimates to exact."}},
       .apply = [](std::vector<sim::Job>& jobs, const ScenarioStage& stage, util::Rng& rng,
                   GenerateOptions&) {
         const StageParamReader params(stage);
         const auto [lo, hi] = params.get_range("walltime_noise", 1.0, 1.0, 1.0);
         for (auto& job : jobs) {
           job.walltime = job.duration * (hi > lo ? rng.uniform_real(lo, hi) : lo);
         }
       }});

  registry.add_transform(
      {.name = "stretch",
       .doc = "Rescale offered load: submit times divide by `load`, then shift.",
       .params = {{"load", "double", "1",
                   "Load multiplier (>1 compresses arrivals, raising contention)."},
                  {"shift", "time", "0", "Constant added to every submit time (30m, 3600)."}},
       .apply = [](std::vector<sim::Job>& jobs, const ScenarioStage& stage, util::Rng&,
                   GenerateOptions&) {
         const StageParamReader params(stage);
         const double load = params.get_double("load", 1.0, 1e-6, 1e6);
         const double shift = params.get_duration("shift", 0.0);
         for (auto& job : jobs) job.submit_time = job.submit_time / load + shift;
       }});

  registry.add_transform(
      {.name = "dag",
       .doc = "Inject layered workflow dependencies over the arrival order.",
       .params = {{"depth", "int", "2", "Number of dependency layers (arrival-contiguous)."},
                  {"fanout", "int", "2", "Max dependencies drawn from the previous layer."},
                  {"prob", "double", "1",
                   "Probability a non-first-layer job gets dependencies at all."}},
       .apply = [](std::vector<sim::Job>& jobs, const ScenarioStage& stage, util::Rng& rng,
                   GenerateOptions&) {
         const StageParamReader params(stage);
         const auto depth = static_cast<std::size_t>(params.get_int("depth", 2, 2, 1 << 20));
         const auto fanout = static_cast<std::size_t>(params.get_int("fanout", 2, 1, 1 << 20));
         const double prob = params.get_double("prob", 1.0, 0.0, 1.0);
         const std::size_t n = jobs.size();
         const std::size_t layers = std::min(depth, n);
         if (layers < 2) return;
         // Layer l spans [l*n/layers, (l+1)*n/layers) of the arrival order,
         // so every dependency points at an earlier arrival.
         for (std::size_t l = 1; l < layers; ++l) {
           const std::size_t prev_begin = (l - 1) * n / layers;
           const std::size_t prev_end = l * n / layers;
           const std::size_t end = (l + 1) * n / layers;
           for (std::size_t i = l * n / layers; i < end; ++i) {
             if (prob < 1.0 && !rng.bernoulli(prob)) continue;
             std::set<sim::JobId> deps(jobs[i].dependencies.begin(),
                                       jobs[i].dependencies.end());
             for (std::size_t k = 0; k < fanout; ++k) {
               const auto pick = static_cast<std::size_t>(
                   rng.uniform_int(static_cast<std::int64_t>(prev_begin),
                                   static_cast<std::int64_t>(prev_end) - 1));
               deps.insert(jobs[pick].id);
             }
             jobs[i].dependencies.assign(deps.begin(), deps.end());
           }
         }
       }});

  registry.add_transform(
      {.name = "crop",
       .doc = "Keep the submit-time window [offset, offset+horizon), renumber ids.",
       .params = {{"horizon", "time", "0", "Window length (30d, 12h, 3600); 0 = unbounded."},
                  {"offset", "time", "0", "Window start; submit times shift down by this."}},
       .apply = [](std::vector<sim::Job>& jobs, const ScenarioStage& stage, util::Rng&,
                   GenerateOptions&) {
         const StageParamReader params(stage);
         const double horizon = params.get_duration("horizon", 0.0);
         const double offset = params.get_duration("offset", 0.0);
         jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                                   [&](const sim::Job& j) {
                                     return j.submit_time < offset ||
                                            (horizon > 0.0 &&
                                             j.submit_time >= offset + horizon);
                                   }),
                    jobs.end());
         for (auto& job : jobs) job.submit_time -= offset;
         truncate_and_renumber(jobs, 0);
       }});

  registry.add_transform(
      {.name = "cluster",
       .doc = "Override the cell's cluster capacity (applies to engine + generation).",
       .params = {{"nodes", "int", "0", "Total nodes; 0 keeps the configured value."},
                  {"memory_gb", "double", "0", "Total memory; 0 keeps the configured value."}},
       .apply = [](std::vector<sim::Job>& jobs, const ScenarioStage&, util::Rng&,
                   GenerateOptions& options) {
         // The capacity override itself is hoisted ahead of generation
         // (effective_cluster); at pipeline position the stage only
         // re-clamps, which keeps the fit guarantee even for hand-built
         // pipelines that shrink capacity mid-stream.
         clamp_to_cluster(jobs, options.cluster);
       }});
}

}  // namespace

void register_scenarios(ScenarioRegistry& registry) {
  register_paper_scenarios(registry);
  register_trace_scenarios(registry);
  register_transforms(registry);
}

}  // namespace reasched::workload
