#pragma once

#include <string>
#include <vector>

#include "sim/job.hpp"
#include "util/csv.hpp"

namespace reasched::workload {

/// Serialization of the library's internal job format to/from CSV, so
/// workloads can be saved, inspected, and replayed byte-identically.
/// Columns: job_id,user,group,submit_time,duration,walltime,nodes,
/// memory_gb,dependencies (';'-separated ids, may be empty).
util::CsvTable jobs_to_csv(const std::vector<sim::Job>& jobs);
std::vector<sim::Job> jobs_from_csv(const util::CsvTable& table);

void save_jobs(const std::vector<sim::Job>& jobs, const std::string& path);
std::vector<sim::Job> load_jobs(const std::string& path);

}  // namespace reasched::workload
