#include "workload/scenarios.hpp"

namespace reasched::workload {

sim::Job LongJobDominantGenerator::make_job(sim::JobId id, util::Rng& rng) const {
  sim::Job j;
  j.id = id;
  if (rng.bernoulli(0.2)) {
    // Extremely long, wide jobs (Section 3.1: 50,000 s on 128 nodes);
    // +-10% jitter so repetitions are not byte-identical.
    j.duration = 50000.0 * rng.uniform_real(0.9, 1.1);
    j.nodes = 128;
    j.memory_gb = 256.0;
  } else {
    j.duration = 500.0 * rng.uniform_real(0.8, 1.2);
    j.nodes = 2;
    j.memory_gb = 4.0;
  }
  j.walltime = j.duration;
  return j;
}

}  // namespace reasched::workload
