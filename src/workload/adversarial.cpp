#include "workload/scenarios.hpp"

#include <algorithm>

namespace reasched::workload {

sim::Job AdversarialGenerator::make_job(sim::JobId id, util::Rng& rng) const {
  // All jobs are small; post_process() turns the first into the blocker.
  sim::Job j;
  j.id = id;
  j.duration = 60.0 * rng.uniform_real(0.95, 1.05);
  j.walltime = j.duration;
  j.nodes = 1;
  j.memory_gb = rng.uniform_real(1.0, 4.0);
  return j;
}

void AdversarialGenerator::post_process(std::vector<sim::Job>& jobs, util::Rng& rng) const {
  (void)rng;
  if (jobs.empty()) return;
  // The convoy trap (Section 3.1): one large blocking job submitted first
  // (128 nodes, 100,000 s), then many 1-node jobs right behind it.
  auto first = std::min_element(jobs.begin(), jobs.end(),
                                [](const sim::Job& a, const sim::Job& b) {
                                  return sim::arrival_order(a, b);
                                });
  first->nodes = 128;
  first->memory_gb = 512.0;
  first->duration = 100000.0;
  first->walltime = first->duration;
}

}  // namespace reasched::workload
