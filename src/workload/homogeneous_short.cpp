#include "workload/scenarios.hpp"

namespace reasched::workload {

sim::Job HomogeneousShortGenerator::make_job(sim::JobId id, util::Rng& rng) const {
  sim::Job j;
  j.id = id;
  j.duration = rng.uniform_real(30.0, 120.0);
  j.walltime = j.duration;
  j.nodes = 2;
  j.memory_gb = 4.0;
  return j;
}

}  // namespace reasched::workload
