#pragma once

#include "workload/generator.hpp"

namespace reasched::workload {

/// Uniform 30-120 s jobs with 2 nodes / 4 GB: lightweight CI/test workloads.
class HomogeneousShortGenerator final : public WorkloadGenerator {
 public:
  Scenario scenario() const override { return Scenario::kHomogeneousShort; }

 protected:
  sim::Job make_job(sim::JobId id, util::Rng& rng) const override;
};

/// Gamma(1.5, 300) runtimes with varied node/memory demands: realistic
/// production environments. Used by the scalability (Fig. 4), overhead
/// (Figs. 5-6) and robustness (Fig. 7) analyses.
class HeterogeneousMixGenerator final : public WorkloadGenerator {
 public:
  Scenario scenario() const override { return Scenario::kHeterogeneousMix; }

 protected:
  sim::Job make_job(sim::JobId id, util::Rng& rng) const override;
};

/// 20% extremely long jobs (50,000 s, 128 nodes) among short jobs
/// (500 s, 2 nodes): tests convoy-effect handling.
class LongJobDominantGenerator final : public WorkloadGenerator {
 public:
  Scenario scenario() const override { return Scenario::kLongJobDominant; }

 protected:
  sim::Job make_job(sim::JobId id, util::Rng& rng) const override;
};

/// Large parallel jobs (64-256 nodes, Gamma walltime): tightly-coupled
/// simulations that fragment the node space.
class HighParallelismGenerator final : public WorkloadGenerator {
 public:
  Scenario scenario() const override { return Scenario::kHighParallelism; }

 protected:
  sim::Job make_job(sim::JobId id, util::Rng& rng) const override;
};

/// Lightweight jobs (1 node, <8 GB, 30-300 s): sparse workload efficiency.
class ResourceSparseGenerator final : public WorkloadGenerator {
 public:
  Scenario scenario() const override { return Scenario::kResourceSparse; }

 protected:
  sim::Job make_job(sim::JobId id, util::Rng& rng) const override;
};

/// Alternating bursts of short jobs and sparse long jobs with modest
/// demands: responsiveness under uneven durations.
class BurstyIdleGenerator final : public WorkloadGenerator {
 public:
  Scenario scenario() const override { return Scenario::kBurstyIdle; }

 protected:
  sim::Job make_job(sim::JobId id, util::Rng& rng) const override;
  void assign_arrivals(std::vector<sim::Job>& jobs, util::Rng& rng) const override;
};

/// One blocking job (128 nodes, 100,000 s) submitted first, followed by many
/// small jobs (1 node, 60 s): stress-tests convoy behaviour.
class AdversarialGenerator final : public WorkloadGenerator {
 public:
  Scenario scenario() const override { return Scenario::kAdversarial; }

 protected:
  sim::Job make_job(sim::JobId id, util::Rng& rng) const override;
  void post_process(std::vector<sim::Job>& jobs, util::Rng& rng) const override;
};

}  // namespace reasched::workload
