#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/job.hpp"
#include "workload/generator.hpp"
#include "workload/scenario_spec.hpp"

namespace reasched::workload {

/// An unbounded (or batch-bounded) arrival process assembled from a
/// ScenarioSpec base - the workload side of the online service mode. Where
/// `generate_scenario` materializes one finite batch, a stream *loops* the
/// spec: batch k is generated lazily from an independent derived seed, its
/// submit times are rate-scaled and offset past the previous batch, and its
/// jobs are emitted one at a time in arrival order. A looped Polaris/SWF
/// replay or a rate-doubled paper scenario is then just a StreamSpec.
struct StreamSpec {
  ScenarioSpec scenario;
  /// Jobs generated per batch; 0 means an empty stream (external submits
  /// only).
  std::size_t batch_jobs = 0;
  /// Number of batches to emit; 0 = loop forever (a genuinely endless
  /// daemon workload - drain() is then illegal, only advance()).
  std::size_t max_batches = 1;
  /// Arrival-rate multiplier: submit-time gaps are divided by this, so 2.0
  /// doubles the offered load without touching job shapes.
  double rate_scale = 1.0;
};

/// One pending stream emission: the job (with a stream-unique id) in
/// arrival order.
///
/// Stream ids are internal - `batch_index * batch_jobs + local_id` - and
/// unique across batches; the service assigns the engine-facing JobId at
/// admit time and remaps dependencies, so external submissions and stream
/// arrivals share one id space without coordination.
class ArrivalStream {
 public:
  /// `seed` scopes every batch's generation stream; `options` is the
  /// effective generation context (its cluster must be the cluster the
  /// engine runs - pass it through workload::effective_cluster first, as
  /// the sweep layer does).
  ArrivalStream(StreamSpec spec, std::uint64_t seed, GenerateOptions options);

  /// Next job in arrival order without consuming it; nullptr when the
  /// stream is exhausted. Generates the next batch lazily.
  const sim::Job* peek();
  /// Consume and return the next job; throws std::logic_error when
  /// exhausted.
  sim::Job pop();

  bool exhausted() { return peek() == nullptr; }
  /// True when max_batches == 0 (drain() would never terminate).
  bool endless() const { return spec_.max_batches == 0; }
  /// Jobs emitted so far.
  std::size_t emitted() const { return emitted_; }

  const StreamSpec& spec() const { return spec_; }

 private:
  void ensure_batch();

  StreamSpec spec_;
  std::uint64_t seed_;
  GenerateOptions options_;
  std::vector<sim::Job> batch_;   ///< current batch, arrival order, stream ids
  std::size_t cursor_ = 0;        ///< next emission within batch_
  std::size_t batch_index_ = 0;   ///< batches generated so far
  std::size_t emitted_ = 0;
  double time_offset_ = 0.0;      ///< start of the next batch's time window
};

/// Parse the stream knobs of a service config / CLI: the scenario spec
/// string plus batch size, batch count and rate scale. Central so the
/// service snapshot, the protocol layer and the reasched_service CLI agree
/// on one encoding.
StreamSpec make_stream_spec(const std::string& scenario, std::size_t batch_jobs,
                            std::size_t max_batches, double rate_scale);

}  // namespace reasched::workload
