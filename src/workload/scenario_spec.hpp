#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/job.hpp"
#include "util/rng.hpp"
#include "util/spec_grammar.hpp"
#include "workload/generator.hpp"

namespace reasched::workload {

/// The scenario axis as data - the mirror image of `harness::MethodSpec`.
/// A spec is a base workload source followed by an optional pipeline of
/// composable transforms, round-trippable through a compact string:
///
///   spec      := base ( '|' transform )*
///   base      := stage | 'mix(' spec ':' weight ( ',' spec ':' weight )* ')'
///   transform := stage
///   stage     := name [ '?' key '=' value ( '&' key '=' value )* ]
///
/// e.g. `bursty_idle`, `hetero_mix?walltime_noise=1.0:3.0&rate_scale=2.0`,
/// `swf?path=trace.swf&horizon=30d`, `mix(long_job:0.2,resource_sparse:0.8)`,
/// `adversarial|perturb?walltime_noise=1.5:3.0|dag?fanout=4&depth=3`.
/// Reserved characters inside values (`& = ? | ( ) ,` whitespace `%`)
/// travel percent-encoded; the value grammar is shared with MethodSpec
/// (util/spec_grammar). Inside `mix(...)` a `:` in a parameter value must
/// additionally be encoded (`walltime_noise=1.0%3a3.0:0.7`) - a raw one is
/// rejected as ambiguous with the weight separator, and the canonical
/// serializer always writes the encoded form. (A component whose *final*
/// raw-colon value doubles as a plausible weight - `a?load=2:3` - parses
/// as load=2 with weight 3; when in doubt, encode.) Parameters are typed and validated when the
/// registry generates the workload, not at parse time. Ordering and
/// equality are value semantics, so a ScenarioSpec is a grid-axis key
/// everywhere the harness used to key by the `workload::Scenario` enum.

/// Thrown for every user-input error in the scenario-spec layer: grammar
/// violations, unknown scenario/transform names, unknown or ill-typed
/// parameters, and transform outputs that break the cluster-fit guarantee.
class ScenarioSpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// One pipeline stage: a base workload source or a transform operator.
struct ScenarioStage {
  std::string name;
  std::map<std::string, std::string> params;

  std::string to_string() const { return util::spec_stage_to_string(name, params); }
  const std::string* find_param(const std::string& key) const;

  friend bool operator==(const ScenarioStage& a, const ScenarioStage& b) {
    return a.name == b.name && a.params == b.params;
  }
  friend bool operator<(const ScenarioStage& a, const ScenarioStage& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.params < b.params;
  }
};

struct MixComponent;

struct ScenarioSpec {
  /// Base workload source. `base.name == "mix"` means the base is the
  /// weighted combination in `components` instead of a registered generator.
  ScenarioStage base;
  std::vector<MixComponent> components;
  /// Transform stages applied left to right after the base.
  std::vector<ScenarioStage> pipeline;

  ScenarioSpec() = default;
  /// Enum shim: the canonical, parameter-free spec of a paper scenario.
  ScenarioSpec(Scenario s);  // NOLINT(google-explicit-constructor)
  /// Parsing constructors so spec literals drop in wherever a scenario is
  /// expected (`config.scenarios = {"bursty_idle", "mix(long_job:0.2,...)"}`).
  /// Throw ScenarioSpecError on grammar violations.
  ScenarioSpec(const std::string& spec);  // NOLINT(google-explicit-constructor)
  ScenarioSpec(const char* spec);         // NOLINT(google-explicit-constructor)

  static ScenarioSpec parse(std::string_view spec);

  /// Canonical compact form; parse(to_string()) == *this for every valid
  /// spec, and generation from the re-parsed spec is bit-identical.
  std::string to_string() const;

  bool is_mix() const { return base.name == "mix"; }

  friend bool operator==(const ScenarioSpec& a, const ScenarioSpec& b);
  friend bool operator!=(const ScenarioSpec& a, const ScenarioSpec& b) { return !(a == b); }
  friend bool operator<(const ScenarioSpec& a, const ScenarioSpec& b);
};

/// One weighted component of a `mix(...)` base. Weights are relative; the
/// registry normalizes them and splits the requested job count by largest
/// remainder, so `mix(a:1,b:1)` and `mix(a:0.5,b:0.5)` are the same split
/// (but distinct axis keys - canonicalization preserves the written form).
struct MixComponent {
  ScenarioSpec spec;
  double weight = 1.0;
};

/// Typed access to a stage's parameter bag, used by registered builders and
/// transforms. Every getter throws ScenarioSpecError naming the stage, the
/// key and the offending value when a present parameter fails to parse;
/// absent keys yield the fallback.
class StageParamReader {
 public:
  explicit StageParamReader(const ScenarioStage& stage) : stage_(&stage) {}

  long long get_int(const std::string& key, long long fallback, long long min_value = 0,
                    long long max_value = std::numeric_limits<long long>::max()) const;
  double get_double(const std::string& key, double fallback, double min_value,
                    double max_value) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;
  /// Required-string form: throws when the key is absent.
  std::string require_string(const std::string& key) const;
  /// `MIN:MAX` range of doubles (e.g. `walltime_noise=1.0:3.0`); a single
  /// value V is accepted as V:V. Requires min_value <= MIN <= MAX.
  std::pair<double, double> get_range(const std::string& key, double fallback_min,
                                      double fallback_max, double min_value) const;
  /// Duration in seconds with optional unit suffix: `90`, `30m`, `12h`,
  /// `30d` (s/m/h/d). Returns `fallback` when absent.
  double get_duration(const std::string& key, double fallback) const;

 private:
  [[noreturn]] void fail(const std::string& key, const std::string& expected) const;
  const ScenarioStage* stage_;
};

/// One registered base workload source: canonical name, display label
/// (matches the legacy `workload::to_string(Scenario)` for the seven paper
/// scenarios, which keeps every derived seed bit-identical), declared
/// parameters and the generator turning (stage, n, seed, options) into jobs.
struct ScenarioInfo {
  std::string name;           ///< canonical registry key, e.g. "hetero_mix"
  std::string display_label;  ///< presentation label, e.g. "Heterogeneous Mix"
  std::string doc;            ///< one-line description for --list-scenarios
  std::vector<util::SpecParamInfo> params;
  std::function<std::vector<sim::Job>(const ScenarioStage&, std::size_t n, std::uint64_t seed,
                                      const GenerateOptions&)>
      generate;
};

/// One registered transform operator. `apply` mutates the job vector in
/// place; `rng` is an independent deterministic stream derived from the
/// generation seed and the stage's pipeline position, and `options` is the
/// effective generation context (its cluster reflects `cluster?...`
/// overrides). Every transform must preserve the cluster-fit guarantee -
/// generate_scenario() re-checks it after each stage and throws naming the
/// offending stage.
struct TransformInfo {
  std::string name;
  std::string doc;
  std::vector<util::SpecParamInfo> params;
  std::function<void(std::vector<sim::Job>&, const ScenarioStage&, util::Rng&,
                     GenerateOptions&)>
      apply;
};

/// String-keyed registry of base scenarios and transform operators. The
/// built-ins self-register on first use of `instance()`
/// (workload::register_scenarios); extensions may `add()` more at startup.
/// The registry freezes at the first lookup: reads are lock-free and the
/// sweep layer reads from worker threads, so a late `add()` (after any
/// find/at/names/validate/describe/generate) throws std::logic_error
/// instead of racing the readers.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  /// Register a base scenario / transform; throws std::logic_error on
  /// duplicate or empty names, missing callbacks, or registration after the
  /// registry froze.
  void add(ScenarioInfo info);
  void add_transform(TransformInfo info);

  const ScenarioInfo* find(const std::string& name) const;
  const ScenarioInfo& at(const std::string& name) const;
  const TransformInfo* find_transform(const std::string& name) const;
  const TransformInfo& at_transform(const std::string& name) const;
  std::vector<std::string> names() const;
  std::vector<std::string> transform_names() const;

  /// Validate names and declared parameter keys across the whole spec
  /// (base, mix components recursively, every pipeline stage) without
  /// generating - CLI fail-fast before any cell runs.
  void validate(const ScenarioSpec& spec) const;

  /// Human-readable listing of scenarios and transforms with parameters and
  /// defaults (`compare_schedulers --list-scenarios`).
  std::string describe() const;

  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

 private:
  void freeze() const { frozen_.store(true, std::memory_order_release); }
  void check_open(const std::string& what) const;

  std::map<std::string, ScenarioInfo> scenarios_;
  std::map<std::string, TransformInfo> transforms_;
  mutable std::atomic<bool> frozen_{false};
};

/// Generate the workload a spec describes: resolve the base (recursively
/// for `mix`), then run the transform pipeline. Deterministic: identical
/// (spec, n, seed, options) always yields identical jobs, and a spec
/// re-parsed from its canonical to_string() generates bit-identically.
/// The cluster-fit guarantee (every job fits `effective_cluster(spec,
/// options.cluster)`) is asserted after the base and after every transform.
std::vector<sim::Job> generate_scenario(const ScenarioSpec& spec, std::size_t n,
                                        std::uint64_t seed,
                                        const GenerateOptions& options = {});

/// The cluster a spec's cell actually runs on: `base` with every top-level
/// `cluster?...` override applied in pipeline order. The sweep layer gives
/// this cluster to both the generator and the engine, so generation-side
/// clamping and engine-side capacity always agree. Overrides inside mix
/// components affect only that component's generation, never the engine.
sim::ClusterSpec effective_cluster(const ScenarioSpec& spec, sim::ClusterSpec base);

/// Presentation label: the registry display label plus the parameter/
/// pipeline suffix for a plain registered base (`Heterogeneous Mix`,
/// `Bursty + Idle?rate_scale=2`); the canonical spec string for everything
/// else (mix, pipelines, unregistered labels). Identical to the legacy
/// `workload::to_string(Scenario)` for the seven canonical specs, which
/// keeps `cell_jobs`/`cell_seed` derivations - and therefore all recorded
/// results - bit-identical across the redesign.
std::string scenario_label(const ScenarioSpec& spec);

/// Drop later duplicates (value equality), preserving first-seen order -
/// the sweep's scenario-axis semantics, mirroring dedup_methods.
std::vector<ScenarioSpec> dedup_scenarios(const std::vector<ScenarioSpec>& scenarios);

/// The seven paper scenarios as their canonical specs, presentation order.
const std::vector<ScenarioSpec>& paper_scenario_specs();

}  // namespace reasched::workload
