#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reasched::workload {

void assign_poisson_arrivals(std::vector<sim::Job>& jobs, double mean_interarrival,
                             util::Rng& rng) {
  double t = 0.0;
  for (auto& job : jobs) {
    job.submit_time = t;
    t += rng.exponential(mean_interarrival);
  }
}

void assign_static_arrivals(std::vector<sim::Job>& jobs) {
  for (auto& job : jobs) job.submit_time = 0.0;
}

void assign_diurnal_arrivals(std::vector<sim::Job>& jobs, double base_interarrival,
                             double day_length, double peak_factor, util::Rng& rng) {
  if (base_interarrival <= 0.0 || day_length <= 0.0 || peak_factor < 1.0) {
    throw std::invalid_argument("assign_diurnal_arrivals: bad parameters");
  }
  // Thinning-free approximation: draw each gap at the *current* intensity.
  // intensity(t) in [1, peak_factor], peaking at t = day_length/4 (mid-day).
  auto intensity = [&](double t) {
    const double phase = 2.0 * M_PI * t / day_length;
    return 1.0 + (peak_factor - 1.0) * 0.5 * (1.0 + std::sin(phase));
  };
  double t = 0.0;
  for (auto& job : jobs) {
    job.submit_time = t;
    t += rng.exponential(base_interarrival / intensity(t));
  }
}

void assign_bursty_arrivals(std::vector<sim::Job>& jobs, std::size_t burst_size,
                            double within_burst, double idle_gap, util::Rng& rng) {
  double t = 0.0;
  std::size_t in_burst = 0;
  for (auto& job : jobs) {
    job.submit_time = t;
    ++in_burst;
    if (in_burst >= burst_size) {
      in_burst = 0;
      t += idle_gap + rng.exponential(idle_gap * 0.5);
    } else {
      t += rng.exponential(within_burst);
    }
  }
}

}  // namespace reasched::workload
