#pragma once

#include <cstdint>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/job.hpp"
#include "util/csv.hpp"

namespace reasched::workload {

/// Substitute for the proprietary Polaris (ALCF) November-2024 job-history
/// logs used in paper Section 5. We cannot ship the real trace, so this
/// module provides (a) a statistically Polaris-like raw-trace generator in
/// the shape of the public job-history logs, and (b) the paper's exact
/// preprocessing pipeline, which also accepts a real trace CSV if one is
/// available. See DESIGN.md "Substitutions" for the fidelity argument.
///
/// Raw-trace columns:
///   JOB_NAME, USER, GROUP, SUBMIT_TIMESTAMP, START_TIMESTAMP,
///   END_TIMESTAMP, NODES_REQUESTED, WALLTIME_SECONDS, QUEUED_WAIT_SECONDS,
///   EXIT_STATUS
/// Timestamps are Unix epoch seconds. EXIT_STATUS -1 marks failed jobs
/// (filtered by preprocessing, as in the paper).
struct PolarisTraceConfig {
  std::size_t n_jobs = 140;  ///< raw rows; ~8% fail and are filtered out
  double failed_fraction = 0.08;
  /// Busy-period submission rate; produces the queueing contention that
  /// makes the Figure 8 comparison non-trivial (an idle-at-zero cluster
  /// absorbs sparse arrivals with zero waits for every scheduler).
  double mean_interarrival_s = 180.0;
  int n_users = 20;
  int n_groups = 6;
  /// Nov 1 2024 00:00:00 UTC.
  std::int64_t epoch_start = 1730419200;
};

/// Generate a raw Polaris-like trace (deterministic in `seed`).
util::CsvTable generate_polaris_raw_trace(const PolarisTraceConfig& config, std::uint64_t seed);

/// The paper's preprocessing (Section 5): drop EXIT_STATUS == -1, sort by
/// submission, keep the first `max_jobs` completed jobs, normalize
/// timestamps relative to the earliest submission, factorize user/group
/// to anonymous ids, take node count as-is and derive memory as
/// nodes x 512 GB. Durations come from START/END (actual runtime); the
/// requested WALLTIME_SECONDS is preserved as the scheduler-visible
/// estimate.
std::vector<sim::Job> preprocess_polaris_trace(const util::CsvTable& raw, std::size_t max_jobs);

/// Convenience: generate + preprocess `n_jobs` ready-to-simulate jobs.
std::vector<sim::Job> polaris_jobs(std::size_t n_jobs, std::uint64_t seed);

}  // namespace reasched::workload
