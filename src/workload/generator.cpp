#include "workload/generator.hpp"

#include <algorithm>
#include <stdexcept>

#include "workload/arrival.hpp"
#include "workload/scenarios.hpp"

namespace reasched::workload {

std::vector<sim::Job> WorkloadGenerator::generate(std::size_t n, std::uint64_t seed,
                                                  const GenerateOptions& options) const {
  if (options.walltime_factor_min > options.walltime_factor_max ||
      options.walltime_factor_min < 1.0) {
    throw std::invalid_argument("GenerateOptions: walltime factors need 1 <= min <= max");
  }
  util::Rng rng(util::derive_seed(seed, name()));
  // Walltime noise draws from its own derived stream so the base workload
  // (resources, durations, users, arrivals) is bit-identical across noise
  // settings - estimate-noise experiments stay paired.
  util::Rng noise_rng(util::derive_seed(seed, name(), /*index=*/0x57a11));
  // Cluster caps hoisted out of the per-job loop: the fit guarantee (every
  // job schedulable in principle) clamps against these two constants, and
  // transform operators must preserve it - generate_scenario() re-asserts
  // the same bounds after every pipeline stage.
  const int max_nodes = options.cluster.total_nodes;
  const double max_memory_gb = options.cluster.total_memory_gb;
  const bool noisy_walltime = options.walltime_factor_max > 1.0;
  std::vector<sim::Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sim::Job job = make_job(static_cast<sim::JobId>(i + 1), rng);
    job.id = static_cast<sim::JobId>(i + 1);
    job.nodes = std::clamp(job.nodes, 1, max_nodes);
    job.memory_gb = std::clamp(job.memory_gb, 0.5, max_memory_gb);
    job.duration = std::max(1.0, job.duration);
    if (job.walltime <= 0.0) job.walltime = job.duration;
    if (noisy_walltime) {
      job.walltime = job.duration * noise_rng.uniform_real(options.walltime_factor_min,
                                                           options.walltime_factor_max);
    }
    jobs.push_back(job);
  }
  assign_users(jobs, user_model_, rng);
  if (options.arrival_mode == ArrivalMode::kPoisson) {
    assign_arrivals(jobs, rng);
  } else {
    assign_static_arrivals(jobs);
  }
  post_process(jobs, rng);
  // total-order: arrival_order breaks submit-time ties by unique JobId.
  std::sort(jobs.begin(), jobs.end(), sim::arrival_order);
  return jobs;
}

void WorkloadGenerator::assign_arrivals(std::vector<sim::Job>& jobs, util::Rng& rng) const {
  assign_poisson_arrivals(jobs, mean_interarrival_seconds(scenario()), rng);
}

void WorkloadGenerator::post_process(std::vector<sim::Job>& jobs, util::Rng& rng) const {
  (void)jobs;
  (void)rng;
}

std::unique_ptr<WorkloadGenerator> make_generator(Scenario s) {
  switch (s) {
    case Scenario::kHomogeneousShort: return std::make_unique<HomogeneousShortGenerator>();
    case Scenario::kHeterogeneousMix: return std::make_unique<HeterogeneousMixGenerator>();
    case Scenario::kLongJobDominant: return std::make_unique<LongJobDominantGenerator>();
    case Scenario::kHighParallelism: return std::make_unique<HighParallelismGenerator>();
    case Scenario::kResourceSparse: return std::make_unique<ResourceSparseGenerator>();
    case Scenario::kBurstyIdle: return std::make_unique<BurstyIdleGenerator>();
    case Scenario::kAdversarial: return std::make_unique<AdversarialGenerator>();
  }
  throw std::invalid_argument("make_generator: unknown scenario");
}

const std::vector<std::size_t>& paper_job_counts() {
  static const std::vector<std::size_t> v = {10, 20, 40, 60, 80, 100};
  return v;
}

}  // namespace reasched::workload
