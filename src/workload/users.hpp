#pragma once

#include <vector>

#include "sim/job.hpp"
#include "util/rng.hpp"

namespace reasched::workload {

/// Assigns user / group metadata to generated jobs. Real HPC traces show a
/// heavy-tailed activity distribution (a few power users submit most jobs),
/// which we model with Zipf-like weights - this is what makes the per-user
/// Jain fairness objective (Section 3.2) non-trivial.
struct UserModel {
  int n_users = 8;
  int n_groups = 3;
  /// Zipf exponent for user activity (0 = uniform).
  double zipf_s = 0.8;
};

void assign_users(std::vector<sim::Job>& jobs, const UserModel& model, util::Rng& rng);

/// Zipf weight vector w_i = 1/(i+1)^s, i in [0, n).
std::vector<double> zipf_weights(int n, double s);

}  // namespace reasched::workload
