#pragma once

#include <optional>
#include <string>
#include <vector>

namespace reasched::workload {

/// The seven benchmark scenarios of paper Section 3.1, each reflecting a
/// distinct operational pattern observed in real job traces.
enum class Scenario {
  kHomogeneousShort,
  kHeterogeneousMix,
  kLongJobDominant,
  kHighParallelism,
  kResourceSparse,
  kBurstyIdle,
  kAdversarial,
};

/// All seven, in the paper's presentation order.
const std::vector<Scenario>& all_scenarios();

/// The six scenarios of Figure 3 (Heterogeneous Mix is covered separately by
/// the scalability analysis, Section 3.6).
const std::vector<Scenario>& figure3_scenarios();

std::string to_string(Scenario s);
std::string describe(Scenario s);
std::optional<Scenario> scenario_from_string(const std::string& name);

/// Scenario-specific mean interarrival time in seconds (1/lambda of the
/// Poisson submission process, Section 3.1).
double mean_interarrival_seconds(Scenario s);

}  // namespace reasched::workload
