#pragma once

namespace reasched::workload {

class ScenarioRegistry;

/// Register the built-in scenario axis: the seven paper generators
/// (Section 3.1), the trace-backed bases (swf / trace / polaris) and the
/// composable transform operators (perturb, stretch, dag, crop, cluster).
/// Called once by ScenarioRegistry::instance().
void register_scenarios(ScenarioRegistry& registry);

}  // namespace reasched::workload
