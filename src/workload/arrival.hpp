#pragma once

#include <vector>

#include "sim/job.hpp"
#include "util/rng.hpp"

namespace reasched::workload {

/// Poisson submission process (Section 3.1): exponential interarrivals with
/// the given mean; the first job arrives at t=0 so every run starts with
/// work available.
void assign_poisson_arrivals(std::vector<sim::Job>& jobs, double mean_interarrival,
                             util::Rng& rng);

/// All jobs submitted simultaneously at t=0 (the static formulation of
/// Section 3.3, s_j = 0 for all j).
void assign_static_arrivals(std::vector<sim::Job>& jobs);

/// Bursts of `burst_size` jobs with `within_burst` mean spacing, separated
/// by `idle_gap` mean idle periods - the Bursty + Idle pattern.
void assign_bursty_arrivals(std::vector<sim::Job>& jobs, std::size_t burst_size,
                            double within_burst, double idle_gap, util::Rng& rng);

/// Non-homogeneous Poisson process with a sinusoidal day/night cycle, the
/// dominant pattern in production submission logs: the instantaneous rate
/// oscillates between the base rate and `peak_factor` x base over each
/// `day_length` period (peak at mid-"day", trough at mid-"night").
void assign_diurnal_arrivals(std::vector<sim::Job>& jobs, double base_interarrival,
                             double day_length, double peak_factor, util::Rng& rng);

}  // namespace reasched::workload
