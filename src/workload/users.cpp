#include "workload/users.hpp"

#include <cmath>

namespace reasched::workload {

std::vector<double> zipf_weights(int n, double s) {
  std::vector<double> w;
  w.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    w.push_back(1.0 / std::pow(static_cast<double>(i + 1), s));
  }
  return w;
}

void assign_users(std::vector<sim::Job>& jobs, const UserModel& model, util::Rng& rng) {
  const auto weights = zipf_weights(model.n_users, model.zipf_s);
  for (auto& job : jobs) {
    job.user = static_cast<sim::UserId>(rng.weighted_index(weights)) + 1;
    job.group = static_cast<sim::GroupId>((job.user - 1) % model.n_groups) + 1;
  }
}

}  // namespace reasched::workload
