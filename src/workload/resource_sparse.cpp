#include "workload/scenarios.hpp"

namespace reasched::workload {

sim::Job ResourceSparseGenerator::make_job(sim::JobId id, util::Rng& rng) const {
  sim::Job j;
  j.id = id;
  // Lightweight: 1 node, <8 GB, 30-300 s (Section 3.1).
  j.nodes = 1;
  j.memory_gb = rng.uniform_real(0.5, 8.0);
  j.duration = rng.uniform_real(30.0, 300.0);
  j.walltime = j.duration;
  return j;
}

}  // namespace reasched::workload
