#include "workload/scenarios.hpp"

namespace reasched::workload {

sim::Job HeterogeneousMixGenerator::make_job(sim::JobId id, util::Rng& rng) const {
  sim::Job j;
  j.id = id;
  // Paper Section 3.1: runtimes ~ Gamma(shape=1.5, scale=300) seconds.
  j.duration = std::max(10.0, rng.gamma(1.5, 300.0));
  j.walltime = j.duration;
  // Node demand mixes serial, small-parallel and wide jobs - power-of-two
  // biased, with enough wide jobs that head-of-line blocking fragments FCFS
  // (the contention that differentiates schedulers at scale, Section 3.6).
  static const int kNodeChoices[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  static const std::vector<double> kNodeWeights = {16, 15, 13, 12, 12, 11, 9, 7, 5};
  j.nodes = kNodeChoices[rng.weighted_index(kNodeWeights)];
  // Memory loosely correlated with nodes: between 1 and 8 GB per node.
  const double per_node_gb = rng.uniform_real(1.0, 8.0);
  j.memory_gb = std::min(2048.0, static_cast<double>(j.nodes) * per_node_gb);
  return j;
}

}  // namespace reasched::workload
