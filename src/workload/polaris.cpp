#include "workload/polaris.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/string_utils.hpp"
#include "workload/users.hpp"

namespace reasched::workload {

namespace {

const std::vector<std::string> kRawHeader = {
    "JOB_NAME",        "USER",
    "GROUP",           "SUBMIT_TIMESTAMP",
    "START_TIMESTAMP", "END_TIMESTAMP",
    "NODES_REQUESTED", "WALLTIME_SECONDS",
    "QUEUED_WAIT_SECONDS", "EXIT_STATUS"};

int draw_polaris_nodes(util::Rng& rng) {
  // Power-of-two-biased node counts observed on leadership-class machines;
  // capped by the 560-node Polaris partition. Wide jobs carry enough weight
  // that the partition saturates during busy periods.
  static const int kChoices[] = {1, 2, 4, 8, 10, 16, 32, 64, 128, 256, 496};
  static const std::vector<double> kWeights = {16, 13, 12, 11, 8, 10, 10, 9, 6, 4, 1};
  return kChoices[rng.weighted_index(kWeights)];
}

}  // namespace

util::CsvTable generate_polaris_raw_trace(const PolarisTraceConfig& config, std::uint64_t seed) {
  util::Rng rng(util::derive_seed(seed, "polaris-trace"));
  util::CsvTable t(kRawHeader);

  const auto user_weights = zipf_weights(config.n_users, 1.0);
  double submit = static_cast<double>(config.epoch_start);
  for (std::size_t i = 0; i < config.n_jobs; ++i) {
    const int user = static_cast<int>(rng.weighted_index(user_weights)) + 1;
    const int group = (user - 1) % config.n_groups + 1;
    const int nodes = draw_polaris_nodes(rng);
    // Runtime: heavy-tailed log-normal, 1 minute to 24 hours.
    const double runtime = std::clamp(rng.lognormal(std::log(1800.0), 1.2), 60.0, 86400.0);
    // Users over-request walltime by 5%-300%.
    const double walltime = runtime * rng.uniform_real(1.05, 3.0);
    const double wait = rng.exponential(600.0);
    const bool failed = rng.bernoulli(config.failed_fraction);

    const double start = submit + wait;
    // Failed jobs die early - a fraction of their requested time.
    const double end = start + (failed ? runtime * rng.uniform_real(0.01, 0.5) : runtime);

    t.add_row({util::format("job_%zu", i + 1), util::format("polaris_user_%02d", user),
               util::format("alloc_group_%d", group), util::format("%.0f", submit),
               util::format("%.0f", start), util::format("%.0f", end), std::to_string(nodes),
               util::format("%.0f", walltime), util::format("%.0f", wait),
               failed ? "-1" : "0"});

    submit += rng.exponential(config.mean_interarrival_s);
  }
  return t;
}

std::vector<sim::Job> preprocess_polaris_trace(const util::CsvTable& raw, std::size_t max_jobs) {
  struct Row {
    double submit, start, end, walltime;
    int nodes;
    std::string user, group;
  };
  std::vector<Row> rows;
  rows.reserve(raw.rows());
  for (std::size_t i = 0; i < raw.rows(); ++i) {
    // The paper filters failed jobs (EXIT_STATUS == -1) before everything.
    const auto status = util::parse_int(raw.cell(i, "EXIT_STATUS"));
    if (!status || *status == -1) continue;
    Row r;
    auto num = [&](const char* col) {
      const auto v = util::parse_double(raw.cell(i, col));
      if (!v) throw std::runtime_error(util::format("polaris trace row %zu: bad %s", i, col));
      return *v;
    };
    r.submit = num("SUBMIT_TIMESTAMP");
    r.start = num("START_TIMESTAMP");
    r.end = num("END_TIMESTAMP");
    r.walltime = num("WALLTIME_SECONDS");
    r.nodes = static_cast<int>(num("NODES_REQUESTED"));
    r.user = raw.cell(i, "USER");
    r.group = raw.cell(i, "GROUP");
    if (r.end <= r.start || r.nodes < 1) continue;  // malformed rows dropped
    rows.push_back(std::move(r));
  }
  // Keyed on submit alone, so ties (same-second submissions) must keep raw
  // row order for the assigned JobIds to be deterministic - same fix as
  // parse_swf.
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.submit < b.submit;
  });
  if (rows.size() > max_jobs) rows.resize(max_jobs);  // contiguous completed segment
  if (rows.empty()) return {};

  const double t0 = rows.front().submit;  // normalize relative to earliest submission
  std::map<std::string, int> user_ids, group_ids;
  std::vector<sim::Job> jobs;
  jobs.reserve(rows.size());
  const sim::ClusterSpec polaris = sim::ClusterSpec::polaris();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    sim::Job j;
    j.id = static_cast<sim::JobId>(i + 1);
    j.user = user_ids.emplace(r.user, static_cast<int>(user_ids.size()) + 1).first->second;
    j.group = group_ids.emplace(r.group, static_cast<int>(group_ids.size()) + 1).first->second;
    j.submit_time = r.submit - t0;
    j.duration = r.end - r.start;
    j.walltime = std::max(r.walltime, j.duration);
    j.nodes = std::min(r.nodes, polaris.total_nodes);
    j.memory_gb = static_cast<double>(j.nodes) * 512.0;  // 512 GB per Polaris node
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<sim::Job> polaris_jobs(std::size_t n_jobs, std::uint64_t seed) {
  PolarisTraceConfig config;
  // Generate enough raw rows that the post-filter count reaches n_jobs.
  config.n_jobs = n_jobs + n_jobs / 2 + 20;
  const auto raw = generate_polaris_raw_trace(config, seed);
  auto jobs = preprocess_polaris_trace(raw, n_jobs);
  if (jobs.size() < n_jobs) {
    throw std::runtime_error("polaris_jobs: generated trace too small after filtering");
  }
  return jobs;
}

}  // namespace reasched::workload
