#include "workload/scenarios.hpp"

#include "workload/arrival.hpp"

namespace reasched::workload {

sim::Job BurstyIdleGenerator::make_job(sim::JobId id, util::Rng& rng) const {
  sim::Job j;
  j.id = id;
  // Alternate between short interactive-style jobs and long-running jobs
  // with modest per-job demands (Section 3.1). Demands are sized so a burst
  // collectively oversubscribes the 256-node partition - the volatility
  // that differentiates schedulers in this scenario.
  if (rng.bernoulli(0.6)) {
    j.duration = rng.uniform_real(60.0, 240.0);
  } else {
    j.duration = rng.uniform_real(1800.0, 7200.0);
  }
  j.walltime = j.duration;
  j.nodes = static_cast<int>(rng.uniform_int(8, 48));
  j.memory_gb = rng.uniform_real(16.0, 128.0);
  return j;
}

void BurstyIdleGenerator::assign_arrivals(std::vector<sim::Job>& jobs, util::Rng& rng) const {
  // Bursts of ~16 jobs arriving seconds apart (together demanding ~2x the
  // node capacity), separated by long idle gaps.
  assign_bursty_arrivals(jobs, /*burst_size=*/16, /*within_burst=*/5.0,
                         /*idle_gap=*/1800.0, rng);
}

}  // namespace reasched::workload
