#include "workload/scenario_spec.hpp"

#include <algorithm>
#include <charconv>
#include <set>
#include <tuple>

#include "util/string_utils.hpp"
#include "workload/scenario_registration.hpp"

namespace reasched::workload {

namespace {

std::string canonical_name(Scenario s) {
  switch (s) {
    case Scenario::kHomogeneousShort: return "homog_short";
    case Scenario::kHeterogeneousMix: return "hetero_mix";
    case Scenario::kLongJobDominant: return "long_job";
    case Scenario::kHighParallelism: return "high_parallel";
    case Scenario::kResourceSparse: return "resource_sparse";
    case Scenario::kBurstyIdle: return "bursty_idle";
    case Scenario::kAdversarial: return "adversarial";
  }
  throw std::invalid_argument("ScenarioSpec: unknown Scenario enumerator");
}

/// Weights print in std::to_chars' shortest round-trip form ("0.2" stays
/// "0.2", full precision kept when needed), so parse(to_string()) preserves
/// the exact double - the canonical string is the cell's durable identity
/// and must reconstruct the identical largest-remainder split.
std::string format_weight(double w) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), w);
  return std::string(buf, result.ptr);
}

[[noreturn]] void grammar_error(const std::string& message) { throw ScenarioSpecError(message); }

ScenarioStage to_stage(util::ParsedStage&& parsed) {
  return ScenarioStage{std::move(parsed.name), std::move(parsed.params)};
}

/// Does `s` contain a raw paren-depth-0 ':' anywhere after a depth-0 '?'
/// (i.e. inside a parameter section)? Inside mix(...) such a colon is
/// indistinguishable from the spec:weight separator, so it must travel
/// percent-encoded; the serializer below writes it that way and the parser
/// rejects the raw form instead of silently mis-splitting.
bool has_raw_param_colon(std::string_view s) {
  int depth = 0;
  bool in_params = false;
  for (const char c : s) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth != 0) continue;
    if (c == '?') in_params = true;
    if (c == ':' && in_params) return true;
  }
  return false;
}

/// Three-way value comparison used by both operator< and operator==.
int compare(const ScenarioSpec& a, const ScenarioSpec& b);

int compare_stage(const ScenarioStage& a, const ScenarioStage& b) {
  if (a.name != b.name) return a.name < b.name ? -1 : 1;
  if (a.params != b.params) return a.params < b.params ? -1 : 1;
  return 0;
}

int compare(const ScenarioSpec& a, const ScenarioSpec& b) {
  if (const int c = compare_stage(a.base, b.base); c != 0) return c;
  if (a.components.size() != b.components.size()) {
    return a.components.size() < b.components.size() ? -1 : 1;
  }
  for (std::size_t i = 0; i < a.components.size(); ++i) {
    if (const int c = compare(a.components[i].spec, b.components[i].spec); c != 0) return c;
    if (a.components[i].weight != b.components[i].weight) {
      return a.components[i].weight < b.components[i].weight ? -1 : 1;
    }
  }
  if (a.pipeline.size() != b.pipeline.size()) {
    return a.pipeline.size() < b.pipeline.size() ? -1 : 1;
  }
  for (std::size_t i = 0; i < a.pipeline.size(); ++i) {
    if (const int c = compare_stage(a.pipeline[i], b.pipeline[i]); c != 0) return c;
  }
  return 0;
}

}  // namespace

const std::string* ScenarioStage::find_param(const std::string& key) const {
  const auto it = params.find(key);
  return it == params.end() ? nullptr : &it->second;
}

ScenarioSpec::ScenarioSpec(Scenario s) { base.name = canonical_name(s); }

ScenarioSpec::ScenarioSpec(const std::string& spec) : ScenarioSpec(parse(spec)) {}

ScenarioSpec::ScenarioSpec(const char* spec) : ScenarioSpec(parse(spec)) {}

ScenarioSpec ScenarioSpec::parse(std::string_view spec_in) {
  const std::string s = util::trim(spec_in);
  if (s.empty()) grammar_error("scenario spec is empty");

  ScenarioSpec out;
  try {
    const auto stages = util::split_outside_parens(s, '|');
    for (const auto& stage : stages) {
      if (util::trim(stage).empty()) {
        grammar_error("scenario spec '" + s +
                      "' has an empty pipeline stage (stray or trailing '|')");
      }
    }

    const std::string base_tok = util::trim(stages.front());
    if (base_tok.rfind("mix(", 0) == 0) {
      if (base_tok.back() != ')') {
        grammar_error("mix base '" + base_tok + "' is missing its closing ')'");
      }
      out.base.name = "mix";
      const std::string inner = base_tok.substr(4, base_tok.size() - 5);
      if (util::trim(inner).empty()) {
        grammar_error("mix() in spec '" + s + "' needs at least one spec:weight component");
      }
      for (const auto& comp_tok : util::split_outside_parens(inner, ',')) {
        // The weight separator is the *last* top-level ':'. A raw ':' inside
        // a component's parameter section would be indistinguishable from it
        // (`a?noise=1.0:3.0` = noise "1.0" with weight 3, or noise "1.0:3.0"
        // with the weight forgotten?), so the grammar requires it encoded -
        // `a?noise=1.0%3a3.0:0.7` - and rejects the ambiguous raw form.
        const auto parts = util::split_outside_parens(comp_tok, ':');
        if (parts.size() < 2 || util::trim(parts.back()).empty()) {
          grammar_error("mix component '" + util::trim(comp_tok) + "' in spec '" + s +
                        "' is not of the form spec:weight");
        }
        std::string spec_str = parts[0];
        for (std::size_t i = 1; i + 1 < parts.size(); ++i) spec_str += ":" + parts[i];
        if (has_raw_param_colon(spec_str)) {
          grammar_error("mix component '" + util::trim(comp_tok) + "' in spec '" + s +
                        "' has a raw ':' inside a parameter section, which is ambiguous "
                        "with the spec:weight separator; percent-encode it as %3a "
                        "(e.g. walltime_noise=1.0%3a3.0)");
        }
        const auto weight = util::parse_double(util::trim(parts.back()));
        if (!weight || !(*weight > 0.0)) {
          grammar_error("mix component '" + util::trim(comp_tok) + "' in spec '" + s +
                        "' needs a positive numeric weight, got '" + util::trim(parts.back()) +
                        "'");
        }
        out.components.push_back(MixComponent{parse(spec_str), *weight});
      }
    } else {
      out.base = to_stage(util::parse_spec_stage(base_tok, "scenario"));
      if (out.base.name == "mix") {
        grammar_error("scenario 'mix' takes parenthesized components: mix(spec:weight,...)");
      }
    }

    for (std::size_t i = 1; i < stages.size(); ++i) {
      out.pipeline.push_back(to_stage(util::parse_spec_stage(stages[i], "transform")));
    }
  } catch (const util::SpecGrammarError& e) {
    throw ScenarioSpecError(e.what());
  }
  return out;
}

namespace {

std::string component_to_string(const ScenarioSpec& spec, double weight) {
  const std::string inner = spec.to_string();
  std::string out;
  out.reserve(inner.size() + 8);
  int depth = 0;
  bool in_params = false;
  for (const char c : inner) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth == 0 && c == '?') in_params = true;
    if (depth == 0 && c == ':' && in_params) {
      out += "%3a";  // keep parameter colons distinct from the weight separator
    } else {
      out += c;
    }
  }
  return out + ":" + format_weight(weight);
}

}  // namespace

std::string ScenarioSpec::to_string() const {
  std::string out;
  if (is_mix()) {
    out = "mix(";
    for (std::size_t i = 0; i < components.size(); ++i) {
      if (i > 0) out += ',';
      out += component_to_string(components[i].spec, components[i].weight);
    }
    out += ')';
  } else {
    out = base.to_string();
  }
  for (const auto& stage : pipeline) out += "|" + stage.to_string();
  return out;
}

bool operator==(const ScenarioSpec& a, const ScenarioSpec& b) { return compare(a, b) == 0; }

bool operator<(const ScenarioSpec& a, const ScenarioSpec& b) { return compare(a, b) < 0; }

// ---------------------------------------------------------------------------
// StageParamReader

void StageParamReader::fail(const std::string& key, const std::string& expected) const {
  const std::string* v = stage_->find_param(key);
  throw ScenarioSpecError("stage '" + stage_->name + "': parameter '" + key + "' expects " +
                          expected + ", got '" + (v ? *v : "") + "'");
}

long long StageParamReader::get_int(const std::string& key, long long fallback,
                                    long long min_value, long long max_value) const {
  const std::string* v = stage_->find_param(key);
  if (v == nullptr) return fallback;
  const auto parsed = util::parse_int(*v);
  if (!parsed) fail(key, "an integer");
  if (*parsed < min_value || *parsed > max_value) {
    fail(key, "an integer in [" + std::to_string(min_value) + ", " + std::to_string(max_value) +
                  "]");
  }
  return *parsed;
}

double StageParamReader::get_double(const std::string& key, double fallback, double min_value,
                                    double max_value) const {
  const std::string* v = stage_->find_param(key);
  if (v == nullptr) return fallback;
  const auto parsed = util::parse_double(*v);
  if (!parsed || *parsed < min_value || *parsed > max_value) {
    fail(key, util::format("a number in [%g, %g]", min_value, max_value));
  }
  return *parsed;
}

bool StageParamReader::get_bool(const std::string& key, bool fallback) const {
  const std::string* v = stage_->find_param(key);
  if (v == nullptr) return fallback;
  const std::string lower = util::to_lower(*v);
  if (lower == "true" || lower == "1" || lower == "on") return true;
  if (lower == "false" || lower == "0" || lower == "off") return false;
  fail(key, "a boolean (true/false/1/0/on/off)");
}

std::string StageParamReader::get_string(const std::string& key,
                                         const std::string& fallback) const {
  const std::string* v = stage_->find_param(key);
  return v == nullptr ? fallback : *v;
}

std::string StageParamReader::require_string(const std::string& key) const {
  const std::string* v = stage_->find_param(key);
  if (v == nullptr || v->empty()) {
    throw ScenarioSpecError("stage '" + stage_->name + "': required parameter '" + key +
                            "' is missing");
  }
  return *v;
}

std::pair<double, double> StageParamReader::get_range(const std::string& key,
                                                      double fallback_min, double fallback_max,
                                                      double min_value) const {
  const std::string* v = stage_->find_param(key);
  if (v == nullptr) return {fallback_min, fallback_max};
  const auto parts = util::split(*v, ':');
  std::optional<double> lo, hi;
  if (parts.size() == 1) {
    lo = hi = util::parse_double(parts[0]);
  } else if (parts.size() == 2) {
    lo = util::parse_double(parts[0]);
    hi = util::parse_double(parts[1]);
  }
  if (!lo || !hi || *lo < min_value || *hi < *lo) {
    fail(key, util::format("MIN:MAX with %g <= MIN <= MAX", min_value));
  }
  return {*lo, *hi};
}

double StageParamReader::get_duration(const std::string& key, double fallback) const {
  const std::string* v = stage_->find_param(key);
  if (v == nullptr) return fallback;
  std::string num = *v;
  double scale = 1.0;
  if (!num.empty()) {
    switch (num.back()) {
      case 's': scale = 1.0; num.pop_back(); break;
      case 'm': scale = 60.0; num.pop_back(); break;
      case 'h': scale = 3600.0; num.pop_back(); break;
      case 'd': scale = 86400.0; num.pop_back(); break;
      default: break;
    }
  }
  const auto parsed = util::parse_double(num);
  if (!parsed || *parsed < 0.0) fail(key, "a duration (seconds, or with s/m/h/d suffix)");
  return *parsed * scale;
}

// ---------------------------------------------------------------------------
// ScenarioRegistry

ScenarioRegistry& ScenarioRegistry::instance() {
  // Magic-static init is thread-safe; register_scenarios runs exactly once,
  // before the first lookup returns. (Two statics rather than a factory
  // lambda: the registry holds an atomic freeze flag and is immovable.)
  static ScenarioRegistry registry;
  static const bool initialized = [] {
    register_scenarios(registry);
    return true;
  }();
  (void)initialized;
  return registry;
}

void ScenarioRegistry::check_open(const std::string& what) const {
  if (frozen()) {
    throw std::logic_error("ScenarioRegistry: cannot add " + what +
                           " after the registry froze (first lookup already happened; "
                           "register at startup, before any spec is resolved)");
  }
}

void ScenarioRegistry::add(ScenarioInfo info) {
  check_open("scenario '" + info.name + "'");
  if (info.name.empty()) throw std::logic_error("ScenarioRegistry::add: empty scenario name");
  if (info.name == "mix") {
    throw std::logic_error("ScenarioRegistry::add: 'mix' is reserved spec grammar");
  }
  if (!info.generate) {
    throw std::logic_error("ScenarioRegistry::add: scenario '" + info.name +
                           "' has no generator");
  }
  const std::string name = info.name;
  if (!scenarios_.emplace(name, std::move(info)).second) {
    throw std::logic_error("ScenarioRegistry::add: duplicate scenario name '" + name + "'");
  }
}

void ScenarioRegistry::add_transform(TransformInfo info) {
  check_open("transform '" + info.name + "'");
  if (info.name.empty()) {
    throw std::logic_error("ScenarioRegistry::add_transform: empty transform name");
  }
  if (!info.apply) {
    throw std::logic_error("ScenarioRegistry::add_transform: transform '" + info.name +
                           "' has no apply callback");
  }
  const std::string name = info.name;
  if (!transforms_.emplace(name, std::move(info)).second) {
    throw std::logic_error("ScenarioRegistry::add_transform: duplicate transform name '" +
                           name + "'");
  }
}

const ScenarioInfo* ScenarioRegistry::find(const std::string& name) const {
  freeze();
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

const ScenarioInfo& ScenarioRegistry::at(const std::string& name) const {
  const ScenarioInfo* info = find(name);
  if (info == nullptr) {
    throw ScenarioSpecError("unknown scenario '" + name + "'; registered scenarios: " +
                            util::join(names(), ", "));
  }
  return *info;
}

const TransformInfo* ScenarioRegistry::find_transform(const std::string& name) const {
  freeze();
  const auto it = transforms_.find(name);
  return it == transforms_.end() ? nullptr : &it->second;
}

const TransformInfo& ScenarioRegistry::at_transform(const std::string& name) const {
  const TransformInfo* info = find_transform(name);
  if (info == nullptr) {
    throw ScenarioSpecError("unknown transform '" + name + "'; registered transforms: " +
                            util::join(transform_names(), ", "));
  }
  return *info;
}

std::vector<std::string> ScenarioRegistry::names() const {
  freeze();
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, info] : scenarios_) out.push_back(name);
  return out;
}

std::vector<std::string> ScenarioRegistry::transform_names() const {
  freeze();
  std::vector<std::string> out;
  out.reserve(transforms_.size());
  for (const auto& [name, info] : transforms_) out.push_back(name);
  return out;
}

namespace {

void check_declared(const ScenarioStage& stage, const std::vector<util::SpecParamInfo>& declared,
                    const char* kind) {
  for (const auto& [key, value] : stage.params) {
    const bool ok = std::any_of(declared.begin(), declared.end(),
                                [&](const util::SpecParamInfo& p) { return p.key == key; });
    if (!ok) {
      std::vector<std::string> accepted;
      for (const auto& p : declared) accepted.push_back(p.key);
      throw ScenarioSpecError(std::string(kind) + " '" + stage.name +
                              "' does not accept parameter '" + key +
                              "'; accepted parameters: " +
                              (accepted.empty() ? "(none)" : util::join(accepted, ", ")));
    }
  }
}

}  // namespace

void ScenarioRegistry::validate(const ScenarioSpec& spec) const {
  if (spec.is_mix()) {
    for (const auto& component : spec.components) validate(component.spec);
  } else {
    check_declared(spec.base, at(spec.base.name).params, "scenario");
  }
  for (const auto& stage : spec.pipeline) {
    check_declared(stage, at_transform(stage.name).params, "transform");
  }
}

std::string ScenarioRegistry::describe() const {
  freeze();
  std::string out = "Base scenarios (spec grammar: base[?key=value&...][|transform...]):\n";
  for (const auto& [name, info] : scenarios_) {
    out += util::format("  %-16s %-18s %s\n", name.c_str(), info.display_label.c_str(),
                        info.doc.c_str());
    for (const auto& p : info.params) {
      out += util::format("      %-16s %-7s default=%-10s %s\n", p.key.c_str(), p.type.c_str(),
                          p.default_value.c_str(), p.doc.c_str());
    }
  }
  out += "  mix(spec:weight,...)                  weighted combination of any specs\n";
  out += "\nTransforms (append with '|', applied left to right):\n";
  for (const auto& [name, info] : transforms_) {
    out += util::format("  %-16s %s\n", name.c_str(), info.doc.c_str());
    for (const auto& p : info.params) {
      out += util::format("      %-16s %-7s default=%-10s %s\n", p.key.c_str(), p.type.c_str(),
                          p.default_value.c_str(), p.doc.c_str());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Generation

namespace {

void check_fit(const std::vector<sim::Job>& jobs, const sim::ClusterSpec& cluster,
               const std::string& producer) {
  for (const auto& job : jobs) {
    if (job.nodes < 1 || job.nodes > cluster.total_nodes ||
        job.memory_gb > cluster.total_memory_gb || job.duration <= 0.0) {
      throw ScenarioSpecError(
          producer + " broke the cluster-fit guarantee: job " + std::to_string(job.id) +
          util::format(" (%d nodes, %.1f GB, %.1f s)", job.nodes, job.memory_gb, job.duration) +
          util::format(" does not fit %d nodes / %.1f GB", cluster.total_nodes,
                       cluster.total_memory_gb));
    }
  }
}

std::vector<sim::Job> generate_mix(const ScenarioSpec& spec, std::size_t n, std::uint64_t seed,
                                   const GenerateOptions& options) {
  double total_weight = 0.0;
  for (const auto& component : spec.components) total_weight += component.weight;

  // Largest-remainder split of n across components, ties to earlier
  // components - deterministic in the written component order.
  std::vector<std::size_t> counts(spec.components.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < spec.components.size(); ++i) {
    const double exact =
        static_cast<double>(n) * spec.components[i].weight / total_weight;
    counts[i] = static_cast<std::size_t>(exact);
    assigned += counts[i];
    remainders.emplace_back(exact - static_cast<double>(counts[i]), i);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < n; ++k) {
    ++counts[remainders[k % remainders.size()].second];
    ++assigned;
  }

  struct Tagged {
    sim::Job job;
    std::size_t component;
  };
  std::vector<Tagged> merged;
  merged.reserve(n);
  for (std::size_t i = 0; i < spec.components.size(); ++i) {
    if (counts[i] == 0) continue;
    auto jobs = generate_scenario(spec.components[i].spec, counts[i],
                                  util::derive_seed(seed, "mix", i), options);
    for (auto& job : jobs) merged.push_back(Tagged{std::move(job), i});
  }

  // Interleave by arrival; ids are re-assigned 1..n in the merged order and
  // dependency edges are remapped per component (ids collide across
  // components before the remap).
  std::stable_sort(merged.begin(), merged.end(), [](const Tagged& a, const Tagged& b) {
    return std::tie(a.job.submit_time, a.component, a.job.id) <
           std::tie(b.job.submit_time, b.component, b.job.id);
  });
  std::vector<std::map<sim::JobId, sim::JobId>> id_map(spec.components.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    id_map[merged[i].component][merged[i].job.id] = static_cast<sim::JobId>(i + 1);
  }
  std::vector<sim::Job> out;
  out.reserve(merged.size());
  for (auto& tagged : merged) {
    sim::Job job = std::move(tagged.job);
    job.id = id_map[tagged.component].at(job.id);
    for (auto& dep : job.dependencies) dep = id_map[tagged.component].at(dep);
    out.push_back(std::move(job));
  }
  return out;
}

}  // namespace

sim::ClusterSpec effective_cluster(const ScenarioSpec& spec, sim::ClusterSpec base) {
  for (const auto& stage : spec.pipeline) {
    if (stage.name != "cluster") continue;
    const StageParamReader params(stage);
    const auto nodes = params.get_int("nodes", 0, 0, 1 << 24);
    const auto memory = params.get_double("memory_gb", 0.0, 0.0, 1e12);
    if (nodes > 0) base.total_nodes = static_cast<int>(nodes);
    if (memory > 0.0) base.total_memory_gb = memory;
  }
  return base;
}

std::vector<sim::Job> generate_scenario(const ScenarioSpec& spec, std::size_t n,
                                        std::uint64_t seed, const GenerateOptions& options_in) {
  const auto& registry = ScenarioRegistry::instance();
  registry.validate(spec);

  // Cluster overrides are hoisted: the whole pipeline (base generation
  // included) sees the overridden capacity, so a `polaris|cluster?nodes=560`
  // base is clamped to 560 nodes, not first mangled down to the default 256.
  GenerateOptions options = options_in;
  options.cluster = effective_cluster(spec, options.cluster);

  std::vector<sim::Job> jobs =
      spec.is_mix() ? generate_mix(spec, n, seed, options)
                    : registry.at(spec.base.name).generate(spec.base, n, seed, options);
  check_fit(jobs, options.cluster, "base '" + spec.base.name + "'");

  for (std::size_t i = 0; i < spec.pipeline.size(); ++i) {
    const auto& stage = spec.pipeline[i];
    // Each stage draws from its own derived stream, so inserting or
    // reordering one stage never perturbs another stage's randomness.
    util::Rng rng(util::derive_seed(seed, "xform:" + stage.name, i));
    registry.at_transform(stage.name).apply(jobs, stage, rng, options);
    check_fit(jobs, options.cluster, "transform '" + stage.name + "'");
  }
  return jobs;
}

std::string scenario_label(const ScenarioSpec& spec) {
  if (!spec.is_mix() && spec.pipeline.empty()) {
    // Mirror method_label: registry display label + canonical parameter
    // suffix. Unregistered names (workload_source axis labels) fall through
    // to the canonical string rather than throwing.
    const ScenarioInfo* info = ScenarioRegistry::instance().find(spec.base.name);
    if (info != nullptr) {
      return info->display_label + spec.to_string().substr(spec.base.name.size());
    }
  }
  return spec.to_string();
}

std::vector<ScenarioSpec> dedup_scenarios(const std::vector<ScenarioSpec>& scenarios) {
  std::vector<ScenarioSpec> unique;
  std::set<ScenarioSpec> seen;
  for (const auto& scenario : scenarios) {
    if (seen.insert(scenario).second) unique.push_back(scenario);
  }
  return unique;
}

const std::vector<ScenarioSpec>& paper_scenario_specs() {
  static const std::vector<ScenarioSpec> v(all_scenarios().begin(), all_scenarios().end());
  return v;
}

}  // namespace reasched::workload
