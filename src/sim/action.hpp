#pragma once

#include <string>

#include "sim/job.hpp"

namespace reasched::sim {

/// The agent's action space (paper Section 2.2):
///   StartJob(job_id=X)    - start X immediately
///   BackfillJob(job_id=Y) - opportunistically run a smaller job earlier
///   Delay                 - defer until conditions change
///   Stop                  - end the scheduling process
enum class ActionType { kStartJob, kBackfillJob, kDelay, kStop };

struct Action {
  ActionType type = ActionType::kDelay;
  JobId job_id = 0;

  static Action start(JobId id) { return {ActionType::kStartJob, id}; }
  static Action backfill(JobId id) { return {ActionType::kBackfillJob, id}; }
  static Action delay() { return {ActionType::kDelay, 0}; }
  static Action stop() { return {ActionType::kStop, 0}; }

  /// True for StartJob / BackfillJob - the actions that place a job and
  /// whose LLM calls the paper counts in the overhead analysis (S3.7.1).
  bool places_job() const {
    return type == ActionType::kStartJob || type == ActionType::kBackfillJob;
  }

  /// Render exactly in the paper's surface syntax, e.g. "StartJob(job_id=9)".
  std::string to_string() const;

  bool operator==(const Action& other) const = default;
};

const char* to_string(ActionType t);

}  // namespace reasched::sim
