#pragma once

#include <algorithm>
#include <cmath>

#include "sim/job.hpp"

namespace reasched::sim {

/// The two event kinds the paper's discrete-event simulator advances on
/// (Section 3.1): job arrivals and job completions. Completions sort before
/// arrivals at equal timestamps so resources freed at time t are visible to
/// jobs arriving at t.
enum class EventType { kCompletion = 0, kArrival = 1 };

struct Event {
  double time = 0.0;
  EventType type = EventType::kArrival;
  JobId job_id = 0;
  /// Monotone sequence number for deterministic tie-breaking.
  std::uint64_t seq = 0;
};

/// Does an event at time `t` belong to the batch being processed at `now`?
/// The tolerance is relative (~4096 ulps at any magnitude, floored at the
/// seed's 1e-12 near zero): an absolute epsilon alone misclassifies at large
/// simulation times - Polaris traces run to ~1e7 s where one ulp is already
/// ~2e-9, so events that are mathematically simultaneous but differ in the
/// last bit would be split into separate ticks (double-querying the
/// scheduler) while an absolute 1e-5 window would merge genuinely distinct
/// events.
inline bool same_event_time(double t, double now) {
  const double tol = std::max(1e-12, std::abs(now) * 1e-12);
  return t <= now + tol;
}

/// Tolerance-correct `x <= y` for scheduler-side comparisons of simulation
/// quantities (shadow times, spare memory). The tolerance is relative
/// (|y| * 1e-12, ~4096 ulps at any magnitude) floored at an absolute 1e-9:
/// an absolute epsilon alone is below one ulp once values reach ~1e7 - at
/// Polaris time scales a `<= y + 1e-9` eligibility test flips on the
/// floating-point noise of whichever path computed y - while the 1e-9 floor
/// preserves the seed's behaviour near zero.
inline bool tol_leq(double x, double y) {
  return x <= y + std::max(1e-9, std::abs(y) * 1e-12);
}

/// Memory fit check shared by every decode kernel (list_scheduler,
/// IncrementalEvaluator) and the decision-policy shadow computation. The
/// incremental and naive decode paths must stay op-for-op identical, so the
/// one absolute slack term they share lives here, defined exactly once.
/// Memory quantities are bounded by cluster totals (~1e4 GB), where 1e-9
/// stays well above accumulated float drift, so a relative tolerance is not
/// needed the way it is for simulation *times* (see tol_leq).
inline bool mem_fits(double free_gb, double need_gb) { return free_gb + 1e-9 >= need_gb; }

/// Strict-weak ordering: earliest time first; completions before arrivals;
/// then insertion order.
inline bool event_after(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  if (a.type != b.type) return static_cast<int>(a.type) > static_cast<int>(b.type);
  return a.seq > b.seq;
}

}  // namespace reasched::sim
