#pragma once

#include "sim/job.hpp"

namespace reasched::sim {

/// The two event kinds the paper's discrete-event simulator advances on
/// (Section 3.1): job arrivals and job completions. Completions sort before
/// arrivals at equal timestamps so resources freed at time t are visible to
/// jobs arriving at t.
enum class EventType { kCompletion = 0, kArrival = 1 };

struct Event {
  double time = 0.0;
  EventType type = EventType::kArrival;
  JobId job_id = 0;
  /// Monotone sequence number for deterministic tie-breaking.
  std::uint64_t seq = 0;
};

/// Strict-weak ordering: earliest time first; completions before arrivals;
/// then insertion order.
inline bool event_after(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  if (a.type != b.type) return static_cast<int>(a.type) > static_cast<int>(b.type);
  return a.seq > b.seq;
}

}  // namespace reasched::sim
