#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/job.hpp"
#include "sim/views.hpp"

namespace reasched::sim {

/// Static description of the simulated cluster partition.
/// The paper's main experiments use 256 nodes / 2048 GB (Section 3.1);
/// the Polaris trace experiments use 560 nodes x 512 GB/node (Section 5).
struct ClusterSpec {
  int total_nodes = 256;
  double total_memory_gb = 2048.0;
  /// Extension (energy-aware scheduling, paper Section 6): nominal draw of
  /// one busy node, used by metrics::energy_kwh.
  double watts_per_busy_node = 350.0;
  double watts_per_idle_node = 90.0;

  static ClusterSpec paper_default() { return {}; }
  static ClusterSpec polaris() {
    ClusterSpec s;
    s.total_nodes = 560;
    s.total_memory_gb = 560.0 * 512.0;
    return s;
  }
};

/// One running job's claim on the cluster.
struct Allocation {
  Job job;
  double start_time = 0.0;
  double end_time = 0.0;
};

using AllocationListView = ListView<Allocation>;

/// Result of ClusterState::earliest_fit - the projected moment a resource
/// request can be satisfied if nothing new starts, plus what remains free
/// once it does. This is exactly the "shadow" a backfilling policy reserves
/// for its head-of-queue job.
struct FitProjection {
  double time = 0.0;           ///< earliest time the request fits (now if immediately)
  int spare_nodes = 0;         ///< nodes left over at `time` after the request
  double spare_memory_gb = 0.0;  ///< memory left over at `time` (negative if the
                                 ///< request exceeds even the fully drained cluster)
};

/// Mutable resource ledger: which jobs hold nodes/memory right now.
/// Enforces the two capacity constraints of Section 3.3
///   sum nodes(active) <= N_total,  sum mem(active) <= M_total
/// by construction - allocate() throws if either would be violated, so any
/// scheduler bug is caught at the source.
///
/// Storage is a flat slot arena (freed slots are reused) with two indexes:
/// a JobId -> slot hash map for O(1) membership/release lookups and an
/// end-time-ordered index maintained incrementally on allocate/release
/// (O(log n_running) search plus an index-array shift), so running_view()
/// is zero-copy and O(1) per decision instead of the seed's copy-and-sort
/// of every allocation on every scheduler query.
class ClusterState {
 public:
  explicit ClusterState(ClusterSpec spec);

  const ClusterSpec& spec() const { return spec_; }
  int available_nodes() const { return available_nodes_; }
  double available_memory_gb() const { return available_memory_gb_; }
  int used_nodes() const { return spec_.total_nodes - available_nodes_; }
  double used_memory_gb() const { return spec_.total_memory_gb - available_memory_gb_; }

  /// Can `job` run right now? (first-fit feasibility test).
  bool fits(const Job& job) const;

  /// Raw-demand form of fits(), identical comparison semantics. Lets index
  /// pruning test a subtree's per-field minima against availability without
  /// materializing a Job.
  bool fits(int nodes, double memory_gb) const;

  /// Would `job` ever fit on an empty cluster? Jobs violating this are
  /// unschedulable and rejected at submission.
  bool fits_empty(const Job& job) const;

  /// Compatibility alias; allocations live at namespace scope now.
  using Allocation = sim::Allocation;

  /// Claim resources for `job` from `start` to `start + job.duration`.
  /// Throws std::logic_error when capacity would be exceeded or the job id
  /// is already running.
  void allocate(const Job& job, double start);

  /// Release a completed job's resources; returns its allocation record.
  /// Throws std::logic_error for unknown ids.
  sim::Allocation release(JobId id);

  bool is_running(JobId id) const { return slot_of_.count(id) != 0; }
  std::size_t running_count() const { return slot_of_.size(); }

  /// Zero-copy view of running allocations in end-time order (soonest
  /// first, ties by job id) - what a backfilling scheduler needs to compute
  /// shadow windows. Valid until the next allocate()/release().
  AllocationListView running_view() const {
    return {slots_.data(), by_end_.data(), by_end_.size()};
  }

  /// Copying form of running_view(), kept for callers that need ownership
  /// (test fixtures, offline snapshots).
  std::vector<sim::Allocation> running_by_end_time() const;

  /// Earliest time a (nodes, memory_gb) request can be satisfied, assuming
  /// running jobs release their resources at their recorded end times and
  /// nothing else starts - i.e. the smallest prefix of the end-time index
  /// whose cumulative release, on top of what is free now, covers the
  /// request. O(log n_running): two std::partition_point searches over the
  /// incrementally maintained prefix aggregates (both cumulative release
  /// curves are non-decreasing, so each threshold crossing is a
  /// partition point). Replaces the seed policy's per-query walk that
  /// re-accumulated every running allocation.
  ///
  /// When the request fits immediately, `time` is `now` and the spares are
  /// against current availability. When it cannot fit even after everything
  /// drains (request beyond total capacity - hand-built states only, the
  /// engine rejects such jobs at submission), `time` is the last end time
  /// and the spares go negative, matching the exhausted walk of the seed.
  FitProjection earliest_fit(int nodes, double memory_gb, double now) const;

  /// Internal-consistency check (sums match capacities); used by tests and
  /// debug assertions.
  bool invariants_hold() const;

 private:
  /// Position of `slot` in by_end_ (exact key search; throws if absent).
  std::size_t end_index_position(std::uint32_t slot) const;

  /// Recompute the prefix aggregates from position `from` to the end, after
  /// an insert or erase at `from`. Left-to-right accumulation keeps the
  /// sums deterministic; cost is O(n_running - from), and n_running is
  /// bounded by cluster capacity (every job holds >= 1 node), so the
  /// maintenance cost is independent of experiment size.
  void rebuild_release_prefix(std::size_t from);

  ClusterSpec spec_;
  int available_nodes_;
  double available_memory_gb_;
  std::vector<sim::Allocation> slots_;     ///< flat ledger; freed slots reused
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> by_end_;      ///< slots ordered by (end_time, id)
  std::unordered_map<JobId, std::uint32_t> slot_of_;
  /// Prefix aggregates parallel to by_end_: cum_release_*_[i] is the total
  /// nodes/memory released by allocations by_end_[0..i]. Maintained on every
  /// allocate/release; earliest_fit() binary-searches them.
  std::vector<int> cum_release_nodes_;
  std::vector<double> cum_release_memory_;
};

}  // namespace reasched::sim
