#pragma once

#include "sim/cluster.hpp"
#include "sim/schedule_result.hpp"

namespace reasched::sim {

/// Energy model - an implementation of the paper's "energy-aware scheduling"
/// future-work direction (Section 6). Nodes draw `watts_per_busy_node` while
/// running a job and `watts_per_idle_node` otherwise, integrated over the
/// makespan.
struct EnergyReport {
  double busy_node_seconds = 0.0;
  double idle_node_seconds = 0.0;
  double energy_kwh = 0.0;
};

EnergyReport compute_energy(const ScheduleResult& result, const ClusterSpec& spec);

}  // namespace reasched::sim
