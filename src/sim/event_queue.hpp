#pragma once

#include <queue>
#include <vector>

#include "sim/event.hpp"

namespace reasched::sim {

/// Deterministic priority queue over simulation events.
class EventQueue {
 public:
  void push(double time, EventType type, JobId job_id);
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Earliest event (throws std::logic_error if empty).
  const Event& peek() const;
  Event pop();

  /// Time of the next event, or +infinity when empty.
  double next_time() const;

  /// True when an arrival event is still pending (the agent's Stop action is
  /// only legal once no more jobs will ever arrive).
  bool has_pending_arrivals() const { return pending_arrivals_ > 0; }

  /// Every queued event in pop order (earliest first). Drains a clone of the
  /// heap - O(n log n) - so it is meant for checkpoint digests and debugging,
  /// not per-event use.
  std::vector<Event> snapshot_events() const;

 private:
  struct Cmp {
    bool operator()(const Event& a, const Event& b) const { return event_after(a, b); }
  };
  std::priority_queue<Event, std::vector<Event>, Cmp> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_arrivals_ = 0;
};

}  // namespace reasched::sim
