#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "sim/feedback.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace reasched::sim {

struct Engine::RunState {
  explicit RunState(ClusterSpec spec) : cluster(spec) {}

  ClusterState cluster;
  EventQueue events;
  JobTable table;
  ScheduleResult result;
  Scheduler* scheduler = nullptr;
  bool stopped = false;

  DecisionContext context(double now) const {
    return DecisionContext{now,
                           cluster,
                           table.waiting_view(),
                           table.ineligible_view(),
                           cluster.running_view(),
                           result.completed,
                           events.has_pending_arrivals(),
                           table.size(),
                           &table};
  }
};

Engine::Engine(EngineConfig config) : config_(config) {}

void Engine::validate_jobs(const std::vector<Job>& jobs) const {
  const ClusterState probe(config_.cluster);
  std::unordered_map<JobId, std::size_t> index;
  index.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    if (!j.valid()) {
      throw std::invalid_argument(util::format("Engine: job %d is malformed", j.id));
    }
    if (!index.emplace(j.id, i).second) {
      throw std::invalid_argument(util::format("Engine: duplicate job id %d", j.id));
    }
    if (!probe.fits_empty(j)) {
      throw std::invalid_argument(util::format(
          "Engine: job %d requests %d nodes / %.0f GB, exceeding cluster capacity", j.id, j.nodes,
          j.memory_gb));
    }
  }
  // Dependency references must exist and form a DAG (Kahn's algorithm over
  // dense indices: O(V + E)).
  std::vector<int> indegree(jobs.size(), 0);
  std::vector<std::vector<std::size_t>> successors(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    for (const JobId dep : j.dependencies) {
      const auto it = index.find(dep);
      if (it == index.end()) {
        throw std::invalid_argument(
            util::format("Engine: job %d depends on unknown job %d", j.id, dep));
      }
      if (dep == j.id) {
        throw std::invalid_argument(util::format("Engine: job %d depends on itself", j.id));
      }
      ++indegree[i];
      successors[it->second].push_back(i);
    }
  }
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const std::size_t i = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const std::size_t succ : successors[i]) {
      if (--indegree[succ] == 0) frontier.push_back(succ);
    }
  }
  if (visited != jobs.size()) {
    throw std::invalid_argument("Engine: dependency graph contains a cycle");
  }
}

void Engine::process_events_at(RunState& rs, double now) {
  while (!rs.events.empty() && same_event_time(rs.events.next_time(), now)) {
    const Event e = rs.events.pop();
    if (e.type == EventType::kCompletion) {
      const auto alloc = rs.cluster.release(e.job_id);
      CompletedJob record{alloc.job, alloc.start_time, alloc.end_time,
                          rs.table.killed(e.job_id)};
      // Report the job as submitted (original duration), even when killed.
      record.job = rs.table.job(e.job_id);
      rs.result.completed.push_back(std::move(record));
      rs.table.complete(e.job_id);
      rs.result.final_time = std::max(rs.result.final_time, alloc.end_time);
    } else {
      rs.table.arrive(e.job_id);
    }
  }
}

void Engine::execute_start(RunState& rs, double now, const Job& job, bool backfill) {
  Job effective = job;
  if (config_.enforce_walltime && effective.duration > effective.walltime) {
    // The resource manager terminates the job at its requested limit.
    effective.duration = effective.walltime;
    rs.table.mark_killed(effective.id);
  }
  rs.cluster.allocate(effective, now);
  rs.events.push(now + effective.duration, EventType::kCompletion, effective.id);
  rs.table.start(job.id);
  if (backfill) ++rs.result.n_backfills;
}

void Engine::emergency_start(RunState& rs, double now) {
  // Reached only when the scheduler delays with no pending events: nothing
  // is running, so the full cluster is free and the first waiting job must
  // fit (capacity-impossible jobs were rejected at submission).
  for (const Job& job : rs.table.waiting_view()) {
    if (rs.cluster.fits(job)) {
      LOG_WARN("Engine: forcing FCFS start of job " << job.id
                                                    << " to break a scheduler livelock");
      ++rs.result.n_forced_delays;
      execute_start(rs, now, job, /*backfill=*/false);
      return;
    }
  }
  throw std::logic_error("Engine: livelock with no startable job (unreachable)");
}

void Engine::decision_phase(RunState& rs, double now) {
  int invalid_streak = 0;
  while (!rs.stopped) {
    const DecisionContext ctx = rs.context(now);

    // The paper queries the agent only when jobs are ready, with one
    // exception: the terminal state, where the agent is asked once so it can
    // emit Stop (Figure 2, decision at t=9997).
    const bool terminal_state =
        ctx.waiting.empty() && ctx.ineligible.empty() && !ctx.arrivals_pending;
    if (ctx.waiting.empty() && !terminal_state) return;

    const Action action = rs.scheduler->decide(ctx);
    ++rs.result.n_decisions;

    const Validation verdict = checker_.check(action, ctx);
    DecisionRecord record;
    record.time = now;
    record.action = action;
    record.accepted = verdict.ok();
    if (config_.record_traces) record.thought = rs.scheduler->last_thought();

    if (verdict.ok()) {
      invalid_streak = 0;
      switch (action.type) {
        case ActionType::kStartJob:
        case ActionType::kBackfillJob: {
          // Checker accepted, so the job is in the waiting index; the arena
          // reference stays valid across the start transition.
          const Job& job = *ctx.find_waiting(action.job_id);
          execute_start(rs, now, job, action.type == ActionType::kBackfillJob);
          // ctx's views were invalidated by the start transition; notify
          // with a fresh context over the post-action state.
          rs.scheduler->on_accepted(action, rs.context(now));
          break;
        }
        case ActionType::kStop:
          rs.stopped = true;
          rs.scheduler->on_accepted(action, ctx);
          break;
        case ActionType::kDelay:
          rs.scheduler->on_accepted(action, ctx);
          break;
      }
      if (config_.record_traces) rs.result.decisions.push_back(std::move(record));
      if (action.type == ActionType::kDelay || action.type == ActionType::kStop) {
        if (action.type == ActionType::kDelay && rs.events.empty() &&
            rs.table.n_waiting() > 0) {
          emergency_start(rs, now);
          continue;
        }
        return;
      }
      if (terminal_state) return;  // nothing left to place
      continue;
    }

    // Invalid action: explain (Section 2.4), count, and re-query.
    ++rs.result.n_invalid_actions;
    ++invalid_streak;
    const std::string feedback = render_feedback(now, action, verdict);
    if (config_.feedback_enabled) rs.scheduler->on_feedback(feedback, ctx);
    if (config_.record_traces) {
      record.feedback = feedback;
      rs.result.decisions.push_back(std::move(record));
    }
    if (invalid_streak > config_.max_invalid_retries) {
      ++rs.result.n_forced_delays;
      if (rs.events.empty() && rs.table.n_waiting() > 0) {
        emergency_start(rs, now);
        invalid_streak = 0;
        continue;
      }
      return;  // forced Delay: advance to the next event
    }
  }
}

ScheduleResult Engine::run(const std::vector<Job>& jobs, Scheduler& scheduler) {
  validate_jobs(jobs);
  RunState rs(config_.cluster);
  rs.scheduler = &scheduler;
  scheduler.reset();

  rs.table.build(jobs);
  rs.result.completed.reserve(jobs.size());
  for (const Job& j : jobs) {
    rs.events.push(j.submit_time, EventType::kArrival, j.id);
  }

  while (!rs.events.empty()) {
    const double now = rs.events.next_time();
    process_events_at(rs, now);
    decision_phase(rs, now);
    if (rs.events.empty() && rs.table.n_waiting() > 0 && !rs.stopped) {
      // Scheduler delayed with no future events; force progress.
      emergency_start(rs, now);
      decision_phase(rs, now);
    }
  }

  if (rs.table.n_waiting() > 0 || rs.table.n_ineligible() > 0) {
    throw std::logic_error("Engine: simulation ended with unscheduled jobs (unreachable)");
  }
  // total-order: unique JobId.
  std::sort(rs.result.completed.begin(), rs.result.completed.end(),
            [](const CompletedJob& a, const CompletedJob& b) { return a.job.id < b.job.id; });
  return std::move(rs.result);
}

}  // namespace reasched::sim
