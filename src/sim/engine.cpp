#include "sim/engine.hpp"

#include "sim/engine_core.hpp"

namespace reasched::sim {

Engine::Engine(EngineConfig config) : config_(config) {}

ScheduleResult Engine::run(const std::vector<Job>& jobs, Scheduler& scheduler) {
  validate_jobs(jobs, config_.cluster);
  EngineCore core(config_, scheduler);
  core.load(jobs);
  while (core.step()) {
  }
  return core.finish();
}

}  // namespace reasched::sim
