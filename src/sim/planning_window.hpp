#pragma once

#include <cstdint>
#include <vector>

#include "sim/job.hpp"
#include "sim/views.hpp"

namespace reasched::sim {

/// Bounded decision-state observation (the fixed-size window idea of
/// RLScheduler and the heterogeneous-mapping evaluations): a planner only
/// considers the top-K waiting jobs under a configured order instead of the
/// whole queue, so per-decision cost - solver evaluations, prompt tokens -
/// stops growing with queue depth at trace scale.
///
/// `top_k == 0` means unbounded (the paper's original all-jobs semantics);
/// bounded selections always preserve *queue positions in arrival order*, so
/// a windowed problem is a subsequence of the waiting queue and downstream
/// arrival-order reasoning (seed orderings, queue-head handling) stays
/// meaningful. The queue head (position 0) is always part of a bounded
/// window: it anchors reservation/backfill reasoning in every consumer
/// (EASY-style shadow, the agent's blocked-head pressure), so it must be
/// observable - a prompt may not hide the job that blocks the queue.
struct PlanningWindow {
  enum class Order {
    kArrival,        ///< first K in queue (arrival) order - the default
    kShortestFirst,  ///< head + K-1 shortest by sjf_order (walltime, arrival)
  };

  /// Window capacity; 0 disables the cap entirely.
  std::size_t top_k = 0;
  Order order = Order::kArrival;

  /// Does the window actually bound a queue of this size?
  bool bounds(std::size_t queue_size) const { return top_k != 0 && queue_size > top_k; }

  /// Select the window over `waiting` (a queue in arrival order). Returns
  /// false when the window is unbounded for this queue size (`out` is left
  /// cleared - callers treat "no window" as all-jobs). Otherwise fills `out`
  /// with the ascending queue positions of the selected jobs and returns
  /// true. O(n) for arrival order, O(n + K log K) for shortest-first.
  bool select(const ListView<Job>& waiting, std::vector<std::uint32_t>& out) const;
};

/// The one nullable-window indirection every consumer of a selected window
/// (prompt rendering, policy scoring, token models) shares: candidate k is
/// waiting[window[k]] under a bounded window, waiting[k] otherwise. Keeping
/// a single implementation is what guarantees the prompt, the scoring loop
/// and the token model see the identical candidate set.
inline std::size_t windowed_size(const ListView<Job>& waiting,
                                 const std::vector<std::uint32_t>* window) {
  return window != nullptr ? window->size() : waiting.size();
}
inline const Job& windowed_job(const ListView<Job>& waiting,
                               const std::vector<std::uint32_t>* window, std::size_t k) {
  return window != nullptr ? waiting[(*window)[k]] : waiting[k];
}

}  // namespace reasched::sim
