#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace reasched::sim {

namespace {

/// Strict-weak ordering of the end-time index: soonest end first, job id
/// breaks ties (ids are unique among running jobs, so the order is total).
bool end_key_less(double end_a, JobId id_a, double end_b, JobId id_b) {
  if (end_a != end_b) return end_a < end_b;
  return id_a < id_b;
}

}  // namespace

ClusterState::ClusterState(ClusterSpec spec)
    : spec_(spec),
      available_nodes_(spec.total_nodes),
      available_memory_gb_(spec.total_memory_gb) {
  if (spec.total_nodes <= 0 || spec.total_memory_gb <= 0.0) {
    throw std::invalid_argument("ClusterSpec: non-positive capacity");
  }
}

bool ClusterState::fits(const Job& job) const { return fits(job.nodes, job.memory_gb); }

bool ClusterState::fits(int nodes, double memory_gb) const {
  return nodes <= available_nodes_ && memory_gb <= available_memory_gb_ + 1e-9;
}

bool ClusterState::fits_empty(const Job& job) const {
  return job.nodes <= spec_.total_nodes && job.memory_gb <= spec_.total_memory_gb + 1e-9;
}

void ClusterState::allocate(const Job& job, double start) {
  if (slot_of_.count(job.id) != 0) {
    throw std::logic_error(util::format("ClusterState: job %d already running", job.id));
  }
  if (!fits(job)) {
    throw std::logic_error(util::format(
        "ClusterState: job %d (%d nodes, %.0f GB) exceeds available (%d nodes, %.0f GB)", job.id,
        job.nodes, job.memory_gb, available_nodes_, available_memory_gb_));
  }
  available_nodes_ -= job.nodes;
  available_memory_gb_ -= job.memory_gb;

  Allocation alloc{job, start, start + job.duration};
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(alloc));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(alloc);
  }
  const Allocation& a = slots_[slot];
  const auto pos = std::lower_bound(
      by_end_.begin(), by_end_.end(), slot, [&](std::uint32_t s, std::uint32_t) {
        return end_key_less(slots_[s].end_time, slots_[s].job.id, a.end_time, a.job.id);
      });
  const std::size_t inserted_at = static_cast<std::size_t>(pos - by_end_.begin());
  by_end_.insert(pos, slot);
  slot_of_.emplace(job.id, slot);
  rebuild_release_prefix(inserted_at);
}

std::size_t ClusterState::end_index_position(std::uint32_t slot) const {
  const Allocation& a = slots_[slot];
  auto it = std::lower_bound(
      by_end_.begin(), by_end_.end(), slot, [&](std::uint32_t s, std::uint32_t) {
        return end_key_less(slots_[s].end_time, slots_[s].job.id, a.end_time, a.job.id);
      });
  if (it == by_end_.end() || *it != slot) {
    throw std::logic_error("ClusterState: end-time index out of sync");
  }
  return static_cast<std::size_t>(it - by_end_.begin());
}

Allocation ClusterState::release(JobId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    throw std::logic_error(util::format("ClusterState: release of unknown job %d", id));
  }
  const std::uint32_t slot = it->second;
  const std::size_t erased_at = end_index_position(slot);
  by_end_.erase(by_end_.begin() + static_cast<std::ptrdiff_t>(erased_at));
  rebuild_release_prefix(erased_at);
  slot_of_.erase(it);
  Allocation alloc = std::move(slots_[slot]);
  free_slots_.push_back(slot);
  available_nodes_ += alloc.job.nodes;
  available_memory_gb_ += alloc.job.memory_gb;
  return alloc;
}

void ClusterState::rebuild_release_prefix(std::size_t from) {
  cum_release_nodes_.resize(by_end_.size());
  cum_release_memory_.resize(by_end_.size());
  int nodes = from > 0 ? cum_release_nodes_[from - 1] : 0;
  double memory = from > 0 ? cum_release_memory_[from - 1] : 0.0;
  for (std::size_t i = from; i < by_end_.size(); ++i) {
    const Job& j = slots_[by_end_[i]].job;
    nodes += j.nodes;
    memory += j.memory_gb;
    cum_release_nodes_[i] = nodes;
    cum_release_memory_[i] = memory;
  }
}

FitProjection ClusterState::earliest_fit(int nodes, double memory_gb, double now) const {
  // Smallest prefix k (0 = nothing released) whose cumulative release covers
  // each demand; the binding one decides the projected start.
  std::size_t k_nodes = 0;
  if (nodes > available_nodes_) {
    const int needed = nodes - available_nodes_;
    k_nodes = static_cast<std::size_t>(
        std::partition_point(cum_release_nodes_.begin(), cum_release_nodes_.end(),
                             [&](int cum) { return cum < needed; }) -
        cum_release_nodes_.begin()) + 1;
  }
  std::size_t k_memory = 0;
  if (memory_gb > available_memory_gb_) {
    k_memory = static_cast<std::size_t>(
        std::partition_point(cum_release_memory_.begin(), cum_release_memory_.end(),
                             [&](double cum) { return available_memory_gb_ + cum < memory_gb; }) -
        cum_release_memory_.begin()) + 1;
  }
  const std::size_t k = std::min(std::max(k_nodes, k_memory), by_end_.size());

  FitProjection p;
  p.time = k == 0 ? now : slots_[by_end_[k - 1]].end_time;
  p.spare_nodes = available_nodes_ + (k > 0 ? cum_release_nodes_[k - 1] : 0) - nodes;
  p.spare_memory_gb =
      available_memory_gb_ + (k > 0 ? cum_release_memory_[k - 1] : 0.0) - memory_gb;
  return p;
}

std::vector<Allocation> ClusterState::running_by_end_time() const {
  std::vector<Allocation> out;
  out.reserve(by_end_.size());
  for (const std::uint32_t slot : by_end_) out.push_back(slots_[slot]);
  return out;
}

bool ClusterState::invariants_hold() const {
  int nodes = 0;
  double mem = 0.0;
  if (cum_release_nodes_.size() != by_end_.size() ||
      cum_release_memory_.size() != by_end_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < by_end_.size(); ++i) {
    const std::uint32_t slot = by_end_[i];
    nodes += slots_[slot].job.nodes;
    mem += slots_[slot].job.memory_gb;
    // LINT-ALLOW(epsilon): ledger self-check; absolute slack deliberately exceeds worst-case
    // accumulated summation drift on GB quantities bounded by cluster totals.
    if (cum_release_nodes_[i] != nodes || std::fabs(cum_release_memory_[i] - mem) > 1e-6) {
      return false;
    }
  }
  const bool ordered = std::is_sorted(
      by_end_.begin(), by_end_.end(), [&](std::uint32_t a, std::uint32_t b) {
        return end_key_less(slots_[a].end_time, slots_[a].job.id, slots_[b].end_time,
                            slots_[b].job.id);
      });
  return ordered && by_end_.size() == slot_of_.size() &&
         by_end_.size() + free_slots_.size() == slots_.size() &&
         nodes + available_nodes_ == spec_.total_nodes &&
         // LINT-ALLOW(epsilon): same ledger self-check slack as above.
         std::fabs(mem + available_memory_gb_ - spec_.total_memory_gb) < 1e-6 &&
         available_nodes_ >= 0 && available_memory_gb_ >= -1e-6;
}

}  // namespace reasched::sim
