#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace reasched::sim {

ClusterState::ClusterState(ClusterSpec spec)
    : spec_(spec),
      available_nodes_(spec.total_nodes),
      available_memory_gb_(spec.total_memory_gb) {
  if (spec.total_nodes <= 0 || spec.total_memory_gb <= 0.0) {
    throw std::invalid_argument("ClusterSpec: non-positive capacity");
  }
}

bool ClusterState::fits(const Job& job) const {
  return job.nodes <= available_nodes_ && job.memory_gb <= available_memory_gb_ + 1e-9;
}

bool ClusterState::fits_empty(const Job& job) const {
  return job.nodes <= spec_.total_nodes && job.memory_gb <= spec_.total_memory_gb + 1e-9;
}

void ClusterState::allocate(const Job& job, double start) {
  if (running_.count(job.id) != 0) {
    throw std::logic_error(util::format("ClusterState: job %d already running", job.id));
  }
  if (!fits(job)) {
    throw std::logic_error(util::format(
        "ClusterState: job %d (%d nodes, %.0f GB) exceeds available (%d nodes, %.0f GB)", job.id,
        job.nodes, job.memory_gb, available_nodes_, available_memory_gb_));
  }
  available_nodes_ -= job.nodes;
  available_memory_gb_ -= job.memory_gb;
  running_.emplace(job.id, Allocation{job, start, start + job.duration});
}

ClusterState::Allocation ClusterState::release(JobId id) {
  const auto it = running_.find(id);
  if (it == running_.end()) {
    throw std::logic_error(util::format("ClusterState: release of unknown job %d", id));
  }
  Allocation alloc = it->second;
  running_.erase(it);
  available_nodes_ += alloc.job.nodes;
  available_memory_gb_ += alloc.job.memory_gb;
  return alloc;
}

std::vector<ClusterState::Allocation> ClusterState::running_by_end_time() const {
  std::vector<Allocation> out;
  out.reserve(running_.size());
  for (const auto& [id, alloc] : running_) out.push_back(alloc);
  std::sort(out.begin(), out.end(), [](const Allocation& a, const Allocation& b) {
    if (a.end_time != b.end_time) return a.end_time < b.end_time;
    return a.job.id < b.job.id;
  });
  return out;
}

bool ClusterState::invariants_hold() const {
  int nodes = 0;
  double mem = 0.0;
  for (const auto& [id, alloc] : running_) {
    nodes += alloc.job.nodes;
    mem += alloc.job.memory_gb;
  }
  return nodes + available_nodes_ == spec_.total_nodes &&
         std::fabs(mem + available_memory_gb_ - spec_.total_memory_gb) < 1e-6 &&
         available_nodes_ >= 0 && available_memory_gb_ >= -1e-6;
}

}  // namespace reasched::sim
