#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

namespace reasched::sim {

/// Zero-copy, random-access, read-only view over a list of T. This is the
/// currency of DecisionContext: the engine hands schedulers views over its
/// indexed state instead of materializing per-decision snapshot vectors.
///
/// Two storage modes:
///  - direct:  a contiguous std::vector<T> (tests and ad-hoc contexts);
///  - indexed: an arena base pointer plus a dense index array (engine state,
///    e.g. the waiting index over the job arena or the end-time-ordered
///    running index over the allocation ledger).
///
/// Lifetime contract: a view is valid only while the underlying storage is
/// alive and unmodified. Views inside a DecisionContext expire when the
/// scheduler's decide()/on_feedback()/on_accepted() call returns; schedulers
/// that need state across calls must copy what they keep.
template <typename T>
class ListView {
 public:
  ListView() = default;
  /// Direct mode (implicit so existing vector-based call sites keep working).
  ListView(const std::vector<T>& v) : base_(v.data()), size_(v.size()) {}
  /// Binding a temporary would dangle at the end of the full expression.
  ListView(const std::vector<T>&&) = delete;
  /// Indexed mode: element i is base[index[i]].
  ListView(const T* base, const std::uint32_t* index, std::size_t n)
      : base_(base), index_(index), size_(n) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](std::size_t i) const { return index_ ? base_[index_[i]] : base_[i]; }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  /// Random-access iterator yielding const T&. Holds the view by value so
  /// iterators obtained from a temporary view (e.g. table.waiting_view()
  /// .begin()) stay valid for as long as the underlying storage does.
  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    iterator() = default;
    iterator(ListView view, std::size_t i) : view_(view), i_(i) {}

    reference operator*() const { return view_[i_]; }
    pointer operator->() const { return &view_[i_]; }
    reference operator[](difference_type d) const {
      return view_[i_ + static_cast<std::size_t>(d)];
    }

    iterator& operator++() { ++i_; return *this; }
    iterator operator++(int) { iterator t = *this; ++i_; return t; }
    iterator& operator--() { --i_; return *this; }
    iterator operator--(int) { iterator t = *this; --i_; return t; }
    iterator& operator+=(difference_type d) { i_ = add(i_, d); return *this; }
    iterator& operator-=(difference_type d) { i_ = add(i_, -d); return *this; }
    friend iterator operator+(iterator it, difference_type d) { return it += d; }
    friend iterator operator+(difference_type d, iterator it) { return it += d; }
    friend iterator operator-(iterator it, difference_type d) { return it -= d; }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return static_cast<difference_type>(a.i_) - static_cast<difference_type>(b.i_);
    }
    friend bool operator==(const iterator& a, const iterator& b) { return a.i_ == b.i_; }
    friend bool operator!=(const iterator& a, const iterator& b) { return a.i_ != b.i_; }
    friend bool operator<(const iterator& a, const iterator& b) { return a.i_ < b.i_; }
    friend bool operator<=(const iterator& a, const iterator& b) { return a.i_ <= b.i_; }
    friend bool operator>(const iterator& a, const iterator& b) { return a.i_ > b.i_; }
    friend bool operator>=(const iterator& a, const iterator& b) { return a.i_ >= b.i_; }

   private:
    static std::size_t add(std::size_t i, difference_type d) {
      return static_cast<std::size_t>(static_cast<difference_type>(i) + d);
    }
    ListView view_{};
    std::size_t i_ = 0;
  };
  using const_iterator = iterator;

  iterator begin() const { return {*this, 0}; }
  iterator end() const { return {*this, size_}; }

 private:
  const T* base_ = nullptr;
  const std::uint32_t* index_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace reasched::sim
