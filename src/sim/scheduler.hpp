#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/action.hpp"
#include "sim/cluster.hpp"
#include "sim/job.hpp"
#include "sim/job_table.hpp"
#include "sim/schedule_result.hpp"
#include "sim/views.hpp"

namespace reasched::sim {

using JobListView = ListView<Job>;
using CompletedListView = ListView<CompletedJob>;

/// Everything a scheduling policy may observe at a decision point. This is
/// the structured form of the paper's prompt state (system capacity, current
/// time, available resources, running / completed / waiting jobs).
///
/// All job/allocation lists are zero-copy views over the engine's indexed
/// state (ListView supports iteration, indexing and the usual algorithms);
/// building a context is O(1) and nothing is materialized per decision.
/// Views are valid only for the duration of the scheduler callback -
/// schedulers that keep state across calls must copy what they keep.
struct DecisionContext {
  double now = 0.0;
  const ClusterState& cluster;
  /// Jobs submitted, eligible (dependencies met) and not yet started,
  /// in arrival order.
  JobListView waiting;
  /// Submitted but ineligible jobs (unmet dependencies); shown separately
  /// so the prompt can explain why they cannot run.
  JobListView ineligible;
  /// Running allocations in end-time order (soonest first).
  AllocationListView running;
  CompletedListView completed;
  /// True while future arrival events exist - Stop is illegal until false.
  bool arrivals_pending = false;
  /// Total jobs in this experiment instance.
  std::size_t total_jobs = 0;
  /// Optional O(1) lookup backdoor set by the engine; when null (ad-hoc
  /// contexts built by tests), the find_* helpers fall back to a linear
  /// scan over the views.
  const JobTable* jobs_index = nullptr;

  /// The waiting job with this id, or nullptr. O(1) when engine-built.
  const Job* find_waiting(JobId id) const;
  /// The arrived-but-dependency-blocked job with this id, or nullptr.
  const Job* find_ineligible(JobId id) const;

  /// The waiting job that is first in sjf_order (walltime, then arrival
  /// order), or nullptr when nothing waits. O(1) through the engine's
  /// walltime-ordered waiting index; ad-hoc contexts fall back to a linear
  /// min_element scan with identical semantics (sjf_order is total, so the
  /// minimum is unique).
  const Job* shortest_waiting() const;

  /// The first waiting job after the queue head (in arrival order)
  /// satisfying `leaf(job)` - the backfill-candidate search. Engine-built
  /// contexts answer through the JobTable's arrival-rank segment tree,
  /// pruning subtrees for which `prune(aggregate)` is false; `prune` must be
  /// necessary (never false for a subtree containing a satisfying job - the
  /// aggregate carries per-field minima, so independent `min_* <= cap`
  /// tests are safe). Ad-hoc contexts fall back to the linear scan `leaf`
  /// alone defines. Either path returns exactly what a left-to-right scan
  /// over `waiting[1..]` applying `leaf` would, or nullptr.
  template <typename LeafPred, typename PrunePred>
  const Job* first_waiting_after_head(LeafPred&& leaf, PrunePred&& prune) const {
    if (jobs_index != nullptr) {
      return jobs_index->first_waiting_after_head(leaf, prune);
    }
    for (std::size_t i = 1; i < waiting.size(); ++i) {
      if (leaf(waiting[i])) return &waiting[i];
    }
    return nullptr;
  }
};

/// Common interface implemented by every method the paper compares:
/// FCFS, SJF, EASY backfilling, the OR-Tools-like optimizer, and the
/// ReAct LLM agent. The engine owns the decision loop; schedulers only
/// answer "what single action now?".
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Propose exactly one action for the current state.
  virtual Action decide(const DecisionContext& ctx) = 0;

  /// Natural-language feedback after the engine rejected the last action
  /// (paper Section 2.4). Baselines ignore it; the ReAct agent appends it
  /// to its scratchpad.
  virtual void on_feedback(const std::string& feedback, const DecisionContext& ctx);

  /// Notification that an action was accepted (lets planners advance).
  virtual void on_accepted(const Action& action, const DecisionContext& ctx);

  /// Free-form reasoning behind the most recent decide(); empty for
  /// non-reasoning schedulers. Recorded into DecisionRecord::thought.
  virtual std::string last_thought() const;

  /// Stable display name ("FCFS", "Claude 3.7", ...).
  virtual std::string name() const = 0;

  /// Observe-only telemetry counters ("opt/evaluations", "llm/calls", ...),
  /// sampled into decision spans and live stats snapshots. The engine calls
  /// this off the per-decision hot path (sampled spans, explicit stats
  /// requests), never to make a decision; implementations must not mutate
  /// state. Default: no counters.
  virtual std::vector<std::pair<std::string, double>> obs_counters() const;

  /// Reset all internal state so the instance can run a fresh simulation.
  virtual void reset();
};

}  // namespace reasched::sim
