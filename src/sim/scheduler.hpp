#pragma once

#include <string>
#include <vector>

#include "sim/action.hpp"
#include "sim/cluster.hpp"
#include "sim/job.hpp"
#include "sim/schedule_result.hpp"

namespace reasched::sim {

/// Everything a scheduling policy may observe at a decision point. This is
/// the structured form of the paper's prompt state (system capacity, current
/// time, available resources, running / completed / waiting jobs).
struct DecisionContext {
  double now = 0.0;
  const ClusterState& cluster;
  /// Jobs submitted, eligible (dependencies met) and not yet started,
  /// in arrival order.
  const std::vector<Job>& waiting;
  /// Submitted but ineligible jobs (unmet dependencies); shown separately
  /// so the prompt can explain why they cannot run.
  const std::vector<Job>& ineligible;
  const std::vector<ClusterState::Allocation>& running;
  const std::vector<CompletedJob>& completed;
  /// True while future arrival events exist - Stop is illegal until false.
  bool arrivals_pending = false;
  /// Total jobs in this experiment instance.
  std::size_t total_jobs = 0;
};

/// Common interface implemented by every method the paper compares:
/// FCFS, SJF, EASY backfilling, the OR-Tools-like optimizer, and the
/// ReAct LLM agent. The engine owns the decision loop; schedulers only
/// answer "what single action now?".
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Propose exactly one action for the current state.
  virtual Action decide(const DecisionContext& ctx) = 0;

  /// Natural-language feedback after the engine rejected the last action
  /// (paper Section 2.4). Baselines ignore it; the ReAct agent appends it
  /// to its scratchpad.
  virtual void on_feedback(const std::string& feedback, const DecisionContext& ctx);

  /// Notification that an action was accepted (lets planners advance).
  virtual void on_accepted(const Action& action, const DecisionContext& ctx);

  /// Free-form reasoning behind the most recent decide(); empty for
  /// non-reasoning schedulers. Recorded into DecisionRecord::thought.
  virtual std::string last_thought() const;

  /// Stable display name ("FCFS", "Claude 3.7", ...).
  virtual std::string name() const = 0;

  /// Reset all internal state so the instance can run a fresh simulation.
  virtual void reset();
};

}  // namespace reasched::sim
