#include "sim/reference_engine.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "sim/feedback.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace reasched::sim {

struct ReferenceEngine::RunState {
  explicit RunState(ClusterSpec spec) : cluster(spec) {}

  ClusterState cluster;
  EventQueue events;
  std::map<JobId, Job> all_jobs;
  std::vector<Job> waiting;     ///< eligible, arrival order
  std::vector<Job> ineligible;  ///< arrived, dependencies unmet
  std::set<JobId> completed_ids;
  std::set<JobId> killed;       ///< terminated at walltime (enforce_walltime)
  ScheduleResult result;
  Scheduler* scheduler = nullptr;
  bool stopped = false;
};

ReferenceEngine::ReferenceEngine(EngineConfig config) : config_(config) {}

void ReferenceEngine::validate_jobs(const std::vector<Job>& jobs) const {
  const ClusterState probe(config_.cluster);
  std::set<JobId> ids;
  for (const Job& j : jobs) {
    if (!j.valid()) {
      throw std::invalid_argument(util::format("Engine: job %d is malformed", j.id));
    }
    if (!ids.insert(j.id).second) {
      throw std::invalid_argument(util::format("Engine: duplicate job id %d", j.id));
    }
    if (!probe.fits_empty(j)) {
      throw std::invalid_argument(util::format(
          "Engine: job %d requests %d nodes / %.0f GB, exceeding cluster capacity", j.id, j.nodes,
          j.memory_gb));
    }
  }
  // Dependency references must exist and form a DAG.
  for (const Job& j : jobs) {
    for (const JobId dep : j.dependencies) {
      if (ids.count(dep) == 0) {
        throw std::invalid_argument(
            util::format("Engine: job %d depends on unknown job %d", j.id, dep));
      }
      if (dep == j.id) {
        throw std::invalid_argument(util::format("Engine: job %d depends on itself", j.id));
      }
    }
  }
  // Kahn's algorithm for cycle detection.
  std::map<JobId, int> indegree;
  std::map<JobId, std::vector<JobId>> successors;
  for (const Job& j : jobs) indegree[j.id] = static_cast<int>(j.dependencies.size());
  for (const Job& j : jobs) {
    for (const JobId dep : j.dependencies) successors[dep].push_back(j.id);
  }
  std::vector<JobId> frontier;
  for (const auto& [id, deg] : indegree) {
    if (deg == 0) frontier.push_back(id);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const JobId id = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const JobId succ : successors[id]) {
      if (--indegree[succ] == 0) frontier.push_back(succ);
    }
  }
  if (visited != jobs.size()) {
    throw std::invalid_argument("Engine: dependency graph contains a cycle");
  }
}

void ReferenceEngine::promote_eligible(RunState& rs) {
  auto ready = [&rs](const Job& j) {
    return std::all_of(j.dependencies.begin(), j.dependencies.end(),
                       [&rs](JobId d) { return rs.completed_ids.count(d) != 0; });
  };
  for (auto it = rs.ineligible.begin(); it != rs.ineligible.end();) {
    if (ready(*it)) {
      rs.waiting.push_back(*it);
      it = rs.ineligible.erase(it);
    } else {
      ++it;
    }
  }
  // total-order: arrival_order breaks submit-time ties by unique JobId.
  std::sort(rs.waiting.begin(), rs.waiting.end(), arrival_order);
}

void ReferenceEngine::process_events_at(RunState& rs, double now) {
  while (!rs.events.empty() && same_event_time(rs.events.next_time(), now)) {
    const Event e = rs.events.pop();
    if (e.type == EventType::kCompletion) {
      const auto alloc = rs.cluster.release(e.job_id);
      CompletedJob record{alloc.job, alloc.start_time, alloc.end_time,
                          rs.killed.count(e.job_id) != 0};
      // Report the job as submitted (original duration), even when killed.
      record.job = rs.all_jobs.at(e.job_id);
      rs.result.completed.push_back(std::move(record));
      rs.completed_ids.insert(e.job_id);
      rs.result.final_time = std::max(rs.result.final_time, alloc.end_time);
    } else {
      const Job& job = rs.all_jobs.at(e.job_id);
      const bool ready = std::all_of(
          job.dependencies.begin(), job.dependencies.end(),
          [&rs](JobId d) { return rs.completed_ids.count(d) != 0; });
      (ready ? rs.waiting : rs.ineligible).push_back(job);
    }
  }
  promote_eligible(rs);
}

void ReferenceEngine::execute_start(RunState& rs, double now, const Job& job, bool backfill) {
  Job effective = job;
  if (config_.enforce_walltime && effective.duration > effective.walltime) {
    // The resource manager terminates the job at its requested limit.
    effective.duration = effective.walltime;
    rs.killed.insert(effective.id);
  }
  rs.cluster.allocate(effective, now);
  rs.events.push(now + effective.duration, EventType::kCompletion, effective.id);
  rs.waiting.erase(std::remove_if(rs.waiting.begin(), rs.waiting.end(),
                                  [&](const Job& j) { return j.id == job.id; }),
                   rs.waiting.end());
  if (backfill) ++rs.result.n_backfills;
}

void ReferenceEngine::emergency_start(RunState& rs, double now) {
  for (const Job& job : rs.waiting) {
    if (rs.cluster.fits(job)) {
      LOG_WARN("ReferenceEngine: forcing FCFS start of job "
               << job.id << " to break a scheduler livelock");
      ++rs.result.n_forced_delays;
      execute_start(rs, now, job, /*backfill=*/false);
      return;
    }
  }
  throw std::logic_error("Engine: livelock with no startable job (unreachable)");
}

void ReferenceEngine::decision_phase(RunState& rs, double now) {
  int invalid_streak = 0;
  while (!rs.stopped) {
    // The seed path: every query copies and sorts all running allocations.
    const auto running = rs.cluster.running_by_end_time();
    const DecisionContext ctx{now,
                              rs.cluster,
                              rs.waiting,
                              rs.ineligible,
                              running,
                              rs.result.completed,
                              rs.events.has_pending_arrivals(),
                              rs.all_jobs.size()};

    const bool terminal_state =
        rs.waiting.empty() && rs.ineligible.empty() && !ctx.arrivals_pending;
    if (rs.waiting.empty() && !terminal_state) return;

    const Action action = rs.scheduler->decide(ctx);
    ++rs.result.n_decisions;

    const Validation verdict = checker_.check(action, ctx);
    DecisionRecord record;
    record.time = now;
    record.action = action;
    record.accepted = verdict.ok();
    if (config_.record_traces) record.thought = rs.scheduler->last_thought();

    if (verdict.ok()) {
      invalid_streak = 0;
      switch (action.type) {
        case ActionType::kStartJob:
        case ActionType::kBackfillJob: {
          const Job job = *std::find_if(rs.waiting.begin(), rs.waiting.end(),
                                        [&](const Job& j) { return j.id == action.job_id; });
          execute_start(rs, now, job, action.type == ActionType::kBackfillJob);
          // The seed passed `ctx` whose vectors execute_start had mutated in
          // place; with views that would capture stale sizes, so rebuild the
          // context over the post-action state (receivers in-tree ignore it).
          const auto running_after = rs.cluster.running_by_end_time();
          const DecisionContext after{now,
                                      rs.cluster,
                                      rs.waiting,
                                      rs.ineligible,
                                      running_after,
                                      rs.result.completed,
                                      rs.events.has_pending_arrivals(),
                                      rs.all_jobs.size()};
          rs.scheduler->on_accepted(action, after);
          break;
        }
        case ActionType::kStop:
          rs.stopped = true;
          rs.scheduler->on_accepted(action, ctx);
          break;
        case ActionType::kDelay:
          rs.scheduler->on_accepted(action, ctx);
          break;
      }
      if (config_.record_traces) rs.result.decisions.push_back(std::move(record));
      if (action.type == ActionType::kDelay || action.type == ActionType::kStop) {
        if (action.type == ActionType::kDelay && rs.events.empty() && !rs.waiting.empty()) {
          emergency_start(rs, now);
          continue;
        }
        return;
      }
      if (terminal_state) return;  // nothing left to place
      continue;
    }

    // Invalid action: explain (Section 2.4), count, and re-query.
    ++rs.result.n_invalid_actions;
    ++invalid_streak;
    const std::string feedback = render_feedback(now, action, verdict);
    if (config_.feedback_enabled) rs.scheduler->on_feedback(feedback, ctx);
    if (config_.record_traces) {
      record.feedback = feedback;
      rs.result.decisions.push_back(std::move(record));
    }
    if (invalid_streak > config_.max_invalid_retries) {
      ++rs.result.n_forced_delays;
      if (rs.events.empty() && !rs.waiting.empty()) {
        emergency_start(rs, now);
        invalid_streak = 0;
        continue;
      }
      return;  // forced Delay: advance to the next event
    }
  }
}

ScheduleResult ReferenceEngine::run(const std::vector<Job>& jobs, Scheduler& scheduler) {
  validate_jobs(jobs);
  RunState rs(config_.cluster);
  rs.scheduler = &scheduler;
  scheduler.reset();

  for (const Job& j : jobs) {
    rs.all_jobs.emplace(j.id, j);
    rs.events.push(j.submit_time, EventType::kArrival, j.id);
  }

  while (!rs.events.empty()) {
    const double now = rs.events.next_time();
    process_events_at(rs, now);
    decision_phase(rs, now);
    if (rs.events.empty() && !rs.waiting.empty() && !rs.stopped) {
      // Scheduler delayed with no future events; force progress.
      emergency_start(rs, now);
      decision_phase(rs, now);
    }
  }

  if (!rs.waiting.empty() || !rs.ineligible.empty()) {
    throw std::logic_error("Engine: simulation ended with unscheduled jobs (unreachable)");
  }
  // total-order: unique JobId.
  std::sort(rs.result.completed.begin(), rs.result.completed.end(),
            [](const CompletedJob& a, const CompletedJob& b) { return a.job.id < b.job.id; });
  return std::move(rs.result);
}

}  // namespace reasched::sim
