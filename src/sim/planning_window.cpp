#include "sim/planning_window.hpp"

#include <algorithm>
#include <numeric>

namespace reasched::sim {

bool PlanningWindow::select(const ListView<Job>& waiting, std::vector<std::uint32_t>& out) const {
  out.clear();
  if (!bounds(waiting.size())) return false;

  if (order == Order::kArrival) {
    // The queue is already in arrival order: the window is its prefix.
    out.resize(top_k);
    std::iota(out.begin(), out.end(), 0u);
    return true;
  }

  // Shortest-first: the head (always included - see struct comment) plus
  // the K-1 minima under sjf_order among the rest, then restore queue
  // (arrival) order so the window is a subsequence of the waiting queue.
  out.resize(waiting.size() - 1);
  std::iota(out.begin(), out.end(), 1u);
  if (top_k > 1) {
    std::nth_element(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(top_k - 2),
                     out.end(), [&](std::uint32_t a, std::uint32_t b) {
                       return sjf_order(waiting[a], waiting[b]);
                     });
  }
  out.resize(top_k - 1);
  out.push_back(0);
  // total-order: waiting-set positions are distinct indices.
  std::sort(out.begin(), out.end());
  return true;
}

}  // namespace reasched::sim
