#pragma once

#include <string>
#include <vector>

#include "sim/action.hpp"
#include "sim/job.hpp"

namespace reasched::sim {

/// One finished job with its realized schedule: wait = start - submit,
/// turnaround = end - submit (paper Section 3.2).
struct CompletedJob {
  Job job;
  double start_time = 0.0;
  double end_time = 0.0;
  /// True when the engine terminated the job at its walltime limit
  /// (only with EngineConfig::enforce_walltime).
  bool killed_at_walltime = false;

  double wait_time() const { return start_time - job.submit_time; }
  double turnaround_time() const { return end_time - job.submit_time; }
};

/// One scheduler query and its outcome, including the natural-language
/// thought (when the scheduler exposes one) and any constraint feedback -
/// this is the machine-readable form of the paper's Figure 2 traces.
struct DecisionRecord {
  double time = 0.0;
  Action action;
  bool accepted = false;
  std::string thought;
  std::string feedback;  ///< non-empty only for rejected actions
};

/// Full outcome of one simulation run.
struct ScheduleResult {
  std::vector<CompletedJob> completed;
  std::vector<DecisionRecord> decisions;

  /// Simulation clock when the last job completed.
  double final_time = 0.0;

  /// Bookkeeping counters the evaluation reads off.
  std::size_t n_decisions = 0;        ///< scheduler queries issued
  std::size_t n_invalid_actions = 0;  ///< rejected by constraint enforcement
  std::size_t n_forced_delays = 0;    ///< retries exhausted, engine forced Delay
  std::size_t n_backfills = 0;        ///< accepted BackfillJob actions

  /// Find the record for `id`; throws std::out_of_range when absent.
  const CompletedJob& find(JobId id) const;
  bool all_completed(std::size_t expected_jobs) const {
    return completed.size() == expected_jobs;
  }

  /// Wait/turnaround vectors in job-id order, for metric computation.
  std::vector<double> wait_times() const;
  std::vector<double> turnaround_times() const;
};

}  // namespace reasched::sim
