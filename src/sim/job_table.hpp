#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/job.hpp"
#include "sim/views.hpp"

namespace reasched::sim {

/// Indexed per-run job state for the engine: a contiguous job arena keyed by
/// dense index, an ordered waiting index, and reverse-dependency adjacency
/// with remaining-count counters.
///
/// This replaces the seed representation (std::map<JobId, Job> plus
/// sorted-vector `waiting` that was fully re-sorted after every event and
/// erased by linear scan on every start) with per-transition costs of an
/// O(log n) position search plus an O(n_waiting) shift of 4-byte indices
/// (a memmove, vs the seed's O(n log n) re-sort of whole Job objects) and
/// O(out-degree) dependency promotion, so a run over 10^5 jobs no longer
/// pays O(n) Job copies and comparisons per decision just for bookkeeping.
///
/// The arena is immutable after build(): Job storage is contiguous and
/// stable, which is what lets DecisionContext hand out zero-copy views.
class JobTable {
 public:
  /// Load the arena from `jobs` (ids must be unique and dependency
  /// references valid - the engine validates before building). Resets all
  /// lifecycle state.
  void build(const std::vector<Job>& jobs);

  std::size_t size() const { return jobs_.size(); }
  std::size_t n_waiting() const { return waiting_.size(); }
  std::size_t n_ineligible() const { return ineligible_.size(); }

  const Job& job(JobId id) const { return jobs_[index_of(id)]; }
  JobState state(JobId id) const { return meta_[index_of(id)].state; }
  bool is_completed(JobId id) const { return state(id) == JobState::kCompleted; }

  /// Arrival event fired: the job enters the waiting index when its
  /// dependencies are already satisfied, the blocked list otherwise.
  void arrive(JobId id);

  /// A waiting job was started: remove it from the waiting index.
  void start(JobId id);

  /// Completion event fired: mark completed and decrement each dependent's
  /// remaining-dependency counter, promoting arrived dependents whose last
  /// dependency this was. O(out-degree) amortized - no scan over all jobs.
  void complete(JobId id);

  void mark_killed(JobId id) { meta_[index_of(id)].killed = true; }
  bool killed(JobId id) const { return meta_[index_of(id)].killed; }

  /// O(1) lookups backing DecisionContext/ConstraintChecker queries.
  const Job* find_waiting(JobId id) const;
  const Job* find_ineligible(JobId id) const;

  /// Zero-copy view of eligible jobs in arrival order (submit_time, id).
  ListView<Job> waiting_view() const {
    return {jobs_.data(), waiting_.data(), waiting_.size()};
  }
  /// Zero-copy view of arrived-but-blocked jobs, in arrival-event order
  /// (matches the seed's std::vector push_back order).
  ListView<Job> ineligible_view() const {
    return {jobs_.data(), ineligible_.data(), ineligible_.size()};
  }

 private:
  struct Meta {
    JobState state = JobState::kPending;
    std::uint32_t remaining_deps = 0;
    bool killed = false;
    /// Dense indices of jobs that depend on this one (reverse adjacency).
    std::vector<std::uint32_t> dependents;
  };

  std::uint32_t index_of(JobId id) const;
  void insert_waiting(std::uint32_t idx);
  void erase_waiting(std::uint32_t idx);
  void promote(std::uint32_t idx);

  std::vector<Job> jobs_;   ///< arena, dense-index keyed, stable after build
  std::vector<Meta> meta_;  ///< parallel to jobs_
  std::vector<std::uint32_t> waiting_;     ///< sorted by arrival_order
  std::vector<std::uint32_t> ineligible_;  ///< arrival-event order
  std::unordered_map<JobId, std::uint32_t> id_to_index_;
};

}  // namespace reasched::sim
