#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "sim/job.hpp"
#include "sim/views.hpp"

namespace reasched::sim {

/// Per-subtree minima over the waiting set, the pruning currency of
/// JobTable's backfill segment tree. Empty subtrees carry the max sentinels
/// below, so any `min_* <= cap` pruning test fails for them and pruning
/// predicates never need an explicit emptiness check.
struct WaitingAggregate {
  int min_nodes = std::numeric_limits<int>::max();
  double min_memory_gb = std::numeric_limits<double>::infinity();
  double min_walltime = std::numeric_limits<double>::infinity();
};

/// Indexed per-run job state for the engine: a contiguous job arena keyed by
/// dense index, an ordered waiting index, and reverse-dependency adjacency
/// with remaining-count counters.
///
/// This replaces the seed representation (std::map<JobId, Job> plus
/// sorted-vector `waiting` that was fully re-sorted after every event and
/// erased by linear scan on every start) with per-transition costs of an
/// O(log n) position search plus an O(n_waiting) shift of 4-byte indices
/// (a memmove, vs the seed's O(n log n) re-sort of whole Job objects) and
/// O(out-degree) dependency promotion, so a run over 10^5 jobs no longer
/// pays O(n) Job copies and comparisons per decision just for bookkeeping.
///
/// On top of the engine-facing state, the table maintains two policy-facing
/// incremental indexes so scheduler decide() calls stop scanning the queue:
///
///  - a walltime-ordered waiting index (sjf_order): shortest_waiting() is
///    O(1) where SJF's min_element scan was O(n_waiting);
///  - a segment tree over the static arrival-rank permutation with
///    WaitingAggregate minima per subtree: first_waiting_after_head() finds
///    the first backfill candidate in queue order by aggregate-pruned
///    descent - typically O(log n) against EASY's former O(n_waiting) scan.
///
/// Both are maintained inside insert_waiting()/erase_waiting(), the single
/// choke point every waiting-set transition (arrive, promote, start) goes
/// through, so they can never drift from the primary waiting index.
///
/// The arena is immutable after build(): Job storage is contiguous and
/// stable, which is what lets DecisionContext hand out zero-copy views.
class JobTable {
 public:
  /// Load the arena from `jobs` (ids must be unique and dependency
  /// references valid - the engine validates before building). Resets all
  /// lifecycle state.
  void build(const std::vector<Job>& jobs);

  /// Online admit: append one job to the arena. The job must be last in
  /// arrival order, i.e. arrival_order(existing, job) for every job already
  /// in the table - the service layer guarantees this with monotone ids and
  /// a submit-time watermark - so the static arrival-rank permutation stays
  /// an append and the backfill segment tree only ever grows at the end
  /// (doubling + O(n_waiting log n) rebuild when the leaf capacity is
  /// exceeded, amortized O(log n) per admit). Dependencies must reference
  /// known, non-cancelled jobs. Throws std::invalid_argument on violations.
  void add_job(const Job& job);

  /// Online cancel: withdraw `id` and, transitively, every dependent that
  /// can no longer run. Legal only while `id` has not started; returns the
  /// cancelled ids in cancellation (BFS) order, or an empty vector when the
  /// job is running/completed/already cancelled (nothing changes). Pending
  /// jobs stay in the arena as kCancelled; their queued arrival events must
  /// be tombstoned by the caller (the engine skips arrivals for cancelled
  /// ids).
  std::vector<JobId> cancel(JobId id);

  std::size_t size() const { return jobs_.size(); }
  std::size_t n_waiting() const { return waiting_.size(); }
  std::size_t n_ineligible() const { return ineligible_.size(); }

  /// Is `id` known to the table (any lifecycle state, including cancelled)?
  bool contains(JobId id) const { return id_to_index_.count(id) != 0; }

  const Job& job(JobId id) const { return jobs_[index_of(id)]; }
  JobState state(JobId id) const { return meta_[index_of(id)].state; }
  bool is_completed(JobId id) const { return state(id) == JobState::kCompleted; }

  /// Arrival event fired: the job enters the waiting index when its
  /// dependencies are already satisfied, the blocked list otherwise.
  void arrive(JobId id);

  /// A waiting job was started: remove it from the waiting index.
  void start(JobId id);

  /// Completion event fired: mark completed and decrement each dependent's
  /// remaining-dependency counter, promoting arrived dependents whose last
  /// dependency this was. O(out-degree) amortized - no scan over all jobs.
  void complete(JobId id);

  void mark_killed(JobId id) { meta_[index_of(id)].killed = true; }
  bool killed(JobId id) const { return meta_[index_of(id)].killed; }

  /// O(1) lookups backing DecisionContext/ConstraintChecker queries.
  const Job* find_waiting(JobId id) const;
  const Job* find_ineligible(JobId id) const;

  /// The waiting job that is first in sjf_order (walltime, then arrival),
  /// or nullptr when nothing waits. O(1) - front of the walltime index.
  const Job* shortest_waiting() const {
    return waiting_by_walltime_.empty() ? nullptr : &jobs_[waiting_by_walltime_.front()];
  }

  /// The first waiting job *after* the queue head (in arrival order) for
  /// which `leaf(job)` holds - what a backfilling policy scans for. `prune`
  /// is consulted with the WaitingAggregate of each candidate subtree and
  /// must be *necessary*: it may return false only when no job in the
  /// subtree can satisfy `leaf` (per-field minima make single-field `<=`
  /// caps safe to test). Descent visits O(log n) nodes per accepted or
  /// pruned branch; with a sound prune the common case is O(log n) overall,
  /// and the result is exactly what a left-to-right scan applying `leaf`
  /// would return. Returns nullptr when no candidate matches.
  template <typename LeafPred, typename PrunePred>
  const Job* first_waiting_after_head(LeafPred&& leaf, PrunePred&& prune) const {
    if (waiting_.size() < 2) return nullptr;
    const std::uint32_t head_rank = rank_of_[waiting_.front()];
    return descend(1, 0, tree_leaves_, head_rank, leaf, prune);
  }

  /// Zero-copy view of eligible jobs in arrival order (submit_time, id).
  ListView<Job> waiting_view() const {
    return {jobs_.data(), waiting_.data(), waiting_.size()};
  }
  /// Zero-copy view of arrived-but-blocked jobs, in arrival-event order
  /// (matches the seed's std::vector push_back order).
  ListView<Job> ineligible_view() const {
    return {jobs_.data(), ineligible_.data(), ineligible_.size()};
  }

  /// The full job arena in build/admit order (deterministic, not id-sorted).
  /// Snapshot digests and service queries iterate this.
  const std::vector<Job>& arena() const { return jobs_; }

 private:
  struct Meta {
    JobState state = JobState::kPending;
    std::uint32_t remaining_deps = 0;
    bool killed = false;
    /// Dense indices of jobs that depend on this one (reverse adjacency).
    std::vector<std::uint32_t> dependents;
  };

  std::uint32_t index_of(JobId id) const;
  void insert_waiting(std::uint32_t idx);
  void erase_waiting(std::uint32_t idx);
  void insert_ineligible(std::uint32_t idx);
  void promote(std::uint32_t idx);
  /// Write `agg` into the segment-tree leaf for arrival rank `rank` and
  /// recombine ancestors. O(log n).
  void tree_update(std::uint32_t rank, const WaitingAggregate& agg);

  template <typename LeafPred, typename PrunePred>
  const Job* descend(std::size_t node, std::uint32_t lo, std::uint32_t hi,
                     std::uint32_t after_rank, LeafPred& leaf, PrunePred& prune) const {
    if (hi <= after_rank + 1) return nullptr;  // whole range at or before head
    const WaitingAggregate& agg = tree_[node];
    if (agg.min_nodes == std::numeric_limits<int>::max()) return nullptr;  // empty
    if (!prune(agg)) return nullptr;
    if (hi - lo == 1) {
      const Job& j = jobs_[rank_to_index_[lo]];
      return leaf(j) ? &j : nullptr;
    }
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (const Job* hit = descend(2 * node, lo, mid, after_rank, leaf, prune)) return hit;
    return descend(2 * node + 1, mid, hi, after_rank, leaf, prune);
  }

  std::vector<Job> jobs_;   ///< arena, dense-index keyed, stable after build
  std::vector<Meta> meta_;  ///< parallel to jobs_
  std::vector<std::uint32_t> waiting_;     ///< sorted by arrival_order
  /// Arrived-but-blocked jobs, sorted by event_rank_of_ - which is exactly
  /// arrival-event (push_back) order for engine-driven arrivals, so the
  /// observable view order matches the seed while promote() can locate an
  /// entry by binary search (O(log |blocked|)) instead of the seed's
  /// std::find scan, which made DAG-heavy promotion storms O(|blocked|^2).
  std::vector<std::uint32_t> ineligible_;
  std::unordered_map<JobId, std::uint32_t> id_to_index_;
  /// Dense index -> rank in the static (submit_time, build position) total
  /// order - the order arrival events fire in (EventQueue pops by time,
  /// then by push sequence, and arrivals are pushed in build order).
  std::vector<std::uint32_t> event_rank_of_;

  /// Policy-facing indexes (see class comment).
  std::vector<std::uint32_t> waiting_by_walltime_;  ///< sorted by sjf_order
  std::vector<std::uint32_t> rank_of_;        ///< dense index -> arrival rank
  std::vector<std::uint32_t> rank_to_index_;  ///< arrival rank -> dense index
  std::vector<WaitingAggregate> tree_;        ///< 1-based heap layout
  std::uint32_t tree_leaves_ = 0;             ///< leaf count (power of two)
};

}  // namespace reasched::sim
