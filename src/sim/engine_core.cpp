#include "sim/engine_core.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "obs/trace.hpp"
#include "sim/feedback.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace reasched::sim {

void validate_jobs(const std::vector<Job>& jobs, const ClusterSpec& cluster) {
  const ClusterState probe(cluster);
  std::unordered_map<JobId, std::size_t> index;
  index.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    if (!j.valid()) {
      throw std::invalid_argument(util::format("Engine: job %d is malformed", j.id));
    }
    if (!index.emplace(j.id, i).second) {
      throw std::invalid_argument(util::format("Engine: duplicate job id %d", j.id));
    }
    if (!probe.fits_empty(j)) {
      throw std::invalid_argument(util::format(
          "Engine: job %d requests %d nodes / %.0f GB, exceeding cluster capacity", j.id, j.nodes,
          j.memory_gb));
    }
  }
  // Dependency references must exist and form a DAG (Kahn's algorithm over
  // dense indices: O(V + E)).
  std::vector<int> indegree(jobs.size(), 0);
  std::vector<std::vector<std::size_t>> successors(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    for (const JobId dep : j.dependencies) {
      const auto it = index.find(dep);
      if (it == index.end()) {
        throw std::invalid_argument(
            util::format("Engine: job %d depends on unknown job %d", j.id, dep));
      }
      if (dep == j.id) {
        throw std::invalid_argument(util::format("Engine: job %d depends on itself", j.id));
      }
      ++indegree[i];
      successors[it->second].push_back(i);
    }
  }
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const std::size_t i = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const std::size_t succ : successors[i]) {
      if (--indegree[succ] == 0) frontier.push_back(succ);
    }
  }
  if (visited != jobs.size()) {
    throw std::invalid_argument("Engine: dependency graph contains a cycle");
  }
}

EngineCore::EngineCore(const EngineConfig& config, Scheduler& scheduler)
    : config_(config), scheduler_(&scheduler), cluster_(config.cluster) {
  scheduler_->reset();
}

DecisionContext EngineCore::context(double event_time) const {
  return DecisionContext{event_time,
                         cluster_,
                         table_.waiting_view(),
                         table_.ineligible_view(),
                         cluster_.running_view(),
                         result_.completed,
                         events_.has_pending_arrivals() || more_arrivals_hint_,
                         table_.size(),
                         &table_};
}

void EngineCore::load(const std::vector<Job>& jobs) {
  if (table_.size() != 0 || steps_ != 0) {
    throw std::logic_error("EngineCore: load() on a core that already has state");
  }
  table_.build(jobs);
  result_.completed.reserve(jobs.size());
  for (const Job& j : jobs) {
    events_.push(j.submit_time, EventType::kArrival, j.id);
  }
}

void EngineCore::admit(const Job& job) {
  if (!job.valid()) {
    throw std::invalid_argument(util::format("EngineCore: job %d is malformed", job.id));
  }
  if (!cluster_.fits_empty(job)) {
    throw std::invalid_argument(util::format(
        "EngineCore: job %d requests %d nodes / %.0f GB, exceeding cluster capacity", job.id,
        job.nodes, job.memory_gb));
  }
  if (job.submit_time < now_) {
    throw std::invalid_argument(
        util::format("EngineCore: job %d submitted in the past (%.3f < clock %.3f)", job.id,
                     job.submit_time, now_));
  }
  table_.add_job(job);  // validates dependencies + arrival-order append
  events_.push(job.submit_time, EventType::kArrival, job.id);
}

std::vector<JobId> EngineCore::cancel(JobId id) {
  std::vector<JobId> ids = table_.cancel(id);
  for (const JobId cancelled_id : ids) {
    // Tombstone queued arrivals; ids whose arrival already fired never come
    // up again, so a stale tombstone is only consumed, never acted on.
    arrival_tombstones_.insert(cancelled_id);
    cancelled_.emplace_back(now_, cancelled_id);
  }
  return ids;
}

void EngineCore::process_events_at(double event_time) {
  while (!events_.empty() && same_event_time(events_.next_time(), event_time)) {
    const Event e = events_.pop();
    if (e.type == EventType::kCompletion) {
      const auto alloc = cluster_.release(e.job_id);
      CompletedJob record{alloc.job, alloc.start_time, alloc.end_time, table_.killed(e.job_id)};
      // Report the job as submitted (original duration), even when killed.
      record.job = table_.job(e.job_id);
      result_.completed.push_back(std::move(record));
      table_.complete(e.job_id);
      result_.final_time = std::max(result_.final_time, alloc.end_time);
    } else {
      const auto tomb = arrival_tombstones_.find(e.job_id);
      if (tomb != arrival_tombstones_.end()) {
        arrival_tombstones_.erase(tomb);  // cancelled while pending: skip
        continue;
      }
      table_.arrive(e.job_id);
    }
  }
}

void EngineCore::execute_start(double event_time, const Job& job, bool backfill) {
  Job effective = job;
  if (config_.enforce_walltime && effective.duration > effective.walltime) {
    // The resource manager terminates the job at its requested limit.
    effective.duration = effective.walltime;
    table_.mark_killed(effective.id);
  }
  cluster_.allocate(effective, event_time);
  events_.push(event_time + effective.duration, EventType::kCompletion, effective.id);
  table_.start(job.id);
  if (backfill) ++result_.n_backfills;
}

void EngineCore::emergency_start(double event_time) {
  // Reached only when the scheduler delays with no pending events: nothing
  // is running, so the full cluster is free and the first waiting job must
  // fit (capacity-impossible jobs were rejected at submission).
  for (const Job& job : table_.waiting_view()) {
    if (cluster_.fits(job)) {
      LOG_WARN("Engine: forcing FCFS start of job " << job.id
                                                    << " to break a scheduler livelock");
      ++result_.n_forced_delays;
      execute_start(event_time, job, /*backfill=*/false);
      return;
    }
  }
  throw std::logic_error("Engine: livelock with no startable job (unreachable)");
}

void EngineCore::decision_phase(double event_time) {
  int invalid_streak = 0;
  while (!stopped_) {
    const DecisionContext ctx = context(event_time);

    // The paper queries the agent only when jobs are ready, with one
    // exception: the terminal state, where the agent is asked once so it can
    // emit Stop (Figure 2, decision at t=9997).
    const bool terminal_state =
        ctx.waiting.empty() && ctx.ineligible.empty() && !ctx.arrivals_pending;
    if (ctx.waiting.empty() && !terminal_state) return;

    // Sampled decision span (1 in obs::kSampleEvery): stamps the wall-clock
    // cost of one scheduler query plus the state it saw and the policy's
    // own counters. Observe-only; the decision itself is untouched.
    obs::Span decision_span;
    if (obs::enabled() && (obs_decision_serial_++ & (obs::kSampleEvery - 1)) == 0) {
      decision_span = obs::Span::begin(obs::TraceRecorder::global(), "decision", "sched");
      decision_span.set_sim_time(event_time);
      decision_span.sarg("method", scheduler_->name());
      decision_span.arg("queue_depth", static_cast<double>(ctx.waiting.size()));
      decision_span.arg("running", static_cast<double>(ctx.running.size()));
    }

    const Action action = scheduler_->decide(ctx);
    ++result_.n_decisions;
    if (decision_span.active()) {
      decision_span.sarg("action", to_string(action.type));
      for (const auto& [key, value] : scheduler_->obs_counters()) {
        decision_span.arg(key, value);
      }
      decision_span.end();
    }

    const Validation verdict = checker_.check(action, ctx);
    DecisionRecord record;
    record.time = event_time;
    record.action = action;
    record.accepted = verdict.ok();
    if (config_.record_traces) record.thought = scheduler_->last_thought();

    if (verdict.ok()) {
      invalid_streak = 0;
      switch (action.type) {
        case ActionType::kStartJob:
        case ActionType::kBackfillJob: {
          // Checker accepted, so the job is in the waiting index; the arena
          // reference stays valid across the start transition.
          const Job& job = *ctx.find_waiting(action.job_id);
          execute_start(event_time, job, action.type == ActionType::kBackfillJob);
          // ctx's views were invalidated by the start transition; notify
          // with a fresh context over the post-action state.
          scheduler_->on_accepted(action, context(event_time));
          break;
        }
        case ActionType::kStop:
          stopped_ = true;
          scheduler_->on_accepted(action, ctx);
          break;
        case ActionType::kDelay:
          scheduler_->on_accepted(action, ctx);
          break;
      }
      if (config_.record_traces) result_.decisions.push_back(std::move(record));
      if (action.type == ActionType::kDelay || action.type == ActionType::kStop) {
        if (action.type == ActionType::kDelay && events_.empty() && table_.n_waiting() > 0 &&
            !more_arrivals_hint_) {
          emergency_start(event_time);
          continue;
        }
        return;
      }
      if (terminal_state) return;  // nothing left to place
      continue;
    }

    // Invalid action: explain (Section 2.4), count, and re-query.
    ++result_.n_invalid_actions;
    ++invalid_streak;
    const std::string feedback = render_feedback(event_time, action, verdict);
    if (config_.feedback_enabled) scheduler_->on_feedback(feedback, ctx);
    if (config_.record_traces) {
      record.feedback = feedback;
      result_.decisions.push_back(std::move(record));
    }
    if (invalid_streak > config_.max_invalid_retries) {
      ++result_.n_forced_delays;
      if (events_.empty() && table_.n_waiting() > 0 && !more_arrivals_hint_) {
        emergency_start(event_time);
        invalid_streak = 0;
        continue;
      }
      return;  // forced Delay: advance to the next event
    }
  }
}

void EngineCore::bind_obs_cells() {
  obs::MetricRegistry& reg = obs::MetricRegistry::global();
  obs_cells_.steps = &reg.counter("engine/steps");
  obs_cells_.decisions = &reg.counter("engine/decisions");
  obs_cells_.invalid_actions = &reg.counter("engine/invalid_actions");
  obs_cells_.backfills = &reg.counter("engine/backfills");
  obs_cells_.forced_delays = &reg.counter("engine/forced_delays");
  obs_cells_.completed_jobs = &reg.counter("engine/completed_jobs");
  obs_cells_.queue_depth =
      &reg.histogram("engine/queue_depth", {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
}

bool EngineCore::step() {
  if (events_.empty()) return false;

  // Telemetry: non-sampled steps cost one relaxed load plus a serial
  // increment; every obs::kSampleEvery-th step additionally flushes counter
  // deltas to the registry, samples the queue depth and records an
  // event-batch span. Everything here is observe-only.
  const bool obs_sampled = obs::enabled() && (obs_step_serial_++ & (obs::kSampleEvery - 1)) == 0;
  std::size_t obs_decisions0 = 0, obs_completed0 = 0;
  obs::Span step_span;
  if (obs_sampled) {
    obs_decisions0 = result_.n_decisions;
    obs_completed0 = result_.completed.size();
    step_span = obs::Span::begin(obs::TraceRecorder::global(), "step", "sim");
  }

  const double event_time = events_.next_time();
  now_ = event_time;
  process_events_at(event_time);
  decision_phase(event_time);
  if (events_.empty() && table_.n_waiting() > 0 && !stopped_ && !more_arrivals_hint_) {
    // Scheduler delayed with no future events; force progress. With the
    // more-arrivals hint set this is not a livelock - the service will feed
    // more events - so waiting idle is the correct online behaviour.
    emergency_start(event_time);
    decision_phase(event_time);
  }
  ++steps_;

  if (obs_sampled) {
    flush_obs();
    obs_cells_.queue_depth->observe(static_cast<double>(table_.n_waiting()));
    step_span.set_sim_time(event_time);
    step_span.arg("decisions", static_cast<double>(result_.n_decisions - obs_decisions0));
    step_span.arg("completed", static_cast<double>(result_.completed.size() - obs_completed0));
    step_span.arg("queue_depth", static_cast<double>(table_.n_waiting()));
    step_span.end();
  }
  return true;
}

void EngineCore::flush_obs() {
  if (!obs::enabled()) return;
  if (obs_cells_.steps == nullptr) bind_obs_cells();
  obs_cells_.steps->add(steps_ - obs_pub_steps_);
  obs_cells_.decisions->add(result_.n_decisions - obs_pub_decisions_);
  obs_cells_.invalid_actions->add(result_.n_invalid_actions - obs_pub_invalid_);
  obs_cells_.backfills->add(result_.n_backfills - obs_pub_backfills_);
  obs_cells_.forced_delays->add(result_.n_forced_delays - obs_pub_forced_);
  obs_cells_.completed_jobs->add(result_.completed.size() - obs_pub_completed_);
  obs_pub_steps_ = steps_;
  obs_pub_decisions_ = result_.n_decisions;
  obs_pub_invalid_ = result_.n_invalid_actions;
  obs_pub_backfills_ = result_.n_backfills;
  obs_pub_forced_ = result_.n_forced_delays;
  obs_pub_completed_ = result_.completed.size();
}

ScheduleResult EngineCore::finish() {
  if (table_.n_waiting() > 0 || table_.n_ineligible() > 0) {
    throw std::logic_error("Engine: simulation ended with unscheduled jobs (unreachable)");
  }
  flush_obs();  // exact registry totals at the run boundary
  // total-order: unique JobId.
  std::sort(result_.completed.begin(), result_.completed.end(),
            [](const CompletedJob& a, const CompletedJob& b) { return a.job.id < b.job.id; });
  return std::move(result_);
}

}  // namespace reasched::sim
