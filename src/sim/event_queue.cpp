#include "sim/event_queue.hpp"

#include <limits>
#include <stdexcept>

namespace reasched::sim {

void EventQueue::push(double time, EventType type, JobId job_id) {
  heap_.push(Event{time, type, job_id, next_seq_++});
  if (type == EventType::kArrival) ++pending_arrivals_;
}

const Event& EventQueue::peek() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::peek on empty queue");
  return heap_.top();
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  Event e = heap_.top();
  heap_.pop();
  if (e.type == EventType::kArrival) --pending_arrivals_;
  return e;
}

std::vector<Event> EventQueue::snapshot_events() const {
  auto clone = heap_;
  std::vector<Event> out;
  out.reserve(clone.size());
  while (!clone.empty()) {
    out.push_back(clone.top());
    clone.pop();
  }
  return out;
}

double EventQueue::next_time() const {
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.top().time;
}

}  // namespace reasched::sim
