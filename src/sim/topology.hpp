#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/schedule_result.hpp"

namespace reasched::sim {

/// Topology-aware placement analysis - the paper's named future-work item
/// ("topology-aware placement left for future work", Section 3.3). The
/// scheduler layer decides *when* jobs run; this module replays a finished
/// schedule onto a rack-structured node map to measure *where* they would
/// land and how fragmented each placement is under a given allocation
/// strategy. It answers: which scheduling policy produces schedules that
/// are easier to place compactly?
struct TopologySpec {
  int racks = 8;
  int nodes_per_rack = 32;  ///< 8 x 32 = the paper's 256-node partition

  int total_nodes() const { return racks * nodes_per_rack; }
  static TopologySpec for_cluster(const ClusterSpec& cluster, int racks = 8);
};

enum class PlacementStrategy {
  kFirstFit,           ///< lowest-numbered free nodes, ignores rack boundaries
  kContiguousBestFit,  ///< prefer filling whole racks / large contiguous runs
};

/// Node assignment of one job in the replayed placement.
struct Placement {
  JobId job = 0;
  std::vector<int> nodes;  ///< node ids, ascending
  int racks_spanned = 0;
};

/// Locality metrics over the whole schedule.
struct TopologyReport {
  std::vector<Placement> placements;
  /// Mean racks spanned per job, weighted by nodes (1.0 = perfectly local).
  double mean_racks_spanned = 0.0;
  /// Fraction of jobs confined to a single rack (among multi-node jobs that
  /// fit in one rack).
  double single_rack_fraction = 0.0;
  /// Peak number of distinct racks with mixed (partial) occupancy at any
  /// event - a fragmentation indicator.
  int peak_fragmented_racks = 0;
};

/// Replay a schedule's start/end events in time order, assigning concrete
/// node ids with the given strategy. Throws std::logic_error if the
/// schedule ever needs more nodes than the topology has (cannot happen for
/// results produced against the matching cluster).
TopologyReport analyze_topology(const ScheduleResult& result, const TopologySpec& spec,
                                PlacementStrategy strategy);

const char* to_string(PlacementStrategy s);

}  // namespace reasched::sim
