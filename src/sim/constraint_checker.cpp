#include "sim/constraint_checker.hpp"

#include <algorithm>

#include "util/string_utils.hpp"

namespace reasched::sim {

Validation ConstraintChecker::check(const Action& action, const DecisionContext& ctx) const {
  switch (action.type) {
    case ActionType::kDelay:
      return {};

    case ActionType::kStop: {
      if (!ctx.waiting.empty() || !ctx.ineligible.empty() || ctx.arrivals_pending) {
        const std::size_t remaining =
            ctx.waiting.size() + ctx.ineligible.size();
        return {ViolationCode::kPrematureStop,
                util::format("Stop rejected - %zu job(s) still waiting and %s; "
                             "all jobs must be scheduled before stopping.",
                             remaining,
                             ctx.arrivals_pending ? "more arrivals are pending"
                                                  : "no more arrivals are pending")};
      }
      return {};
    }

    case ActionType::kStartJob:
    case ActionType::kBackfillJob: {
      // O(1) against the engine's job index (linear only for ad-hoc
      // contexts without one).
      const Job* waiting = ctx.find_waiting(action.job_id);
      if (waiting == nullptr) {
        if (ctx.cluster.is_running(action.job_id)) {
          return {ViolationCode::kAlreadyRunning,
                  util::format("Job %d is already running; it cannot be started twice.",
                               action.job_id)};
        }
        if (ctx.find_ineligible(action.job_id) != nullptr) {
          return {ViolationCode::kDependencyUnmet,
                  util::format("Job %d is not yet eligible - it depends on jobs that have "
                               "not completed.",
                               action.job_id)};
        }
        return {ViolationCode::kUnknownJob,
                util::format("Job %d is not in the waiting queue.", action.job_id)};
      }
      const Job& job = *waiting;
      if (job.nodes > ctx.cluster.available_nodes()) {
        return {ViolationCode::kInsufficientNodes,
                util::format("Job %d cannot be started - requires %d Nodes, %.0f GB; "
                             "available: %d Nodes, %.0f GB.",
                             job.id, job.nodes, job.memory_gb, ctx.cluster.available_nodes(),
                             ctx.cluster.available_memory_gb())};
      }
      if (job.memory_gb > ctx.cluster.available_memory_gb() + 1e-9) {
        return {ViolationCode::kInsufficientMemory,
                util::format("Job %d cannot be started - requires %d Nodes, %.0f GB; "
                             "available: %d Nodes, %.0f GB.",
                             job.id, job.nodes, job.memory_gb, ctx.cluster.available_nodes(),
                             ctx.cluster.available_memory_gb())};
      }
      return {};
    }
  }
  return {};
}

const char* to_string(ViolationCode code) {
  switch (code) {
    case ViolationCode::kNone: return "none";
    case ViolationCode::kUnknownJob: return "unknown-job";
    case ViolationCode::kAlreadyRunning: return "already-running";
    case ViolationCode::kInsufficientNodes: return "insufficient-nodes";
    case ViolationCode::kInsufficientMemory: return "insufficient-memory";
    case ViolationCode::kDependencyUnmet: return "dependency-unmet";
    case ViolationCode::kPrematureStop: return "premature-stop";
  }
  return "?";
}

}  // namespace reasched::sim
