#pragma once

#include <vector>

#include "sim/cluster.hpp"
#include "sim/constraint_checker.hpp"
#include "sim/event_queue.hpp"
#include "sim/job_table.hpp"
#include "sim/schedule_result.hpp"
#include "sim/scheduler.hpp"

namespace reasched::sim {

/// Engine knobs. Defaults reproduce the paper's setup; the ablation bench
/// flips `feedback_enabled` to probe the value of natural-language feedback
/// (Section 2.4).
struct EngineConfig {
  ClusterSpec cluster = ClusterSpec::paper_default();
  /// Consecutive invalid actions tolerated at one decision point before the
  /// engine forces a Delay (keeps a confused agent from livelocking).
  int max_invalid_retries = 4;
  /// When false, rejected actions produce no explanation - the scheduler is
  /// simply re-queried. Models removing the paper's feedback channel.
  bool feedback_enabled = true;
  /// Record thoughts/feedback strings into DecisionRecords (disable for
  /// large benches to save memory).
  bool record_traces = true;
  /// Production-HPC semantics extension: kill jobs that exceed their
  /// requested walltime (the paper's setup never triggers this because its
  /// generators use exact estimates; real traces underestimate sometimes).
  bool enforce_walltime = false;
};

/// The paper's discrete-event HPC simulator (Section 3.1):
///
///  - maintains the global simulation clock, advancing only at job arrivals
///    and completions;
///  - injects newly arrived jobs into the waiting queue and releases the
///    resources of finished jobs;
///  - queries the scheduler whenever jobs are ready, executing valid actions
///    and rejecting invalid ones with natural-language feedback;
///  - runs jobs non-preemptively until all complete.
///
/// The engine owns constraint enforcement, so scheduling policies - LLM or
/// heuristic - cannot corrupt cluster state even when buggy.
///
/// Per-run state is fully indexed (JobTable arena + ordered waiting index +
/// dependency counters; ClusterState flat ledger + end-time index), so the
/// cost of a decision point is O(1) context construction plus the
/// scheduler's own work - see ARCHITECTURE.md and, for the pre-refactor
/// semantics baseline, ReferenceEngine.
///
/// The event loop itself lives in sim::EngineCore (engine_core.hpp), a
/// steppable state machine the online service drives directly; run() is a
/// thin validate/load/step-to-exhaustion/finish loop over it, so batch and
/// service-mode execution share one per-step implementation.
class Engine {
 public:
  explicit Engine(EngineConfig config = {});

  /// Simulate `jobs` under `scheduler`. Throws std::invalid_argument for
  /// malformed inputs (duplicate ids, capacity-impossible jobs, dependency
  /// cycles). Always returns with every job completed.
  ScheduleResult run(const std::vector<Job>& jobs, Scheduler& scheduler);

  const EngineConfig& config() const { return config_; }

 private:
  EngineConfig config_;
};

}  // namespace reasched::sim
