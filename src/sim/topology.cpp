#include "sim/topology.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace reasched::sim {

TopologySpec TopologySpec::for_cluster(const ClusterSpec& cluster, int racks) {
  TopologySpec spec;
  spec.racks = racks;
  spec.nodes_per_rack = (cluster.total_nodes + racks - 1) / racks;
  return spec;
}

const char* to_string(PlacementStrategy s) {
  switch (s) {
    case PlacementStrategy::kFirstFit: return "first-fit";
    case PlacementStrategy::kContiguousBestFit: return "contiguous-best-fit";
  }
  return "?";
}

namespace {

class NodeMap {
 public:
  explicit NodeMap(const TopologySpec& spec)
      : spec_(spec), free_(static_cast<std::size_t>(spec.total_nodes()), true) {}

  int rack_of(int node) const { return node / spec_.nodes_per_rack; }

  std::vector<int> allocate(int count, PlacementStrategy strategy) {
    std::vector<int> nodes;
    nodes.reserve(count);
    if (strategy == PlacementStrategy::kFirstFit) {
      for (int n = 0; n < spec_.total_nodes() && static_cast<int>(nodes.size()) < count;
           ++n) {
        if (free_[n]) nodes.push_back(n);
      }
    } else {
      // Contiguous best-fit: repeatedly grab the free run whose length is
      // the tightest fit for the remainder (prefer exact or slightly larger
      // runs; fall back to the largest available).
      int remaining = count;
      while (remaining > 0) {
        const auto [start, len] = best_run(remaining);
        if (len == 0) break;  // no free nodes left
        const int take = std::min(remaining, len);
        for (int n = start; n < start + take; ++n) nodes.push_back(n);
        // Mark temporarily so the next best_run sees them in use.
        for (int n = start; n < start + take; ++n) free_[n] = false;
        remaining -= take;
      }
      // Restore; the caller commits below.
      for (const int n : nodes) free_[n] = true;
      // total-order: node indices are distinct ints.
      std::sort(nodes.begin(), nodes.end());
    }
    if (static_cast<int>(nodes.size()) < count) {
      throw std::logic_error("NodeMap: insufficient free nodes (schedule/topology mismatch)");
    }
    for (const int n : nodes) free_[n] = false;
    return nodes;
  }

  void release(const std::vector<int>& nodes) {
    for (const int n : nodes) free_[n] = true;
  }

  /// Racks that are partially (but not fully) occupied right now.
  int fragmented_racks() const {
    int fragmented = 0;
    for (int r = 0; r < spec_.racks; ++r) {
      int used = 0;
      for (int n = r * spec_.nodes_per_rack;
           n < (r + 1) * spec_.nodes_per_rack && n < spec_.total_nodes(); ++n) {
        used += free_[n] ? 0 : 1;
      }
      if (used > 0 && used < spec_.nodes_per_rack) ++fragmented;
    }
    return fragmented;
  }

 private:
  /// Tightest free run able to host `want` nodes; when none is big enough,
  /// the longest run. Returns {start, length}, length 0 when nothing free.
  std::pair<int, int> best_run(int want) const {
    int best_start = 0, best_len = 0;
    int fit_start = -1, fit_len = spec_.total_nodes() + 1;
    int run_start = -1;
    for (int n = 0; n <= spec_.total_nodes(); ++n) {
      const bool is_free = n < spec_.total_nodes() && free_[n];
      if (is_free && run_start < 0) run_start = n;
      if (!is_free && run_start >= 0) {
        const int len = n - run_start;
        if (len > best_len) {
          best_len = len;
          best_start = run_start;
        }
        if (len >= want && len < fit_len) {
          fit_len = len;
          fit_start = run_start;
        }
        run_start = -1;
      }
    }
    if (fit_start >= 0) return {fit_start, fit_len};
    return {best_start, best_len};
  }

  TopologySpec spec_;
  std::vector<bool> free_;
};

}  // namespace

TopologyReport analyze_topology(const ScheduleResult& result, const TopologySpec& spec,
                                PlacementStrategy strategy) {
  // Event replay: releases before allocations at equal times (same rule as
  // the engine's event queue).
  struct Event {
    double time;
    bool is_start;
    const CompletedJob* job;
  };
  std::vector<Event> events;
  events.reserve(result.completed.size() * 2);
  for (const auto& c : result.completed) {
    events.push_back({c.start_time, true, &c});
    events.push_back({c.end_time, false, &c});
  }
  // total-order: (time, kind, unique JobId) - one start and one end per job.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.is_start != b.is_start) return !a.is_start;  // completions first
    return a.job->job.id < b.job->job.id;
  });

  NodeMap node_map(spec);
  std::map<JobId, std::vector<int>> live;
  TopologyReport report;
  double weighted_racks = 0.0, total_nodes = 0.0;
  std::size_t single_rack = 0, single_rack_eligible = 0;

  for (const auto& e : events) {
    if (!e.is_start) {
      const auto it = live.find(e.job->job.id);
      if (it != live.end()) {
        node_map.release(it->second);
        live.erase(it);
      }
      continue;
    }
    Placement placement;
    placement.job = e.job->job.id;
    placement.nodes = node_map.allocate(e.job->job.nodes, strategy);
    std::set<int> racks;
    for (const int n : placement.nodes) racks.insert(node_map.rack_of(n));
    placement.racks_spanned = static_cast<int>(racks.size());

    weighted_racks += static_cast<double>(placement.racks_spanned) * e.job->job.nodes;
    total_nodes += e.job->job.nodes;
    if (e.job->job.nodes <= spec.nodes_per_rack) {
      ++single_rack_eligible;
      if (placement.racks_spanned == 1) ++single_rack;
    }
    report.peak_fragmented_racks =
        std::max(report.peak_fragmented_racks, node_map.fragmented_racks());
    live.emplace(placement.job, placement.nodes);
    report.placements.push_back(std::move(placement));
  }

  if (total_nodes > 0.0) report.mean_racks_spanned = weighted_racks / total_nodes;
  if (single_rack_eligible > 0) {
    report.single_rack_fraction =
        static_cast<double>(single_rack) / static_cast<double>(single_rack_eligible);
  }
  return report;
}

}  // namespace reasched::sim
