#pragma once

#include <string>
#include <vector>

namespace reasched::sim {

using JobId = int;
using UserId = int;
using GroupId = int;

/// Lifecycle of a job inside the engine's indexed state: kPending (submitted,
/// arrival event not yet fired), kBlocked (arrived, dependencies unmet),
/// kWaiting (eligible, in the ordered waiting index), kRunning, kCompleted.
/// kCancelled is reachable only through the online service mode: a client
/// withdrew the job before it started (batch runs never cancel).
enum class JobState { kPending, kWaiting, kRunning, kCompleted, kBlocked, kCancelled };

/// A batch job as the paper models it (Section 2.1): resource demands
/// r_i = (n_i, m_i), a duration d_j, a submit time s_j, and user metadata
/// used by the per-user fairness objective. `walltime` is the user-visible
/// estimate shown to schedulers; `duration` is the true runtime used by the
/// simulator to fire the completion event (the two coincide unless a
/// generator injects estimate noise).
struct Job {
  JobId id = 0;
  UserId user = 0;
  GroupId group = 0;
  double submit_time = 0.0;
  double duration = 0.0;
  double walltime = 0.0;
  int nodes = 1;
  double memory_gb = 1.0;
  /// Extension (paper Section 6, future work): jobs that must complete
  /// before this one becomes eligible.
  std::vector<JobId> dependencies;

  /// True when resource demands are internally consistent and satisfiable in
  /// principle (positive duration, at least one node, non-negative memory).
  bool valid() const;

  /// Node-seconds consumed, the quantity utilization integrates.
  double node_seconds() const { return static_cast<double>(nodes) * duration; }
  double memory_gb_seconds() const { return memory_gb * duration; }

  std::string describe() const;
};

/// Order jobs by (submit_time, id) - the canonical queue/arrival order.
bool arrival_order(const Job& a, const Job& b);

/// Order jobs by (walltime, submit_time, id) - SJF's total order. The
/// arrival-order tie-break makes the minimum unique, so the front of an
/// index sorted by this comparator is exactly what a min_element scan with
/// it returns.
bool sjf_order(const Job& a, const Job& b);

const char* to_string(JobState s);

}  // namespace reasched::sim
