#include "sim/feedback.hpp"

#include "util/string_utils.hpp"
#include "util/time_format.hpp"

namespace reasched::sim {

std::string failure_label(ViolationCode code) {
  switch (code) {
    case ViolationCode::kNone: return "ok";
    case ViolationCode::kUnknownJob: return "unknown job";
    case ViolationCode::kAlreadyRunning: return "job already running";
    case ViolationCode::kInsufficientNodes:
    case ViolationCode::kInsufficientMemory: return "not enough resources";
    case ViolationCode::kDependencyUnmet: return "dependencies unmet";
    case ViolationCode::kPrematureStop: return "jobs still pending";
  }
  return "?";
}

std::string render_feedback(double now, const Action& action, const Validation& validation) {
  return util::format("%s Action: %s failed (%s)\nFeedback: %s",
                      util::format_sim_time(now).c_str(), to_string(action.type),
                      failure_label(validation.code).c_str(), validation.detail.c_str());
}

}  // namespace reasched::sim
