#pragma once

#include <string>

#include "sim/action.hpp"
#include "sim/scheduler.hpp"

namespace reasched::sim {

/// Why an action was rejected. kNone means the action is feasible.
enum class ViolationCode {
  kNone,
  kUnknownJob,          ///< job id not in the waiting queue
  kAlreadyRunning,      ///< job already started
  kInsufficientNodes,   ///< fewer free nodes than requested
  kInsufficientMemory,  ///< less free memory than requested
  kDependencyUnmet,     ///< extension: predecessor jobs not completed
  kPrematureStop,       ///< Stop while jobs remain waiting or arriving
};

struct Validation {
  ViolationCode code = ViolationCode::kNone;
  std::string detail;  ///< natural-language explanation (paper Section 2.4)

  bool ok() const { return code == ViolationCode::kNone; }
};

/// The paper's constraint-enforcement module (Section 2.4): every
/// LLM-suggested (or baseline-suggested) action is validated against the
/// live simulator state before execution. Reasoning and enforcement are
/// deliberately separate: the checker never *chooses* actions, it only
/// accepts or rejects with an explanation.
class ConstraintChecker {
 public:
  /// Validate `action` against the context. Delay is always legal; Stop is
  /// legal only when no waiting jobs remain and no arrivals are pending.
  Validation check(const Action& action, const DecisionContext& ctx) const;
};

const char* to_string(ViolationCode code);

}  // namespace reasched::sim
