#include "sim/schedule_result.hpp"

#include <stdexcept>

#include "util/string_utils.hpp"

namespace reasched::sim {

const CompletedJob& ScheduleResult::find(JobId id) const {
  for (const auto& c : completed) {
    if (c.job.id == id) return c;
  }
  throw std::out_of_range(util::format("ScheduleResult: job %d not found", id));
}

std::vector<double> ScheduleResult::wait_times() const {
  std::vector<double> out;
  out.reserve(completed.size());
  for (const auto& c : completed) out.push_back(c.wait_time());
  return out;
}

std::vector<double> ScheduleResult::turnaround_times() const {
  std::vector<double> out;
  out.reserve(completed.size());
  for (const auto& c : completed) out.push_back(c.turnaround_time());
  return out;
}

}  // namespace reasched::sim
