#pragma once

#include <string>

#include "sim/action.hpp"
#include "sim/constraint_checker.hpp"

namespace reasched::sim {

/// Renders the environment's natural-language feedback for a rejected
/// action, in the exact style the paper appends to the scratchpad:
///
///   [t=1554] Action: StartJob failed (not enough resources)
///   Feedback: Job 32 cannot be started - requires 256 Nodes, 8 GB;
///   available: 238 Nodes, 576 GB.
std::string render_feedback(double now, const Action& action, const Validation& validation);

/// Short failure label per violation, e.g. "not enough resources".
std::string failure_label(ViolationCode code);

}  // namespace reasched::sim
