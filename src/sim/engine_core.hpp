#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "sim/cluster.hpp"
#include "sim/constraint_checker.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/job_table.hpp"
#include "sim/schedule_result.hpp"
#include "sim/scheduler.hpp"

namespace reasched::sim {

/// Validate a batch of jobs against `cluster`: well-formedness, unique ids,
/// per-job capacity feasibility and dependency acyclicity. Throws
/// std::invalid_argument naming the first offender. This is the check
/// Engine::run performs before building its state; the service layer runs it
/// on replayed traces and a per-job subset of it on live submissions.
void validate_jobs(const std::vector<Job>& jobs, const ClusterSpec& cluster);

/// The engine's event loop as a steppable state machine - the refactor that
/// turns the batch simulator into something a long-running service can
/// drive. One `step()` processes exactly one event *time*: pop every event
/// in the current batch (completions before arrivals), then run the
/// decision phase (query/execute loop plus livelock escapes) at that time.
/// `Engine::run` is now a thin loop over this class, and
/// `service::ServiceEngine` drives the same core online, so the two modes
/// cannot drift: a batch run and a service replay of the same trace execute
/// the identical per-step code.
///
/// Online extensions on top of the batch semantics:
///  - `admit()` appends a job mid-run (arrival-order append; see
///    JobTable::add_job) and queues its arrival event;
///  - `cancel()` withdraws a not-yet-started job (cascading to dependents)
///    and tombstones queued arrival events of cancelled jobs;
///  - `set_more_arrivals_hint()` tells the decision phase that a live
///    arrival source may still produce work, which keeps Stop illegal,
///    suppresses the terminal-state query even when the event queue has no
///    pending arrivals, and disables the livelock emergency starts (an empty
///    event queue is not a livelock when the service will feed more events).
///
/// None of these are reachable from `Engine::run`, which preserves the
/// paper-mode batch behaviour bit-for-bit (pinned by the golden tests).
class EngineCore {
 public:
  EngineCore(const EngineConfig& config, Scheduler& scheduler);

  /// Batch seeding: build the table from `jobs` and queue every arrival.
  /// Call at most once, before any step; inputs must already be validated
  /// (validate_jobs). Resets the scheduler.
  void load(const std::vector<Job>& jobs);

  /// Online admit of one job. Validates the job against the cluster and the
  /// current table (known non-cancelled dependencies, arrival-order append)
  /// and queues its arrival event. Must not be called from inside a
  /// scheduler callback (the table append may reallocate the arena views).
  void admit(const Job& job);

  /// Online cancel: withdraw `id` plus transitive dependents if it has not
  /// started. Returns the cancelled ids in cascade order (empty when the job
  /// is running/completed/already cancelled). Queued arrival events of
  /// cancelled jobs are skipped when their time comes.
  std::vector<JobId> cancel(JobId id);

  /// Process the next event time (events + decision phase + livelock
  /// escapes). Returns false - without querying the scheduler - when no
  /// events remain.
  bool step();

  bool has_events() const { return !events_.empty(); }
  double next_event_time() const { return events_.next_time(); }
  /// Clock of the last processed step (0 before the first step).
  double now() const { return now_; }
  /// Completed steps since construction.
  std::uint64_t steps() const { return steps_; }
  bool stopped() const { return stopped_; }

  void set_more_arrivals_hint(bool hint) { more_arrivals_hint_ = hint; }

  const JobTable& table() const { return table_; }
  const ClusterState& cluster() const { return cluster_; }
  const EventQueue& events() const { return events_; }
  const ScheduleResult& result() const { return result_; }
  /// (time, id) pairs of every cancellation, in application order.
  const std::vector<std::pair<double, JobId>>& cancelled() const { return cancelled_; }

  /// Finish a drained run: assert nothing schedulable was left behind, sort
  /// completed records by job id (the batch contract) and move the result
  /// out. The core is spent afterwards.
  ScheduleResult finish();

  /// Publish the not-yet-published telemetry counter deltas to the global
  /// registry. The hot path flushes only at sampled steps (1 in
  /// obs::kSampleEvery) to keep the overhead gate honest; call this before
  /// reading the registry at a
  /// boundary (finish(), a `stats` request) for exact totals. No-op when
  /// telemetry is off. Observe-only.
  void flush_obs();

 private:
  DecisionContext context(double event_time) const;
  void process_events_at(double event_time);
  void decision_phase(double event_time);
  void execute_start(double event_time, const Job& job, bool backfill);
  void emergency_start(double event_time);

  /// Resolve the global-registry cells once (register-on-demand takes the
  /// registry lock; afterwards the hot path touches only lock-free cells).
  void bind_obs_cells();

  /// Cached telemetry cells; null until the first enabled step. All writes
  /// are observe-only: nothing here is read back into a decision.
  struct ObsCells {
    obs::Counter* steps = nullptr;
    obs::Counter* decisions = nullptr;
    obs::Counter* invalid_actions = nullptr;
    obs::Counter* backfills = nullptr;
    obs::Counter* forced_delays = nullptr;
    obs::Counter* completed_jobs = nullptr;
    obs::Histogram* queue_depth = nullptr;
  };

  EngineConfig config_;
  ConstraintChecker checker_;
  Scheduler* scheduler_;
  ClusterState cluster_;
  EventQueue events_;
  JobTable table_;
  ScheduleResult result_;
  std::vector<std::pair<double, JobId>> cancelled_;
  /// Ids whose queued arrival events must be skipped (cancelled while
  /// pending). Ordered set: deterministic and iteration-safe under the
  /// unordered-container lint rule.
  std::set<JobId> arrival_tombstones_;
  double now_ = 0.0;
  std::uint64_t steps_ = 0;
  bool stopped_ = false;
  bool more_arrivals_hint_ = false;
  ObsCells obs_cells_;
  /// Serial counters for 1-in-obs::kSampleEvery sampling: wall-clock reads
  /// (spans) and registry publication (a handful of atomic adds + a
  /// histogram scan) are both too expensive for every step on a ~550ns
  /// step budget, so spans are sampled and counters are flushed as deltas
  /// at the sampled steps (flush_obs() makes them exact at run/stats
  /// boundaries).
  std::uint64_t obs_step_serial_ = 0;
  std::uint64_t obs_decision_serial_ = 0;
  /// Counter values already published to the registry cells (the flush
  /// publishes result_-vs-these deltas, so concurrent engines compose).
  std::uint64_t obs_pub_steps_ = 0;
  std::size_t obs_pub_decisions_ = 0;
  std::size_t obs_pub_invalid_ = 0;
  std::size_t obs_pub_backfills_ = 0;
  std::size_t obs_pub_forced_ = 0;
  std::size_t obs_pub_completed_ = 0;
};

}  // namespace reasched::sim
