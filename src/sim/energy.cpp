#include "sim/energy.hpp"

#include <algorithm>

namespace reasched::sim {

EnergyReport compute_energy(const ScheduleResult& result, const ClusterSpec& spec) {
  EnergyReport report;
  if (result.completed.empty()) return report;

  double earliest = result.completed.front().job.submit_time;
  double latest = 0.0;
  for (const auto& c : result.completed) {
    earliest = std::min(earliest, c.job.submit_time);
    latest = std::max(latest, c.end_time);
    report.busy_node_seconds += static_cast<double>(c.job.nodes) * (c.end_time - c.start_time);
  }
  const double horizon = std::max(0.0, latest - earliest);
  const double total_node_seconds = static_cast<double>(spec.total_nodes) * horizon;
  report.idle_node_seconds = std::max(0.0, total_node_seconds - report.busy_node_seconds);
  const double joules = report.busy_node_seconds * spec.watts_per_busy_node +
                        report.idle_node_seconds * spec.watts_per_idle_node;
  report.energy_kwh = joules / 3.6e6;
  return report;
}

}  // namespace reasched::sim
