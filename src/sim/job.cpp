#include "sim/job.hpp"

#include "util/string_utils.hpp"

namespace reasched::sim {

bool Job::valid() const {
  return id > 0 && duration > 0.0 && walltime > 0.0 && nodes >= 1 && memory_gb >= 0.0 &&
         submit_time >= 0.0;
}

std::string Job::describe() const {
  return util::format("Job %d (user_%d): %d nodes, %.0f GB, walltime=%.0f, submitted t=%.0f", id,
                      user, nodes, memory_gb, walltime, submit_time);
}

bool arrival_order(const Job& a, const Job& b) {
  if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
  return a.id < b.id;
}

bool sjf_order(const Job& a, const Job& b) {
  if (a.walltime != b.walltime) return a.walltime < b.walltime;
  return arrival_order(a, b);
}

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kPending: return "pending";
    case JobState::kWaiting: return "waiting";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kBlocked: return "blocked";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

}  // namespace reasched::sim
