#pragma once

#include <vector>

#include "sim/engine.hpp"

namespace reasched::sim {

/// The pre-refactor (seed) engine, preserved verbatim as a differential
/// oracle: same decision loop, same constraint enforcement, but the seed's
/// state representation - std::map keyed job store, a sorted std::vector of
/// Job copies as the waiting queue (fully re-sorted after every event batch,
/// erased by linear scan on every start), an O(n) dependency re-scan in
/// promote_eligible, and a freshly copied-and-sorted `running` snapshot for
/// every scheduler query.
///
/// Two uses, and only these (new code should never run it for results):
///  - tests/test_sim_engine_golden.cpp proves Engine reproduces this
///    engine's decisions, makespans and completion orders bit-identically;
///  - bench/micro_engine_scaling.cpp measures the speedup of the indexed
///    engine over this path at scale.
///
/// The only deliberate deviation from the seed source is the event-batch
/// tolerance: it shares Engine's relative same_event_time() so the two
/// engines agree on event batching at large simulation times (the quantity
/// under test is the data-structure refactor, not the epsilon fix).
class ReferenceEngine {
 public:
  explicit ReferenceEngine(EngineConfig config = {});

  ScheduleResult run(const std::vector<Job>& jobs, Scheduler& scheduler);

  const EngineConfig& config() const { return config_; }

 private:
  struct RunState;
  void validate_jobs(const std::vector<Job>& jobs) const;
  void process_events_at(RunState& rs, double now);
  void decision_phase(RunState& rs, double now);
  void promote_eligible(RunState& rs);
  void execute_start(RunState& rs, double now, const Job& job, bool backfill);
  void emergency_start(RunState& rs, double now);

  EngineConfig config_;
  ConstraintChecker checker_;
};

}  // namespace reasched::sim
