#include "sim/scheduler.hpp"

#include <algorithm>

namespace reasched::sim {

const Job* DecisionContext::find_waiting(JobId id) const {
  if (jobs_index != nullptr) return jobs_index->find_waiting(id);
  for (const Job& j : waiting) {
    if (j.id == id) return &j;
  }
  return nullptr;
}

const Job* DecisionContext::find_ineligible(JobId id) const {
  if (jobs_index != nullptr) return jobs_index->find_ineligible(id);
  for (const Job& j : ineligible) {
    if (j.id == id) return &j;
  }
  return nullptr;
}

const Job* DecisionContext::shortest_waiting() const {
  if (jobs_index != nullptr) return jobs_index->shortest_waiting();
  if (waiting.empty()) return nullptr;
  return &*std::min_element(waiting.begin(), waiting.end(), sjf_order);
}

void Scheduler::on_feedback(const std::string& feedback, const DecisionContext& ctx) {
  (void)feedback;
  (void)ctx;
}

void Scheduler::on_accepted(const Action& action, const DecisionContext& ctx) {
  (void)action;
  (void)ctx;
}

std::string Scheduler::last_thought() const { return {}; }

void Scheduler::reset() {}

std::vector<std::pair<std::string, double>> Scheduler::obs_counters() const { return {}; }

}  // namespace reasched::sim
