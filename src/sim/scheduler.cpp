#include "sim/scheduler.hpp"

namespace reasched::sim {

void Scheduler::on_feedback(const std::string& feedback, const DecisionContext& ctx) {
  (void)feedback;
  (void)ctx;
}

void Scheduler::on_accepted(const Action& action, const DecisionContext& ctx) {
  (void)action;
  (void)ctx;
}

std::string Scheduler::last_thought() const { return {}; }

void Scheduler::reset() {}

}  // namespace reasched::sim
