#include "sim/action.hpp"

#include "util/string_utils.hpp"

namespace reasched::sim {

std::string Action::to_string() const {
  switch (type) {
    case ActionType::kStartJob: return util::format("StartJob(job_id=%d)", job_id);
    case ActionType::kBackfillJob: return util::format("BackfillJob(job_id=%d)", job_id);
    case ActionType::kDelay: return "Delay";
    case ActionType::kStop: return "Stop";
  }
  return "?";
}

const char* to_string(ActionType t) {
  switch (t) {
    case ActionType::kStartJob: return "StartJob";
    case ActionType::kBackfillJob: return "BackfillJob";
    case ActionType::kDelay: return "Delay";
    case ActionType::kStop: return "Stop";
  }
  return "?";
}

}  // namespace reasched::sim
