#include "sim/job_table.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace reasched::sim {

void JobTable::build(const std::vector<Job>& jobs) {
  jobs_ = jobs;
  meta_.assign(jobs_.size(), Meta{});
  waiting_.clear();
  ineligible_.clear();
  id_to_index_.clear();
  id_to_index_.reserve(jobs_.size());
  for (std::uint32_t i = 0; i < jobs_.size(); ++i) {
    if (!id_to_index_.emplace(jobs_[i].id, i).second) {
      throw std::invalid_argument(util::format("JobTable: duplicate job id %d", jobs_[i].id));
    }
  }
  for (std::uint32_t i = 0; i < jobs_.size(); ++i) {
    meta_[i].remaining_deps = static_cast<std::uint32_t>(jobs_[i].dependencies.size());
    for (const JobId dep : jobs_[i].dependencies) {
      meta_[index_of(dep)].dependents.push_back(i);
    }
  }
  waiting_.reserve(jobs_.size());

  // Policy-facing indexes. The arrival-rank permutation is static: ranks are
  // positions in the (submit_time, id) total order over the whole arena, so
  // the segment tree over ranks never needs positional inserts - waiting-set
  // transitions are point updates on a fixed layout.
  waiting_by_walltime_.clear();
  waiting_by_walltime_.reserve(jobs_.size());
  rank_to_index_.resize(jobs_.size());
  std::iota(rank_to_index_.begin(), rank_to_index_.end(), 0u);
  // total-order: arrival_order breaks submit-time ties by unique JobId.
  std::sort(rank_to_index_.begin(), rank_to_index_.end(),
            [&](std::uint32_t a, std::uint32_t b) { return arrival_order(jobs_[a], jobs_[b]); });
  rank_of_.resize(jobs_.size());
  for (std::uint32_t r = 0; r < rank_to_index_.size(); ++r) {
    rank_of_[rank_to_index_[r]] = r;
  }
  tree_leaves_ = std::bit_ceil(std::max<std::uint32_t>(
      1u, static_cast<std::uint32_t>(jobs_.size())));
  tree_.assign(2 * static_cast<std::size_t>(tree_leaves_), WaitingAggregate{});

  // Arrival-event rank: the static (submit_time, build position) order in
  // which arrival events fire. stable_sort keeps build positions for tied
  // submit times - exactly the EventQueue's (time, sequence) tie-break.
  std::vector<std::uint32_t> by_event(jobs_.size());
  std::iota(by_event.begin(), by_event.end(), 0u);
  std::stable_sort(by_event.begin(), by_event.end(), [&](std::uint32_t a, std::uint32_t b) {
    return jobs_[a].submit_time < jobs_[b].submit_time;
  });
  event_rank_of_.resize(jobs_.size());
  for (std::uint32_t r = 0; r < by_event.size(); ++r) {
    event_rank_of_[by_event[r]] = r;
  }
}

void JobTable::add_job(const Job& job) {
  if (id_to_index_.count(job.id) != 0) {
    throw std::invalid_argument(util::format("JobTable: duplicate job id %d", job.id));
  }
  if (!jobs_.empty()) {
    // Appending keeps every index valid only when the new job is last in the
    // static arrival order (and therefore also last in arrival-event order:
    // its arrival is pushed after every queued one, and EventQueue breaks
    // submit-time ties by push sequence).
    const Job& last = jobs_[rank_to_index_.back()];
    if (!arrival_order(last, job)) {
      throw std::invalid_argument(
          util::format("JobTable: job %d breaks arrival-order append (last is job %d)", job.id,
                       last.id));
    }
  }
  std::uint32_t remaining = 0;
  for (const JobId dep : job.dependencies) {
    const auto it = id_to_index_.find(dep);
    if (it == id_to_index_.end()) {
      throw std::invalid_argument(
          util::format("JobTable: job %d depends on unknown job %d", job.id, dep));
    }
    const JobState dep_state = meta_[it->second].state;
    if (dep_state == JobState::kCancelled) {
      throw std::invalid_argument(
          util::format("JobTable: job %d depends on cancelled job %d", job.id, dep));
    }
    if (dep_state != JobState::kCompleted) ++remaining;
  }

  const auto idx = static_cast<std::uint32_t>(jobs_.size());
  jobs_.push_back(job);
  meta_.emplace_back();
  meta_[idx].remaining_deps = remaining;
  for (const JobId dep : job.dependencies) {
    meta_[index_of(dep)].dependents.push_back(idx);
  }
  id_to_index_.emplace(job.id, idx);
  rank_of_.push_back(idx);  // new arrival rank == new dense index == idx
  rank_to_index_.push_back(idx);
  event_rank_of_.push_back(idx);
  if (jobs_.size() > tree_leaves_) {
    // Double the leaf layer and replay the waiting set into the fresh tree;
    // amortized O(log n) per admit.
    tree_leaves_ = std::bit_ceil(static_cast<std::uint32_t>(jobs_.size()));
    tree_.assign(2 * static_cast<std::size_t>(tree_leaves_), WaitingAggregate{});
    for (const std::uint32_t w : waiting_) {
      const Job& j = jobs_[w];
      tree_update(rank_of_[w], {j.nodes, j.memory_gb, j.walltime});
    }
  }
}

std::vector<JobId> JobTable::cancel(JobId id) {
  const auto it = id_to_index_.find(id);
  if (it == id_to_index_.end()) {
    throw std::invalid_argument(util::format("JobTable: cancelling unknown job id %d", id));
  }
  const JobState root_state = meta_[it->second].state;
  if (root_state == JobState::kRunning || root_state == JobState::kCompleted ||
      root_state == JobState::kCancelled) {
    return {};
  }
  // BFS over the reverse-dependency adjacency. Dependents of a non-completed
  // job are necessarily kPending or kBlocked (never waiting/running), so the
  // cascade only ever touches not-yet-started jobs.
  std::vector<std::uint32_t> frontier{it->second};
  std::vector<JobId> cancelled;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const std::uint32_t idx = frontier[i];
    Meta& m = meta_[idx];
    if (m.state == JobState::kCancelled) continue;  // diamond in the DAG
    switch (m.state) {
      case JobState::kWaiting:
        erase_waiting(idx);
        break;
      case JobState::kBlocked: {
        const auto pos = std::lower_bound(ineligible_.begin(), ineligible_.end(), idx,
                                          [&](std::uint32_t a, std::uint32_t b) {
                                            return event_rank_of_[a] < event_rank_of_[b];
                                          });
        if (pos == ineligible_.end() || *pos != idx) {
          throw std::logic_error("JobTable: cancelled job missing from ineligible list");
        }
        ineligible_.erase(pos);
        break;
      }
      case JobState::kPending:
        break;  // arrival event tombstoned by the engine
      default:
        throw std::logic_error(
            util::format("JobTable: dependent %d in unexpected state", jobs_[idx].id));
    }
    m.state = JobState::kCancelled;
    cancelled.push_back(jobs_[idx].id);
    for (const std::uint32_t dep_idx : m.dependents) {
      if (meta_[dep_idx].state != JobState::kCancelled) frontier.push_back(dep_idx);
    }
  }
  return cancelled;
}

std::uint32_t JobTable::index_of(JobId id) const {
  const auto it = id_to_index_.find(id);
  if (it == id_to_index_.end()) {
    throw std::logic_error(util::format("JobTable: unknown job id %d", id));
  }
  return it->second;
}

void JobTable::tree_update(std::uint32_t rank, const WaitingAggregate& agg) {
  std::size_t node = static_cast<std::size_t>(tree_leaves_) + rank;
  tree_[node] = agg;
  for (node /= 2; node >= 1; node /= 2) {
    const WaitingAggregate& l = tree_[2 * node];
    const WaitingAggregate& r = tree_[2 * node + 1];
    tree_[node] = {std::min(l.min_nodes, r.min_nodes),
                   std::min(l.min_memory_gb, r.min_memory_gb),
                   std::min(l.min_walltime, r.min_walltime)};
  }
}

void JobTable::insert_waiting(std::uint32_t idx) {
  const Job& j = jobs_[idx];
  const auto pos = std::lower_bound(
      waiting_.begin(), waiting_.end(), idx,
      [&](std::uint32_t a, std::uint32_t) { return arrival_order(jobs_[a], j); });
  waiting_.insert(pos, idx);
  const auto wpos = std::lower_bound(
      waiting_by_walltime_.begin(), waiting_by_walltime_.end(), idx,
      [&](std::uint32_t a, std::uint32_t) { return sjf_order(jobs_[a], j); });
  waiting_by_walltime_.insert(wpos, idx);
  tree_update(rank_of_[idx], {j.nodes, j.memory_gb, j.walltime});
  meta_[idx].state = JobState::kWaiting;
}

void JobTable::erase_waiting(std::uint32_t idx) {
  const Job& j = jobs_[idx];
  const auto pos = std::lower_bound(
      waiting_.begin(), waiting_.end(), idx,
      [&](std::uint32_t a, std::uint32_t) { return arrival_order(jobs_[a], j); });
  if (pos == waiting_.end() || *pos != idx) {
    throw std::logic_error("JobTable: waiting index out of sync");
  }
  waiting_.erase(pos);
  const auto wpos = std::lower_bound(
      waiting_by_walltime_.begin(), waiting_by_walltime_.end(), idx,
      [&](std::uint32_t a, std::uint32_t) { return sjf_order(jobs_[a], j); });
  if (wpos == waiting_by_walltime_.end() || *wpos != idx) {
    throw std::logic_error("JobTable: walltime index out of sync");
  }
  waiting_by_walltime_.erase(wpos);
  tree_update(rank_of_[idx], WaitingAggregate{});
}

void JobTable::insert_ineligible(std::uint32_t idx) {
  // Engine-driven arrivals fire in event_rank order, so this is an O(1)
  // append; the lower_bound keeps the sorted invariant for ad-hoc callers
  // (tests) that arrive() out of submit order.
  const auto pos = std::lower_bound(ineligible_.begin(), ineligible_.end(), idx,
                                    [&](std::uint32_t a, std::uint32_t b) {
                                      return event_rank_of_[a] < event_rank_of_[b];
                                    });
  ineligible_.insert(pos, idx);
}

void JobTable::promote(std::uint32_t idx) {
  const auto pos = std::lower_bound(ineligible_.begin(), ineligible_.end(), idx,
                                    [&](std::uint32_t a, std::uint32_t b) {
                                      return event_rank_of_[a] < event_rank_of_[b];
                                    });
  if (pos == ineligible_.end() || *pos != idx) {
    throw std::logic_error("JobTable: blocked job missing from ineligible list");
  }
  ineligible_.erase(pos);
  insert_waiting(idx);
}

void JobTable::arrive(JobId id) {
  const std::uint32_t idx = index_of(id);
  if (meta_[idx].state != JobState::kPending) {
    throw std::logic_error(util::format("JobTable: job %d arrived twice", id));
  }
  if (meta_[idx].remaining_deps == 0) {
    insert_waiting(idx);
  } else {
    insert_ineligible(idx);
    meta_[idx].state = JobState::kBlocked;
  }
}

void JobTable::start(JobId id) {
  const std::uint32_t idx = index_of(id);
  if (meta_[idx].state != JobState::kWaiting) {
    throw std::logic_error(util::format("JobTable: starting job %d that is not waiting", id));
  }
  erase_waiting(idx);
  meta_[idx].state = JobState::kRunning;
}

void JobTable::complete(JobId id) {
  const std::uint32_t idx = index_of(id);
  meta_[idx].state = JobState::kCompleted;
  for (const std::uint32_t dep_idx : meta_[idx].dependents) {
    Meta& m = meta_[dep_idx];
    if (--m.remaining_deps == 0 && m.state == JobState::kBlocked) {
      promote(dep_idx);
    }
  }
}

const Job* JobTable::find_waiting(JobId id) const {
  const auto it = id_to_index_.find(id);
  if (it == id_to_index_.end() || meta_[it->second].state != JobState::kWaiting) return nullptr;
  return &jobs_[it->second];
}

const Job* JobTable::find_ineligible(JobId id) const {
  const auto it = id_to_index_.find(id);
  if (it == id_to_index_.end() || meta_[it->second].state != JobState::kBlocked) return nullptr;
  return &jobs_[it->second];
}

}  // namespace reasched::sim
