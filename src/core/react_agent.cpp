#include "core/react_agent.hpp"

#include "core/action_parser.hpp"
#include "util/logging.hpp"

namespace reasched::core {

ReActAgent::ReActAgent(std::shared_ptr<llm::Client> client, llm::ModelProfile profile,
                       AgentConfig config)
    : client_(std::move(client)),
      profile_(std::move(profile)),
      config_(config),
      prompt_builder_(config) {}

void ReActAgent::reset() {
  scratchpad_.clear();
  transcript_.clear();
  last_thought_.clear();
  last_prompt_.clear();
  window_scratch_.clear();
  parse_failures_ = 0;
  client_->reset();
}

sim::Action ReActAgent::decide(const sim::DecisionContext& ctx) {
  // 1. Render prompt. With the scratchpad disabled (ablation) the history
  //    section is blank every step. The planning window (when bounded)
  //    selects which waiting jobs the prompt lists - and therefore which
  //    candidates the model can act on.
  const bool bounded = config_.window.select(ctx.waiting, window_scratch_);
  const std::vector<std::uint32_t>* window = bounded ? &window_scratch_ : nullptr;
  const std::string scratchpad_text =
      config_.scratchpad_enabled ? scratchpad_.render(config_.scratchpad_token_budget)
                                 : std::string("(nothing yet)\n");
  last_prompt_ = prompt_builder_.build(ctx, scratchpad_text, window);

  // 2. Query the model. The structured side channel carries the same state
  //    the prompt describes (see llm::PromptContext).
  llm::PromptContext pctx;
  pctx.decision = &ctx;
  pctx.scratchpad_entries = scratchpad_.size();
  pctx.window = window;
  if (config_.scratchpad_enabled) pctx.recently_rejected = scratchpad_.rejected_at(ctx.now);

  llm::Request request;
  request.prompt = last_prompt_;
  request.max_tokens = profile_.max_completion_tokens;
  request.temperature = profile_.temperature;
  request.context = &pctx;
  const llm::Response response = client_->complete(request);

  // 3. Parse the ReAct completion.
  const ParsedResponse parsed = parse_response(response.text);
  last_thought_ = parsed.thought;

  sim::Action action;
  if (parsed.action) {
    action = *parsed.action;
  } else {
    // Unusable response: fail safe with Delay and tell the scratchpad why,
    // so the next prompt shows the model its formatting mistake.
    ++parse_failures_;
    action = sim::Action::delay();
    LOG_DEBUG("ReActAgent: parse failure: " << parsed.error);
    scratchpad_.record_note(ctx.now,
                           "Response could not be parsed (" + parsed.error +
                               "); defaulted to Delay. Use 'Action: <action>'.");
  }

  if (parsed.action) scratchpad_.record_decision(ctx.now, parsed.thought, action);

  llm::CallRecord record;
  record.sim_time = ctx.now;
  record.latency_seconds = response.latency_seconds;
  record.prompt_tokens = response.prompt_tokens;
  record.completion_tokens = response.completion_tokens;
  record.action = action.type;
  record.accepted = false;  // verdict arrives via on_accepted/on_feedback
  transcript_.add(record);
  return action;
}

void ReActAgent::on_accepted(const sim::Action& action, const sim::DecisionContext& ctx) {
  (void)action;
  (void)ctx;
  if (transcript_.n_calls() > 0) transcript_.set_last_verdict(true);
  scratchpad_.record_verdict(true, {});
}

void ReActAgent::on_feedback(const std::string& feedback, const sim::DecisionContext& ctx) {
  (void)ctx;
  if (transcript_.n_calls() > 0) transcript_.set_last_verdict(false);
  scratchpad_.record_verdict(false, feedback);
}

}  // namespace reasched::core
