#include "core/objectives.hpp"

namespace reasched::core {

std::string objectives_block() {
  return
      "Your scheduling objectives are:\n"
      "You must balance all of the following:\n"
      "* Fairness: Minimize variance in user wait times. Avoid starving any user.\n"
      "* Makespan: Minimize total time to finish all jobs.\n"
      "* Utilization: Maximize Node & memory usage over time (avoid idle resources).\n"
      "* Throughput: Maximize the number of jobs completed per unit time.\n"
      "* Feasibility: Do not exceed the system's Nodes or memory at any time.\n"
      "Trade-offs are allowed. Do not over-optimize one metric at the expense of others.\n"
      "For example:\n"
      "* Prioritizing a long-waiting job improves fairness, but may slightly hurt makespan.\n"
      "* Choosing short jobs improves throughput, but may increase wait time for large "
      "jobs.\n";
}

std::string action_menu_block() {
  return
      "Decide:\n"
      "(1) Which job should be started now (if any)?\n"
      "(2) Justify your decision in thought.\n"
      "(3) Return only one of:\n"
      "* StartJob(job_id=X)\n"
      "* BackfillJob(job_id=Y)\n"
      "* Delay\n"
      "* Stop (when all jobs have been scheduled)\n"
      "Output format:\n"
      "Thought: <your reasoning>\n"
      "Action: <your action>\n";
}

}  // namespace reasched::core
