#pragma once

#include <string>

namespace reasched::core {

/// The multiobjective instruction block of the paper's prompt (Section 3.4),
/// verbatim in structure: the five goals plus the explicit trade-off
/// guidance.
std::string objectives_block();

/// The action-menu / output-format epilogue of the prompt.
std::string action_menu_block();

}  // namespace reasched::core
