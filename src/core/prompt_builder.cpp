#include "core/prompt_builder.hpp"

#include <sstream>

#include "core/objectives.hpp"
#include "util/string_utils.hpp"

namespace reasched::core {

std::string PromptBuilder::build(const sim::DecisionContext& ctx,
                                 const std::string& scratchpad_text,
                                 const std::vector<std::uint32_t>* window) const {
  const auto& spec = ctx.cluster.spec();
  std::ostringstream os;

  os << "You are an expert HPC resource manager, and your task is to schedule jobs in a "
        "high-performance computing (HPC) environment. Use the current system state, job "
        "queue, scratchpad (decision history), and fairness indicators to make well-balanced "
        "decisions.\n\n";

  os << util::format("System capacity: %d nodes, %.0f GB memory\n", spec.total_nodes,
                     spec.total_memory_gb);
  os << util::format("Current time: %.0f\n", ctx.now);
  os << util::format("Available Nodes: %d\n", ctx.cluster.available_nodes());
  os << util::format("Available Memory: %.0f GB\n\n", ctx.cluster.available_memory_gb());

  os << "Running Jobs:\n";
  if (ctx.running.empty()) {
    os << "None\n";
  } else {
    for (const auto& alloc : ctx.running) {
      os << util::format("  Job %d: %d Nodes, %.0f GB, user_%d, started t=%.0f, ends ~t=%.0f\n",
                         alloc.job.id, alloc.job.nodes, alloc.job.memory_gb, alloc.job.user,
                         alloc.start_time, alloc.end_time);
    }
  }

  os << "\nCompleted Jobs:\n";
  if (ctx.completed.empty()) {
    os << "None\n";
  } else {
    os << util::format("  %zu job(s) completed", ctx.completed.size());
    const std::size_t show = std::min<std::size_t>(3, ctx.completed.size());
    os << "; most recent: ";
    for (std::size_t i = ctx.completed.size() - show; i < ctx.completed.size(); ++i) {
      os << util::format("Job %d ", ctx.completed[i].job.id);
    }
    os << "\n";
  }

  os << "\nWaiting Jobs (eligible to schedule):\n";
  if (ctx.waiting.empty()) {
    os << "None\n";
  } else {
    const std::size_t n_visible = sim::windowed_size(ctx.waiting, window);
    for (std::size_t k = 0; k < n_visible; ++k) {
      const auto& j = sim::windowed_job(ctx.waiting, window, k);
      os << util::format(
          "  Job %d: %d Nodes, %.0f GB, walltime=%.0f, user_%d, submitted t=%.0f (waited "
          "%.0fs)\n",
          j.id, j.nodes, j.memory_gb, j.walltime, j.user, j.submit_time,
          ctx.now - j.submit_time);
    }
    if (n_visible < ctx.waiting.size()) {
      os << util::format("  (+%zu more waiting job(s) beyond the planning window)\n",
                         ctx.waiting.size() - n_visible);
    }
  }
  if (!ctx.ineligible.empty()) {
    os << "\nSubmitted but not yet eligible (waiting on dependencies):\n";
    // A configured window caps this listing too (at top_k, regardless of
    // whether the waiting queue itself needed cutting): on DAG-heavy
    // workloads the blocked cohort can dwarf the waiting queue, and the
    // flat-prompt contract covers every O(queue) section. The unbounded
    // default keeps the paper's full listing.
    const std::size_t n_blocked = config_.window.top_k != 0
                                      ? std::min(ctx.ineligible.size(), config_.window.top_k)
                                      : ctx.ineligible.size();
    for (std::size_t k = 0; k < n_blocked; ++k) {
      const auto& j = ctx.ineligible[k];
      os << util::format("  Job %d (depends on %zu job(s))\n", j.id, j.dependencies.size());
    }
    if (n_blocked < ctx.ineligible.size()) {
      os << util::format("  (+%zu more blocked job(s) beyond the planning window)\n",
                         ctx.ineligible.size() - n_blocked);
    }
  }

  os << "\n# Scratchpad (Decision History)\n" << scratchpad_text << "\n";

  if (config_.objectives_in_prompt) os << objectives_block() << "\n";
  os << action_menu_block();
  return os.str();
}

}  // namespace reasched::core
