#include "core/scratchpad.hpp"

#include <sstream>

#include "llm/token_counter.hpp"
#include "util/string_utils.hpp"
#include "util/time_format.hpp"

namespace reasched::core {

namespace {
std::string first_line(const std::string& text) {
  const auto pos = text.find('\n');
  return pos == std::string::npos ? text : text.substr(0, pos);
}
}  // namespace

void Scratchpad::record_decision(double time, const std::string& thought,
                                 const sim::Action& action) {
  Entry e;
  e.time = time;
  e.thought_summary = first_line(thought);
  e.action = action;
  entries_.push_back(std::move(e));
  ++n_accepted_;  // entries default to accepted until a verdict arrives
}

void Scratchpad::record_verdict(bool accepted, const std::string& feedback) {
  if (entries_.empty()) return;
  if (entries_.back().accepted != accepted) {
    if (accepted) {
      ++n_accepted_;
    } else {
      --n_accepted_;
    }
    entries_.back().accepted = accepted;
  }
  if (!accepted) entries_.back().feedback = feedback;
}

void Scratchpad::record_note(double time, const std::string& note) {
  Entry e;
  e.time = time;
  e.thought_summary = note;
  e.action = sim::Action::delay();
  e.accepted = false;
  e.feedback = note;
  entries_.push_back(std::move(e));
}

void Scratchpad::clear() {
  entries_.clear();
  n_accepted_ = 0;
}

std::vector<sim::JobId> Scratchpad::rejected_at(double now) const {
  std::vector<sim::JobId> out;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->time != now) break;  // entries are time-ordered; stop at older steps
    if (!it->accepted && it->action.places_job()) out.push_back(it->action.job_id);
  }
  return out;
}

std::string Scratchpad::render(int token_budget) const {
  if (entries_.empty()) return "(nothing yet)\n";

  // Render newest-last; walk backwards accumulating until the budget is hit.
  std::vector<std::string> lines;
  int used_tokens = 0;
  std::size_t kept = 0;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    std::ostringstream line;
    line << util::format_sim_time(it->time) << " Action: " << it->action.to_string()
         << (it->accepted ? "" : " [REJECTED]");
    if (!it->thought_summary.empty()) line << " | " << it->thought_summary;
    if (!it->feedback.empty()) line << "\n  " << it->feedback;
    std::string rendered = line.str();
    const int cost = llm::estimate_tokens(rendered);
    if (used_tokens + cost > token_budget && kept > 0) break;
    used_tokens += cost;
    lines.push_back(std::move(rendered));
    ++kept;
  }
  std::ostringstream os;
  if (kept < entries_.size()) {
    os << util::format("(%zu earlier decisions summarized: %zu accepted, %zu rejected)\n",
                       entries_.size() - kept, accepted_count(), rejected_count());
  }
  for (auto it = lines.rbegin(); it != lines.rend(); ++it) os << *it << '\n';
  return os.str();
}

}  // namespace reasched::core
