#pragma once

#include <string>

#include "core/agent_config.hpp"
#include "sim/scheduler.hpp"

namespace reasched::core {

/// Renders the paper's exact prompt (Section 3.4): role preamble, system
/// capacity, current time, available resources, running / completed /
/// waiting job listings, the scratchpad decision history, the multiobjective
/// instruction block and the action menu. The prompt is the authoritative
/// observation channel - a real LLM backend sees nothing else.
class PromptBuilder {
 public:
  explicit PromptBuilder(AgentConfig config) : config_(config) {}

  std::string build(const sim::DecisionContext& ctx, const std::string& scratchpad_text) const;

 private:
  AgentConfig config_;
};

}  // namespace reasched::core
