#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/agent_config.hpp"
#include "sim/scheduler.hpp"

namespace reasched::core {

/// Renders the paper's exact prompt (Section 3.4): role preamble, system
/// capacity, current time, available resources, running / completed /
/// waiting job listings, the scratchpad decision history, the multiobjective
/// instruction block and the action menu. The prompt is the authoritative
/// observation channel - a real LLM backend sees nothing else.
///
/// When the agent's planning window is bounded, the waiting listing shows
/// only the windowed jobs (plus a one-line note counting the rest), so
/// prompt size - and with it token cost and simulated latency - stays flat
/// as the queue deepens at trace scale.
class PromptBuilder {
 public:
  explicit PromptBuilder(AgentConfig config) : config_(config) {}

  /// `window` holds ascending positions into ctx.waiting (the agent's
  /// planning window), or null for the unbounded all-jobs prompt.
  std::string build(const sim::DecisionContext& ctx, const std::string& scratchpad_text,
                    const std::vector<std::uint32_t>* window = nullptr) const;

 private:
  AgentConfig config_;
};

}  // namespace reasched::core
