#pragma once

#include <memory>

#include "core/agent_config.hpp"
#include "core/react_agent.hpp"
#include "llm/model_profile.hpp"

namespace reasched::core {

/// Convenience constructors for the two paper agents and the on-prem
/// extension profile, each backed by a seeded SimulatedReasoner.
std::unique_ptr<ReActAgent> make_agent(const llm::ModelProfile& profile, std::uint64_t seed,
                                       AgentConfig config = {});

std::unique_ptr<ReActAgent> make_claude37_agent(std::uint64_t seed, AgentConfig config = {});
std::unique_ptr<ReActAgent> make_o4mini_agent(std::uint64_t seed, AgentConfig config = {});
std::unique_ptr<ReActAgent> make_fast_local_agent(std::uint64_t seed, AgentConfig config = {});

}  // namespace reasched::core
