#include "core/factory.hpp"

#include "llm/simulated_reasoner.hpp"

namespace reasched::core {

std::unique_ptr<ReActAgent> make_agent(const llm::ModelProfile& profile, std::uint64_t seed,
                                       AgentConfig config) {
  config.seed = seed;
  auto client = std::make_shared<llm::SimulatedReasoner>(profile, seed);
  return std::make_unique<ReActAgent>(std::move(client), profile, config);
}

std::unique_ptr<ReActAgent> make_claude37_agent(std::uint64_t seed, AgentConfig config) {
  return make_agent(llm::claude37_profile(), seed, config);
}

std::unique_ptr<ReActAgent> make_o4mini_agent(std::uint64_t seed, AgentConfig config) {
  return make_agent(llm::o4mini_profile(), seed, config);
}

std::unique_ptr<ReActAgent> make_fast_local_agent(std::uint64_t seed, AgentConfig config) {
  return make_agent(llm::fast_local_profile(), seed, config);
}

}  // namespace reasched::core
