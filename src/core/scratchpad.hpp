#pragma once

#include <string>
#include <vector>

#include "sim/action.hpp"

namespace reasched::core {

/// The agent's persistent memory (paper Section 2.2): a running log of
/// thoughts, actions and environment feedback that is re-rendered into every
/// prompt. Acts as a form of memory enabling continuity across steps without
/// retraining; constraint-violation feedback lands here so the next decision
/// can avoid the same mistake.
class Scratchpad {
 public:
  struct Entry {
    double time = 0.0;
    std::string thought_summary;  ///< first line of the thought, for compactness
    sim::Action action;
    bool accepted = true;
    std::string feedback;  ///< environment feedback when rejected
  };

  void record_decision(double time, const std::string& thought, const sim::Action& action);
  /// Attach the verdict (and feedback text if rejected) to the most recent
  /// decision. No-op when empty (defensive: feedback before any decision).
  void record_verdict(bool accepted, const std::string& feedback);
  /// Free-form note (e.g. "response could not be parsed").
  void record_note(double time, const std::string& note);

  void clear();
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Job ids rejected by constraint enforcement at exactly time `now` -
  /// the agent should not immediately retry these (they become feasible
  /// again only after the state changes).
  std::vector<sim::JobId> rejected_at(double now) const;

  /// Render as the "# Scratchpad (Decision History)" prompt section.
  /// Newest entries are kept verbatim within `token_budget`; older ones
  /// collapse into a single summary line. Renders "(nothing yet)" if empty.
  std::string render(int token_budget) const;

  /// Counters used by summaries and the ablation analysis. O(1): the render
  /// path emits the accepted/rejected summary line on *every* prompt once
  /// the token budget truncates history, so recounting entries there would
  /// make each decision O(run length) at trace scale.
  std::size_t accepted_count() const { return n_accepted_; }
  std::size_t rejected_count() const { return entries_.size() - n_accepted_; }

 private:
  std::vector<Entry> entries_;
  std::size_t n_accepted_ = 0;  ///< maintained by record_* (see accepted_count)
};

}  // namespace reasched::core
