#pragma once

#include <cstdint>

#include "sim/planning_window.hpp"

namespace reasched::core {

/// Configuration of the ReAct scheduling agent (paper Section 2). Defaults
/// reproduce the paper's setup; the ablation bench flips the booleans.
struct AgentConfig {
  /// Persistent scratchpad memory across timesteps (Section 2.2). When off,
  /// every prompt starts from a blank history - the agent loses both its
  /// decision log and constraint feedback.
  bool scratchpad_enabled = true;
  /// Token budget for the rendered scratchpad; older entries collapse into
  /// a one-line summary once exceeded (the paper's context windows are
  /// finite: 100k for O4-Mini, 200k for Claude 3.7).
  int scratchpad_token_budget = 8000;
  /// Include the multiobjective instruction block in the prompt.
  bool objectives_in_prompt = true;
  /// Planning window bounding how many waiting jobs the prompt lists and
  /// the policy scores per decision (top_k = 0 reproduces the paper's
  /// all-jobs prompt exactly). At trace scale an unbounded prompt grows
  /// with queue depth; the window keeps prompt tokens, reasoning tokens and
  /// per-decision scoring cost flat.
  sim::PlanningWindow window;
  /// Seed for the agent's client (decision noise + latency sampling).
  std::uint64_t seed = 1;
};

}  // namespace reasched::core
