#pragma once

namespace reasched::harness {
class MethodRegistry;
}

namespace reasched::core {

/// Register the ReAct agents with the harness method registry, one per
/// simulated model endpoint: `agent:claude37`, `agent:o4mini` (the paper's
/// two models) and `agent:fastlocal` (the on-prem extension profile). The
/// AgentConfig knobs - planning window, scratchpad, objective block - are
/// spec parameters, so agent-profile ablations are ordinary grid axes.
void register_methods(harness::MethodRegistry& registry);

}  // namespace reasched::core
