#pragma once

#include <optional>
#include <string>

#include "sim/action.hpp"

namespace reasched::core {

/// Result of parsing one ReAct-formatted completion.
struct ParsedResponse {
  std::optional<sim::Action> action;  ///< nullopt when the text is unusable
  std::string thought;                ///< text following "Thought:" (may be empty)
  std::string error;                  ///< parse diagnostic when action is nullopt
};

/// Parses "Thought: ...\nAction: ..." completions into structured actions.
/// Deliberately lenient about surface form - real models emit markdown
/// bullets, spacing quirks and case variations - but strict about substance:
/// an unknown verb or a non-numeric job id is an error, never a guess.
///
/// Accepted action spellings (case-insensitive):
///   StartJob(job_id=12) | StartJob(12) | StartJob: 12 | start_job(job_id=12)
///   BackfillJob(...) likewise | Delay | Stop
ParsedResponse parse_response(const std::string& text);

}  // namespace reasched::core
