#include "core/action_parser.hpp"

#include <cctype>

#include "util/string_utils.hpp"

namespace reasched::core {

namespace {

/// Strip markdown bullets / emphasis that models sometimes wrap actions in.
std::string strip_decoration(std::string s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '*' || c == '`' || c == '#' || c == '>') continue;
    out += c;
  }
  return util::trim(out);
}

/// Extract the first integer appearing in `s`, if any.
std::optional<int> first_int(const std::string& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
      std::size_t j = i;
      while (j < s.size() && std::isdigit(static_cast<unsigned char>(s[j])) != 0) ++j;
      const auto v = util::parse_int(s.substr(i, j - i));
      if (v) return static_cast<int>(*v);
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<sim::Action> parse_action_expr(const std::string& raw, std::string& error) {
  const std::string body = strip_decoration(raw);
  const std::string lower = util::to_lower(body);

  auto verb_is = [&lower](const char* canonical, const char* snake) {
    return util::starts_with_icase(lower, canonical) || util::starts_with_icase(lower, snake);
  };

  if (verb_is("delay", "delay")) return sim::Action::delay();
  if (verb_is("stop", "stop")) return sim::Action::stop();

  const bool is_start = verb_is("startjob", "start_job");
  const bool is_backfill = verb_is("backfilljob", "backfill_job");
  if (is_start || is_backfill) {
    const auto id = first_int(body);
    if (!id) {
      error = "action names a job verb but no job id could be found: '" + body + "'";
      return std::nullopt;
    }
    if (*id <= 0) {
      error = util::format("job id must be positive, got %d", *id);
      return std::nullopt;
    }
    return is_start ? sim::Action::start(*id) : sim::Action::backfill(*id);
  }
  error = "unrecognized action verb in: '" + body + "'";
  return std::nullopt;
}

}  // namespace

ParsedResponse parse_response(const std::string& text) {
  ParsedResponse out;

  // Collect the thought (everything after the first "Thought:" until the
  // action line) and the *last* "Action:" line - models occasionally restate
  // actions while reasoning; the final one is authoritative.
  const auto lines = util::split_lines(text);
  std::string action_line;
  bool in_thought = false;
  for (const auto& raw_line : lines) {
    const std::string line = util::trim(raw_line);
    const std::string stripped = strip_decoration(line);
    if (util::starts_with_icase(stripped, "action:")) {
      action_line = util::trim(stripped.substr(7));
      in_thought = false;
      continue;
    }
    if (util::starts_with_icase(stripped, "thought:")) {
      in_thought = true;
      out.thought = util::trim(stripped.substr(8));
      continue;
    }
    if (in_thought) {
      if (!out.thought.empty()) out.thought += '\n';
      out.thought += raw_line;
    }
  }

  if (action_line.empty()) {
    // Fall back: maybe the whole response *is* a bare action.
    const std::string whole = strip_decoration(util::trim(text));
    std::string error;
    const auto action = parse_action_expr(whole, error);
    if (action) {
      out.action = action;
      return out;
    }
    out.error = "no 'Action:' line found in response";
    return out;
  }

  std::string error;
  out.action = parse_action_expr(action_line, error);
  if (!out.action) out.error = error;
  return out;
}

}  // namespace reasched::core
