#pragma once

#include <memory>
#include <string>

#include "core/agent_config.hpp"
#include "core/prompt_builder.hpp"
#include "core/scratchpad.hpp"
#include "llm/message.hpp"
#include "llm/model_profile.hpp"
#include "llm/transcript.hpp"
#include "sim/scheduler.hpp"

namespace reasched::core {

/// The paper's contribution (Section 2): a ReAct-style LLM scheduling agent
/// implementing Algorithm 1. At every decision point it
///
///   1. renders the full prompt (state + queue + scratchpad + objectives),
///   2. queries the LLM client,
///   3. parses the "Thought / Action" completion into a structured action,
///   4. hands the action to the engine, whose constraint checker accepts or
///      rejects it; rejections come back as natural-language feedback
///      (on_feedback) and are appended to the scratchpad,
///   5. logs everything into a Transcript for the overhead analysis.
///
/// The agent is model-agnostic: any llm::Client works - the simulated
/// reasoners, the scripted test double, or a real HTTP backend.
class ReActAgent final : public sim::Scheduler {
 public:
  ReActAgent(std::shared_ptr<llm::Client> client, llm::ModelProfile profile,
             AgentConfig config = {});

  sim::Action decide(const sim::DecisionContext& ctx) override;
  void on_feedback(const std::string& feedback, const sim::DecisionContext& ctx) override;
  void on_accepted(const sim::Action& action, const sim::DecisionContext& ctx) override;
  std::string last_thought() const override { return last_thought_; }
  std::string name() const override { return profile_.display_name; }
  void reset() override;

  /// LLM-call totals (calls, token counts, parse failures) for decision
  /// spans and stats snapshots - the live form of the paper's S3.7.1
  /// overhead accounting.
  std::vector<std::pair<std::string, double>> obs_counters() const override {
    return {{"llm/calls", static_cast<double>(transcript_.n_calls())},
            {"llm/prompt_tokens", static_cast<double>(transcript_.total_prompt_tokens())},
            {"llm/completion_tokens", static_cast<double>(transcript_.total_completion_tokens())},
            {"agent/parse_failures", static_cast<double>(parse_failures_)}};
  }

  const llm::Transcript& transcript() const { return transcript_; }
  const Scratchpad& scratchpad() const { return scratchpad_; }
  std::size_t parse_failures() const { return parse_failures_; }
  /// Full prompt of the most recent decision (tests / trace example).
  const std::string& last_prompt() const { return last_prompt_; }

 private:
  std::shared_ptr<llm::Client> client_;
  llm::ModelProfile profile_;
  AgentConfig config_;
  PromptBuilder prompt_builder_;
  Scratchpad scratchpad_;
  llm::Transcript transcript_;
  std::string last_thought_;
  std::string last_prompt_;
  /// Reused planning-window position scratch (no per-decision allocation).
  std::vector<std::uint32_t> window_scratch_;
  std::size_t parse_failures_ = 0;
};

}  // namespace reasched::core
