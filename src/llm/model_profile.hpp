#pragma once

#include <string>

#include "llm/latency_model.hpp"

namespace reasched::llm {

/// Objective temperament of a simulated reasoning model: how it weighs the
/// four prompt objectives when scoring candidate jobs, plus behavioural
/// noise. Calibrated so the two models reproduce the paper's qualitative
/// differences (Section 3.5): Claude 3.7 balanced with a fairness lean;
/// O4-Mini efficiency-leaning ("prioritizing easy wins"), which costs it
/// fairness in Resource Sparse / Homogeneous Short.
struct PolicyTemperament {
  double w_fairness = 0.25;
  double w_makespan = 0.20;
  double w_utilization = 0.25;
  double w_throughput = 0.30;
  /// Gumbel noise scale added to candidate scores (run-to-run variation -
  /// the paper observes residual nondeterminism even at temperature 0).
  double decision_noise = 0.03;
  /// Probability of proposing a non-fitting job (hallucinated feasibility),
  /// exercising the constraint-feedback loop of Section 2.4.
  double hallucination_rate = 0.02;
  /// Reluctance to start long jobs that would push the blocked head job
  /// past its shadow time (EASY-style reservation pressure, 0..1).
  double reservation_pressure = 0.5;
};

/// Complete description of one simulated model endpoint.
struct ModelProfile {
  std::string display_name;  ///< "Claude 3.7"
  std::string api_id;        ///< "claude-3-7-sonnet@vertex"
  int max_completion_tokens = 5000;
  int context_window_tokens = 200000;
  double temperature = 0.0;
  PolicyTemperament temperament;
  LatencyParams latency;
  /// Hidden reasoning tokens emitted per decision (affects completion-token
  /// accounting; O4-Mini's "reasoning effort: high" burns many).
  int reasoning_tokens = 0;
};

/// Anthropic Claude 3.7 Sonnet as configured in paper Section 3.3
/// (Vertex AI, max 5000 tokens, temperature 0).
ModelProfile claude37_profile();

/// OpenAI O4-Mini as configured in paper Section 3.3 (Azure, reasoning
/// effort high, 100k context, temperature fixed internally).
ModelProfile o4mini_profile();

/// Extension (paper Sections 3.7.3 / 6): a hypothetical on-prem fast
/// reasoning model - Claude-like decisions at ~20x lower latency. Used by
/// bench/ablation_deployment to project deployment feasibility.
ModelProfile fast_local_profile();

}  // namespace reasched::llm
