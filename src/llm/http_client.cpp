#include "llm/http_client.hpp"

#include <chrono>
#include <stdexcept>

#include "llm/token_counter.hpp"
#include "util/json_parser.hpp"
#include "util/json_writer.hpp"

namespace reasched::llm {

std::string build_provider_payload(ProviderKind kind, const ModelProfile& profile,
                                   const Request& request) {
  util::JsonWriter w;
  switch (kind) {
    case ProviderKind::kAnthropic:
      // Anthropic messages API: model, max_tokens, temperature, messages[].
      w.begin_object()
          .kv("model", profile.api_id)
          .kv("max_tokens", request.max_tokens)
          .kv("temperature", request.temperature)
          .key("messages")
          .begin_array()
          .begin_object()
          .kv("role", "user")
          .kv("content", request.prompt)
          .end_object()
          .end_array()
          .end_object();
      break;
    case ProviderKind::kOpenAi:
      // OpenAI chat API with reasoning effort (the paper ran O4-Mini with
      // "reasoning effort: high"; temperature is fixed internally, so it is
      // deliberately omitted from the payload).
      w.begin_object()
          .kv("model", profile.api_id)
          .kv("max_completion_tokens", request.max_tokens)
          .kv("reasoning_effort", "high")
          .key("messages")
          .begin_array()
          .begin_object()
          .kv("role", "user")
          .kv("content", request.prompt)
          .end_object()
          .end_array()
          .end_object();
      break;
  }
  return w.str();
}

namespace {
void throw_on_provider_error(const util::JsonValue& doc) {
  if (doc.contains("error")) {
    const auto& err = doc.at("error");
    const std::string message =
        err.is_object() ? err.string_or("message", "unknown provider error")
                        : (err.is_string() ? err.as_string() : "unknown provider error");
    throw std::runtime_error("LLM provider error: " + message);
  }
}
}  // namespace

std::string parse_provider_response(ProviderKind kind, const std::string& body) {
  const auto doc = util::parse_json(body);
  throw_on_provider_error(doc);
  switch (kind) {
    case ProviderKind::kAnthropic: {
      // {"content": [{"type": "text", "text": "..."}], ...}
      const auto& content = doc.at("content");
      for (const auto& block : content.as_array()) {
        if (block.string_or("type", "text") == "text") {
          return block.at("text").as_string();
        }
      }
      throw std::runtime_error("Anthropic response: no text content block");
    }
    case ProviderKind::kOpenAi: {
      // {"choices": [{"message": {"content": "..."}}], ...}
      const auto& choices = doc.at("choices");
      if (choices.empty()) throw std::runtime_error("OpenAI response: empty choices");
      return choices.at(std::size_t{0}).at("message").at("content").as_string();
    }
  }
  throw std::runtime_error("unknown provider kind");
}

ProviderUsage parse_provider_usage(ProviderKind kind, const std::string& body) {
  const auto doc = util::parse_json(body);
  ProviderUsage usage;
  if (!doc.contains("usage")) return usage;
  const auto& u = doc.at("usage");
  switch (kind) {
    case ProviderKind::kAnthropic:
      usage.prompt_tokens = static_cast<int>(u.number_or("input_tokens", 0));
      usage.completion_tokens = static_cast<int>(u.number_or("output_tokens", 0));
      break;
    case ProviderKind::kOpenAi:
      usage.prompt_tokens = static_cast<int>(u.number_or("prompt_tokens", 0));
      usage.completion_tokens = static_cast<int>(u.number_or("completion_tokens", 0));
      break;
  }
  return usage;
}

HttpClient::HttpClient(Options options, ModelProfile profile, HttpTransport transport)
    : options_(std::move(options)),
      profile_(std::move(profile)),
      transport_(std::move(transport)) {
  if (!transport_) throw std::invalid_argument("HttpClient: null transport");
}

Response HttpClient::complete(const Request& request) {
  HttpExchange exchange;
  exchange.url = options_.endpoint_url;
  exchange.auth_header = options_.auth_header;
  exchange.body = build_provider_payload(options_.provider, profile_, request);

  const auto started = std::chrono::steady_clock::now();
  const std::string body = transport_(exchange);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - started)
                           .count();
  ++calls_;

  Response resp;
  resp.text = parse_provider_response(options_.provider, body);
  resp.latency_seconds = elapsed;
  resp.model = profile_.api_id;
  const ProviderUsage usage = parse_provider_usage(options_.provider, body);
  resp.prompt_tokens =
      usage.prompt_tokens > 0 ? usage.prompt_tokens : estimate_tokens(request.prompt);
  resp.completion_tokens =
      usage.completion_tokens > 0 ? usage.completion_tokens : estimate_tokens(resp.text);
  return resp;
}

}  // namespace reasched::llm
