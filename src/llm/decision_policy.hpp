#pragma once

#include <vector>

#include "llm/message.hpp"
#include "llm/model_profile.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace reasched::llm {

/// Per-candidate multiobjective score decomposition; the thought generator
/// narrates these terms, so the rendered reasoning genuinely reflects the
/// decision calculus (not post-hoc fiction).
struct CandidateScore {
  sim::JobId id = 0;
  double total = 0.0;
  double fairness = 0.0;
  double makespan = 0.0;
  double utilization = 0.0;
  double throughput = 0.0;
  double reservation_penalty = 0.0;
  bool fits = false;
  int nodes = 0;
  double memory_gb = 0.0;
  double walltime = 0.0;
  double waited = 0.0;
  sim::UserId user = 0;
};

/// What the policy decided and why - consumed by the thought generator.
struct PolicyDecision {
  enum class Kind {
    kStartBest,     ///< start the top-scoring fitting job
    kBackfill,      ///< opportunistic start while the head job is blocked
    kDelayNoFit,    ///< nothing fits; wait for a completion
    kDelayReserve,  ///< deliberately hold resources for the blocked head job
    kDelayIdle,     ///< queue empty but arrivals pending
    kStopDone,      ///< all jobs scheduled
    kHallucinated,  ///< proposed a non-fitting job (will be rejected)
  };

  sim::Action action;
  Kind kind = Kind::kDelayIdle;
  std::vector<CandidateScore> scored;  ///< fitting candidates, best first
  sim::JobId blocked_head = 0;         ///< head job that does not fit (0 = none)
  double next_release_time = -1.0;     ///< earliest running-job end (narration)
  double shadow_time = -1.0;           ///< when the blocked head could start
};

/// The multiobjective scoring policy behind the simulated reasoner. Scores
/// every waiting job on the four prompt objectives (fairness, makespan,
/// utilization, throughput), applies an EASY-style reservation penalty for
/// candidates that would push a blocked head job past its shadow time, adds
/// temperament noise, and chooses start / backfill / delay / stop exactly
/// over the paper's action space.
class DecisionPolicy {
 public:
  explicit DecisionPolicy(PolicyTemperament temperament);

  PolicyDecision decide(const sim::DecisionContext& ctx, const PromptContext& pctx,
                        util::Rng& rng) const;

  const PolicyTemperament& temperament() const { return temperament_; }

 private:
  CandidateScore score_job(const sim::Job& job, const sim::DecisionContext& ctx,
                           double max_wait, double max_walltime, double shadow_time,
                           double head_pressure, util::Rng& rng) const;

  PolicyTemperament temperament_;
};

}  // namespace reasched::llm
