#pragma once

#include <string_view>

namespace reasched::llm {

/// Offline token estimate: ~4 characters per token, the standard rule of
/// thumb for English + structured text. Exact tokenization is unnecessary -
/// token counts only feed the latency model and context-budget truncation,
/// both of which need magnitude, not exactness.
int estimate_tokens(std::string_view text);

}  // namespace reasched::llm
