#include "llm/scripted_client.hpp"

#include <stdexcept>

#include "llm/token_counter.hpp"

namespace reasched::llm {

ScriptedClient::ScriptedClient(std::vector<std::string> responses, std::string model)
    : responses_(std::move(responses)), model_(std::move(model)) {}

Response ScriptedClient::complete(const Request& request) {
  prompts_.push_back(request.prompt);
  if (next_ >= responses_.size()) {
    if (!repeat_last || responses_.empty()) {
      throw std::runtime_error("ScriptedClient: response script exhausted");
    }
    next_ = responses_.size() - 1;
  }
  Response resp;
  resp.text = responses_[next_++];
  resp.model = model_;
  resp.prompt_tokens = estimate_tokens(request.prompt);
  resp.completion_tokens = estimate_tokens(resp.text);
  resp.latency_seconds = 0.01;
  return resp;
}

}  // namespace reasched::llm
