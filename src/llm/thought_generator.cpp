#include "llm/thought_generator.hpp"

#include <algorithm>
#include <sstream>

#include "util/string_utils.hpp"

namespace reasched::llm {

namespace {

std::string describe_candidate(const CandidateScore& c) {
  return util::format("Job %d (%d Nodes, %.0f GB, walltime=%.0f, waited %.0fs, user_%d)", c.id,
                      c.nodes, c.memory_gb, c.walltime, c.waited, c.user);
}

std::string dominant_terms(const CandidateScore& c) {
  struct Term {
    const char* label;
    double value;
  };
  Term terms[] = {{"fairness", c.fairness},
                  {"throughput", c.throughput},
                  {"utilization", c.utilization},
                  {"makespan", c.makespan}};
  // Equal weights are possible (e.g. balanced objective presets); stable_sort
  // pins tied terms to declaration order so the narrated pair is deterministic.
  std::stable_sort(std::begin(terms), std::end(terms),
                   [](const Term& a, const Term& b) { return a.value > b.value; });
  return util::format("%s and %s", terms[0].label, terms[1].label);
}

void describe_state(std::ostringstream& os, const sim::DecisionContext& ctx) {
  os << "I need to analyze the current system state and the job queue to make an optimal "
        "scheduling decision.\n";
  os << util::format("Current time: %.0f. Available resources: %d Nodes, %.0f GB memory. ",
                     ctx.now, ctx.cluster.available_nodes(),
                     ctx.cluster.available_memory_gb());
  os << util::format("%zu job(s) running, %zu waiting, %zu completed.\n", ctx.running.size(),
                     ctx.waiting.size(), ctx.completed.size());
}

}  // namespace

std::string ThoughtGenerator::render(const PolicyDecision& d,
                                     const sim::DecisionContext& ctx) const {
  std::ostringstream os;

  switch (d.kind) {
    case PolicyDecision::Kind::kStopDone:
      describe_state(os, ctx);
      os << "Looking at the waiting jobs queue, there are no eligible jobs waiting to be "
            "scheduled, and no more arrivals are pending. Reviewing the decision history, all "
            "jobs have been scheduled already.";
      if (!ctx.running.empty()) {
        os << util::format(
            " %zu job(s) are still running and will complete on their own (next at t=%.0f).",
            ctx.running.size(), ctx.running.front().end_time);
      }
      os << "\nSince every job has been assigned a start time, the appropriate action is to "
            "stop the scheduling process.";
      break;

    case PolicyDecision::Kind::kDelayIdle:
      describe_state(os, ctx);
      os << "The waiting queue is currently empty but more jobs will arrive. There is nothing "
            "to schedule at this moment, so I should wait for the next event.";
      break;

    case PolicyDecision::Kind::kDelayNoFit:
      describe_state(os, ctx);
      os << "All eligible jobs currently require more Nodes or memory than is available.";
      if (d.next_release_time >= 0.0) {
        os << util::format(
            " The next likely completion is at t=%.0f, which will release resources.",
            d.next_release_time);
      }
      os << "\nSince I cannot start any new jobs now due to resource constraints, I should "
            "wait until a running job completes.";
      break;

    case PolicyDecision::Kind::kDelayReserve:
      describe_state(os, ctx);
      os << util::format(
          "Job %d has been waiting the longest but does not fit right now. Starting another "
          "job would push its expected start (around t=%.0f) even further back, hurting "
          "fairness more than the small throughput gain is worth.\n",
          d.blocked_head, d.shadow_time);
      os << "To keep wait-time variance low I will hold the remaining resources for it.";
      break;

    case PolicyDecision::Kind::kHallucinated: {
      describe_state(os, ctx);
      if (!d.scored.empty()) {
        const auto& c = d.scored.front();
        os << "I identified several jobs that could maximize utilization and fairness. "
              "Among them:\n  "
           << describe_candidate(c)
           << util::format("\n  Expected to improve %s.\nDecision: attempt to schedule Job %d "
                           "to achieve optimal balance.",
                           dominant_terms(c).c_str(), c.id);
      }
      break;
    }

    case PolicyDecision::Kind::kBackfill:
    case PolicyDecision::Kind::kStartBest: {
      describe_state(os, ctx);
      const bool all_same_submit =
          std::all_of(ctx.waiting.begin(), ctx.waiting.end(), [&](const sim::Job& j) {
            return j.submit_time == ctx.waiting.front().submit_time;
          });
      if (all_same_submit && ctx.now == ctx.waiting.front().submit_time) {
        os << "All queued jobs were submitted at the same time, so no one has been waiting "
              "longer than another; fairness is not the deciding factor for this step.\n";
      }
      if (d.kind == PolicyDecision::Kind::kBackfill) {
        os << util::format(
            "Job %d is at the head of the queue but requires more resources than are free "
            "(it could start around t=%.0f once running jobs finish). Rather than leave the "
            "system idle, I can opportunistically run a smaller job ahead of it.\n",
            d.blocked_head, d.shadow_time);
      }
      if (!d.scored.empty()) {
        os << "Evaluating the trade-offs across the waiting queue, the strongest candidate "
              "is:\n  "
           << describe_candidate(d.scored.front()) << "\n";
        if (d.scored.size() > 1) {
          os << "  Runner-up: " << describe_candidate(d.scored[1]) << "\n";
        }
        os << util::format(
            "This choice is driven mainly by %s: it keeps the system busy, finishes in "
            "reasonable time, and leaves headroom for packing other jobs concurrently.",
            dominant_terms(d.scored.front()).c_str());
      }
      break;
    }
  }
  return os.str();
}

}  // namespace reasched::llm
