#pragma once

#include <vector>

#include "sim/action.hpp"

namespace reasched::llm {

/// Accounting record of one LLM call, as used by the paper's computational
/// overhead analysis (Section 3.7).
struct CallRecord {
  double sim_time = 0.0;
  double latency_seconds = 0.0;
  int prompt_tokens = 0;
  int completion_tokens = 0;
  sim::ActionType action = sim::ActionType::kDelay;
  /// Accepted by constraint enforcement?
  bool accepted = false;
};

/// Collects call records across one simulation run and derives the Figure
/// 5/6 statistics. Following Section 3.7.1, "successful" restricts to calls
/// whose action was a feasible, accepted StartJob/BackfillJob - Delay calls
/// are excluded so latency is not conflated with saturation.
class Transcript {
 public:
  void add(CallRecord record) { calls_.push_back(record); }
  void clear() { calls_.clear(); }

  const std::vector<CallRecord>& calls() const { return calls_; }
  std::size_t n_calls() const { return calls_.size(); }

  std::size_t n_successful() const;
  /// Sum of latencies over successful scheduling calls ("total elapsed
  /// scheduling time" in Figure 5/6).
  double total_elapsed_successful() const;
  std::vector<double> successful_latencies() const;

  /// Token totals across all calls (context-growth diagnostics).
  long long total_prompt_tokens() const;
  long long total_completion_tokens() const;

  /// Mark the most recent call accepted/rejected (the agent learns the
  /// verdict only after the engine validates the action).
  void set_last_verdict(bool accepted);

 private:
  std::vector<CallRecord> calls_;
};

}  // namespace reasched::llm
