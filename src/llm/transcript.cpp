#include "llm/transcript.hpp"

#include <stdexcept>

namespace reasched::llm {

std::size_t Transcript::n_successful() const {
  std::size_t n = 0;
  for (const auto& c : calls_) {
    if (c.accepted && (c.action == sim::ActionType::kStartJob ||
                       c.action == sim::ActionType::kBackfillJob)) {
      ++n;
    }
  }
  return n;
}

double Transcript::total_elapsed_successful() const {
  double total = 0.0;
  for (const auto& c : calls_) {
    if (c.accepted && (c.action == sim::ActionType::kStartJob ||
                       c.action == sim::ActionType::kBackfillJob)) {
      total += c.latency_seconds;
    }
  }
  return total;
}

std::vector<double> Transcript::successful_latencies() const {
  std::vector<double> out;
  for (const auto& c : calls_) {
    if (c.accepted && (c.action == sim::ActionType::kStartJob ||
                       c.action == sim::ActionType::kBackfillJob)) {
      out.push_back(c.latency_seconds);
    }
  }
  return out;
}

long long Transcript::total_prompt_tokens() const {
  long long total = 0;
  for (const auto& c : calls_) total += c.prompt_tokens;
  return total;
}

long long Transcript::total_completion_tokens() const {
  long long total = 0;
  for (const auto& c : calls_) total += c.completion_tokens;
  return total;
}

void Transcript::set_last_verdict(bool accepted) {
  if (calls_.empty()) throw std::logic_error("Transcript::set_last_verdict: no calls");
  calls_.back().accepted = accepted;
}

}  // namespace reasched::llm
