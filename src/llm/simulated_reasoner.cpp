#include "llm/simulated_reasoner.hpp"

#include <stdexcept>

#include "llm/token_counter.hpp"
#include "sim/planning_window.hpp"

namespace reasched::llm {

SimulatedReasoner::SimulatedReasoner(ModelProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)),
      seed_(seed),
      rng_(util::derive_seed(seed, profile_.api_id)),
      policy_(profile_.temperament) {}

void SimulatedReasoner::reset() { rng_ = util::Rng(util::derive_seed(seed_, profile_.api_id)); }

Response SimulatedReasoner::complete(const Request& request) {
  if (request.context == nullptr || request.context->decision == nullptr) {
    throw std::invalid_argument(
        "SimulatedReasoner requires Request::context (the structured side channel; "
        "a real HTTP client would parse Request::prompt instead)");
  }
  const sim::DecisionContext& ctx = *request.context->decision;

  last_decision_ = policy_.decide(ctx, *request.context, rng_);
  const std::string thought = thoughts_.render(last_decision_, ctx);
  Response resp;
  resp.text = "Thought: " + thought + "\nAction: " + last_decision_.action.to_string();
  resp.model = profile_.api_id;
  resp.prompt_tokens = estimate_tokens(request.prompt);

  // Hidden chain-of-thought tokens count toward completion usage and grow
  // with queue complexity (more trade-offs to weigh). Only the jobs the
  // prompt actually lists - the planning window when bounded - contribute,
  // which is what keeps per-decision token cost flat at trace scale.
  const std::vector<std::uint32_t>* window = request.context->window;
  const std::size_t n_visible = sim::windowed_size(ctx.waiting, window);
  std::vector<double> durations, widths;
  durations.reserve(n_visible);
  widths.reserve(n_visible);
  for (std::size_t k = 0; k < n_visible; ++k) {
    const sim::Job& j = sim::windowed_job(ctx.waiting, window, k);
    durations.push_back(j.walltime);
    widths.push_back(static_cast<double>(j.nodes));
  }
  const double heterogeneity = queue_heterogeneity(durations, widths);
  const int reasoning = static_cast<int>(
      profile_.reasoning_tokens * (1.0 + heterogeneity + 0.01 * static_cast<double>(n_visible)));
  resp.completion_tokens = estimate_tokens(resp.text) + reasoning;

  const LatencyModel latency(profile_.latency);
  resp.latency_seconds = latency.sample(resp.prompt_tokens, heterogeneity, rng_);
  return resp;
}

}  // namespace reasched::llm
