#include "llm/latency_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace reasched::llm {

double LatencyModel::sample(int prompt_tokens, double heterogeneity, util::Rng& rng) const {
  double latency = rng.lognormal(params_.base_log_mean, params_.base_log_sigma);
  latency += static_cast<double>(prompt_tokens) / 1000.0 * params_.token_factor;
  latency *= 1.0 + params_.complexity_gain * std::clamp(heterogeneity, 0.0, 1.0);
  if (params_.tail_probability > 0.0 && rng.bernoulli(params_.tail_probability)) {
    latency += rng.lognormal(params_.tail_log_mean, params_.tail_log_sigma);
  }
  return std::max(0.05, latency);
}

double queue_heterogeneity(const std::vector<double>& durations,
                           const std::vector<double>& nodes) {
  auto cv = [](const std::vector<double>& xs) {
    const double m = util::mean(xs);
    if (m <= 0.0) return 0.0;
    return util::stddev(xs) / m;
  };
  // Coefficient of variation saturating at ~1.5 maps to [0, 1].
  const double mix = 0.5 * (cv(durations) + cv(nodes));
  return std::clamp(mix / 1.5, 0.0, 1.0);
}

}  // namespace reasched::llm
