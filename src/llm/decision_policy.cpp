#include "llm/decision_policy.hpp"

#include "sim/event.hpp"
#include "sim/planning_window.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace reasched::llm {

DecisionPolicy::DecisionPolicy(PolicyTemperament temperament) : temperament_(temperament) {}

namespace {

/// Gumbel(0, scale) noise - the softmax-consistent way to jitter argmax
/// selection (equivalent to sampling from a temperature-scaled softmax).
double gumbel_noise(double scale, util::Rng& rng) {
  if (scale <= 0.0) return 0.0;
  const double u = std::clamp(rng.uniform_real(1e-12, 1.0), 1e-12, 1.0 - 1e-12);
  return -scale * std::log(-std::log(u));
}

/// Earliest time the blocked head job could start, accumulating releases in
/// end-time order (same computation as EASY backfilling's shadow time).
double compute_shadow(const sim::DecisionContext& ctx, const sim::Job& head) {
  int nodes = ctx.cluster.available_nodes();
  double memory = ctx.cluster.available_memory_gb();
  double t = ctx.now;
  for (const auto& alloc : ctx.running) {
    if (nodes >= head.nodes && sim::mem_fits(memory, head.memory_gb)) break;
    nodes += alloc.job.nodes;
    memory += alloc.job.memory_gb;
    t = alloc.end_time;
  }
  return t;
}

}  // namespace

CandidateScore DecisionPolicy::score_job(const sim::Job& job, const sim::DecisionContext& ctx,
                                         double max_wait, double max_walltime,
                                         double shadow_time, double head_pressure,
                                         util::Rng& rng) const {
  const auto& spec = ctx.cluster.spec();
  CandidateScore s;
  s.id = job.id;
  s.fits = ctx.cluster.fits(job);
  s.nodes = job.nodes;
  s.memory_gb = job.memory_gb;
  s.walltime = job.walltime;
  s.waited = ctx.now - job.submit_time;
  s.user = job.user;

  // Fairness: long-waiting jobs first, plus a starvation bonus for users who
  // have had nothing run yet (the per-user Jain objective).
  const double wait_share = max_wait > 0.0 ? s.waited / max_wait : 0.0;
  bool user_served = false;
  for (const auto& c : ctx.completed) {
    if (c.job.user == job.user) {
      user_served = true;
      break;
    }
  }
  if (!user_served) {
    for (const auto& r : ctx.running) {
      if (r.job.user == job.user) {
        user_served = true;
        break;
      }
    }
  }
  s.fairness = temperament_.w_fairness * (0.7 * wait_share + (user_served ? 0.0 : 0.3));

  // Throughput: short jobs complete quickly (jobs / unit time).
  const double shortness = max_walltime > 0.0 ? 1.0 - job.walltime / max_walltime : 0.0;
  s.throughput = temperament_.w_throughput * shortness;

  // Utilization: immediate node + memory occupancy gained by starting now.
  const double occupancy = 0.5 * (static_cast<double>(job.nodes) / spec.total_nodes +
                                  job.memory_gb / spec.total_memory_gb);
  s.utilization = temperament_.w_utilization * occupancy;

  // Makespan: LPT intuition - long/wide work started early shortens the
  // critical path.
  const double length_share = max_walltime > 0.0 ? job.walltime / max_walltime : 0.0;
  s.makespan = temperament_.w_makespan *
               (0.6 * length_share + 0.4 * static_cast<double>(job.nodes) / spec.total_nodes);

  // Reservation pressure: starting a job that outlives the blocked head
  // job's shadow window pushes the head back - penalize in proportion to
  // how long the head has been waiting.
  if (shadow_time > ctx.now && ctx.now + job.walltime > shadow_time + 1e-9) {
    s.reservation_penalty =
        temperament_.reservation_pressure * head_pressure * (0.35 + temperament_.w_fairness);
  }

  s.total = s.fairness + s.throughput + s.utilization + s.makespan - s.reservation_penalty +
            gumbel_noise(temperament_.decision_noise, rng);
  return s;
}

PolicyDecision DecisionPolicy::decide(const sim::DecisionContext& ctx, const PromptContext& pctx,
                                      util::Rng& rng) const {
  PolicyDecision d;

  if (ctx.waiting.empty()) {
    if (!ctx.arrivals_pending && ctx.ineligible.empty()) {
      d.action = sim::Action::stop();
      d.kind = PolicyDecision::Kind::kStopDone;
    } else {
      d.action = sim::Action::delay();
      d.kind = PolicyDecision::Kind::kDelayIdle;
    }
    return d;
  }

  if (!ctx.running.empty()) d.next_release_time = ctx.running.front().end_time;

  // Candidate set: the planning window when bounded, else the whole queue.
  // The prompt shows exactly these jobs, so normalization statistics and
  // scoring must see exactly these jobs too (a real backend could not react
  // to jobs its prompt never listed).
  const std::vector<std::uint32_t>* window = pctx.window;
  const std::size_t n_candidates = sim::windowed_size(ctx.waiting, window);
  auto candidate = [&](std::size_t k) -> const sim::Job& {
    return sim::windowed_job(ctx.waiting, window, k);
  };

  double max_wait = 0.0, max_walltime = 0.0, total_walltime = 0.0;
  for (std::size_t k = 0; k < n_candidates; ++k) {
    const sim::Job& j = candidate(k);
    max_wait = std::max(max_wait, ctx.now - j.submit_time);
    max_walltime = std::max(max_walltime, j.walltime);
    total_walltime += j.walltime;
  }
  const double avg_walltime = total_walltime / static_cast<double>(n_candidates);

  // Head = longest-waiting job (arrival order is maintained by the engine).
  // A bounded window always includes position 0 (PlanningWindow::select),
  // so the head anchoring the reservation reasoning is always a candidate
  // the prompt listed.
  const sim::Job& head = ctx.waiting.front();
  double shadow_time = -1.0;
  double head_pressure = 0.0;
  if (!ctx.cluster.fits(head)) {
    d.blocked_head = head.id;
    shadow_time = compute_shadow(ctx, head);
    d.shadow_time = shadow_time;
    head_pressure = std::clamp((ctx.now - head.submit_time) / (avg_walltime + 1.0), 0.0, 1.0);
  }

  const std::set<sim::JobId> rejected(pctx.recently_rejected.begin(),
                                      pctx.recently_rejected.end());

  std::vector<CandidateScore> fitting;
  std::vector<CandidateScore> blocked;
  for (std::size_t k = 0; k < n_candidates; ++k) {
    const sim::Job& j = candidate(k);
    if (rejected.count(j.id) != 0) continue;  // feedback said no; don't retry now
    CandidateScore s =
        score_job(j, ctx, max_wait, max_walltime, shadow_time, head_pressure, rng);
    (s.fits ? fitting : blocked).push_back(std::move(s));
  }
  auto by_total = [](const CandidateScore& a, const CandidateScore& b) {
    if (a.total != b.total) return a.total > b.total;
    return a.id < b.id;
  };
  // total-order: by_total breaks score ties by unique JobId.
  std::sort(fitting.begin(), fitting.end(), by_total);
  // total-order: same comparator.
  std::sort(blocked.begin(), blocked.end(), by_total);

  // Hallucinated feasibility: occasionally the model "decides" on a blocked
  // job that scores well (cf. Figure 2, Job 32) - the constraint module
  // rejects it and the feedback loop recovers.
  if (!blocked.empty() && rng.bernoulli(temperament_.hallucination_rate)) {
    d.action = sim::Action::start(blocked.front().id);
    d.kind = PolicyDecision::Kind::kHallucinated;
    d.scored = std::move(blocked);
    return d;
  }

  if (fitting.empty()) {
    d.action = sim::Action::delay();
    d.kind = PolicyDecision::Kind::kDelayNoFit;
    d.scored = std::move(blocked);
    return d;
  }

  const CandidateScore& best = fitting.front();

  // Deliberate reservation: when the head is blocked and even the best
  // candidate is dominated by the cost of delaying the head further, wait.
  if (d.blocked_head != 0) {
    const double delay_value = temperament_.reservation_pressure * head_pressure * 0.55;
    if (best.total < delay_value) {
      d.action = sim::Action::delay();
      d.kind = PolicyDecision::Kind::kDelayReserve;
      d.scored = std::move(fitting);
      return d;
    }
  }

  const bool is_backfill = d.blocked_head != 0 && best.id != head.id;
  d.action = is_backfill ? sim::Action::backfill(best.id) : sim::Action::start(best.id);
  d.kind = is_backfill ? PolicyDecision::Kind::kBackfill : PolicyDecision::Kind::kStartBest;
  d.scored = std::move(fitting);
  return d;
}

}  // namespace reasched::llm
