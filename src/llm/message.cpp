#include "llm/message.hpp"

namespace reasched::llm {

void Client::reset() {}

}  // namespace reasched::llm
