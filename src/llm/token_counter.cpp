#include "llm/token_counter.hpp"

namespace reasched::llm {

int estimate_tokens(std::string_view text) {
  if (text.empty()) return 0;
  return static_cast<int>((text.size() + 3) / 4);
}

}  // namespace reasched::llm
