#pragma once

#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace reasched::llm {

/// Structured view of the state a prompt was rendered from. Real HTTP
/// backends ignore it and consume only Request::prompt; the simulated
/// reasoner uses it so it never has to parse English back out of the prompt.
/// This is the one documented seam between "real" and "simulated" LLMs
/// (DESIGN.md, Substitutions).
struct PromptContext {
  const sim::DecisionContext* decision = nullptr;
  /// Total scratchpad entries so far (context growth drives token counts).
  std::size_t scratchpad_entries = 0;
  /// Job ids rejected by constraint enforcement at the *current* timestep -
  /// the information the paper's feedback loop injects. Empty when the
  /// feedback channel is disabled (ablation).
  std::vector<sim::JobId> recently_rejected;
  /// Ascending positions into decision->waiting of the jobs inside the
  /// agent's planning window (sim::PlanningWindow::select output), or null
  /// when the window is unbounded. The prompt renders exactly these jobs,
  /// so the simulated reasoner must score exactly these candidates - the
  /// structured side channel mirrors what a real backend could read from
  /// the prompt text.
  const std::vector<std::uint32_t>* window = nullptr;
};

/// One completion request in the shape of a real chat-completions call.
struct Request {
  std::string prompt;
  int max_tokens = 5000;
  double temperature = 0.0;
  const PromptContext* context = nullptr;
};

/// One completion response with the accounting the overhead analysis needs.
struct Response {
  std::string text;
  /// Simulated API latency in seconds (sampled, never slept).
  double latency_seconds = 0.0;
  int prompt_tokens = 0;
  int completion_tokens = 0;
  std::string model;
};

/// Provider-agnostic client interface (paper Section 3.3 accesses O4-Mini
/// via Azure and Claude 3.7 via Vertex AI through exactly this seam).
class Client {
 public:
  virtual ~Client() = default;
  virtual Response complete(const Request& request) = 0;
  virtual std::string model_name() const = 0;
  /// Restore the initial (seeded) state so a fresh simulation is reproducible.
  virtual void reset();
};

}  // namespace reasched::llm
