#pragma once

#include "llm/decision_policy.hpp"
#include "llm/latency_model.hpp"
#include "llm/message.hpp"
#include "llm/model_profile.hpp"
#include "llm/thought_generator.hpp"
#include "util/rng.hpp"

namespace reasched::llm {

/// The offline stand-in for a hosted reasoning model (see DESIGN.md,
/// Substitutions). Implements the same Client interface a real HTTP backend
/// would: takes a rendered prompt, returns ReAct-formatted text
/// ("Thought: ...\nAction: ...") plus latency and token accounting.
///
/// Internally it (1) runs the multiobjective DecisionPolicy over the
/// structured PromptContext side channel, (2) renders a natural-language
/// Thought from the actual score decomposition, and (3) samples latency
/// from the profile's calibrated model. Deterministic given (profile, seed).
class SimulatedReasoner final : public Client {
 public:
  SimulatedReasoner(ModelProfile profile, std::uint64_t seed);

  Response complete(const Request& request) override;
  std::string model_name() const override { return profile_.display_name; }
  void reset() override;

  const ModelProfile& profile() const { return profile_; }
  /// Decision trace of the most recent complete() (tests introspect this).
  const PolicyDecision& last_decision() const { return last_decision_; }

 private:
  ModelProfile profile_;
  std::uint64_t seed_;
  util::Rng rng_;
  DecisionPolicy policy_;
  ThoughtGenerator thoughts_;
  PolicyDecision last_decision_;
};

}  // namespace reasched::llm
