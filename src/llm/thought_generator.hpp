#pragma once

#include <string>

#include "llm/decision_policy.hpp"

namespace reasched::llm {

/// Renders natural-language Thought text from a policy decision, in the
/// style of the paper's Figure 2 traces. The narration is generated from
/// the actual score decomposition, so every stated reason corresponds to a
/// term that genuinely influenced the choice.
class ThoughtGenerator {
 public:
  std::string render(const PolicyDecision& decision, const sim::DecisionContext& ctx) const;
};

}  // namespace reasched::llm
