#pragma once

#include <functional>
#include <string>

#include "llm/message.hpp"
#include "llm/model_profile.hpp"

namespace reasched::llm {

/// Wire-level request/response pair, transport-agnostic.
struct HttpExchange {
  std::string url;
  std::string body;           ///< JSON payload
  std::string auth_header;    ///< e.g. "x-api-key: ..." / "Authorization: Bearer ..."
};

/// Transport = "take this POST, give me the response body". Production code
/// plugs libcurl or a vendor SDK here; tests plug canned JSON. Keeping the
/// transport out of the library is what makes the whole client testable
/// offline (the repro environment has no network access - see DESIGN.md).
using HttpTransport = std::function<std::string(const HttpExchange&)>;

/// The two provider wire formats the paper used (Section 3.3):
///  - Anthropic messages API (Claude 3.7 via Vertex AI)
///  - OpenAI chat/reasoning API (O4-Mini via Azure)
enum class ProviderKind { kAnthropic, kOpenAi };

/// Serialize a completion request into the provider's JSON payload.
/// Exposed separately so payload formatting is unit-testable.
std::string build_provider_payload(ProviderKind kind, const ModelProfile& profile,
                                   const Request& request);

/// Extract the completion text from a provider response body.
/// Anthropic: content[0].text; OpenAI: choices[0].message.content.
/// Throws std::runtime_error on provider error payloads or missing fields.
std::string parse_provider_response(ProviderKind kind, const std::string& body);

/// Extract token usage if present (input/prompt and output/completion).
struct ProviderUsage {
  int prompt_tokens = 0;
  int completion_tokens = 0;
};
ProviderUsage parse_provider_usage(ProviderKind kind, const std::string& body);

/// A real-LLM client in the same seam as SimulatedReasoner: renders the
/// provider payload, calls the injected transport, and decodes the response
/// text + usage. Latency is measured as wall-clock around the transport
/// call. Drop-in for the ReAct agent:
///
///   auto client = std::make_shared<HttpClient>(
///       HttpClient::Options{ProviderKind::kAnthropic,
///                           "https://...:predict", "x-api-key: $KEY"},
///       claude37_profile(), my_curl_transport);
///   core::ReActAgent agent(client, claude37_profile());
class HttpClient final : public Client {
 public:
  struct Options {
    ProviderKind provider = ProviderKind::kAnthropic;
    std::string endpoint_url;
    std::string auth_header;
  };

  HttpClient(Options options, ModelProfile profile, HttpTransport transport);

  Response complete(const Request& request) override;
  std::string model_name() const override { return profile_.display_name; }

  std::size_t calls_made() const { return calls_; }

 private:
  Options options_;
  ModelProfile profile_;
  HttpTransport transport_;
  std::size_t calls_ = 0;
};

}  // namespace reasched::llm
