#pragma once

#include <string>
#include <vector>

#include "llm/message.hpp"

namespace reasched::llm {

/// Test double: replays a fixed sequence of response texts and records every
/// prompt it was sent. Used by the agent unit tests to exercise parsing,
/// feedback and scratchpad behaviour with exact, hand-written responses
/// (including malformed ones).
class ScriptedClient final : public Client {
 public:
  explicit ScriptedClient(std::vector<std::string> responses,
                          std::string model = "scripted");

  Response complete(const Request& request) override;
  std::string model_name() const override { return model_; }
  void reset() override { next_ = 0; prompts_.clear(); }

  const std::vector<std::string>& prompts() const { return prompts_; }
  std::size_t calls() const { return prompts_.size(); }
  bool exhausted() const { return next_ >= responses_.size(); }

  /// When true (default), an exhausted script repeats its last response
  /// instead of throwing - convenient for agents that need a trailing
  /// stream of "Stop".
  bool repeat_last = true;

 private:
  std::vector<std::string> responses_;
  std::string model_;
  std::size_t next_ = 0;
  std::vector<std::string> prompts_;
};

}  // namespace reasched::llm
