#include "llm/model_profile.hpp"

#include <cmath>

namespace reasched::llm {

ModelProfile claude37_profile() {
  ModelProfile p;
  p.display_name = "Claude 3.7";
  p.api_id = "claude-3-7-sonnet@vertex";
  p.max_completion_tokens = 5000;
  p.context_window_tokens = 200000;
  p.temperature = 0.0;

  p.temperament.w_fairness = 0.30;
  p.temperament.w_makespan = 0.20;
  p.temperament.w_utilization = 0.24;
  p.temperament.w_throughput = 0.26;
  p.temperament.decision_noise = 0.01;
  p.temperament.hallucination_rate = 0.01;
  p.temperament.reservation_pressure = 0.65;

  // Figure 5: per-call latencies tightly clustered below 10 s.
  p.latency.base_log_mean = std::log(3.5);
  p.latency.base_log_sigma = 0.28;
  p.latency.token_factor = 0.18;
  p.latency.complexity_gain = 0.25;
  p.latency.tail_probability = 0.01;
  p.latency.tail_log_mean = std::log(12.0);
  p.latency.tail_log_sigma = 0.3;

  p.reasoning_tokens = 350;
  return p;
}

ModelProfile o4mini_profile() {
  ModelProfile p;
  p.display_name = "O4-Mini";
  p.api_id = "o4-mini@azure";
  p.max_completion_tokens = 100000;
  p.context_window_tokens = 100000;
  p.temperature = 1.0;  // fixed internally, not user-controllable (S3.3)

  // Efficiency-leaning temperament: strong throughput/utilization pull,
  // weaker fairness - reproduces its poor fairness in low-contention
  // scenarios while staying balanced overall.
  p.temperament.w_fairness = 0.18;
  p.temperament.w_makespan = 0.22;
  p.temperament.w_utilization = 0.28;
  p.temperament.w_throughput = 0.32;
  p.temperament.decision_noise = 0.015;
  p.temperament.hallucination_rate = 0.02;
  p.temperament.reservation_pressure = 0.55;

  // Figures 5-6: high base latency, strong token sensitivity (super-linear
  // total time as the scratchpad grows) and a heavy tail with >100 s spikes
  // concentrated in heterogeneous queues.
  p.latency.base_log_mean = std::log(11.0);
  p.latency.base_log_sigma = 0.55;
  p.latency.token_factor = 1.6;
  p.latency.complexity_gain = 0.9;
  p.latency.tail_probability = 0.10;
  p.latency.tail_log_mean = std::log(75.0);
  p.latency.tail_log_sigma = 0.65;

  p.reasoning_tokens = 2800;
  return p;
}

ModelProfile fast_local_profile() {
  ModelProfile p = claude37_profile();
  p.display_name = "Fast-Local";
  p.api_id = "on-prem-reasoner";
  // ~20x faster: sub-second decisions, negligible token sensitivity.
  p.latency.base_log_mean = std::log(0.18);
  p.latency.base_log_sigma = 0.2;
  p.latency.token_factor = 0.01;
  p.latency.complexity_gain = 0.1;
  p.latency.tail_probability = 0.002;
  p.latency.tail_log_mean = std::log(1.0);
  p.reasoning_tokens = 200;
  return p;
}

}  // namespace reasched::llm
