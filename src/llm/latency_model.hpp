#pragma once

#include "util/rng.hpp"

namespace reasched::llm {

/// Per-call latency distribution of one hosted reasoning model, calibrated
/// to the paper's Figures 5-6:
///
///  - Claude 3.7: tightly clustered below 10 s, low variance, mild growth
///    with prompt length -> near-linear total elapsed time in queue size.
///  - O4-Mini ("reasoning effort: high"): higher base latency, strong
///    prompt-token sensitivity and a heavy-tail mixture component, giving
///    >100 s outliers in Heterogeneous Mix and super-linear total time.
///
/// latency = (lognormal(base) + tokens/1000 * token_factor)
///             * (1 + complexity_gain * workload_heterogeneity)
///           [+ lognormal(tail) with probability tail_probability]
struct LatencyParams {
  double base_log_mean = 1.2;   ///< ln(seconds)
  double base_log_sigma = 0.3;
  double token_factor = 0.3;    ///< seconds per 1k prompt tokens
  double complexity_gain = 0.3; ///< multiplier at heterogeneity = 1
  double tail_probability = 0.0;
  double tail_log_mean = 3.5;
  double tail_log_sigma = 0.5;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyParams params) : params_(params) {}

  /// Sample one call latency. `heterogeneity` in [0, 1] measures how mixed
  /// the waiting queue is (see queue_heterogeneity).
  double sample(int prompt_tokens, double heterogeneity, util::Rng& rng) const;

  const LatencyParams& params() const { return params_; }

 private:
  LatencyParams params_;
};

/// Normalized dispersion of the waiting queue's durations and widths:
/// 0 for uniform queues (Homogeneous Short), ~1 for strongly mixed ones
/// (Heterogeneous Mix). Drives the complexity term of the latency model -
/// the paper attributes O4-Mini's latency spikes to "reasoning difficulty
/// driven by workload diversity" (Section 3.7.1).
double queue_heterogeneity(const std::vector<double>& durations,
                           const std::vector<double>& nodes);

}  // namespace reasched::llm
