#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/string_utils.hpp"

namespace reasched::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t digits = 0;
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) ++digits;
  }
  return digits * 2 >= s.size();
}
}  // namespace

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
      width[i] = std::max(width[i], r.cells[i].size());
    }
  }
  std::ostringstream os;
  auto rule = [&] {
    for (std::size_t i = 0; i < width.size(); ++i) {
      os << '+' << std::string(width[i] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& cells, bool align_numeric) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : header_[i];
      const std::size_t pad = width[i] - c.size();
      os << "| ";
      if (align_numeric && looks_numeric(c)) {
        os << std::string(pad, ' ') << c;
      } else {
        os << c << std::string(pad, ' ');
      }
      os << ' ';
    }
    os << "|\n";
  };
  rule();
  emit(header_, false);
  rule();
  for (const auto& r : rows_) {
    if (r.rule_before) rule();
    emit(r.cells, true);
  }
  rule();
  return os.str();
}

std::string TextTable::num(double v, int precision) {
  return format("%.*f", precision, v);
}

std::string TextTable::ratio(double v) { return format("%.3fx", v); }

std::string TextTable::pct(double v) { return format("%.1f%%", v * 100.0); }

std::string TextTable::na() { return "n/a"; }

}  // namespace reasched::util
