#include "util/cli.hpp"

#include "util/string_utils.hpp"

namespace reasched::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string body = arg.substr(2);
      const auto eq = body.find('=');
      std::string name, value;
      if (eq != std::string::npos) {
        name = body.substr(0, eq);
        value = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        name = body;
        value = argv[++i];
      } else {
        name = body;
        value = "true";
      }
      named_[name] = value;  // single-value getters: last occurrence wins
      ordered_.emplace_back(std::move(name), std::move(value));
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliArgs::has(const std::string& name) const { return named_.count(name) != 0; }

std::vector<std::string> CliArgs::get_all(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : ordered_) {
    if (key == name) out.push_back(value);
  }
  return out;
}

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  const auto it = named_.find(name);
  return it == named_.end() ? fallback : it->second;
}

long long CliArgs::get_int(const std::string& name, long long fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  return parse_int(it->second).value_or(fallback);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  return parse_double(it->second).value_or(fallback);
}

}  // namespace reasched::util
