#include "util/cli.hpp"

#include "util/string_utils.hpp"

namespace reasched::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string body = arg.substr(2);
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        named_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        named_[body] = argv[++i];
      } else {
        named_[body] = "true";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliArgs::has(const std::string& name) const { return named_.count(name) != 0; }

std::string CliArgs::get(const std::string& name, const std::string& fallback) const {
  const auto it = named_.find(name);
  return it == named_.end() ? fallback : it->second;
}

long long CliArgs::get_int(const std::string& name, long long fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  return parse_int(it->second).value_or(fallback);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = named_.find(name);
  if (it == named_.end()) return fallback;
  return parse_double(it->second).value_or(fallback);
}

}  // namespace reasched::util
