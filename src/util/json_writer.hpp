#pragma once

#include <string>
#include <vector>

namespace reasched::util {

/// Append-only JSON emitter for result files. Supports objects, arrays,
/// strings, numbers and booleans; guarantees syntactically valid output as
/// long as begin/end calls are balanced (checked with asserts in debug).
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(std::size_t v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Shorthand: key + value.
  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  void save(const std::string& path) const;

  static std::string escape(const std::string& s);

 private:
  void before_value();
  std::string out_;
  std::vector<bool> needs_comma_;  // stack; one entry per open container
  bool after_key_ = false;
};

}  // namespace reasched::util
