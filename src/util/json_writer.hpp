#pragma once

#include <string>
#include <vector>

namespace reasched::util {

/// Append-only JSON emitter for result files. Supports objects, arrays,
/// strings, numbers and booleans; guarantees syntactically valid output as
/// long as begin/end calls are balanced (checked with asserts in debug).
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  /// Round-trip-exact double (format_double_exact): use for state that must
  /// survive serialize -> parse bit-identically (service snapshots, decision
  /// traces). Plain value(double) stays %.10g - compact, human-oriented,
  /// lossy.
  JsonWriter& value_exact(double v);
  JsonWriter& value(long long v);
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(std::size_t v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Shorthand: key + value.
  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  /// Shorthand: key + round-trip-exact double.
  JsonWriter& kv_exact(const std::string& k, double v) {
    key(k);
    return value_exact(v);
  }

  const std::string& str() const { return out_; }
  void save(const std::string& path) const;

  static std::string escape(const std::string& s);

 private:
  void before_value();
  std::string out_;
  std::vector<bool> needs_comma_;  // stack; one entry per open container
  bool after_key_ = false;
};

/// Shortest decimal string that strtod parses back to exactly `v` (tries
/// %.15g, %.16g, %.17g; 17 significant digits always round-trip an IEEE-754
/// double). Finite inputs only - callers serializing simulation state never
/// hold NaN/Inf, and the function throws std::invalid_argument on them
/// rather than silently emitting invalid JSON.
std::string format_double_exact(double v);

}  // namespace reasched::util
