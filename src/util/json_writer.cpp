#include "util/json_writer.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace reasched::util {

JsonWriter::JsonWriter() { needs_comma_.push_back(false); }

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (needs_comma_.size() <= 1) throw std::logic_error("JsonWriter: unbalanced end_object");
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (needs_comma_.size() <= 1) throw std::logic_error("JsonWriter: unbalanced end_array");
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    out_ += format("%.10g", v);
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value_exact(double v) {
  before_value();
  out_ += format_double_exact(v);
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

void JsonWriter::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("JsonWriter::save: cannot open " + path);
  f << out_;
}

std::string format_double_exact(double v) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument("format_double_exact: non-finite value");
  }
  for (int precision = 15; precision <= 17; ++precision) {
    std::string s = format("%.*g", precision, v);
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  throw std::logic_error("format_double_exact: %.17g failed to round-trip (unreachable)");
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace reasched::util
