#pragma once

#include <string>

namespace reasched::util {

/// "3661.5" seconds -> "1h 1m 1.5s"; compact human formatting used by the
/// overhead benches (Figs. 5-6 report elapsed times up to hours).
std::string format_duration(double seconds);

/// Simulation timestamps as "[t=1554]" exactly as the paper's feedback lines.
std::string format_sim_time(double t);

}  // namespace reasched::util
