#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace reasched::util {

/// Whitespace-trimming / splitting / case helpers shared by the CSV reader
/// and the LLM action parser (which must tolerate loosely formatted text).
std::string trim(std::string_view s);
std::vector<std::string> split(std::string_view s, char delim);
std::vector<std::string> split_lines(std::string_view s);
std::string to_lower(std::string_view s);
bool starts_with_icase(std::string_view s, std::string_view prefix);
bool contains_icase(std::string_view haystack, std::string_view needle);

/// Strict integer / double parsing (whole-string), returning nullopt on any
/// trailing garbage - the action parser depends on this strictness.
std::optional<long long> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Join with separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace reasched::util
