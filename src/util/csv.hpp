#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace reasched::util {

/// Minimal RFC-4180-ish CSV support: quoted fields, embedded commas/quotes,
/// header row. Enough for trace files (Polaris logs) and result exports.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }

  /// Append a row; must match header width when a header is present.
  void add_row(std::vector<std::string> row);

  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Cell access by column name; throws std::out_of_range on unknown column.
  const std::string& cell(std::size_t row, std::string_view col) const;
  std::size_t col_index(std::string_view col) const;
  bool has_col(std::string_view col) const;

  std::string to_string() const;
  void save(const std::string& path) const;

  static CsvTable parse(std::string_view text);
  static CsvTable load(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::map<std::string, std::size_t, std::less<>> index_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a single field if needed.
std::string csv_escape(std::string_view field);

}  // namespace reasched::util
