#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace reasched::util {

/// std::mutex with thread-safety capability annotations. The standard type
/// carries none, so std::lock_guard acquisitions are invisible to Clang's
/// analysis; this wrapper (plus MutexLock/CondVar below) is what makes
/// GUARDED_BY provable. Same cost as std::mutex - the annotations are
/// attributes, not code.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over util::Mutex, the annotated std::lock_guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with util::Mutex. No predicate overload on
/// purpose: the analysis treats a predicate lambda as a separate function
/// holding no capabilities, so guarded reads inside it would be (correctly)
/// rejected. Write the standard while loop instead:
///
///     MutexLock lock(mu_);
///     while (!ready_) cv_.wait(mu_);   // ready_ GUARDED_BY(mu_)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller holds `mu`; it is released while blocked and held again on
  /// return (exactly std::condition_variable::wait semantics, which is why
  /// the annotation is REQUIRES rather than RELEASE+ACQUIRE).
  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // still held, as the capability annotation promises
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace reasched::util
