#pragma once

/// Clang thread-safety analysis attributes (the canonical mutex.h macro set
/// from the Clang docs). Under Clang with -Wthread-safety these make lock
/// discipline a compile-time property: the analysis proves every GUARDED_BY
/// member is only touched with its capability held and every REQUIRES
/// contract is met at each call site. Under GCC (the local toolchain) they
/// expand to nothing; CI runs the real check with clang -Werror=thread-safety
/// (CMake option REASCHED_THREAD_SAFETY).
///
/// Use through util::Mutex / util::MutexLock / util::CondVar (util/sync.hpp):
/// std::mutex itself carries no annotations, so locking it through
/// std::lock_guard is invisible to the analysis.

#if defined(__clang__) && (!defined(SWIG))
#define REASCHED_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define REASCHED_THREAD_ANNOTATION(x)  // no-op
#endif

/// A type that is a capability (e.g. a mutex wrapper). `x` names the
/// capability kind in diagnostics ("mutex", "role", ...).
#define CAPABILITY(x) REASCHED_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires a capability at construction and releases it
/// at destruction; the analysis tracks it like a scoped lock.
#define SCOPED_CAPABILITY REASCHED_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define GUARDED_BY(x) REASCHED_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define PT_GUARDED_BY(x) REASCHED_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability/capabilities held on entry (and still
/// held on exit) - callers must hold them; the body may assume them.
#define REQUIRES(...) REASCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define ACQUIRE(...) REASCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, released on return).
#define RELEASE(...) REASCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts to acquire; first argument is the success return value.
#define TRY_ACQUIRE(...) REASCHED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (guards against double-lock of a
/// non-reentrant mutex through self-calls).
#define EXCLUDES(...) REASCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) REASCHED_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: body not checked. Every use needs a comment saying why the
/// analysis cannot see the invariant (and ideally a runtime assertion).
#define NO_THREAD_SAFETY_ANALYSIS REASCHED_THREAD_ANNOTATION(no_thread_safety_analysis)
