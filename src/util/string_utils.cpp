#include "util/string_utils.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace reasched::util {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
char lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }
}  // namespace

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '\n') {
      std::string_view line = s.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      out.emplace_back(line);
      start = i + 1;
    }
  }
  if (!out.empty() && out.back().empty() && !s.empty() && s.back() == '\n') out.pop_back();
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = lower(c);
  return out;
}

bool starts_with_icase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (lower(s[i]) != lower(prefix[i])) return false;
  }
  return true;
}

bool contains_icase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (starts_with_icase(haystack.substr(i), needle)) return true;
  }
  return false;
}

std::optional<long long> parse_int(std::string_view s) {
  const std::string t = trim(s);
  if (t.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  if (errno != 0 || end != t.c_str() + t.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) {
  const std::string t = trim(s);
  if (t.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(t.c_str(), &end);
  if (errno != 0 || end != t.c_str() + t.size()) return std::nullopt;
  return v;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace reasched::util
