#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace reasched::util {

/// Tiny command-line parser for examples and benches.
/// Accepts "--name=value", "--name value" and bare "--flag". A flag given
/// multiple times keeps every value in order (`get_all`); the single-value
/// getters return the last occurrence.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Every value of a repeated flag, in command-line order (empty if absent).
  std::vector<std::string> get_all(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> named_;
  /// Every --name value pair in order, for get_all.
  std::vector<std::pair<std::string, std::string>> ordered_;
  std::vector<std::string> positional_;
};

}  // namespace reasched::util
