#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace reasched::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double sum(const std::vector<double>& xs) { return std::accumulate(xs.begin(), xs.end(), 0.0); }

double quantile_sorted(const std::vector<double>& sorted_xs, double q) {
  if (sorted_xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_xs[lo] * (1.0 - frac) + sorted_xs[hi] * frac;
}

double quantile(std::vector<double> xs, double q) {
  // total-order: plain doubles; equal values are interchangeable.
  std::sort(xs.begin(), xs.end());
  return quantile_sorted(xs, q);
}

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

BoxStats box_stats(std::vector<double> xs) {
  BoxStats b;
  b.n = xs.size();
  if (xs.empty()) return b;
  // total-order: plain doubles; equal values are interchangeable.
  std::sort(xs.begin(), xs.end());
  b.min = xs.front();
  b.max = xs.back();
  b.mean = mean(xs);
  b.q1 = quantile_sorted(xs, 0.25);
  b.median = quantile_sorted(xs, 0.5);
  b.q3 = quantile_sorted(xs, 0.75);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_lo = b.max;  // tightened below
  b.whisker_hi = b.min;
  for (const double x : xs) {
    if (x < lo_fence || x > hi_fence) {
      b.outliers.push_back(x);
    } else {
      b.whisker_lo = std::min(b.whisker_lo, x);
      b.whisker_hi = std::max(b.whisker_hi, x);
    }
  }
  if (b.outliers.size() == xs.size()) {  // degenerate: everything outlying
    b.whisker_lo = b.min;
    b.whisker_hi = b.max;
  }
  return b;
}

std::vector<std::size_t> histogram(const std::vector<double>& xs, double lo, double hi,
                                   std::size_t bins) {
  std::vector<std::size_t> h(bins, 0);
  if (bins == 0 || hi <= lo) return h;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++h[static_cast<std::size_t>(idx)];
  }
  return h;
}

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0, s2 = 0.0;
  for (const double x : xs) {
    s += x;
    s2 += x * x;
  }
  if (s2 == 0.0) return 1.0;  // all-zero: perfectly equal by convention
  return (s * s) / (static_cast<double>(xs.size()) * s2);
}

}  // namespace reasched::util
