#include "util/spec_grammar.hpp"

#include "util/string_utils.hpp"

namespace reasched::util {

namespace {

constexpr const char* kReservedValueChars = "%&=?|(),";

bool is_reserved_value_char(char c) {
  for (const char* p = kReservedValueChars; *p != '\0'; ++p) {
    if (*p == c) return true;
  }
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

bool valid_spec_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == ':' || c == '_' || c == '.' ||
         c == '-';
}

bool valid_spec_key_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

std::string percent_decode(std::string_view s, std::string_view context) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    const int hi = i + 1 < s.size() ? hex_digit(s[i + 1]) : -1;
    const int lo = i + 2 < s.size() ? hex_digit(s[i + 2]) : -1;
    if (hi < 0 || lo < 0) {
      throw SpecGrammarError("invalid percent-escape in '" + std::string(context) +
                             "' (expected %XX with two hex digits)");
    }
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

std::string percent_encode_value(std::string_view s) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (is_reserved_value_char(c)) {
      out += '%';
      out += hex[static_cast<unsigned char>(c) >> 4];
      out += hex[static_cast<unsigned char>(c) & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

ParsedStage parse_spec_stage(std::string_view s_in, std::string_view kind) {
  const std::string s = trim(s_in);
  const std::string k(kind);
  if (s.empty()) throw SpecGrammarError(k + " spec is empty");

  ParsedStage out;
  const auto q = s.find('?');
  out.name = s.substr(0, q);
  if (out.name.empty()) {
    throw SpecGrammarError(k + " spec '" + s + "' has no name before '?'");
  }
  for (const char c : out.name) {
    if (!valid_spec_name_char(c)) {
      throw SpecGrammarError(k + " name '" + out.name + "' contains invalid character '" +
                             std::string(1, c) + "' (allowed: a-z 0-9 : _ . -)");
    }
  }
  if (q == std::string::npos) return out;

  const std::string param_str = s.substr(q + 1);
  if (param_str.empty()) {
    throw SpecGrammarError(k + " spec '" + s + "' has '?' but no parameters");
  }
  for (const std::string& kv : split(param_str, '&')) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size()) {
      throw SpecGrammarError("parameter '" + kv + "' in spec '" + s +
                             "' is not of the form key=value");
    }
    const std::string key = kv.substr(0, eq);
    for (const char c : key) {
      if (!valid_spec_key_char(c)) {
        throw SpecGrammarError("parameter key '" + key + "' in spec '" + s +
                               "' contains invalid character '" + std::string(1, c) +
                               "' (allowed: a-z 0-9 _)");
      }
    }
    const std::string value = percent_decode(kv.substr(eq + 1), s);
    if (!out.params.emplace(key, value).second) {
      throw SpecGrammarError("duplicate parameter '" + key + "' in spec '" + s + "'");
    }
  }
  return out;
}

std::string spec_stage_to_string(const std::string& name,
                                 const std::map<std::string, std::string>& params) {
  if (params.empty()) return name;
  std::string out = name;
  char sep = '?';
  for (const auto& [key, value] : params) {  // std::map: sorted, canonical
    out += sep;
    out += key;
    out += '=';
    out += percent_encode_value(value);
    sep = '&';
  }
  return out;
}

std::vector<std::string> split_outside_parens(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (const char c : s) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == delim && depth == 0) {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

}  // namespace reasched::util
