#include "util/time_format.hpp"

#include <cmath>

#include "util/string_utils.hpp"

namespace reasched::util {

std::string format_duration(double seconds) {
  if (seconds < 0) {
    std::string out = "-";
    out += format_duration(-seconds);
    return out;
  }
  if (seconds < 60.0) return format("%.1fs", seconds);
  const auto total = static_cast<long long>(seconds);
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const double s = seconds - static_cast<double>(h * 3600 + m * 60);
  if (h > 0) return format("%lldh %lldm %.0fs", h, m, s);
  return format("%lldm %.1fs", m, s);
}

std::string format_sim_time(double t) {
  if (t == std::floor(t)) return format("[t=%.0f]", t);
  return format("[t=%.2f]", t);
}

}  // namespace reasched::util
