#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace reasched::util {

/// The spec-string grammar shared by the harness method axis
/// (`harness::MethodSpec`) and the workload scenario axis
/// (`workload::ScenarioSpec`): a registry name plus a `?key=value&...`
/// parameter bag per stage. Factoring the stage grammar here keeps the two
/// axes bit-compatible - percent-encoding, key validation, duplicate
/// detection and canonical serialization can never drift apart.
///
///   stage  := name [ '?' key '=' value ( '&' key '=' value )* ]
///   name   := [a-z0-9_.:-]+
///   key    := [a-z0-9_]+
///   value  := any characters; the reserved set  % & = ? | ( ) , and
///             whitespace travels percent-encoded (`%26` for '&', ...)
///
/// Values are stored decoded; `spec_stage_to_string` re-encodes exactly the
/// reserved set, so parse(to_string()) is the identity and a canonical spec
/// with ordinary values is byte-identical to its raw form.

/// Thrown by the shared helpers; each axis catches it and rethrows its own
/// user-facing error type (MethodSpecError / ScenarioSpecError) so call
/// sites only ever see the exception family of the layer they talked to.
class SpecGrammarError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// One declared parameter of a registered spec family, shared between
/// `--list-methods` and `--list-scenarios` output (documentation + default;
/// registries reject keys that are not declared).
struct SpecParamInfo {
  std::string key;
  std::string type;           ///< "int", "bool", "double", "range", "time", ...
  std::string default_value;  ///< rendered default, as the listings print it
  std::string doc;
};

bool valid_spec_name_char(char c);
bool valid_spec_key_char(char c);

/// Decode `%XX` escapes; `context` names the offending spec in errors.
std::string percent_decode(std::string_view s, std::string_view context);

/// Encode the grammar's reserved characters (see file comment) so a value
/// containing them survives the stage/pipeline/mix separators.
std::string percent_encode_value(std::string_view s);

/// One parsed stage: the shape both MethodSpec and ScenarioStage share.
struct ParsedStage {
  std::string name;
  std::map<std::string, std::string> params;
};

/// Parse `name[?key=value&...]`. `kind` prefixes every error message
/// ("method", "scenario", "transform") so the text names the axis the user
/// actually typed a spec for. Values are percent-decoded.
ParsedStage parse_spec_stage(std::string_view s, std::string_view kind);

/// Canonical compact form: `name` or `name?k=v&k=v`, keys in sorted order
/// (std::map), values percent-encoded. parse(to_string()) == identity.
std::string spec_stage_to_string(const std::string& name,
                                 const std::map<std::string, std::string>& params);

/// Split on `delim` at paren depth zero - the pipeline ('|'), mix-component
/// (',') and weight (':') separators must not fire inside `mix(...)`.
std::vector<std::string> split_outside_parens(std::string_view s, char delim);

}  // namespace reasched::util
