#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace reasched::util {

/// Minimal JSON document model + recursive-descent parser. Exists so the
/// HTTP LLM-client scaffold (llm/http_client) can decode real provider
/// responses (Anthropic messages / OpenAI chat completions) without an
/// external dependency. Supports the full JSON grammar except \uXXXX
/// surrogate pairs outside the BMP (escapes decode to UTF-8).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object field access; throws on non-objects / missing keys.
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  /// Array element access; throws on non-arrays / out of range.
  const JsonValue& at(std::size_t index) const;
  std::size_t size() const;
  /// True when an array/object has no elements; throws on scalars (same
  /// contract as size(), and what readability-container-size-empty expects).
  bool empty() const;

  /// Lookup with fallback: returns `fallback` when the path is absent or of
  /// the wrong type (never throws). Convenient for optional provider fields.
  std::string string_or(const std::string& key, const std::string& fallback) const;
  double number_or(const std::string& key, double fallback) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
/// Throws std::runtime_error with position information on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace reasched::util
