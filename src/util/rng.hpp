#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace reasched::util {

/// Deterministic pseudo-random source used by every stochastic component in
/// the library (workload generation, simulated-annealing moves, LLM decision
/// noise, latency sampling).
///
/// Seeds are derived hierarchically with `derive()` so that each experiment
/// cell (scenario x scheduler x size x repetition) owns an independent,
/// reproducible stream regardless of thread scheduling in the harness.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Gamma(shape k, scale theta); the paper's Heterogeneous Mix walltimes
  /// use shape=1.5, scale=300.
  double gamma(double shape, double scale);

  /// Exponential with given mean (= 1/lambda); used for Poisson interarrivals.
  double exponential(double mean);

  /// Normal(mu, sigma).
  double normal(double mu, double sigma);

  /// Log-normal parameterized by the *underlying* normal (mu, sigma).
  double lognormal(double mu, double sigma);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Raw 64-bit draw, exposed for hashing/testing.
  std::uint64_t next_u64();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 step; the standard seed-spreading function.
std::uint64_t splitmix64(std::uint64_t x);

/// FNV-1a hash of a string, for deriving stream names.
std::uint64_t hash_str(std::string_view s);

/// Derive a child seed from (parent seed, label, index). Stable across
/// platforms; used to give every experiment cell an independent stream.
std::uint64_t derive_seed(std::uint64_t parent, std::string_view label, std::uint64_t index = 0);

}  // namespace reasched::util
