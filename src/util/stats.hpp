#pragma once

#include <cstddef>
#include <vector>

namespace reasched::util {

/// Descriptive statistics over a sample; all functions tolerate empty input
/// by returning 0 (documented per function) so report code stays branch-free.
double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  ///< population variance; 0 if n < 2
double stddev(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);  ///< 0 if empty
double max_of(const std::vector<double>& xs);  ///< 0 if empty
double sum(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0,1]. Returns 0 on empty input.
double quantile(std::vector<double> xs, double q);
double median(std::vector<double> xs);

/// quantile() over input that is already sorted ascending - O(1), no copy.
/// Callers that need several quantiles of one sample (box_stats, report
/// percentile tables) sort once and use this instead of paying a copy and
/// re-sort per quantile.
double quantile_sorted(const std::vector<double>& sorted_xs, double q);

/// Five-number summary + mean, the exact statistics a box plot encodes.
/// Whiskers use the Tukey 1.5*IQR convention; values beyond them are
/// reported as outliers (paper Fig. 7 reads these off directly).
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
  double whisker_lo = 0, whisker_hi = 0;
  std::vector<double> outliers;
  std::size_t n = 0;
};
BoxStats box_stats(std::vector<double> xs);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// edge bins. Used by the latency-distribution benches (Figs. 5-6).
std::vector<std::size_t> histogram(const std::vector<double>& xs, double lo, double hi,
                                   std::size_t bins);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in [1/n, 1].
/// By convention returns 1.0 when all values are zero (perfectly equal) and
/// 0.0 on empty input.
double jain_index(const std::vector<double>& xs);

}  // namespace reasched::util
