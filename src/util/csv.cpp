#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace reasched::util {

namespace {

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {
  for (std::size_t i = 0; i < header_.size(); ++i) index_[header_[i]] = i;
}

void CsvTable::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("CsvTable::add_row: width mismatch");
  }
  rows_.push_back(std::move(row));
}

const std::string& CsvTable::cell(std::size_t row, std::string_view col) const {
  return rows_.at(row).at(col_index(col));
}

std::size_t CsvTable::col_index(std::string_view col) const {
  const auto it = index_.find(col);
  if (it == index_.end()) throw std::out_of_range("CsvTable: unknown column " + std::string(col));
  return it->second;
}

bool CsvTable::has_col(std::string_view col) const { return index_.find(col) != index_.end(); }

std::string csv_escape(std::string_view field) {
  const bool needs_quotes = field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvTable::to_string() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void CsvTable::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("CsvTable::save: cannot open " + path);
  f << to_string();
}

CsvTable CsvTable::parse(std::string_view text) {
  CsvTable t;
  std::size_t start = 0;
  bool first = true;
  // Note: does not support embedded newlines inside quoted fields; trace
  // files never contain them.
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      std::string_view line = text.substr(start, i - start);
      start = i + 1;
      if (line.empty() || (line.size() == 1 && line[0] == '\r')) continue;
      auto fields = parse_csv_line(line);
      if (first) {
        t = CsvTable(std::move(fields));
        first = false;
      } else {
        t.add_row(std::move(fields));
      }
    }
  }
  return t;
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("CsvTable::load: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str());
}

}  // namespace reasched::util
