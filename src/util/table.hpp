#pragma once

#include <string>
#include <vector>

namespace reasched::util {

/// ASCII table renderer used by every figure bench to print the paper-style
/// rows/series. Numeric cells are right-aligned, text left-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next row.
  void add_rule();

  std::string render() const;

  /// Convenience formatting for numeric cells.
  static std::string num(double v, int precision = 3);
  static std::string ratio(double v);           ///< "1.234x"
  static std::string pct(double v);             ///< "12.3%"
  static std::string na();                      ///< "n/a" (e.g. 0/0 normalization)

 private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace reasched::util
