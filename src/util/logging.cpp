#include "util/logging.hpp"

#include <cstdio>

namespace reasched::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  MutexLock lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  MutexLock lock(mu_);
  return level_;
}

void Logger::log(LogLevel level, const std::string& msg) {
  MutexLock lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

void Logger::log_limited(LogLevel level, const std::string& key, const std::string& msg,
                         std::size_t limit) {
  MutexLock lock(mu_);
  const std::size_t seen = ++limited_counts_[key];
  if (seen > limit) return;  // suppressed; still counted above
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  if (seen == limit) {
    std::fprintf(stderr, "[%s] %s (further identical warnings suppressed)\n", level_name(level),
                 msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
  }
}

std::size_t Logger::limited_call_count(const std::string& key) const {
  MutexLock lock(mu_);
  const auto it = limited_counts_.find(key);
  return it == limited_counts_.end() ? 0 : it->second;
}

void Logger::reset_limits() {
  MutexLock lock(mu_);
  limited_counts_.clear();
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace reasched::util
