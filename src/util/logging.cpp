#include "util/logging.hpp"

#include <cstdio>

namespace reasched::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  MutexLock lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  MutexLock lock(mu_);
  return level_;
}

void Logger::log(LogLevel level, const std::string& msg) {
  MutexLock lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace reasched::util
