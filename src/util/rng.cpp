#include "util/rng.hpp"

#include <cassert>
#include <numeric>
#include <stdexcept>

namespace reasched::util {

Rng::Rng(std::uint64_t seed) : engine_(splitmix64(seed ^ 0x9e3779b97f4a7c15ULL)) {}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("uniform_real: lo > hi");
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // Decision-identical to std::bernoulli_distribution on this toolchain, at
  // a fraction of the cost (the swap-sequence solvers draw millions of these
  // per plan). libstdc++ evaluates generate_canonical<double, 53> as one raw
  // 64-bit draw scaled by 2^-64 in long double, then rounds to double;
  // x * 0x1p-64 computes the same value because the 64-bit x is exact in
  // long double and scaling by a power of two commutes with the rounding.
  return static_cast<double>(engine_()) * 0x1p-64 < p;
}

double Rng::gamma(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) throw std::invalid_argument("gamma: non-positive parameter");
  std::gamma_distribution<double> d(shape, scale);
  return d(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("exponential: non-positive mean");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::normal(double mu, double sigma) {
  std::normal_distribution<double> d(mu, sigma);
  return d(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("weighted_index: no positive weight");
  double r = uniform_real(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: r consumed by rounding
}

std::uint64_t Rng::next_u64() { return engine_(); }

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_str(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t derive_seed(std::uint64_t parent, std::string_view label, std::uint64_t index) {
  return splitmix64(parent ^ splitmix64(hash_str(label) + 0x9e3779b97f4a7c15ULL * (index + 1)));
}

}  // namespace reasched::util
