#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace reasched::util {

/// Fixed-size worker pool used by the experiment harness to run independent
/// experiment cells concurrently. Determinism is preserved because every
/// cell draws from its own derived RNG stream (see util::derive_seed), so the
/// merge order - not the execution order - defines results.
class ThreadPool {
 public:
  /// n_threads == 0 selects hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future reports the value or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  /// Written only by the constructor, joined by the destructor; worker
  /// threads never touch it, so it needs no capability.
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
};

}  // namespace reasched::util
