#include "util/json_parser.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace reasched::util {

bool JsonValue::as_bool() const {
  if (!is_bool()) throw std::runtime_error("JsonValue: not a bool");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  if (!is_number()) throw std::runtime_error("JsonValue: not a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw std::runtime_error("JsonValue: not a string");
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) throw std::runtime_error("JsonValue: not an array");
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) throw std::runtime_error("JsonValue: not an object");
  return std::get<Object>(value_);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("JsonValue: missing key '" + key + "'");
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return is_object() && as_object().count(key) != 0;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& arr = as_array();
  if (index >= arr.size()) throw std::runtime_error("JsonValue: index out of range");
  return arr[index];
}

std::size_t JsonValue::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  throw std::runtime_error("JsonValue: size() on scalar");
}

bool JsonValue::empty() const { return size() == 0; }

std::string JsonValue::string_or(const std::string& key, const std::string& fallback) const {
  if (!contains(key)) return fallback;
  const auto& v = at(key);
  return v.is_string() ? v.as_string() : fallback;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  if (!contains(key)) return fallback;
  const auto& v = at(key);
  return v.is_number() ? v.as_number() : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error(format("JSON parse error at offset %zu: %s", pos_, why.c_str()));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      take();
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      take();
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs unsupported).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    const auto v = parse_double(token);
    if (!v) fail("malformed number '" + token + "'");
    return JsonValue(*v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace reasched::util
