#pragma once

#include <sstream>
#include <string>

#include "util/sync.hpp"

namespace reasched::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide, thread-safe logger. Kept intentionally tiny: levels, a
/// global threshold, and line-buffered stderr output. The simulator logs at
/// debug level; benches default to info.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  void log(LogLevel level, const std::string& msg);

 private:
  Logger() = default;
  mutable Mutex mu_;
  LogLevel level_ GUARDED_BY(mu_) = LogLevel::kWarn;
};

const char* level_name(LogLevel level);

#define REASCHED_LOG(lvl_, expr_)                                                     \
  do {                                                                                \
    if (static_cast<int>(lvl_) >=                                                     \
        static_cast<int>(::reasched::util::Logger::instance().level())) {             \
      std::ostringstream reasched_log_os_;                                            \
      reasched_log_os_ << expr_;                                                      \
      ::reasched::util::Logger::instance().log(lvl_, reasched_log_os_.str());         \
    }                                                                                 \
  } while (0)

#define LOG_DEBUG(expr) REASCHED_LOG(::reasched::util::LogLevel::kDebug, expr)
#define LOG_INFO(expr) REASCHED_LOG(::reasched::util::LogLevel::kInfo, expr)
#define LOG_WARN(expr) REASCHED_LOG(::reasched::util::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) REASCHED_LOG(::reasched::util::LogLevel::kError, expr)

}  // namespace reasched::util
