#pragma once

#include <cstddef>
#include <map>
#include <sstream>
#include <string>

#include "util/sync.hpp"

namespace reasched::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide, thread-safe logger. Kept intentionally tiny: levels, a
/// global threshold, and line-buffered stderr output. The simulator logs at
/// debug level; benches default to info.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  void log(LogLevel level, const std::string& msg);

  /// Rate-limited variant for repeating failures (a run-log sink whose disk
  /// filled, a socket that keeps refusing writes): messages sharing `key`
  /// are emitted at most `limit` times; the emission that hits the limit is
  /// tagged so the reader knows suppression started. The cap is count-based,
  /// not time-based, so logging stays deterministic. Suppressed calls are
  /// still counted - suppressed_count() reports how many were swallowed.
  void log_limited(LogLevel level, const std::string& key, const std::string& msg,
                   std::size_t limit = 1);

  /// Total log_limited calls seen for `key` (emitted + suppressed).
  std::size_t limited_call_count(const std::string& key) const;

  /// Forget all log_limited bookkeeping (tests).
  void reset_limits();

 private:
  Logger() = default;
  mutable Mutex mu_;
  LogLevel level_ GUARDED_BY(mu_) = LogLevel::kWarn;
  std::map<std::string, std::size_t> limited_counts_ GUARDED_BY(mu_);
};

const char* level_name(LogLevel level);

#define REASCHED_LOG(lvl_, expr_)                                                     \
  do {                                                                                \
    if (static_cast<int>(lvl_) >=                                                     \
        static_cast<int>(::reasched::util::Logger::instance().level())) {             \
      std::ostringstream reasched_log_os_;                                            \
      reasched_log_os_ << expr_;                                                      \
      ::reasched::util::Logger::instance().log(lvl_, reasched_log_os_.str());         \
    }                                                                                 \
  } while (0)

#define LOG_DEBUG(expr) REASCHED_LOG(::reasched::util::LogLevel::kDebug, expr)
#define LOG_INFO(expr) REASCHED_LOG(::reasched::util::LogLevel::kInfo, expr)
#define LOG_WARN(expr) REASCHED_LOG(::reasched::util::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) REASCHED_LOG(::reasched::util::LogLevel::kError, expr)

}  // namespace reasched::util
