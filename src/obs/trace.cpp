#include "obs/trace.hpp"

#include <atomic>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/wallclock.hpp"
#include "util/json_writer.hpp"

namespace reasched::obs {

namespace {

/// Small dense per-thread id for trace rows: threads are numbered in first-
/// use order, so exported traces group spans by worker instead of printing
/// opaque pthread handles.
int this_thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder g;
  return g;
}

void TraceRecorder::record(SpanRecord rec) {
  util::MutexLock lock(mu_);
  ring_[next_] = std::move(rec);
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<SpanRecord> TraceRecorder::snapshot() const {
  util::MutexLock lock(mu_);
  std::vector<SpanRecord> out;
  const std::size_t held = total_ < capacity_ ? total_ : capacity_;
  out.reserve(held);
  // Oldest slot: with a full ring the next overwrite target is the oldest.
  const std::size_t start = total_ < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < held; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

TraceStats TraceRecorder::stats() const {
  util::MutexLock lock(mu_);
  TraceStats s;
  s.recorded = total_ < capacity_ ? total_ : capacity_;
  s.dropped = total_ - s.recorded;
  s.capacity = capacity_;
  return s;
}

void TraceRecorder::clear() {
  util::MutexLock lock(mu_);
  for (SpanRecord& r : ring_) r = SpanRecord{};
  next_ = 0;
  total_ = 0;
}

std::string TraceRecorder::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = snapshot();
  util::JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const SpanRecord& s : spans) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("cat", s.cat);
    w.kv("ph", "X");
    w.kv("ts", s.start_us);
    w.kv("dur", s.dur_us);
    w.kv("pid", 1);
    w.kv("tid", s.tid);
    w.key("args");
    w.begin_object();
    if (s.sim_time >= 0.0) w.kv("sim_time", s.sim_time);
    for (const auto& [k, v] : s.args) w.kv(k, v);
    for (const auto& [k, v] : s.sargs) w.kv(k, v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

void TraceRecorder::save_chrome_trace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("TraceRecorder::save_chrome_trace: cannot open " + path);
  f << chrome_trace_json() << '\n';
}

Span Span::begin(TraceRecorder& recorder, std::string name, std::string cat) {
  Span s;
  s.recorder_ = &recorder;
  s.record_.name = std::move(name);
  s.record_.cat = std::move(cat);
  s.record_.tid = this_thread_id();
  s.record_.start_us = monotonic_us();
  return s;
}

Span::Span(Span&& other) noexcept
    : recorder_(other.recorder_), record_(std::move(other.record_)) {
  other.recorder_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    recorder_ = other.recorder_;
    record_ = std::move(other.record_);
    other.recorder_ = nullptr;
  }
  return *this;
}

Span::~Span() { end(); }

void Span::arg(std::string key, double value) {
  if (recorder_ != nullptr) record_.args.emplace_back(std::move(key), value);
}

void Span::sarg(std::string key, std::string value) {
  if (recorder_ != nullptr) record_.sargs.emplace_back(std::move(key), std::move(value));
}

void Span::set_sim_time(double t) {
  if (recorder_ != nullptr) record_.sim_time = t;
}

void Span::end() {
  if (recorder_ == nullptr) return;
  record_.dur_us = monotonic_us() - record_.start_us;
  TraceRecorder* recorder = recorder_;
  recorder_ = nullptr;
  recorder->record(std::move(record_));
}

}  // namespace reasched::obs
