#pragma once

namespace reasched::obs {

/// Monotonic wall-clock reading in microseconds since an arbitrary epoch.
///
/// This is the ONLY sanctioned wall-clock entry point in src/: the
/// determinism lint allowlists exactly this TU (src/obs/wallclock.cpp), so
/// every clock read in the library is forced through here and stays inside
/// the observability layer. Span durations and trace timestamps come from
/// this function; nothing downstream may feed the value into a scheduling
/// decision - telemetry observes the run, it never steers it.
double monotonic_us();

}  // namespace reasched::obs
