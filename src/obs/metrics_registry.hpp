#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace reasched::obs {

// ---------------------------------------------------------------------------
// Global observability switch.
//
// Instrumentation sites guard on obs::enabled() (one relaxed atomic load)
// before touching the registry or the tracer, so a disabled run pays a
// predictable branch and nothing else. With REASCHED_OBS_OFF (CMake
// -DREASCHED_OBS=OFF) the switch is a compile-time false and the optimizer
// deletes every instrumentation site outright - the three configurations
// (on / off / compiled out) must be behaviorally indistinguishable in
// decision output, which the obs golden test pins.
// ---------------------------------------------------------------------------
#ifdef REASCHED_OBS_OFF
inline bool enabled() { return false; }
inline void set_enabled(bool) {}
#else
namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
inline void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }
#endif

/// Monotonically increasing event count. Relaxed atomics: cells are
/// independent, cross-cell ordering is reconstructed by the snapshot reader,
/// not promised by the writer.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depth, sim clock, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time copy of one histogram's cells. `counts` has
/// bounds.size() + 1 entries; the final bucket is the overflow (> last
/// bound). count/sum are sampled after the buckets, so under concurrent
/// writers they can run slightly ahead of the bucket total - never behind.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Fixed-bucket histogram: ascending upper bounds set at registration, one
/// overflow bucket past the last bound. observe() is two relaxed fetch_adds
/// plus a branchless-ish linear scan over a handful of bounds - no locking,
/// no allocation after construction.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  const std::vector<double>& bounds() const { return bounds_; }
  HistogramSnapshot snapshot() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name-sorted point-in-time copy of every registered cell.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Registry of named telemetry cells. Registration (counter/gauge/histogram
/// lookup-or-create) takes the registry mutex; the returned reference is
/// stable for the registry's lifetime (node-based map + unique_ptr), so hot
/// paths resolve names once, cache the pointer, and afterwards touch only
/// the lock-free cell.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Process-wide registry used by the built-in instrumentation. Tests
  /// wanting isolation construct their own instance.
  static MetricRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Re-registration with different bounds is a programming error (throws
  /// std::invalid_argument): two sites disagreeing on the bucket layout
  /// would silently merge incompatible data.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  RegistrySnapshot snapshot() const;

  /// Zero every cell, keeping registrations (and cached pointers) valid.
  void reset();

 private:
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
};

}  // namespace reasched::obs
