#pragma once

#include <cstddef>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace reasched::obs {

/// Destination for streamed run-log rows. The front-end (RunLog) owns
/// ordering and error policy; sinks only format and write - the same split
/// gacspp draws between COutput (the streaming front-end) and IDatabase
/// (the pluggable backend), per ROADMAP item 5. All methods return false on
/// IO failure instead of throwing: a dying sink must not take the run down.
class RunLogSink {
 public:
  virtual ~RunLogSink() = default;

  /// Called once, before any append, with the column names.
  virtual bool open(const std::vector<std::string>& columns) = 0;
  /// One row; `values` matches the open() columns positionally.
  virtual bool append(const std::vector<std::string>& values) = 0;
  virtual bool flush() = 0;
};

/// Columnar CSV file: header row from open(), csv-escaped cells.
class CsvFileSink : public RunLogSink {
 public:
  explicit CsvFileSink(std::string path);
  bool open(const std::vector<std::string>& columns) override;
  bool append(const std::vector<std::string>& values) override;
  bool flush() override;

 private:
  std::string path_;
  std::ofstream out_;
};

/// JSON-lines file: one object per row, keys from the open() columns.
/// Values are emitted as JSON strings - the run log is a transport, the
/// reader applies types (CSV consumers already make the same call).
class JsonlFileSink : public RunLogSink {
 public:
  explicit JsonlFileSink(std::string path);
  bool open(const std::vector<std::string>& columns) override;
  bool append(const std::vector<std::string>& values) override;
  bool flush() override;

 private:
  std::string path_;
  std::vector<std::string> columns_;
  std::ofstream out_;
};

/// File sink chosen by extension: ".jsonl" -> JsonlFileSink, else CSV.
std::unique_ptr<RunLogSink> make_file_sink(const std::string& path);

/// Append-only streaming run log: rows go to the sink as they are produced
/// (sweep cells, completed service jobs), so nothing accumulates a full
/// result grid in memory. Thread-safe - run_sweep_streaming's on_cell hook
/// fires from worker threads. A failing sink degrades, never escalates:
/// rows are counted as dropped and one rate-limited warning reaches stderr
/// (util::Logger::log_limited); the run itself is unaffected.
class RunLog {
 public:
  RunLog(std::unique_ptr<RunLogSink> sink, std::vector<std::string> columns);
  RunLog(const RunLog&) = delete;
  RunLog& operator=(const RunLog&) = delete;
  ~RunLog();

  /// Write one row. Returns false (and counts a drop) on sink failure or a
  /// column-count mismatch.
  bool append(const std::vector<std::string>& values);
  void flush();

  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t rows() const;
  std::size_t dropped() const;

 private:
  std::vector<std::string> columns_;
  mutable util::Mutex mu_;
  std::unique_ptr<RunLogSink> sink_ GUARDED_BY(mu_);
  bool opened_ GUARDED_BY(mu_) = false;
  bool failed_ GUARDED_BY(mu_) = false;
  std::size_t rows_ GUARDED_BY(mu_) = 0;
  std::size_t dropped_ GUARDED_BY(mu_) = 0;
};

}  // namespace reasched::obs
