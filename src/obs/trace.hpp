#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace reasched::obs {

/// Sampling period for hot-path instrumentation: the engine records one
/// span (and flushes counter deltas) every this-many steps/decisions.
/// A span costs two wall-clock reads plus a mutex-guarded copy with a
/// handful of string allocations - roughly a microsecond - against a
/// ~500ns-per-step simulation budget, so recording every step would mean
/// 2-3x overhead; at 1 in 1024 the measured overhead on the sustained-load
/// bench stays under the 2% gate with margin while a 10^4-job run still
/// yields tens of spans per category. Must be a power of two (the sample
/// test is a mask, never a division, on the hot path).
inline constexpr std::uint64_t kSampleEvery = 1024;

/// One completed span: a named wall-clock interval with numeric/string
/// arguments. sim_time < 0 means "not stamped" (spans outside a simulation).
struct SpanRecord {
  std::string name;
  std::string cat;
  double start_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  double sim_time = -1.0;
  std::vector<std::pair<std::string, double>> args;
  std::vector<std::pair<std::string, std::string>> sargs;
};

/// Span-count bookkeeping for a recorder: ring occupancy plus how many
/// spans were evicted to stay within the bound.
struct TraceStats {
  std::size_t recorded = 0;  ///< spans currently held in the ring
  std::size_t dropped = 0;   ///< spans evicted (total - recorded)
  std::size_t capacity = 0;
};

/// Bounded ring of completed spans. record() is a mutex-guarded copy into a
/// preallocated slot; the ring keeps the newest `capacity` spans and counts
/// evictions instead of growing - a week-long service run cannot exhaust
/// memory through tracing. Export is Chrome trace-event JSON ("X" complete
/// events), loadable in Perfetto or chrome://tracing.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 65536);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Process-wide recorder used by the built-in instrumentation.
  static TraceRecorder& global();

  void record(SpanRecord rec);

  /// Oldest-first copy of the ring contents.
  std::vector<SpanRecord> snapshot() const;
  TraceStats stats() const;
  void clear();

  std::string chrome_trace_json() const;
  void save_chrome_trace(const std::string& path) const;

 private:
  const std::size_t capacity_;
  mutable util::Mutex mu_;
  std::vector<SpanRecord> ring_ GUARDED_BY(mu_);
  std::size_t next_ GUARDED_BY(mu_) = 0;   ///< slot the next record lands in
  std::size_t total_ GUARDED_BY(mu_) = 0;  ///< spans ever recorded
};

/// RAII span. A default-constructed Span is inert (the disabled-telemetry
/// fast path moves one around for free); Span::begin() stamps the start
/// time and the destructor - or an explicit end() - stamps the duration and
/// hands the record to the recorder. Move-only.
class Span {
 public:
  Span() = default;
  static Span begin(TraceRecorder& recorder, std::string name, std::string cat);

  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  bool active() const { return recorder_ != nullptr; }
  void arg(std::string key, double value);
  void sarg(std::string key, std::string value);
  void set_sim_time(double t);
  void end();

 private:
  TraceRecorder* recorder_ = nullptr;
  SpanRecord record_;
};

}  // namespace reasched::obs
