#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace reasched::obs {

#ifndef REASCHED_OBS_OFF
namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail
#endif

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("obs::Histogram: bucket bounds must be ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  std::size_t bucket = bounds_.size();  // overflow unless a bound admits v
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts.push_back(counts_[i].load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry g;
  return g;
}

Counter& MetricRegistry::counter(const std::string& name) {
  util::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  util::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  util::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else if (slot->bounds() != bounds) {
    throw std::invalid_argument(
        util::format("obs::MetricRegistry: histogram '%s' re-registered with different bounds",
                     name.c_str()));
  }
  return *slot;
}

RegistrySnapshot MetricRegistry::snapshot() const {
  util::MutexLock lock(mu_);
  RegistrySnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) s.counters.emplace_back(name, cell->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) s.gauges.emplace_back(name, cell->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) s.histograms.emplace_back(name, cell->snapshot());
  return s;
}

void MetricRegistry::reset() {
  util::MutexLock lock(mu_);
  for (const auto& entry : counters_) entry.second->reset();
  for (const auto& entry : gauges_) entry.second->reset();
  for (const auto& entry : histograms_) entry.second->reset();
}

}  // namespace reasched::obs
