#include "obs/runlog.hpp"

#include <utility>

#include "util/csv.hpp"
#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace reasched::obs {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

CsvFileSink::CsvFileSink(std::string path) : path_(std::move(path)) {}

bool CsvFileSink::open(const std::vector<std::string>& columns) {
  out_.open(path_);
  if (!out_) return false;
  return append(columns);  // header row, same escaping rules as data rows
}

bool CsvFileSink::append(const std::vector<std::string>& values) {
  if (!out_) return false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << util::csv_escape(values[i]);
  }
  out_ << '\n';
  return static_cast<bool>(out_);
}

bool CsvFileSink::flush() {
  if (!out_) return false;
  out_.flush();
  return static_cast<bool>(out_);
}

JsonlFileSink::JsonlFileSink(std::string path) : path_(std::move(path)) {}

bool JsonlFileSink::open(const std::vector<std::string>& columns) {
  columns_ = columns;
  out_.open(path_);
  return static_cast<bool>(out_);
}

bool JsonlFileSink::append(const std::vector<std::string>& values) {
  if (!out_ || values.size() != columns_.size()) return false;
  util::JsonWriter w;
  w.begin_object();
  for (std::size_t i = 0; i < values.size(); ++i) w.kv(columns_[i], values[i]);
  w.end_object();
  out_ << w.str() << '\n';
  return static_cast<bool>(out_);
}

bool JsonlFileSink::flush() {
  if (!out_) return false;
  out_.flush();
  return static_cast<bool>(out_);
}

std::unique_ptr<RunLogSink> make_file_sink(const std::string& path) {
  if (ends_with(path, ".jsonl")) return std::make_unique<JsonlFileSink>(path);
  return std::make_unique<CsvFileSink>(path);
}

RunLog::RunLog(std::unique_ptr<RunLogSink> sink, std::vector<std::string> columns)
    : columns_(std::move(columns)), sink_(std::move(sink)) {}

RunLog::~RunLog() { flush(); }

bool RunLog::append(const std::vector<std::string>& values) {
  util::MutexLock lock(mu_);
  if (!failed_ && !opened_) {
    opened_ = true;
    if (sink_ == nullptr || !sink_->open(columns_)) failed_ = true;
  }
  if (values.size() != columns_.size()) {
    ++dropped_;
    util::Logger::instance().log_limited(util::LogLevel::kWarn, "obs.runlog.columns",
                                         "run log row dropped: column count mismatch");
    return false;
  }
  if (failed_ || !sink_->append(values)) {
    failed_ = true;
    ++dropped_;
    util::Logger::instance().log_limited(
        util::LogLevel::kWarn, "obs.runlog",
        "run log sink failed; further rows are dropped (run output is unaffected)");
    return false;
  }
  ++rows_;
  return true;
}

void RunLog::flush() {
  util::MutexLock lock(mu_);
  if (!failed_ && opened_ && sink_ != nullptr) sink_->flush();
}

std::size_t RunLog::rows() const {
  util::MutexLock lock(mu_);
  return rows_;
}

std::size_t RunLog::dropped() const {
  util::MutexLock lock(mu_);
  return dropped_;
}

}  // namespace reasched::obs
