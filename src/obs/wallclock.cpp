#include "obs/wallclock.hpp"

#include <chrono>

namespace reasched::obs {

double monotonic_us() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::micro>(now).count();
}

}  // namespace reasched::obs
