#include "harness/method_spec.hpp"

#include <algorithm>
#include <set>

#include "harness/method_registration.hpp"
#include "util/string_utils.hpp"

namespace reasched::harness {

namespace {

std::string canonical_name(Method m) {
  switch (m) {
    case Method::kFcfs: return "fcfs";
    case Method::kSjf: return "sjf";
    case Method::kOrTools: return "opt:portfolio";
    case Method::kClaude37: return "agent:claude37";
    case Method::kO4Mini: return "agent:o4mini";
    case Method::kEasyBackfill: return "easy";
    case Method::kFastLocal: return "agent:fastlocal";
  }
  throw std::invalid_argument("MethodSpec: unknown Method enumerator");
}

}  // namespace

MethodSpec::MethodSpec(Method m) : name(canonical_name(m)) {}

MethodSpec::MethodSpec(const std::string& spec) : MethodSpec(parse(spec)) {}

MethodSpec::MethodSpec(const char* spec) : MethodSpec(parse(spec)) {}

MethodSpec::MethodSpec(std::string name_in, std::map<std::string, std::string> params_in)
    : name(std::move(name_in)), params(std::move(params_in)) {}

MethodSpec MethodSpec::parse(std::string_view spec) {
  // The stage grammar (name/key charsets, duplicate detection,
  // percent-decoding of values) is shared with ScenarioSpec; only the error
  // type is this layer's own.
  try {
    auto parsed = util::parse_spec_stage(spec, "method");
    return MethodSpec(std::move(parsed.name), std::move(parsed.params));
  } catch (const util::SpecGrammarError& e) {
    throw MethodSpecError(e.what());
  }
}

std::string MethodSpec::to_string() const { return util::spec_stage_to_string(name, params); }

const std::string* MethodSpec::find_param(const std::string& key) const {
  const auto it = params.find(key);
  return it == params.end() ? nullptr : &it->second;
}

long long ParamReader::get_int(const std::string& key, long long fallback, long long min_value,
                               long long max_value) const {
  const std::string* v = spec_->find_param(key);
  if (v == nullptr) return fallback;
  const auto parsed = util::parse_int(*v);
  if (!parsed) {
    throw MethodSpecError("method '" + spec_->name + "': parameter '" + key +
                          "' expects an integer, got '" + *v + "'");
  }
  if (*parsed < min_value || *parsed > max_value) {
    throw MethodSpecError("method '" + spec_->name + "': parameter '" + key +
                          "' must be in [" + std::to_string(min_value) + ", " +
                          std::to_string(max_value) + "], got '" + *v + "'");
  }
  return *parsed;
}

bool ParamReader::get_bool(const std::string& key, bool fallback) const {
  const std::string* v = spec_->find_param(key);
  if (v == nullptr) return fallback;
  const std::string lower = util::to_lower(*v);
  if (lower == "true" || lower == "1" || lower == "on") return true;
  if (lower == "false" || lower == "0" || lower == "off") return false;
  throw MethodSpecError("method '" + spec_->name + "': parameter '" + key +
                        "' expects a boolean (true/false/1/0/on/off), got '" + *v + "'");
}

sim::PlanningWindow ParamReader::get_window(const std::string& key,
                                            const sim::PlanningWindow& auto_value) const {
  const std::string* v = spec_->find_param(key);
  if (v == nullptr) return {};  // absent: unbounded, the paper's semantics
  if (*v == "auto") return auto_value;

  const auto parts = util::split(*v, ':');
  std::string order_token = "arrival";
  std::string k_token;
  if (parts.size() == 1) {
    k_token = parts[0];
  } else if (parts.size() == 2) {
    order_token = parts[0];
    k_token = parts[1];
  } else {
    throw MethodSpecError("method '" + spec_->name + "': parameter '" + key +
                          "' expects K, order:K or auto (order: arrival|sjf), got '" + *v + "'");
  }

  sim::PlanningWindow window;
  if (order_token == "arrival") {
    window.order = sim::PlanningWindow::Order::kArrival;
  } else if (order_token == "sjf") {
    window.order = sim::PlanningWindow::Order::kShortestFirst;
  } else {
    throw MethodSpecError("method '" + spec_->name + "': parameter '" + key +
                          "': unknown window order '" + order_token + "' (use arrival or sjf)");
  }
  const auto k = util::parse_int(k_token);
  if (!k || *k < 0) {
    throw MethodSpecError("method '" + spec_->name + "': parameter '" + key +
                          "': window size must be a non-negative integer, got '" + *v + "'");
  }
  window.top_k = static_cast<std::size_t>(*k);
  return window;
}

std::string window_to_string(const sim::PlanningWindow& window) {
  const char* order =
      window.order == sim::PlanningWindow::Order::kShortestFirst ? "sjf" : "arrival";
  return std::string(order) + ":" + std::to_string(window.top_k);
}

MethodRegistry& MethodRegistry::instance() {
  // Magic-static init is thread-safe; each layer's factories register their
  // builders here exactly once, before the first lookup returns. (Two
  // statics rather than a factory lambda: the registry holds an atomic
  // freeze flag and is immovable.)
  static MethodRegistry registry;
  static const bool initialized = [] {
    sched::register_methods(registry);
    opt::register_methods(registry);
    core::register_methods(registry);
    return true;
  }();
  (void)initialized;
  return registry;
}

void MethodRegistry::add(MethodInfo info) {
  if (frozen()) {
    throw std::logic_error(
        "MethodRegistry: cannot add method '" + info.name +
        "' after the registry froze (first lookup already happened; register at startup, "
        "before any spec is resolved)");
  }
  if (info.name.empty()) throw std::logic_error("MethodRegistry::add: empty method name");
  if (!info.build) {
    throw std::logic_error("MethodRegistry::add: method '" + info.name + "' has no builder");
  }
  const std::string name = info.name;
  if (!methods_.emplace(name, std::move(info)).second) {
    throw std::logic_error("MethodRegistry::add: duplicate method name '" + name + "'");
  }
}

const MethodInfo* MethodRegistry::find(const std::string& name) const {
  freeze();
  const auto it = methods_.find(name);
  return it == methods_.end() ? nullptr : &it->second;
}

const MethodInfo& MethodRegistry::at(const std::string& name) const {
  const MethodInfo* info = find(name);
  if (info == nullptr) {
    throw MethodSpecError("unknown method '" + name + "'; registered methods: " +
                          util::join(names(), ", "));
  }
  return *info;
}

std::vector<std::string> MethodRegistry::names() const {
  freeze();
  std::vector<std::string> out;
  out.reserve(methods_.size());
  for (const auto& [name, info] : methods_) out.push_back(name);
  return out;  // std::map iteration: already sorted
}

std::unique_ptr<sim::Scheduler> MethodRegistry::build(const MethodSpec& spec,
                                                      std::uint64_t seed) const {
  const MethodInfo& info = at(spec.name);
  for (const auto& [key, value] : spec.params) {
    const bool declared = std::any_of(info.params.begin(), info.params.end(),
                                      [&](const ParamInfo& p) { return p.key == key; });
    if (!declared) {
      std::vector<std::string> accepted;
      for (const auto& p : info.params) accepted.push_back(p.key);
      throw MethodSpecError("method '" + spec.name + "' does not accept parameter '" + key +
                            "'; accepted parameters: " +
                            (accepted.empty() ? "(none)" : util::join(accepted, ", ")));
    }
  }
  return info.build(spec, seed);
}

std::string MethodRegistry::describe() const {
  freeze();
  std::string out;
  for (const auto& [name, info] : methods_) {
    out += util::format("%-18s %-14s %s\n", name.c_str(), info.display_label.c_str(),
                        info.doc.c_str());
    for (const auto& p : info.params) {
      out += util::format("    %-18s %-7s default=%-12s %s\n", p.key.c_str(), p.type.c_str(),
                          p.default_value.c_str(), p.doc.c_str());
    }
  }
  return out;
}

std::vector<MethodSpec> dedup_methods(const std::vector<MethodSpec>& methods) {
  std::vector<MethodSpec> unique;
  std::set<MethodSpec> seen;
  for (const auto& method : methods) {
    if (seen.insert(method).second) unique.push_back(method);
  }
  return unique;
}

std::string method_label(const MethodSpec& spec) {
  // Reuse the canonical serializer for the parameter suffix, so labels can
  // never drift from spec strings (labels feed cell_seed derivation).
  return MethodRegistry::instance().at(spec.name).display_label +
         spec.to_string().substr(spec.name.size());
}

}  // namespace reasched::harness
