#include "harness/sweep.hpp"

#include <set>
#include <tuple>

#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace reasched::harness {

bool operator<(const Cell& a, const Cell& b) {
  return std::tie(a.scenario, a.n_jobs, a.method, a.repetition) <
         std::tie(b.scenario, b.n_jobs, b.method, b.repetition);
}

bool operator<(const GroupKey& a, const GroupKey& b) {
  return std::tie(a.scenario, a.n_jobs, a.method) < std::tie(b.scenario, b.n_jobs, b.method);
}

std::vector<sim::Job> cell_jobs(const SweepConfig& config,
                                const workload::ScenarioSpec& scenario, std::size_t n_jobs,
                                std::size_t repetition) {
  // Seeds derive from the scenario *label*, which for the seven canonical
  // paper specs is the legacy enum display name - so every recorded result
  // survives the enum -> spec rekey bit-identically.
  const std::uint64_t workload_seed = util::derive_seed(
      util::derive_seed(config.base_seed, workload::scenario_label(scenario), n_jobs), "rep",
      repetition);
  if (config.workload_source) {
    return config.workload_source(scenario, n_jobs, workload_seed);
  }
  workload::GenerateOptions options;
  options.arrival_mode = config.arrival_mode;
  options.cluster = config.engine.cluster;
  return workload::generate_scenario(scenario, n_jobs, workload_seed, options);
}

std::uint64_t cell_seed(const SweepConfig& config, const Cell& cell) {
  return util::derive_seed(
      util::derive_seed(config.base_seed, method_name(cell.method), cell.n_jobs),
      workload::scenario_label(cell.scenario), cell.repetition + 1);
}

sim::EngineConfig cell_engine(const SweepConfig& config,
                              const workload::ScenarioSpec& scenario) {
  sim::EngineConfig engine = config.engine;
  engine.cluster = workload::effective_cluster(scenario, engine.cluster);
  return engine;
}

namespace {

/// Shared grid driver: enumerate cells, generate each distinct workload
/// once, run every cell on the pool, and hand each finished outcome to
/// `consume` under a lock. Both sweep entry points are thin reducers over
/// this, so cell enumeration, workload sharing and seeding can never drift
/// between the retaining and the streaming path.
template <typename Consume>
void sweep_cells(const SweepConfig& config, Consume&& consume) {
  // Workloads depend only on (scenario, n_jobs, repetition) - every method
  // in a cell sees the identical job list. Derive each list once and share
  // it across the method axis instead of regenerating per method.
  struct WorkloadKey {
    workload::ScenarioSpec scenario;
    std::size_t n_jobs;
    std::size_t repetition;
    bool operator<(const WorkloadKey& o) const {
      return std::tie(scenario, n_jobs, repetition) <
             std::tie(o.scenario, o.n_jobs, o.repetition);
    }
  };
  // Dedup both spec axes by value: the same spec listed twice (e.g. the
  // enum shim and its string form assembled from different sources) is one
  // axis value, not two identical cells fighting over one result key.
  const std::vector<MethodSpec> methods = dedup_methods(config.methods);
  const std::vector<workload::ScenarioSpec> scenarios =
      workload::dedup_scenarios(config.scenarios);

  std::map<WorkloadKey, std::size_t> workload_index;
  std::vector<WorkloadKey> workload_keys;
  std::vector<Cell> cells;
  // Cluster overrides (`|cluster?nodes=...`) are a per-scenario property;
  // resolve each scenario's engine config once, not per cell.
  std::vector<sim::EngineConfig> engines;
  std::vector<std::size_t> cell_engine_index;
  for (const auto& scenario : scenarios) {
    engines.push_back(cell_engine(config, scenario));
    for (const auto n : config.job_counts) {
      for (const auto& method : methods) {
        for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
          cells.push_back(Cell{scenario, n, method, rep});
          cell_engine_index.push_back(engines.size() - 1);
          const WorkloadKey key{scenario, n, rep};
          if (workload_index.emplace(key, workload_keys.size()).second) {
            workload_keys.push_back(key);
          }
        }
      }
    }
  }

  util::ThreadPool pool(config.threads);
  std::vector<std::vector<sim::Job>> workloads(workload_keys.size());
  pool.parallel_for(workload_keys.size(), [&](std::size_t i) {
    const WorkloadKey& key = workload_keys[i];
    workloads[i] = cell_jobs(config, key.scenario, key.n_jobs, key.repetition);
  });

  // Serializes the `consume` sink: cells complete on arbitrary pool threads
  // but the caller's accumulator is single-writer. util::Mutex (not
  // std::mutex) so -Werror=thread-safety sees the acquisition.
  util::Mutex mu;
  pool.parallel_for(cells.size(), [&](std::size_t i) {
    const Cell& cell = cells[i];
    const auto& jobs =
        workloads[workload_index.at(WorkloadKey{cell.scenario, cell.n_jobs, cell.repetition})];
    RunOutcome outcome = run_method(jobs, cell.method, cell_seed(config, cell),
                                    engines[cell_engine_index[i]]);
    util::MutexLock lock(mu);
    consume(cell, std::move(outcome));
  });
}

}  // namespace

std::map<Cell, RunOutcome> run_sweep(const SweepConfig& config) {
  std::map<Cell, RunOutcome> results;
  sweep_cells(config, [&](const Cell& cell, RunOutcome&& outcome) {
    results.emplace(cell, std::move(outcome));
  });
  return results;
}

StreamedSweep run_sweep_streaming(
    const SweepConfig& config,
    const std::function<void(const Cell&, const RunOutcome&)>& on_cell) {
  StreamedSweep out;
  sweep_cells(config, [&](const Cell& cell, RunOutcome&& outcome) {
    if (on_cell) on_cell(cell, outcome);
    // Keep only the metric reduction; the ScheduleResult (per-job records,
    // decision traces) is dropped here, bounding sweep memory by in-flight
    // cells instead of grid size.
    out.cells.emplace(cell, outcome.metrics);
  });
  // Aggregate in deterministic (key) order so float accumulation does not
  // depend on thread scheduling.
  for (const auto& [cell, metric_set] : out.cells) {
    out.groups[GroupKey{cell.scenario, cell.n_jobs, cell.method}].add(metric_set);
  }
  return out;
}

std::map<GroupKey, metrics::MetricAggregate> aggregate_sweep(
    const std::map<Cell, RunOutcome>& results) {
  std::map<GroupKey, metrics::MetricAggregate> groups;
  for (const auto& [cell, outcome] : results) {
    groups[GroupKey{cell.scenario, cell.n_jobs, cell.method}].add(outcome.metrics);
  }
  return groups;
}

}  // namespace reasched::harness
