#include "harness/export.hpp"

#include <fstream>
#include <stdexcept>

#include "util/json_writer.hpp"
#include "util/string_utils.hpp"

namespace reasched::harness {

util::CsvTable schedule_to_csv(const sim::ScheduleResult& result) {
  util::CsvTable t({"job_id", "user", "group", "nodes", "memory_gb", "submit", "start",
                    "end", "wait", "turnaround"});
  for (const auto& c : result.completed) {
    t.add_row({std::to_string(c.job.id), std::to_string(c.job.user),
               std::to_string(c.job.group), std::to_string(c.job.nodes),
               util::format("%.3f", c.job.memory_gb), util::format("%.3f", c.job.submit_time),
               util::format("%.3f", c.start_time), util::format("%.3f", c.end_time),
               util::format("%.3f", c.wait_time()), util::format("%.3f", c.turnaround_time())});
  }
  return t;
}

util::CsvTable decisions_to_csv(const sim::ScheduleResult& result) {
  util::CsvTable t({"time", "action", "job_id", "accepted", "thought_summary", "feedback"});
  for (const auto& d : result.decisions) {
    std::string thought = d.thought;
    const auto newline = thought.find('\n');
    if (newline != std::string::npos) thought.resize(newline);
    t.add_row({util::format("%.3f", d.time), sim::to_string(d.action.type),
               std::to_string(d.action.job_id), d.accepted ? "1" : "0", thought,
               d.feedback});
  }
  return t;
}

util::CsvTable overhead_to_csv(const OverheadSummary& overhead,
                               const sim::ScheduleResult& result) {
  (void)result;
  util::CsvTable t({"call_index", "latency_s"});
  for (std::size_t i = 0; i < overhead.latencies.size(); ++i) {
    t.add_row({std::to_string(i), util::format("%.4f", overhead.latencies[i])});
  }
  return t;
}

namespace {

std::string run_to_json_impl(const RunOutcome& outcome, const std::string& method_name,
                             const MethodSpec* spec,
                             const workload::ScenarioSpec* scenario = nullptr) {
  util::JsonWriter w;
  w.begin_object();
  w.kv("method", method_name);
  if (spec != nullptr) w.kv("method_spec", spec->to_string());
  if (scenario != nullptr) {
    w.kv("scenario", workload::scenario_label(*scenario));
    w.kv("scenario_spec", scenario->to_string());
  }

  w.key("metrics").begin_object();
  for (const auto metric : metrics::all_metrics()) {
    w.kv(metrics::to_string(metric), outcome.metrics.get(metric));
  }
  w.kv("energy_kwh", outcome.metrics.energy_kwh);
  w.end_object();

  w.key("counters")
      .begin_object()
      .kv("decisions", outcome.schedule.n_decisions)
      .kv("invalid_actions", outcome.schedule.n_invalid_actions)
      .kv("forced_delays", outcome.schedule.n_forced_delays)
      .kv("backfills", outcome.schedule.n_backfills)
      .kv("final_time", outcome.schedule.final_time)
      .end_object();

  w.key("schedule").begin_array();
  for (const auto& c : outcome.schedule.completed) {
    w.begin_object()
        .kv("job", c.job.id)
        .kv("user", c.job.user)
        .kv("nodes", c.job.nodes)
        .kv("memory_gb", c.job.memory_gb)
        .kv("submit", c.job.submit_time)
        .kv("start", c.start_time)
        .kv("end", c.end_time)
        .end_object();
  }
  w.end_array();

  if (outcome.overhead) {
    const auto& o = *outcome.overhead;
    w.key("overhead")
        .begin_object()
        .kv("calls", o.n_calls)
        .kv("successful", o.n_successful)
        .kv("total_elapsed_s", o.total_elapsed_s)
        .kv("prompt_tokens", o.prompt_tokens)
        .kv("completion_tokens", o.completion_tokens)
        .key("latencies_s")
        .begin_array();
    for (const double l : o.latencies) w.value(l);
    w.end_array().end_object();
  } else {
    w.key("overhead").null();
  }
  w.end_object();
  return w.str();
}

}  // namespace

std::string run_to_json(const RunOutcome& outcome, const std::string& method_name) {
  // A name that parses as a spec of a registered method is a spec however
  // it arrived (literal, CLI string, config file) - export it losslessly.
  // Registry display labels ("FCFS", "Claude 3.7?...") never parse as
  // registered specs (uppercase/spaces), so labels stay plain labels.
  try {
    const MethodSpec spec = MethodSpec::parse(method_name);
    if (MethodRegistry::instance().find(spec.name) != nullptr) {
      return run_to_json(outcome, spec);
    }
  } catch (const MethodSpecError&) {
    // Not spec grammar - a plain label.
  }
  return run_to_json_impl(outcome, method_name, nullptr);
}

std::string run_to_json(const RunOutcome& outcome, const MethodSpec& method) {
  return run_to_json_impl(outcome, method_name(method), &method);
}

std::string run_to_json(const RunOutcome& outcome, const char* method_name_or_spec) {
  return run_to_json(outcome, std::string(method_name_or_spec));
}

std::string run_to_json(const RunOutcome& outcome, const MethodSpec& method,
                        const workload::ScenarioSpec& scenario) {
  return run_to_json_impl(outcome, method_name(method), &method, &scenario);
}

void save_run_json(const RunOutcome& outcome, const std::string& method_name,
                   const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_run_json: cannot open " + path);
  f << run_to_json(outcome, method_name);
}

std::vector<std::string> cell_runlog_columns() {
  std::vector<std::string> cols{"scenario", "jobs", "method", "rep"};
  for (const auto metric : metrics::all_metrics()) cols.push_back(metrics::to_string(metric));
  return cols;
}

std::vector<std::string> cell_runlog_row(const Cell& cell, const RunOutcome& outcome) {
  std::vector<std::string> row{cell.scenario.to_string(), std::to_string(cell.n_jobs),
                               cell.method.to_string(), std::to_string(cell.repetition)};
  for (const auto metric : metrics::all_metrics()) {
    row.push_back(util::format_double_exact(outcome.metrics.get(metric)));
  }
  return row;
}

}  // namespace reasched::harness
