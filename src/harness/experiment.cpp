#include "harness/experiment.hpp"

#include "core/react_agent.hpp"

namespace reasched::harness {

RunOutcome run_method(const std::vector<sim::Job>& jobs, const MethodSpec& method,
                      std::uint64_t seed, const sim::EngineConfig& engine_config) {
  const auto scheduler = make_scheduler(method, seed);
  sim::Engine engine(engine_config);

  RunOutcome outcome;
  outcome.schedule = engine.run(jobs, *scheduler);
  outcome.metrics = metrics::compute_metrics(outcome.schedule, engine_config.cluster);

  if (const auto* agent = dynamic_cast<const core::ReActAgent*>(scheduler.get())) {
    OverheadSummary o;
    const llm::Transcript& t = agent->transcript();
    o.n_calls = t.n_calls();
    o.n_successful = t.n_successful();
    o.total_elapsed_s = t.total_elapsed_successful();
    o.latencies = t.successful_latencies();
    o.prompt_tokens = t.total_prompt_tokens();
    o.completion_tokens = t.total_completion_tokens();
    outcome.overhead = std::move(o);
  }
  return outcome;
}

}  // namespace reasched::harness
