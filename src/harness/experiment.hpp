#pragma once

#include <optional>
#include <vector>

#include "harness/methods.hpp"
#include "llm/transcript.hpp"
#include "metrics/metrics.hpp"
#include "sim/engine.hpp"

namespace reasched::harness {

/// Overhead accounting captured from LLM-backed runs (empty for baselines):
/// exactly the quantities of paper Figures 5-6.
struct OverheadSummary {
  std::size_t n_calls = 0;             ///< all LLM calls issued
  std::size_t n_successful = 0;        ///< accepted StartJob/BackfillJob calls
  double total_elapsed_s = 0.0;        ///< sum of successful-call latencies
  std::vector<double> latencies;       ///< per successful call
  long long prompt_tokens = 0;
  long long completion_tokens = 0;
};

/// One simulated run of one method over one job list.
struct RunOutcome {
  metrics::MetricSet metrics;
  sim::ScheduleResult schedule;
  std::optional<OverheadSummary> overhead;  ///< present for LLM methods
};

/// Run `method` over `jobs` with the given seed/engine config. The engine
/// config's cluster must match the one the jobs were generated for. Accepts
/// any spec (enum values and string literals convert implicitly):
/// `run_method(jobs, "agent:claude37?window=arrival:32", seed)`.
RunOutcome run_method(const std::vector<sim::Job>& jobs, const MethodSpec& method,
                      std::uint64_t seed, const sim::EngineConfig& engine_config = {});

}  // namespace reasched::harness
