#include "harness/method_registration.hpp"

#include <limits>

#include "core/factory.hpp"
#include "harness/method_spec.hpp"

namespace reasched::core {

namespace {

/// Trace-scale-safe window for `window=auto`: the first 32 queued jobs in
/// arrival order (the head is always observable). Keeps prompt tokens,
/// reasoning tokens and per-decision scoring flat as trace queues deepen,
/// while preserving the arrival-ordered queue view the prompt reasons over.
/// The registered *default* stays unbounded (top_k = 0) so the canonical
/// paper panel remains bit-identical to the enum era.
sim::PlanningWindow trace_default_window() {
  sim::PlanningWindow w;
  w.top_k = 32;
  w.order = sim::PlanningWindow::Order::kArrival;
  return w;
}

AgentConfig agent_config_from(const harness::MethodSpec& spec) {
  const harness::ParamReader params(spec);
  AgentConfig config;
  config.scratchpad_enabled = params.get_bool("scratchpad", config.scratchpad_enabled);
  config.scratchpad_token_budget =
      static_cast<int>(params.get_int("scratchpad_budget", config.scratchpad_token_budget, 0,
                                      std::numeric_limits<int>::max()));
  config.objectives_in_prompt = params.get_bool("objectives", config.objectives_in_prompt);
  config.window = params.get_window("window", trace_default_window());
  return config;
}

std::vector<harness::ParamInfo> agent_params() {
  const AgentConfig defaults;
  return {{"window", "window", harness::window_to_string(sim::PlanningWindow{}),
           "Planning window K|order:K|auto (orders: arrival, sjf); 0 = unbounded paper "
           "semantics, auto = arrival:32, the trace-scale default."},
          {"scratchpad", "bool", defaults.scratchpad_enabled ? "true" : "false",
           "Persistent scratchpad memory across timesteps (paper Section 2.2)."},
          {"scratchpad_budget", "int", std::to_string(defaults.scratchpad_token_budget),
           "Token budget before older scratchpad entries collapse to a summary."},
          {"objectives", "bool", defaults.objectives_in_prompt ? "true" : "false",
           "Include the multiobjective instruction block in the prompt."}};
}

}  // namespace

void register_methods(harness::MethodRegistry& registry) {
  struct AgentEntry {
    const char* name;
    const char* label;
    const char* doc;
    llm::ModelProfile (*profile)();
  };
  const AgentEntry agents[] = {
      {"agent:claude37", "Claude 3.7",
       "ReAct agent, Claude 3.7 Sonnet profile (paper Section 3.3).", llm::claude37_profile},
      {"agent:o4mini", "O4-Mini", "ReAct agent, O4-Mini profile (paper Section 3.3).",
       llm::o4mini_profile},
      {"agent:fastlocal", "Fast-Local",
       "ReAct agent, hypothetical on-prem low-latency profile (paper Section 6).",
       llm::fast_local_profile},
  };
  for (const auto& agent : agents) {
    registry.add({.name = agent.name,
                  .display_label = agent.label,
                  .doc = agent.doc,
                  .is_llm = true,
                  .params = agent_params(),
                  .build = [profile = agent.profile](const harness::MethodSpec& spec,
                                                     std::uint64_t seed) {
                    return make_agent(profile(), seed, agent_config_from(spec));
                  }});
  }
}

}  // namespace reasched::core
