#include "harness/methods.hpp"

#include <stdexcept>

#include "core/factory.hpp"
#include "opt/optimizing_scheduler.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "sched/sjf.hpp"

namespace reasched::harness {

const std::vector<Method>& paper_methods() {
  static const std::vector<Method> v = {Method::kFcfs, Method::kSjf, Method::kOrTools,
                                        Method::kClaude37, Method::kO4Mini};
  return v;
}

std::string method_name(Method m) {
  switch (m) {
    case Method::kFcfs: return "FCFS";
    case Method::kSjf: return "SJF";
    case Method::kOrTools: return "OR-Tools*";
    case Method::kClaude37: return "Claude 3.7";
    case Method::kO4Mini: return "O4-Mini";
    case Method::kEasyBackfill: return "EASY-Backfill";
    case Method::kFastLocal: return "Fast-Local";
  }
  return "?";
}

bool is_llm_method(Method m) {
  return m == Method::kClaude37 || m == Method::kO4Mini || m == Method::kFastLocal;
}

std::unique_ptr<sim::Scheduler> make_scheduler(Method m, std::uint64_t seed) {
  switch (m) {
    case Method::kFcfs: return std::make_unique<sched::FcfsScheduler>();
    case Method::kSjf: return std::make_unique<sched::SjfScheduler>();
    case Method::kEasyBackfill: return std::make_unique<sched::EasyBackfillScheduler>();
    case Method::kOrTools: {
      opt::OptimizingSchedulerConfig config;
      config.seed = seed;
      return std::make_unique<opt::OptimizingScheduler>(config);
    }
    case Method::kClaude37: return core::make_claude37_agent(seed);
    case Method::kO4Mini: return core::make_o4mini_agent(seed);
    case Method::kFastLocal: return core::make_fast_local_agent(seed);
  }
  throw std::invalid_argument("make_scheduler: unknown method");
}

}  // namespace reasched::harness
