#include "harness/methods.hpp"

namespace reasched::harness {

const std::vector<MethodSpec>& paper_methods() {
  static const std::vector<MethodSpec> v = {Method::kFcfs, Method::kSjf, Method::kOrTools,
                                            Method::kClaude37, Method::kO4Mini};
  return v;
}

std::string method_name(const MethodSpec& spec) { return method_label(spec); }

bool is_llm_method(const MethodSpec& spec) {
  return MethodRegistry::instance().at(spec.name).is_llm;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const MethodSpec& spec, std::uint64_t seed) {
  return MethodRegistry::instance().build(spec, seed);
}

}  // namespace reasched::harness
