#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace reasched::harness {

/// The scheduling methods compared in the paper's figures, plus the
/// extensions this reproduction adds (EASY backfilling, on-prem profile).
enum class Method {
  kFcfs,
  kSjf,
  kOrTools,   ///< optimization baseline (OR-Tools substitute, src/opt)
  kClaude37,  ///< ReAct agent, Claude 3.7 profile
  kO4Mini,    ///< ReAct agent, O4-Mini profile
  kEasyBackfill,
  kFastLocal,
};

/// The five methods of Figures 3/4/7/8, in presentation order.
const std::vector<Method>& paper_methods();

std::string method_name(Method m);
bool is_llm_method(Method m);

/// Instantiate a fresh scheduler for one run. `seed` feeds every stochastic
/// component (SA restarts, decision noise, latency sampling).
std::unique_ptr<sim::Scheduler> make_scheduler(Method m, std::uint64_t seed);

}  // namespace reasched::harness
