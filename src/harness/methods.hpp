#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harness/method_spec.hpp"
#include "sim/scheduler.hpp"

namespace reasched::harness {

/// The method layer's public surface, now spec-keyed: every function takes a
/// `MethodSpec`, and the legacy `Method` enum (declared in method_spec.hpp)
/// converts implicitly to its canonical spec, so enum call sites keep
/// working unchanged while string specs unlock parameterized variants
/// (`opt:portfolio?budget=2000&window=sjf:64`) everywhere a method goes.

/// The five methods of Figures 3/4/7/8, in presentation order, as their
/// canonical (parameter-free) specs.
const std::vector<MethodSpec>& paper_methods();

/// Presentation label (`FCFS`, `OR-Tools*`, `Claude 3.7?window=arrival:32`).
/// Identical to the pre-registry labels for every canonical spec, which
/// keeps `cell_seed` derivations - and therefore all recorded results -
/// bit-identical across the redesign.
std::string method_name(const MethodSpec& spec);

/// Does the method drive an LLM client (overhead accounting applies)?
bool is_llm_method(const MethodSpec& spec);

/// Instantiate a fresh scheduler for one run via the registry. `seed` feeds
/// every stochastic component (SA restarts, decision noise, latency
/// sampling). Throws MethodSpecError for unknown names or bad parameters.
std::unique_ptr<sim::Scheduler> make_scheduler(const MethodSpec& spec, std::uint64_t seed);

}  // namespace reasched::harness
