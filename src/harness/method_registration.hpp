#pragma once

namespace reasched::harness {
class MethodRegistry;
}

/// Built-in method registration, one TU per implementing layer
/// (method_registration_{sched,opt,core}.cpp). The registration glue lives
/// in harness - not in sched/opt/core - because it is the one place that
/// must see both the registry (a harness type) and the concrete scheduler
/// classes; per the layering contract (layer_lint.py), the implementing
/// layers themselves may not include upward into harness. The functions
/// keep their per-layer namespaces: each registers exactly the methods its
/// layer implements.

namespace reasched::sched {
/// `fcfs`, `sjf`, `easy` - the configuration-free queue-policy baselines.
void register_methods(harness::MethodRegistry& registry);
}  // namespace reasched::sched

namespace reasched::opt {
/// `opt:portfolio` - the OR-Tools stand-in with budget/window parameters.
void register_methods(harness::MethodRegistry& registry);
}  // namespace reasched::opt

namespace reasched::core {
/// `agent:claude37|o4mini|fastlocal` - the ReAct LLM agents.
void register_methods(harness::MethodRegistry& registry);
}  // namespace reasched::core
