#include "harness/method_registration.hpp"

#include "harness/method_spec.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "sched/sjf.hpp"

namespace reasched::sched {

void register_methods(harness::MethodRegistry& registry) {
  registry.add({.name = "fcfs",
                .display_label = "FCFS",
                .doc = "First-come-first-served baseline (paper Section 3.4).",
                .is_llm = false,
                .params = {},
                .build = [](const harness::MethodSpec&, std::uint64_t) {
                  return std::make_unique<FcfsScheduler>();
                }});
  registry.add({.name = "sjf",
                .display_label = "SJF",
                .doc = "Shortest-job-first by walltime estimate (paper Section 3.4).",
                .is_llm = false,
                .params = {},
                .build = [](const harness::MethodSpec&, std::uint64_t) {
                  return std::make_unique<SjfScheduler>();
                }});
  registry.add({.name = "easy",
                .display_label = "EASY-Backfill",
                .doc = "EASY backfilling extension: FCFS head reservation + shadow-safe "
                       "backfill.",
                .is_llm = false,
                .params = {},
                .build = [](const harness::MethodSpec&, std::uint64_t) {
                  return std::make_unique<EasyBackfillScheduler>();
                }});
}

}  // namespace reasched::sched
