#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/planning_window.hpp"
#include "sim/scheduler.hpp"
#include "util/spec_grammar.hpp"

namespace reasched::harness {

/// Compatibility shim over the string-keyed method registry below: the
/// closed enum the harness exposed before specs existed. Each enumerator
/// maps to its canonical `MethodSpec` (see `MethodSpec(Method)`), so enum
/// call sites keep compiling and keep producing bit-identical runs, but new
/// scheduler variants never require touching this list - they are just new
/// registry entries and spec strings.
enum class Method {
  kFcfs,
  kSjf,
  kOrTools,   ///< optimization baseline (OR-Tools substitute, src/opt)
  kClaude37,  ///< ReAct agent, Claude 3.7 profile
  kO4Mini,    ///< ReAct agent, O4-Mini profile
  kEasyBackfill,
  kFastLocal,
};

/// Thrown for every user-input error in the spec layer: spec-string grammar
/// violations, unknown method names, unknown or ill-typed parameters. The
/// message always names the offending spec/key and what would be accepted.
class MethodSpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A scheduler variant as data: a canonical registry name plus a string
/// parameter bag, round-trippable through a compact spec string
///
///   spec   := name [ '?' key '=' value ( '&' key '=' value )* ]
///   name   := [a-z0-9_.:-]+        e.g. "fcfs", "opt:portfolio"
///   key    := [a-z0-9_]+           e.g. "budget", "window"
///
/// The stage grammar (including percent-encoding of reserved characters in
/// values) is shared with `workload::ScenarioSpec` via util/spec_grammar.
///
/// e.g. `fcfs`, `opt:portfolio?budget=2000&window=sjf:64`,
/// `agent:claude37?window=arrival:32&scratchpad=false`. Parameters are typed
/// and validated when the registry builds the scheduler (unknown keys and
/// ill-typed values are rejected with actionable errors), not at parse time,
/// so specs can be constructed for methods registered later. Ordering and
/// equality are value semantics over (name, params) - a `MethodSpec` is a
/// grid-axis key everywhere the harness used to key by `Method`.
struct MethodSpec {
  std::string name;
  std::map<std::string, std::string> params;

  MethodSpec() = default;
  /// Enum shim: the canonical, parameter-free spec of a paper-panel method.
  MethodSpec(Method m);  // NOLINT(google-explicit-constructor)
  /// Parsing constructors so spec literals drop in wherever a method is
  /// expected (`config.methods = {"fcfs", "opt:portfolio?window=sjf:64"}`).
  /// Throw MethodSpecError on grammar violations.
  MethodSpec(const std::string& spec);  // NOLINT(google-explicit-constructor)
  MethodSpec(const char* spec);         // NOLINT(google-explicit-constructor)
  MethodSpec(std::string name_in, std::map<std::string, std::string> params_in);

  /// Parse a spec string; throws MethodSpecError with the offending token.
  static MethodSpec parse(std::string_view spec);

  /// Canonical compact form: `name` or `name?k=v&k=v` with keys in sorted
  /// order. parse(to_string()) == *this for every valid spec.
  std::string to_string() const;

  /// Value of `key`, or nullptr when absent.
  const std::string* find_param(const std::string& key) const;

  friend bool operator==(const MethodSpec& a, const MethodSpec& b) {
    return a.name == b.name && a.params == b.params;
  }
  friend bool operator!=(const MethodSpec& a, const MethodSpec& b) { return !(a == b); }
  friend bool operator<(const MethodSpec& a, const MethodSpec& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.params < b.params;
  }
};

/// Typed access to a spec's parameter bag, used by registered builders.
/// Every getter throws MethodSpecError naming the method, the key and the
/// offending value when a present parameter fails to parse. Absent keys
/// yield `fallback` for get_int/get_bool; get_window differs: an absent key
/// is always the unbounded paper-semantics window, and its argument is only
/// the `auto` expansion (see below).
class ParamReader {
 public:
  explicit ParamReader(const MethodSpec& spec) : spec_(&spec) {}

  long long get_int(const std::string& key, long long fallback, long long min_value = 0,
                    long long max_value = std::numeric_limits<long long>::max()) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Planning-window grammar: `K` | `arrival:K` | `sjf:K` | `auto`, where
  /// K = 0 means unbounded (the paper's all-jobs semantics) and `auto`
  /// expands to `auto_value`, the method's documented trace-scale default.
  /// An *absent* key returns the unbounded window, NOT `auto_value` - the
  /// canonical parameter-free specs must keep paper semantics bit-exactly.
  sim::PlanningWindow get_window(const std::string& key,
                                 const sim::PlanningWindow& auto_value) const;

 private:
  const MethodSpec* spec_;
};

/// Render a window as a spec parameter value (`arrival:32`, `sjf:64`).
std::string window_to_string(const sim::PlanningWindow& window);

/// One declared parameter of a registered method (documentation + default;
/// the registry rejects keys that are not declared here). The shape is the
/// shared spec-grammar one, so method and scenario registries list their
/// parameters identically.
using ParamInfo = util::SpecParamInfo;

/// One registered scheduler family: canonical name, display label (matches
/// the built Scheduler::name() for the parameter-free spec), declared
/// parameters and the builder turning (spec, seed) into a scheduler.
struct MethodInfo {
  std::string name;           ///< canonical registry key, e.g. "agent:claude37"
  std::string display_label;  ///< presentation label, e.g. "Claude 3.7"
  std::string doc;            ///< one-line description for --list-methods
  bool is_llm = false;        ///< contributes LLM overhead accounting
  std::vector<ParamInfo> params;
  std::function<std::unique_ptr<sim::Scheduler>(const MethodSpec&, std::uint64_t seed)> build;
};

/// String-keyed registry of every constructible scheduler variant. The
/// built-in families self-register per layer (sched::register_methods,
/// opt::register_methods, core::register_methods) on first use of
/// `instance()`; extensions may `add()` more at startup. The registry
/// freezes at the first lookup: reads are lock-free and the sweep layer
/// reads from worker threads, so a late `add()` (after any
/// find/at/names/describe/build) throws std::logic_error instead of racing
/// the readers.
class MethodRegistry {
 public:
  /// The process-wide registry, with all built-in methods registered.
  static MethodRegistry& instance();

  /// Register a method; throws std::logic_error on duplicate or empty name,
  /// or on registration after the registry froze.
  void add(MethodInfo info);

  const MethodInfo* find(const std::string& name) const;
  /// Lookup that throws MethodSpecError listing registered names on a miss.
  const MethodInfo& at(const std::string& name) const;
  /// Registered canonical names, sorted.
  std::vector<std::string> names() const;

  /// Validate the spec against the method's declared parameters (unknown
  /// keys rejected with the accepted set) and build the scheduler.
  std::unique_ptr<sim::Scheduler> build(const MethodSpec& spec, std::uint64_t seed) const;

  /// Human-readable listing of every method with parameters and defaults
  /// (`compare_schedulers --list-methods`).
  std::string describe() const;

  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

 private:
  void freeze() const { frozen_.store(true, std::memory_order_release); }

  std::map<std::string, MethodInfo> methods_;
  mutable std::atomic<bool> frozen_{false};
};

/// Presentation label for a spec: the registry display label, plus the
/// parameter bag (`Claude 3.7?window=arrival:32`) whenever parameters are
/// present - even ones spelling out a default, since labels feed cell_seed
/// and two differently-written specs are two grid axis values. Only the
/// parameter-free canonical spec labels as the bare pre-registry string.
std::string method_label(const MethodSpec& spec);

/// Drop later duplicates (value equality), preserving first-seen order -
/// the sweep's method-axis semantics, shared with CLI panel assembly.
std::vector<MethodSpec> dedup_methods(const std::vector<MethodSpec>& methods);

}  // namespace reasched::harness
