#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "util/csv.hpp"
#include "workload/scenario_spec.hpp"

namespace reasched::harness {

/// Persistence for downstream analysis: everything a run produced, in
/// machine-readable form. The figure benches use the CSV side; the JSON
/// export bundles schedule + decisions + metrics + overhead into a single
/// self-describing document per run.

/// One row per completed job: id, user, resources, submit/start/end,
/// wait/turnaround.
util::CsvTable schedule_to_csv(const sim::ScheduleResult& result);

/// One row per decision: time, action, accepted, thought (first line),
/// feedback.
util::CsvTable decisions_to_csv(const sim::ScheduleResult& result);

/// One row per LLM call: sim time, action, accepted, latency, tokens.
util::CsvTable overhead_to_csv(const OverheadSummary& overhead,
                               const sim::ScheduleResult& result);

/// Full run bundle as a JSON document (schedule, counters, metrics,
/// optional overhead). A string that parses as a spec of a registered
/// method - however it arrived: literal, CLI value, config file - exports
/// through the spec path below, so the "method_spec" field is never
/// silently dropped; anything else (display labels like "Claude 3.7",
/// which never parse as registered specs) is a plain label.
std::string run_to_json(const RunOutcome& outcome, const std::string& method_name);

/// Spec-keyed variant: labels the document with the presentation name and
/// additionally records the canonical spec string ("method_spec"), so a
/// parameterized variant (`opt:portfolio?window=sjf:64`) stays losslessly
/// reconstructible from its export.
std::string run_to_json(const RunOutcome& outcome, const MethodSpec& method);

/// Disambiguates string literals (both std::string and MethodSpec convert
/// from const char*); same spec-or-label handling as the std::string form.
std::string run_to_json(const RunOutcome& outcome, const char* method_name_or_spec);

/// Cell-keyed variant: additionally labels the document with the scenario
/// axis ("scenario" presentation label + canonical "scenario_spec"
/// string), so a sweep cell - perturbed/mixed/piped workload variants
/// included - stays losslessly reconstructible from its export. This is
/// the natural `run_sweep_streaming` on_cell exporter.
std::string run_to_json(const RunOutcome& outcome, const MethodSpec& method,
                        const workload::ScenarioSpec& scenario);

/// Convenience: write run_to_json to a file.
void save_run_json(const RunOutcome& outcome, const std::string& method_name,
                   const std::string& path);

/// Column names of a per-cell streaming run-log row (obs::RunLog): the cell
/// key (canonical scenario spec, jobs, canonical method spec, repetition)
/// followed by one column per metric in `metrics::all_metrics()` order.
std::vector<std::string> cell_runlog_columns();

/// One row matching cell_runlog_columns(); doubles are round-trip exact.
/// Pairs with `run_sweep_streaming`'s on_cell hook: rows arrive in cell
/// *completion* order (nondeterministic under threads), so consumers sort
/// by the leading key columns when order matters.
std::vector<std::string> cell_runlog_row(const Cell& cell, const RunOutcome& outcome);

}  // namespace reasched::harness
