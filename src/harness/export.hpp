#pragma once

#include <string>

#include "harness/experiment.hpp"
#include "util/csv.hpp"

namespace reasched::harness {

/// Persistence for downstream analysis: everything a run produced, in
/// machine-readable form. The figure benches use the CSV side; the JSON
/// export bundles schedule + decisions + metrics + overhead into a single
/// self-describing document per run.

/// One row per completed job: id, user, resources, submit/start/end,
/// wait/turnaround.
util::CsvTable schedule_to_csv(const sim::ScheduleResult& result);

/// One row per decision: time, action, accepted, thought (first line),
/// feedback.
util::CsvTable decisions_to_csv(const sim::ScheduleResult& result);

/// One row per LLM call: sim time, action, accepted, latency, tokens.
util::CsvTable overhead_to_csv(const OverheadSummary& overhead,
                               const sim::ScheduleResult& result);

/// Full run bundle as a JSON document (schedule, counters, metrics,
/// optional overhead).
std::string run_to_json(const RunOutcome& outcome, const std::string& method_name);

/// Convenience: write run_to_json to a file.
void save_run_json(const RunOutcome& outcome, const std::string& method_name,
                   const std::string& path);

}  // namespace reasched::harness
