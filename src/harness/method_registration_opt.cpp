#include "harness/method_registration.hpp"

#include "harness/method_spec.hpp"
#include "opt/optimizing_scheduler.hpp"

namespace reasched::opt {

namespace {

/// Trace-scale-safe window for `window=auto`: top-64 by sjf_order, the
/// configuration bench/micro_opt_scaling gates (>200x decisions/sec over the
/// unbounded path at 10k waiting jobs with no measurable plan-quality loss
/// at bench budgets). The registered *default* stays unbounded (top_k = 0)
/// so the canonical paper panel remains bit-identical to the enum era.
sim::PlanningWindow trace_default_window() {
  sim::PlanningWindow w;
  w.top_k = 64;
  w.order = sim::PlanningWindow::Order::kShortestFirst;
  return w;
}

}  // namespace

void register_methods(harness::MethodRegistry& registry) {
  const OptimizingSchedulerConfig defaults;
  registry.add(
      {.name = "opt:portfolio",
       .display_label = "OR-Tools*",
       .doc = "Optimization baseline (OR-Tools substitute): exact B&B for small queues, "
              "seeds + local search + SA above.",
       .is_llm = false,
       .params =
           {{"budget", "int", std::to_string(defaults.sa.iterations),
             "Simulated-annealing iterations per full replan, or `auto` for the "
             "profile-guided tuner (wall-clock probe sizes SA/LS budgets to ~40ms per "
             "replan; machine-dependent, not run-to-run reproducible)."},
            {"ls_evals", "int", std::to_string(defaults.local_search_evals),
             "Local-search evaluations per full replan."},
            {"bnb_threshold", "int", std::to_string(defaults.bnb_threshold),
             "Largest queue planned exactly by branch-and-bound."},
            {"reopt_every", "int", std::to_string(defaults.reopt_every),
             "Greedy arrival insertions between full re-optimizations."},
            {"window", "window", harness::window_to_string(sim::PlanningWindow{}),
             "Planning window K|order:K|auto (orders: arrival, sjf); 0 = unbounded paper "
             "semantics, auto = sjf:64, the trace-scale default."},
            {"incremental", "bool", "1",
             "Incremental candidate evaluation with bound cutoffs across the solver "
             "portfolio; 0 restores the naive full-decode pipeline (bit-identical "
             "decisions, reference speed)."},
            {"xcheck", "bool", "0",
             "Differential oracle: re-evaluate every incremental score through the full "
             "pipeline and abort on any divergence (slow; for validation)."}},
       .build =
           [](const harness::MethodSpec& spec, std::uint64_t seed) {
             const harness::ParamReader params(spec);
             OptimizingSchedulerConfig config;
             config.seed = seed;
             if (const std::string* budget = spec.find_param("budget");
                 budget != nullptr && *budget == "auto") {
               config.auto_budget = true;
             } else {
               config.sa.iterations = static_cast<std::size_t>(
                   params.get_int("budget", static_cast<long long>(config.sa.iterations)));
             }
             config.local_search_evals = static_cast<std::size_t>(params.get_int(
                 "ls_evals", static_cast<long long>(config.local_search_evals)));
             config.bnb_threshold = static_cast<std::size_t>(params.get_int(
                 "bnb_threshold", static_cast<long long>(config.bnb_threshold)));
             config.reopt_every = static_cast<std::size_t>(params.get_int(
                 "reopt_every", static_cast<long long>(config.reopt_every), 1));
             config.window = params.get_window("window", trace_default_window());
             config.eval.incremental = params.get_bool("incremental", true);
             config.eval.cross_check = params.get_bool("xcheck", false);
             return std::make_unique<OptimizingScheduler>(config);
           }});
}

}  // namespace reasched::opt
