#pragma once

#include <functional>
#include <map>
#include <vector>

#include "harness/experiment.hpp"
#include "metrics/aggregate.hpp"
#include "workload/generator.hpp"
#include "workload/scenario_spec.hpp"

namespace reasched::harness {

/// One cell of an experiment grid. Both axes are specs: the method axis is
/// a `MethodSpec` and the scenario axis a `workload::ScenarioSpec`, so
/// windowed/budgeted scheduler variants and perturbed/mixed/piped workload
/// variants are distinct cells like any other axis value (the legacy
/// `Method` / `workload::Scenario` enums still convert implicitly).
struct Cell {
  workload::ScenarioSpec scenario = workload::Scenario::kHeterogeneousMix;
  std::size_t n_jobs = 60;
  MethodSpec method = Method::kFcfs;
  std::size_t repetition = 0;
};

bool operator<(const Cell& a, const Cell& b);

struct SweepConfig {
  /// Scenario axis as specs (`"bursty_idle"`, `"mix(long_job:0.2,
  /// resource_sparse:0.8)"`, `"hetero_mix?rate_scale=2|dag?fanout=4"`);
  /// duplicates (value equality) run once, mirroring the method axis.
  std::vector<workload::ScenarioSpec> scenarios;
  std::vector<std::size_t> job_counts;
  /// Method axis as specs; duplicates (same canonical spec) run once, so a
  /// panel assembled from several sources need not dedup by hand.
  std::vector<MethodSpec> methods;
  std::size_t repetitions = 1;
  workload::ArrivalMode arrival_mode = workload::ArrivalMode::kPoisson;
  std::uint64_t base_seed = 42;
  sim::EngineConfig engine;
  /// Worker threads for independent cells (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Optional workload source replacing the scenario registry - how ad-hoc
  /// replays (pre-loaded traces, external generators) ride through the same
  /// grid, pairing and aggregation machinery. Called once per distinct
  /// (scenario, n_jobs, repetition) with the cell's derived workload seed;
  /// must be deterministic in its arguments and safe to call from worker
  /// threads. The scenario axis degrades to a label for the result keys
  /// (any spec string parses; it need not name a registered scenario).
  std::function<std::vector<sim::Job>(const workload::ScenarioSpec& scenario,
                                      std::size_t n_jobs, std::uint64_t workload_seed)>
      workload_source;
};

/// Run the full grid. Each cell draws its workload from a seed derived from
/// (base_seed, scenario label, n_jobs, repetition) - so all methods in a
/// cell see the *identical* job list (paired comparison, as in the paper) -
/// and its scheduler from a seed additionally keyed by method and
/// repetition. Each distinct (scenario, n_jobs, repetition) workload is
/// generated once and shared across the method axis, not re-derived per
/// method. Deterministic regardless of thread count.
std::map<Cell, RunOutcome> run_sweep(const SweepConfig& config);

/// Workload for one cell (exposed so benches/tests can re-derive it).
std::vector<sim::Job> cell_jobs(const SweepConfig& config,
                                const workload::ScenarioSpec& scenario, std::size_t n_jobs,
                                std::size_t repetition);

/// Seed for one cell's scheduler.
std::uint64_t cell_seed(const SweepConfig& config, const Cell& cell);

/// Engine config for one cell: the sweep config's engine with the
/// scenario's `cluster?...` overrides applied, so generation-side clamping
/// and engine-side capacity always agree within a cell.
sim::EngineConfig cell_engine(const SweepConfig& config,
                              const workload::ScenarioSpec& scenario);

/// Collapse repetitions: per (scenario, n_jobs, method) aggregate.
struct GroupKey {
  workload::ScenarioSpec scenario;
  std::size_t n_jobs;
  MethodSpec method;
};
bool operator<(const GroupKey& a, const GroupKey& b);

std::map<GroupKey, metrics::MetricAggregate> aggregate_sweep(
    const std::map<Cell, RunOutcome>& results);

/// Streaming-accumulation result: per-cell MetricSets (a few doubles each)
/// plus the per-group aggregates, with no retained ScheduleResult.
struct StreamedSweep {
  std::map<Cell, metrics::MetricSet> cells;
  std::map<GroupKey, metrics::MetricAggregate> groups;
};

/// Streaming variant for trace-scale grids: identical cell enumeration,
/// workload sharing, seeding and scheduling as run_sweep, but each cell's
/// RunOutcome is reduced to its MetricSet the moment the cell finishes and
/// then dropped, so a 10^5-10^6-job optimizer/agent sweep holds one
/// ScheduleResult per *in-flight* cell instead of one per grid cell
/// (a full ScheduleResult retains every completed job record).
///
/// `on_cell`, when set, sees each full outcome (schedule + overhead) before
/// it is dropped - exporters hook here. It is invoked under the result lock,
/// i.e. serialized, but in nondeterministic cell order; anything
/// order-sensitive should key off the Cell. Aggregation itself is
/// deterministic regardless of thread count (cells are reduced in key order
/// after the grid completes).
StreamedSweep run_sweep_streaming(
    const SweepConfig& config,
    const std::function<void(const Cell&, const RunOutcome&)>& on_cell = {});

}  // namespace reasched::harness
