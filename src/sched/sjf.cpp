#include "sched/sjf.hpp"

#include <algorithm>

namespace reasched::sched {

sim::Action SjfScheduler::decide(const sim::DecisionContext& ctx) {
  if (ctx.waiting.empty()) {
    return ctx.arrivals_pending || !ctx.ineligible.empty() ? sim::Action::delay()
                                                           : sim::Action::stop();
  }
  const auto shortest = std::min_element(
      ctx.waiting.begin(), ctx.waiting.end(), [](const sim::Job& a, const sim::Job& b) {
        if (a.walltime != b.walltime) return a.walltime < b.walltime;
        return sim::arrival_order(a, b);
      });
  if (ctx.cluster.fits(*shortest)) return sim::Action::start(shortest->id);
  return sim::Action::delay();
}

}  // namespace reasched::sched
