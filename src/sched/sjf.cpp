#include "sched/sjf.hpp"

namespace reasched::sched {

sim::Action SjfScheduler::decide(const sim::DecisionContext& ctx) {
  if (ctx.waiting.empty()) {
    return ctx.arrivals_pending || !ctx.ineligible.empty() ? sim::Action::delay()
                                                           : sim::Action::stop();
  }
  // O(1) through the engine's walltime-ordered waiting index (linear scan on
  // ad-hoc contexts); sjf_order's arrival tie-break keeps the pick unique.
  const sim::Job& shortest = *ctx.shortest_waiting();
  if (ctx.cluster.fits(shortest)) return sim::Action::start(shortest.id);
  return sim::Action::delay();
}

}  // namespace reasched::sched
