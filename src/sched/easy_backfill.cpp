#include "sched/easy_backfill.hpp"

#include <limits>

namespace reasched::sched {

EasyBackfillScheduler::Shadow EasyBackfillScheduler::compute_shadow(
    const sim::DecisionContext& ctx, const sim::Job& head) {
  // Walk completions in end-time order, accumulating released resources
  // until the head job fits.
  int nodes = ctx.cluster.available_nodes();
  double memory = ctx.cluster.available_memory_gb();
  Shadow s;
  s.time = ctx.now;
  for (const auto& alloc : ctx.running) {  // sorted by end time
    if (nodes >= head.nodes && memory >= head.memory_gb) break;
    nodes += alloc.job.nodes;
    memory += alloc.job.memory_gb;
    s.time = alloc.end_time;
  }
  s.spare_nodes = nodes - head.nodes;
  s.spare_memory = memory - head.memory_gb;
  return s;
}

sim::Action EasyBackfillScheduler::decide(const sim::DecisionContext& ctx) {
  if (ctx.waiting.empty()) {
    return ctx.arrivals_pending || !ctx.ineligible.empty() ? sim::Action::delay()
                                                           : sim::Action::stop();
  }
  const sim::Job& head = ctx.waiting.front();
  if (ctx.cluster.fits(head)) return sim::Action::start(head.id);

  const Shadow shadow = compute_shadow(ctx, head);
  for (std::size_t i = 1; i < ctx.waiting.size(); ++i) {
    const sim::Job& cand = ctx.waiting[i];
    if (!ctx.cluster.fits(cand)) continue;
    const bool finishes_before_shadow = ctx.now + cand.walltime <= shadow.time + 1e-9;
    const bool within_spare =
        cand.nodes <= shadow.spare_nodes && cand.memory_gb <= shadow.spare_memory + 1e-9;
    if (finishes_before_shadow || within_spare) {
      return sim::Action::backfill(cand.id);
    }
  }
  return sim::Action::delay();
}

}  // namespace reasched::sched
