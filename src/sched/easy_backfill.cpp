#include "sched/easy_backfill.hpp"

#include "sim/event.hpp"

namespace reasched::sched {

sim::Action EasyBackfillScheduler::decide(const sim::DecisionContext& ctx) {
  if (ctx.waiting.empty()) {
    return ctx.arrivals_pending || !ctx.ineligible.empty() ? sim::Action::delay()
                                                           : sim::Action::stop();
  }
  const sim::Job& head = ctx.waiting.front();
  if (ctx.cluster.fits(head)) return sim::Action::start(head.id);

  // Reserve the head's shadow window, then look for the first queued job
  // that fits now without disturbing it.
  const sim::FitProjection shadow = ctx.cluster.earliest_fit(head.nodes, head.memory_gb, ctx.now);
  const auto eligible = [&](const sim::Job& cand) {
    if (!ctx.cluster.fits(cand)) return false;
    const bool finishes_before_shadow = sim::tol_leq(ctx.now + cand.walltime, shadow.time);
    const bool within_spare = cand.nodes <= shadow.spare_nodes &&
                              sim::tol_leq(cand.memory_gb, shadow.spare_memory_gb);
    return finishes_before_shadow || within_spare;
  };
  // Subtree pruning with the same tests applied to per-field minima - a
  // necessary condition for any leaf below to be eligible.
  const auto could_contain = [&](const sim::WaitingAggregate& a) {
    if (!ctx.cluster.fits(a.min_nodes, a.min_memory_gb)) return false;
    return sim::tol_leq(ctx.now + a.min_walltime, shadow.time) ||
           (a.min_nodes <= shadow.spare_nodes &&
            sim::tol_leq(a.min_memory_gb, shadow.spare_memory_gb));
  };
  if (const sim::Job* cand = ctx.first_waiting_after_head(eligible, could_contain)) {
    return sim::Action::backfill(cand->id);
  }
  return sim::Action::delay();
}

}  // namespace reasched::sched
