#include "sched/fcfs.hpp"

namespace reasched::sched {

sim::Action FcfsScheduler::decide(const sim::DecisionContext& ctx) {
  if (ctx.waiting.empty()) {
    return ctx.arrivals_pending || !ctx.ineligible.empty() ? sim::Action::delay()
                                                           : sim::Action::stop();
  }
  // ctx.waiting is kept in arrival order by the engine.
  const sim::Job& head = ctx.waiting.front();
  if (ctx.cluster.fits(head)) return sim::Action::start(head.id);
  return sim::Action::delay();
}

}  // namespace reasched::sched
