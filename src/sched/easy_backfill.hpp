#pragma once

#include "sim/scheduler.hpp"

namespace reasched::sched {

/// EASY backfilling (Srinivasan et al. 2002, cited by the paper's related
/// work as the production standard): FCFS order with a reservation for the
/// head-of-queue job; any later job may run early if it fits now and cannot
/// delay the head's reservation (either it finishes before the shadow time
/// or it uses only the nodes/memory left over at the shadow time).
///
/// Not part of the paper's comparison set - included as an extension so the
/// LLM agent can be measured against the heuristic HPC sites actually run.
class EasyBackfillScheduler final : public sim::Scheduler {
 public:
  sim::Action decide(const sim::DecisionContext& ctx) override;
  std::string name() const override { return "EASY-Backfill"; }

 private:
  struct Shadow {
    double time = 0.0;       ///< earliest time the head job can start
    int spare_nodes = 0;     ///< nodes free at shadow time after head starts
    double spare_memory = 0; ///< memory free at shadow time after head starts
  };
  static Shadow compute_shadow(const sim::DecisionContext& ctx, const sim::Job& head);
};

}  // namespace reasched::sched
