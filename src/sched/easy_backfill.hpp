#pragma once

#include "sim/scheduler.hpp"

namespace reasched::sched {

/// EASY backfilling (Srinivasan et al. 2002, cited by the paper's related
/// work as the production standard): FCFS order with a reservation for the
/// head-of-queue job; any later job may run early if it fits now and cannot
/// delay the head's reservation (either it finishes before the shadow time
/// or it uses only the nodes/memory left over at the shadow time).
///
/// Per decision this costs O(log n): the head's shadow comes from
/// ClusterState::earliest_fit (binary search over incrementally maintained
/// release-prefix aggregates) and the candidate search descends the
/// JobTable's arrival-rank segment tree instead of scanning the queue. The
/// time/memory eligibility comparisons use the relative tol_leq tolerance -
/// the former absolute 1e-9 epsilons were below one ulp at Polaris time
/// scales (~1e7 s), so eligibility flipped on floating-point noise late in
/// a trace. LinearEasyBackfillScheduler preserves the pre-index scans for
/// golden comparison.
///
/// Not part of the paper's comparison set - included as an extension so the
/// LLM agent can be measured against the heuristic HPC sites actually run.
class EasyBackfillScheduler final : public sim::Scheduler {
 public:
  sim::Action decide(const sim::DecisionContext& ctx) override;
  std::string name() const override { return "EASY-Backfill"; }
};

}  // namespace reasched::sched
