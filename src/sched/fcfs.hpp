#pragma once

#include "sim/scheduler.hpp"

namespace reasched::sched {

/// First-Come-First-Served (paper Section 3.3): starts jobs strictly in
/// arrival order with head-of-line blocking - if the oldest waiting job does
/// not fit, nothing runs until it does. This is the normalization baseline
/// (all Figure 3/4/7/8 metrics are ratios against FCFS) and the scheduler
/// that exposes the convoy effect in Long-Job Dominant / Adversarial.
class FcfsScheduler final : public sim::Scheduler {
 public:
  sim::Action decide(const sim::DecisionContext& ctx) override;
  std::string name() const override { return "FCFS"; }
};

}  // namespace reasched::sched
