#pragma once

#include "sim/scheduler.hpp"

namespace reasched::sched {

/// Pre-index reference policies: the SJF and EASY implementations exactly as
/// they were before the policy-side indexes landed - a full min_element scan
/// of the waiting queue per decision (SJF) and a per-query walk over every
/// running allocation plus a linear candidate scan (EASY). They use the same
/// tolerance-correct comparisons as the indexed policies, so differential
/// runs isolate the indexing alone.
///
/// They exist for exactly two call sites, mirroring sim::ReferenceEngine:
/// tests/test_sched_policy_golden.cpp proves the indexed policies reproduce
/// these decision traces bit-for-bit, and bench/micro_policy_scaling.cpp
/// measures the speedup. Do not use them in experiments.

/// O(n_waiting)-per-decision SJF (seed semantics).
class LinearSjfScheduler final : public sim::Scheduler {
 public:
  sim::Action decide(const sim::DecisionContext& ctx) override;
  std::string name() const override { return "SJF"; }
};

/// O(n_running + n_waiting)-per-decision EASY backfilling (seed semantics).
class LinearEasyBackfillScheduler final : public sim::Scheduler {
 public:
  sim::Action decide(const sim::DecisionContext& ctx) override;
  std::string name() const override { return "EASY-Backfill"; }

 private:
  struct Shadow {
    double time = 0.0;        ///< earliest time the head job can start
    int spare_nodes = 0;      ///< nodes free at shadow time after head starts
    double spare_memory = 0;  ///< memory free at shadow time after head starts
  };
  static Shadow compute_shadow(const sim::DecisionContext& ctx, const sim::Job& head);
};

}  // namespace reasched::sched
