#pragma once

#include "sim/scheduler.hpp"

namespace reasched::sched {

/// Shortest-Job-First (paper Section 3.3): always tries to start the waiting
/// job with the smallest walltime estimate. Reduces average turnaround but
/// can starve long jobs, degrading fairness. Like the paper's variant, this
/// is strict SJF without backfilling: if the shortest job does not fit, the
/// scheduler waits.
class SjfScheduler final : public sim::Scheduler {
 public:
  sim::Action decide(const sim::DecisionContext& ctx) override;
  std::string name() const override { return "SJF"; }
};

}  // namespace reasched::sched
