#include "sched/linear_reference.hpp"

#include <algorithm>

#include "sim/event.hpp"

namespace reasched::sched {

sim::Action LinearSjfScheduler::decide(const sim::DecisionContext& ctx) {
  if (ctx.waiting.empty()) {
    return ctx.arrivals_pending || !ctx.ineligible.empty() ? sim::Action::delay()
                                                           : sim::Action::stop();
  }
  const auto shortest =
      std::min_element(ctx.waiting.begin(), ctx.waiting.end(), sim::sjf_order);
  if (ctx.cluster.fits(*shortest)) return sim::Action::start(shortest->id);
  return sim::Action::delay();
}

LinearEasyBackfillScheduler::Shadow LinearEasyBackfillScheduler::compute_shadow(
    const sim::DecisionContext& ctx, const sim::Job& head) {
  // Walk completions in end-time order, accumulating released resources
  // until the head job fits. Releases are summed separately and added to
  // availability at comparison time - `avail + (m1 + ... + mk)`, the same
  // floating-point association ClusterState::earliest_fit uses over its
  // release-prefix aggregates. Folding availability into the accumulator
  // (the seed's order) differs by an ulp at partial-sum boundaries, which
  // is enough to pick a shadow one whole release interval away and break
  // the bit-for-bit equivalence the golden test asserts.
  const int avail_nodes = ctx.cluster.available_nodes();
  const double avail_memory = ctx.cluster.available_memory_gb();
  int released_nodes = 0;
  double released_memory = 0.0;
  Shadow s;
  s.time = ctx.now;
  for (const auto& alloc : ctx.running) {  // sorted by end time
    if (avail_nodes + released_nodes >= head.nodes &&
        avail_memory + released_memory >= head.memory_gb) {
      break;
    }
    released_nodes += alloc.job.nodes;
    released_memory += alloc.job.memory_gb;
    s.time = alloc.end_time;
  }
  s.spare_nodes = avail_nodes + released_nodes - head.nodes;
  s.spare_memory = avail_memory + released_memory - head.memory_gb;
  return s;
}

sim::Action LinearEasyBackfillScheduler::decide(const sim::DecisionContext& ctx) {
  if (ctx.waiting.empty()) {
    return ctx.arrivals_pending || !ctx.ineligible.empty() ? sim::Action::delay()
                                                           : sim::Action::stop();
  }
  const sim::Job& head = ctx.waiting.front();
  if (ctx.cluster.fits(head)) return sim::Action::start(head.id);

  const Shadow shadow = compute_shadow(ctx, head);
  for (std::size_t i = 1; i < ctx.waiting.size(); ++i) {
    const sim::Job& cand = ctx.waiting[i];
    if (!ctx.cluster.fits(cand)) continue;
    const bool finishes_before_shadow = sim::tol_leq(ctx.now + cand.walltime, shadow.time);
    const bool within_spare =
        cand.nodes <= shadow.spare_nodes && sim::tol_leq(cand.memory_gb, shadow.spare_memory);
    if (finishes_before_shadow || within_spare) {
      return sim::Action::backfill(cand.id);
    }
  }
  return sim::Action::delay();
}

}  // namespace reasched::sched
