#include "sched/random_scheduler.hpp"

#include <vector>

namespace reasched::sched {

sim::Action RandomScheduler::decide(const sim::DecisionContext& ctx) {
  if (ctx.waiting.empty()) {
    return ctx.arrivals_pending || !ctx.ineligible.empty() ? sim::Action::delay()
                                                           : sim::Action::stop();
  }
  std::vector<const sim::Job*> feasible;
  feasible.reserve(ctx.waiting.size());
  for (const auto& j : ctx.waiting) {
    if (ctx.cluster.fits(j)) feasible.push_back(&j);
  }
  if (feasible.empty()) return sim::Action::delay();
  const auto idx = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(feasible.size()) - 1));
  return sim::Action::start(feasible[idx]->id);
}

}  // namespace reasched::sched
