#pragma once

#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace reasched::sched {

/// Starts a uniformly random feasible waiting job (or delays when nothing
/// fits). Not a paper baseline - used by property tests as an arbitrary
/// well-formed policy, and handy as a sanity floor in custom experiments.
class RandomScheduler final : public sim::Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  sim::Action decide(const sim::DecisionContext& ctx) override;
  std::string name() const override { return "Random"; }
  void reset() override { rng_ = util::Rng(seed_); }

 private:
  std::uint64_t seed_;
  util::Rng rng_;
};

}  // namespace reasched::sched
