#pragma once

namespace reasched::harness {
class MethodRegistry;
}

namespace reasched::sched {

/// Register the queue-policy baselines with the harness method registry:
/// `fcfs`, `sjf` and `easy` (EASY backfilling). None takes parameters - the
/// policies are deterministic and configuration-free.
void register_methods(harness::MethodRegistry& registry);

}  // namespace reasched::sched
