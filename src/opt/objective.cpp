#include "opt/objective.hpp"

namespace reasched::opt {

double evaluate(const PlannedSchedule& plan, const ObjectiveWeights& weights) {
  return weights.makespan_weight * plan.makespan +
         weights.completion_weight * plan.total_completion +
         weights.wait_weight * plan.total_wait;
}

}  // namespace reasched::opt
