#include "opt/model.hpp"

namespace reasched::opt {

Problem Problem::from_context(const sim::DecisionContext& ctx) {
  Problem p;
  p.now = ctx.now;
  p.total_nodes = ctx.cluster.spec().total_nodes;
  p.total_memory_gb = ctx.cluster.spec().total_memory_gb;
  p.jobs.assign(ctx.waiting.begin(), ctx.waiting.end());
  p.pinned.reserve(ctx.running.size());
  for (const auto& alloc : ctx.running) {
    p.pinned.push_back({alloc.end_time, alloc.job.nodes, alloc.job.memory_gb});
  }
  return p;
}

}  // namespace reasched::opt
