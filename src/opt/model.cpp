#include "opt/model.hpp"

namespace reasched::opt {

Problem Problem::from_context(const sim::DecisionContext& ctx) {
  Problem p;
  p.now = ctx.now;
  p.total_nodes = ctx.cluster.spec().total_nodes;
  p.total_memory_gb = ctx.cluster.spec().total_memory_gb;
  p.jobs.assign(ctx.waiting.begin(), ctx.waiting.end());
  p.pinned.reserve(ctx.running.size());
  for (const auto& alloc : ctx.running) {
    p.pinned.push_back({alloc.end_time, alloc.job.nodes, alloc.job.memory_gb});
  }
  return p;
}

ProblemView ProblemView::from_context(const sim::DecisionContext& ctx,
                                      const std::vector<std::uint32_t>* window) {
  ProblemView v;
  v.now_ = ctx.now;
  v.total_nodes_ = ctx.cluster.spec().total_nodes;
  v.total_memory_gb_ = ctx.cluster.spec().total_memory_gb;
  v.jobs_ = ctx.waiting;
  if (window != nullptr) {
    v.window_ = window->data();
    v.n_window_ = window->size();
  }
  v.running_ = ctx.running;
  return v;
}

}  // namespace reasched::opt
