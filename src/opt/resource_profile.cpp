#include "opt/resource_profile.hpp"

#include <limits>
#include <stdexcept>

namespace reasched::opt {

ResourceProfile::ResourceProfile(int total_nodes, double total_memory_gb)
    : total_nodes_(total_nodes), total_memory_gb_(total_memory_gb) {
  usage_[0.0] = Usage{};
}

std::map<double, ResourceProfile::Usage>::iterator ResourceProfile::ensure_breakpoint(double t) {
  auto it = usage_.lower_bound(t);
  if (it != usage_.end() && it->first == t) return it;
  // Usage prevailing just before t.
  const Usage prev = std::prev(it)->second;  // safe: key 0 always exists and t >= 0
  return usage_.emplace(t, prev).first;
}

void ResourceProfile::add(double start, double duration, int nodes, double memory_gb) {
  if (start < 0.0 || duration <= 0.0) throw std::logic_error("ResourceProfile::add: bad interval");
  if (!fits(start, duration, nodes, memory_gb)) {
    throw std::logic_error("ResourceProfile::add: capacity exceeded");
  }
  const double end = start + duration;
  auto first = ensure_breakpoint(start);
  ensure_breakpoint(end);
  for (auto it = first; it != usage_.end() && it->first < end; ++it) {
    it->second.nodes += nodes;
    it->second.memory_gb += memory_gb;
  }
}

bool ResourceProfile::fits(double start, double duration, int nodes, double memory_gb) const {
  if (nodes > total_nodes_ || memory_gb > total_memory_gb_ + 1e-9) return false;
  const double end = start + duration;
  auto it = usage_.upper_bound(start);
  if (it != usage_.begin()) --it;  // segment containing `start`
  for (; it != usage_.end() && it->first < end; ++it) {
    // Segment [it->first, next) overlaps [start, end)?
    const auto next = std::next(it);
    const double seg_end = next == usage_.end() ? std::numeric_limits<double>::infinity()
                                                : next->first;
    if (seg_end <= start) continue;
    if (it->second.nodes + nodes > total_nodes_ ||
        it->second.memory_gb + memory_gb > total_memory_gb_ + 1e-9) {
      return false;
    }
  }
  return true;
}

double ResourceProfile::earliest_fit(double not_before, double duration, int nodes,
                                     double memory_gb) const {
  if (nodes > total_nodes_ || memory_gb > total_memory_gb_ + 1e-9) {
    throw std::logic_error("ResourceProfile::earliest_fit: demand exceeds capacity");
  }
  double t = not_before;
  for (;;) {
    if (fits(t, duration, nodes, memory_gb)) return t;
    // Jump to the next breakpoint after t (usage only changes there).
    const auto it = usage_.upper_bound(t);
    if (it == usage_.end()) return t;  // beyond the last breakpoint everything is free
    t = it->first;
  }
}

int ResourceProfile::peak_nodes() const {
  int peak = 0;
  for (const auto& [t, u] : usage_) peak = std::max(peak, u.nodes);
  return peak;
}

}  // namespace reasched::opt
