#include "opt/incremental.hpp"

#include <algorithm>
#include <stdexcept>

#include "opt/list_scheduler.hpp"
#include "sim/event.hpp"

namespace reasched::opt {

namespace {
/// Deflation factor for the optimistic part of the lower bound. The running
/// area sums accumulate O(n * eps) relative rounding error (~1e-12 at 10k
/// jobs); shaving 1e-10 off the bound keeps it admissible with two orders
/// of magnitude to spare while staying far below any tolerance a caller's
/// acceptance predicate could notice.
constexpr double kBoundSlack = 1.0 - 1e-10;
}  // namespace

IncrementalEvaluator::IncrementalEvaluator(const ProblemView& problem,
                                           const ObjectiveWeights& weights, EvalPolicy policy)
    : problem_(&problem), weights_(weights), policy_(policy) {
  cutoff_ok_ = weights.makespan_weight >= 0.0 && weights.completion_weight >= 0.0 &&
               weights.wait_weight >= 0.0;
  now_ = problem.now();
  total_nodes_ = problem.total_nodes();
  total_memory_ = problem.total_memory_gb();

  if (total_nodes_ > 0) inv_total_nodes_ = 1.0 / static_cast<double>(total_nodes_);
  if (total_memory_ > 0.0) inv_total_memory_ = 1.0 / total_memory_;

  const std::size_t n = problem.n_jobs();
  attr_.resize(n + problem.n_pinned());
  all_ = {0.0, 0.0, 0.0, 0.0, n};
  for (std::size_t i = 0; i < n; ++i) {
    const sim::Job& job = problem.job(i);
    Attr& a = attr_[i];
    a.release = std::max(now_, job.submit_time);
    a.duration = job.duration;
    a.memory_gb = job.memory_gb;
    a.nodes = job.nodes;
    a.node_area = static_cast<double>(job.nodes) * job.duration;
    a.mem_area = job.memory_gb * job.duration;
    a.completion_lb = a.release + job.duration;
    all_.node_area += a.node_area;
    all_.mem_area += a.mem_area;
    all_.duration_sum += a.duration;
    all_.cp = std::max(all_.cp, a.completion_lb);
  }

  // Checkpoint stride: bounds snapshot memory to ~64 heap copies while
  // keeping replay-to-divergence under stride_ placements per candidate.
  stride_ = std::max<std::size_t>(8, (n + 63) / 64);

  // Initial state, replicating decode_subset's prologue exactly: subtract
  // every pinned allocation in order and push its release (push order
  // matters for equal-time pop ties, hence for float reproducibility).
  State s0{now_, total_nodes_, total_memory_, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  heap_.clear();
  for (std::size_t p = 0; p < problem.n_pinned(); ++p) {
    const Problem::Pinned pin = problem.pinned(p);
    s0.free_nodes -= pin.nodes;
    s0.free_memory -= pin.memory_gb;
    Attr& slot = attr_[n + p];  // synthetic slot: pops only read nodes/memory
    slot = {};
    slot.nodes = pin.nodes;
    slot.memory_gb = pin.memory_gb;
    heap_.push_back({pin.end_time, static_cast<std::uint32_t>(n + p)});
    std::push_heap(heap_.begin(), heap_.end(), LaterRelease{});
  }
  record_checkpoint(0, s0);
  n_checkpoints_ = 1;
  final_ = s0;
  cached_score_ = exact_score(s0);
}

void IncrementalEvaluator::place(State& s, std::size_t j) {
  const Attr& a = attr_[j];
  double clock = std::max(s.clock, a.release);
  while (s.free_nodes < a.nodes || !sim::mem_fits(s.free_memory, a.memory_gb)) {
    if (heap_.empty()) {
      throw std::logic_error("decode_order: job never fits (capacity violation upstream)");
    }
    const Release r = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), LaterRelease{});
    heap_.pop_back();
    clock = std::max(clock, r.time);
    const Attr& ra = attr_[r.idx];
    s.free_nodes += ra.nodes;
    s.free_memory += ra.memory_gb;
    while (!heap_.empty() && heap_.front().time <= clock) {
      const Attr& fa = attr_[heap_.front().idx];
      s.free_nodes += fa.nodes;
      s.free_memory += fa.memory_gb;
      std::pop_heap(heap_.begin(), heap_.end(), LaterRelease{});
      heap_.pop_back();
    }
  }
  const double start = clock;
  const double end = start + a.duration;
  s.free_nodes -= a.nodes;
  s.free_memory -= a.memory_gb;
  heap_.push_back({end, static_cast<std::uint32_t>(j)});
  std::push_heap(heap_.begin(), heap_.end(), LaterRelease{});
  s.clock = clock;
  s.makespan = std::max(s.makespan, end);
  s.completion += end;
  s.wait += start - a.release;
  s.placed_node_area += a.node_area;
  s.placed_mem_area += a.mem_area;
  s.placed_duration += a.duration;
  if (a.completion_lb > s.placed_cp) s.placed_cp = a.completion_lb;
  ++stats_.steps_decoded;
}

double IncrementalEvaluator::exact_score(const State& s) const {
  return weights_.makespan_weight * s.makespan + weights_.completion_weight * s.completion +
         weights_.wait_weight * s.wait;
}

double IncrementalEvaluator::lower_bound(const State& s, const Totals& t,
                                         std::size_t placed) const {
  // Exact part: the score of the placed prefix. Every accumulator is
  // monotone in the remaining decode, so this needs no deflation.
  const double exact = exact_score(s);
  if (placed >= t.count) return exact;
  // Optimistic completion of the remaining work (branch_and_bound's
  // critical-path + resource-area arguments, anchored at the clock: every
  // not-yet-placed job starts at or after `clock`, so the remaining areas
  // must drain through the machine's full capacity from there).
  double mk = s.makespan > t.cp ? s.makespan : t.cp;
  if (total_nodes_ > 0) {
    const double x = s.clock + (t.node_area - s.placed_node_area) * inv_total_nodes_;
    if (x > mk) mk = x;
  }
  if (total_memory_ > 0.0) {
    const double x = s.clock + (t.mem_area - s.placed_mem_area) * inv_total_memory_;
    if (x > mk) mk = x;
  }
  double bound = weights_.makespan_weight * mk;
  if (weights_.completion_weight > 0.0) {
    const double rem = static_cast<double>(t.count - placed);
    bound += weights_.completion_weight *
             (s.completion + rem * s.clock + (t.duration_sum - s.placed_duration));
  }
  bound += weights_.wait_weight * s.wait;
  bound *= kBoundSlack;
  return bound > exact ? bound : exact;
}

bool IncrementalEvaluator::cuts(double lb, double cutoff, CutoffMode mode) {
  switch (mode) {
    case CutoffMode::kGreaterEqual:
      return lb >= cutoff;
    case CutoffMode::kGreater:
      return lb > cutoff;
    case CutoffMode::kTolerance:
      // improves is monotone: if the bound already fails, so does any
      // score >= bound (x + tol(x) is nondecreasing for x >= 0).
      return !improves(lb, cutoff);
  }
  return false;
}

std::size_t IncrementalEvaluator::divergence(const std::vector<std::size_t>& order) const {
  const std::size_t limit = std::min(order.size(), base_.size());
  std::size_t d = 0;
  while (d < limit && order[d] == base_[d]) ++d;
  return d;
}

std::size_t IncrementalEvaluator::load_checkpoint(std::size_t index, State& s) {
  const Checkpoint& ck = checkpoints_[index];
  s = ck.state;
  heap_ = ck.heap;
  return index * stride_;
}

void IncrementalEvaluator::record_checkpoint(std::size_t index, const State& s) {
  if (checkpoints_.size() <= index) checkpoints_.resize(index + 1);
  checkpoints_[index].state = s;
  checkpoints_[index].heap = heap_;
}

void IncrementalEvaluator::record_pending(std::size_t index, const State& s) {
  if (pending_checkpoints_.size() <= index) pending_checkpoints_.resize(index + 1);
  pending_checkpoints_[index].state = s;
  pending_checkpoints_[index].heap = heap_;
}

bool IncrementalEvaluator::commit_last() {
  if (!pending_valid_) return false;
  base_.swap(pending_base_);
  if (checkpoints_.size() < pending_n_checkpoints_) checkpoints_.resize(pending_n_checkpoints_);
  // Indices below pending_first_ck_ cover the shared prefix and are already
  // correct in the base's list; the rest were recorded during the candidate
  // decode. Swapping moves the heap arrays without copying.
  for (std::size_t k = pending_first_ck_; k < pending_n_checkpoints_; ++k) {
    std::swap(checkpoints_[k], pending_checkpoints_[k]);
  }
  n_checkpoints_ = pending_n_checkpoints_;
  final_ = pending_final_;
  cached_score_ = pending_score_;
  pending_valid_ = false;
  return true;
}

double IncrementalEvaluator::full_oracle(const std::vector<std::size_t>& order) const {
  return evaluate(decode_subset(*problem_, order), weights_);
}

void IncrementalEvaluator::check_exact(const std::vector<std::size_t>& order, double got) const {
  if (!policy_.cross_check) return;
  const double full = full_oracle(order);
  if (full != got) {
    throw std::logic_error(
        "IncrementalEvaluator cross-check: incremental score diverged from full evaluate");
  }
}

void IncrementalEvaluator::check_abort(const std::vector<std::size_t>& order, double lb,
                                       double cutoff, CutoffMode mode) const {
  if (!policy_.cross_check) return;
  const double full = full_oracle(order);
  if (lb > full) {
    throw std::logic_error("IncrementalEvaluator cross-check: cutoff bound not admissible");
  }
  if (!cuts(full, cutoff, mode)) {
    throw std::logic_error("IncrementalEvaluator cross-check: cutoff abort was not safe");
  }
}

std::vector<std::size_t> IncrementalEvaluator::materialize_insertion(std::size_t pos,
                                                                     std::size_t job_index) const {
  std::vector<std::size_t> order;
  order.reserve(base_.size() + 1);
  order.insert(order.end(), base_.begin(), base_.begin() + static_cast<std::ptrdiff_t>(pos));
  order.push_back(job_index);
  order.insert(order.end(), base_.begin() + static_cast<std::ptrdiff_t>(pos), base_.end());
  return order;
}

double IncrementalEvaluator::score(const std::vector<std::size_t>& order) {
  ++stats_.evaluations;
  pending_valid_ = false;
  resume_valid_ = false;
  if (!policy_.incremental) {
    const double full = full_oracle(order);
    base_ = order;  // insertion sweeps still need the base order in oracle mode
    return full;
  }
  const std::size_t d = divergence(order);
  if (d == order.size() && d == base_.size()) {
    stats_.steps_reused += d;
    check_exact(order, cached_score_);
    return cached_score_;
  }

  State s;
  std::size_t pos = load_checkpoint(std::min(d / stride_, n_checkpoints_ - 1), s);
  stats_.steps_reused += pos;
  for (; pos < d; ++pos) place(s, base_[pos]);  // bit-identical prefix replay

  // Adopt the candidate tail; the shared prefix (and its checkpoints) is
  // already in place.
  base_.resize(order.size());
  std::copy(order.begin() + static_cast<std::ptrdiff_t>(d), order.end(),
            base_.begin() + static_cast<std::ptrdiff_t>(d));

  for (; pos < order.size(); ++pos) {
    if (pos % stride_ == 0) record_checkpoint(pos / stride_, s);
    place(s, order[pos]);
  }
  // A divergence at exactly the end of this order needs a checkpoint there
  // too (the loop above only records *before* a placement).
  if (order.size() % stride_ == 0) record_checkpoint(order.size() / stride_, s);
  n_checkpoints_ = order.size() / stride_ + 1;
  final_ = s;
  cached_score_ = exact_score(s);
  check_exact(order, cached_score_);
  return cached_score_;
}

IncrementalEvaluator::Result IncrementalEvaluator::score_with_cutoff(
    const std::vector<std::size_t>& order, double cutoff, CutoffMode mode) {
  ++stats_.evaluations;
  pending_valid_ = false;
  resume_valid_ = false;
  if (!policy_.incremental) {
    return {full_oracle(order), true};
  }
  const std::size_t d = divergence(order);
  if (d == order.size() && d == base_.size()) {
    stats_.steps_reused += d;
    check_exact(order, cached_score_);
    return {cached_score_, true};
  }
  const bool armed = cutoff_ok_ && order.size() == problem_->n_jobs() && cutoff < kNoCutoff;

  State s;
  std::size_t pos = load_checkpoint(std::min(d / stride_, n_checkpoints_ - 1), s);
  stats_.steps_reused += pos;
  for (; pos < d; ++pos) place(s, base_[pos]);

  // Record checkpoints along the candidate's own trajectory (positions the
  // base's snapshots no longer cover) so commit_last() can adopt this order
  // without re-decoding it. Same record-before-place schedule as score().
  pending_first_ck_ = (d + stride_ - 1) / stride_;
  for (; pos < order.size(); ++pos) {
    if (commit_tracking_ && pos % stride_ == 0 && pos >= d) record_pending(pos / stride_, s);
    place(s, order[pos]);
    // Bound cadence: testing every placement costs ~10% of the decode while
    // aborts overwhelmingly fire deep in the suffix, so probe every fourth
    // position. An abort landing up to three placements later is still the
    // same decision - any admissible abort schedule is (see class doc) - the
    // probe just gets 4x cheaper amortized.
    if (armed && (pos & 3u) == 3u) {
      const double lb = lower_bound(s, all_, pos + 1);
      if (cuts(lb, cutoff, mode)) {
        ++stats_.cutoff_hits;
        check_abort(order, lb, cutoff, mode);
        // Snapshot for resume_exact: heap_ already holds the abort-time heap
        // and stays untouched until the next evaluation call.
        resume_state_ = s;
        resume_pos_ = pos + 1;
        resume_d_ = d;
        resume_valid_ = true;
        return {lb, false};
      }
    }
  }
  const double got = exact_score(s);
  check_exact(order, got);
  if (commit_tracking_) {
    if (order.size() % stride_ == 0 && order.size() >= d) {
      record_pending(order.size() / stride_, s);
    }
    pending_base_ = order;
    pending_n_checkpoints_ = order.size() / stride_ + 1;
    pending_final_ = s;
    pending_score_ = got;
    pending_valid_ = true;
  }
  return {got, true};
}

IncrementalEvaluator::Result IncrementalEvaluator::resume_exact(
    const std::vector<std::size_t>& order) {
  if (!resume_valid_) {
    throw std::logic_error("resume_exact: no aborted score_with_cutoff call to resume");
  }
  resume_valid_ = false;
  ++stats_.evaluations;
  State s = resume_state_;
  std::size_t pos = resume_pos_;
  // Continue the aborted call's record-before-place checkpoint schedule so a
  // subsequent commit_last() adopts the full trajectory.
  for (; pos < order.size(); ++pos) {
    if (commit_tracking_ && pos % stride_ == 0 && pos >= resume_d_) {
      record_pending(pos / stride_, s);
    }
    place(s, order[pos]);
  }
  const double got = exact_score(s);
  check_exact(order, got);
  if (commit_tracking_) {
    if (order.size() % stride_ == 0 && order.size() >= resume_d_) {
      record_pending(order.size() / stride_, s);
    }
    pending_base_ = order;
    pending_n_checkpoints_ = order.size() / stride_ + 1;
    pending_final_ = s;
    pending_score_ = got;
    pending_valid_ = true;
  }
  return {got, true};
}

IncrementalEvaluator::Result IncrementalEvaluator::score_insertion(std::size_t pos,
                                                                   std::size_t job_index,
                                                                   double cutoff,
                                                                   CutoffMode mode) {
  if (pos > base_.size()) {
    throw std::invalid_argument("score_insertion: position beyond cached base order");
  }
  ++stats_.evaluations;
  pending_valid_ = false;
  resume_valid_ = false;
  if (!policy_.incremental) {
    return {full_oracle(materialize_insertion(pos, job_index)), true};
  }
  const Attr& ins = attr_[job_index];
  const bool armed = cutoff_ok_ && cutoff < kNoCutoff;
  const Totals t{final_.placed_node_area + ins.node_area,
                 final_.placed_mem_area + ins.mem_area,
                 final_.placed_duration + ins.duration,
                 std::max(final_.placed_cp, ins.completion_lb), base_.size() + 1};

  State s;
  std::size_t at = load_checkpoint(std::min(pos / stride_, n_checkpoints_ - 1), s);
  stats_.steps_reused += at;
  for (; at < pos; ++at) place(s, base_[at]);

  place(s, job_index);
  if (armed) {
    const double lb = lower_bound(s, t, pos + 1);
    if (cuts(lb, cutoff, mode)) {
      ++stats_.cutoff_hits;
      if (policy_.cross_check) check_abort(materialize_insertion(pos, job_index), lb, cutoff, mode);
      return {lb, false};
    }
  }
  for (std::size_t k = pos; k < base_.size(); ++k) {
    place(s, base_[k]);
    if (armed) {
      const double lb = lower_bound(s, t, k + 2);
      if (cuts(lb, cutoff, mode)) {
        ++stats_.cutoff_hits;
        if (policy_.cross_check) {
          check_abort(materialize_insertion(pos, job_index), lb, cutoff, mode);
        }
        return {lb, false};
      }
    }
  }
  const double got = exact_score(s);
  if (policy_.cross_check) check_exact(materialize_insertion(pos, job_index), got);
  return {got, true};
}

}  // namespace reasched::opt
