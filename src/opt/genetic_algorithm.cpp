#include "opt/genetic_algorithm.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace reasched::opt {

std::vector<std::size_t> order_crossover(const std::vector<std::size_t>& a,
                                         const std::vector<std::size_t>& b,
                                         util::Rng& rng) {
  const std::size_t n = a.size();
  if (n < 2) return a;
  auto lo = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  auto hi = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  if (lo > hi) std::swap(lo, hi);

  std::vector<std::size_t> child(n, std::numeric_limits<std::size_t>::max());
  std::vector<char> used(n, 0);
  for (std::size_t i = lo; i <= hi; ++i) {
    child[i] = a[i];
    used[a[i]] = 1;
  }
  // Both cursors wrap around n at most once per step, so a compare-subtract
  // replaces the integer modulo (a ~20-cycle divide, twice per gene - it
  // dominated crossover time at 10k jobs).
  std::size_t fill = hi + 1;
  if (fill >= n) fill -= n;
  std::size_t read = fill;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t gene = b[read];
    if (++read >= n) read -= n;
    if (used[gene] != 0) continue;
    child[fill] = gene;
    used[gene] = 1;
    if (++fill >= n) fill -= n;
  }
  return child;
}

namespace {
/// FNV-1a over the permutation's elements. Collisions only cost a failed
/// equality probe - lookups compare the full vector, so memoized scores are
/// exact, never approximate.
struct OrderHash {
  std::size_t operator()(const std::vector<std::size_t>& order) const {
    std::size_t h = 14695981039346656037ull;
    for (const std::size_t x : order) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return h;
  }
};
}  // namespace

GaResult genetic_algorithm(const ProblemView& problem, std::vector<std::size_t> seed_order,
                           const ObjectiveWeights& weights, const GaConfig& config,
                           util::Rng& rng) {
  if (seed_order.size() != problem.n_jobs()) {
    throw std::invalid_argument("decode_order: order size mismatch");
  }
  GaResult best;
  const std::size_t n = seed_order.size();
  best.order = seed_order;
  IncrementalEvaluator eval(problem, weights, config.eval);
  eval.set_commit_tracking(false);  // populations never re-anchor the cache
  best.score = eval.score(best.order);
  best.evaluations = 1;
  if (n < 2 || config.population < 2) {
    best.eval = eval.stats();
    return best;
  }

  struct Individual {
    std::vector<std::size_t> order;
    double score;
  };

  // Elitism and crossover-less reproduction re-emit identical orders every
  // generation; the decoder is deterministic, so their scores are memoized
  // run-wide and a repeat costs a hash lookup instead of a decode (and
  // counts toward `evaluations` only once).
  std::unordered_map<std::vector<std::size_t>, double, OrderHash> memo;
  memo.emplace(best.order, best.score);

  auto scored = [&](std::vector<std::size_t> order) {
    if (const auto it = memo.find(order); it != memo.end()) {
      ++best.memo_hits;
      return Individual{std::move(order), it->second};
    }
    const double s =
        eval.score_with_cutoff(order, IncrementalEvaluator::kNoCutoff, CutoffMode::kGreaterEqual)
            .value;
    ++best.evaluations;
    memo.emplace(order, s);
    return Individual{std::move(order), s};
  };

  // Initial population: the seed plus shuffles of it.
  std::vector<Individual> population;
  population.reserve(config.population);
  population.push_back(scored(seed_order));
  while (population.size() < config.population) {
    auto order = seed_order;
    rng.shuffle(order);
    population.push_back(scored(std::move(order)));
  }

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* winner = nullptr;
    for (std::size_t i = 0; i < config.tournament; ++i) {
      const auto& cand = population[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(population.size()) - 1))];
      if (winner == nullptr || cand.score < winner->score) winner = &cand;
    }
    return *winner;
  };

  for (std::size_t gen = 0; gen < config.generations; ++gen) {
    // Score ties are common once the memo table collapses duplicate orders;
    // stable_sort keeps tied individuals in construction order so elite
    // selection cannot depend on the sort implementation's tie permutation.
    std::stable_sort(population.begin(), population.end(),
                     [](const Individual& x, const Individual& y) { return x.score < y.score; });
    if (population.front().score < best.score) {
      best.score = population.front().score;
      best.order = population.front().order;
    }
    std::vector<Individual> next;
    next.reserve(config.population);
    for (std::size_t e = 0; e < std::min(config.elites, population.size()); ++e) {
      next.push_back(population[e]);
    }
    while (next.size() < config.population) {
      const Individual& pa = tournament_pick();
      const Individual& pb = tournament_pick();
      std::vector<std::size_t> child =
          rng.bernoulli(config.crossover_rate) ? order_crossover(pa.order, pb.order, rng)
                                               : pa.order;
      if (rng.bernoulli(config.mutation_rate)) {
        const auto i =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        const auto j =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        std::swap(child[i], child[j]);
      }
      next.push_back(scored(std::move(child)));
    }
    population = std::move(next);
  }
  for (const auto& ind : population) {
    if (ind.score < best.score) {
      best.score = ind.score;
      best.order = ind.order;
    }
  }
  best.eval = eval.stats();
  return best;
}

}  // namespace reasched::opt
