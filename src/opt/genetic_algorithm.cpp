#include "opt/genetic_algorithm.hpp"

#include <algorithm>
#include <limits>

#include "opt/list_scheduler.hpp"

namespace reasched::opt {

std::vector<std::size_t> order_crossover(const std::vector<std::size_t>& a,
                                         const std::vector<std::size_t>& b,
                                         util::Rng& rng) {
  const std::size_t n = a.size();
  if (n < 2) return a;
  auto lo = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  auto hi = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  if (lo > hi) std::swap(lo, hi);

  std::vector<std::size_t> child(n, std::numeric_limits<std::size_t>::max());
  std::vector<bool> used(n, false);
  for (std::size_t i = lo; i <= hi; ++i) {
    child[i] = a[i];
    used[a[i]] = true;
  }
  std::size_t fill = (hi + 1) % n;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t gene = b[(hi + 1 + k) % n];
    if (used[gene]) continue;
    child[fill] = gene;
    used[gene] = true;
    fill = (fill + 1) % n;
  }
  return child;
}

GaResult genetic_algorithm(const ProblemView& problem, std::vector<std::size_t> seed_order,
                           const ObjectiveWeights& weights, const GaConfig& config,
                           util::Rng& rng) {
  GaResult best;
  const std::size_t n = seed_order.size();
  best.order = seed_order;
  best.score = evaluate(decode_order(problem, best.order), weights);
  best.evaluations = 1;
  if (n < 2 || config.population < 2) return best;

  struct Individual {
    std::vector<std::size_t> order;
    double score;
  };

  auto scored = [&](std::vector<std::size_t> order) {
    const double s = evaluate(decode_order(problem, order), weights);
    ++best.evaluations;
    return Individual{std::move(order), s};
  };

  // Initial population: the seed plus shuffles of it.
  std::vector<Individual> population;
  population.reserve(config.population);
  population.push_back(scored(seed_order));
  while (population.size() < config.population) {
    auto order = seed_order;
    rng.shuffle(order);
    population.push_back(scored(std::move(order)));
  }

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* winner = nullptr;
    for (std::size_t i = 0; i < config.tournament; ++i) {
      const auto& cand = population[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(population.size()) - 1))];
      if (winner == nullptr || cand.score < winner->score) winner = &cand;
    }
    return *winner;
  };

  for (std::size_t gen = 0; gen < config.generations; ++gen) {
    std::sort(population.begin(), population.end(),
              [](const Individual& x, const Individual& y) { return x.score < y.score; });
    if (population.front().score < best.score) {
      best.score = population.front().score;
      best.order = population.front().order;
    }
    std::vector<Individual> next;
    next.reserve(config.population);
    for (std::size_t e = 0; e < std::min(config.elites, population.size()); ++e) {
      next.push_back(population[e]);
    }
    while (next.size() < config.population) {
      const Individual& pa = tournament_pick();
      const Individual& pb = tournament_pick();
      std::vector<std::size_t> child =
          rng.bernoulli(config.crossover_rate) ? order_crossover(pa.order, pb.order, rng)
                                               : pa.order;
      if (rng.bernoulli(config.mutation_rate)) {
        const auto i =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        const auto j =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        std::swap(child[i], child[j]);
      }
      next.push_back(scored(std::move(child)));
    }
    population = std::move(next);
  }
  for (const auto& ind : population) {
    if (ind.score < best.score) {
      best.score = ind.score;
      best.order = ind.order;
    }
  }
  return best;
}

}  // namespace reasched::opt
