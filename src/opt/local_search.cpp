#include "opt/local_search.hpp"

#include <stdexcept>

namespace reasched::opt {

LocalSearchResult local_search(const ProblemView& problem, std::vector<std::size_t> order,
                               const ObjectiveWeights& weights, std::size_t max_evaluations,
                               EvalPolicy policy) {
  if (order.size() != problem.n_jobs()) {
    throw std::invalid_argument("decode_order: order size mismatch");
  }
  LocalSearchResult result;
  result.order = std::move(order);
  IncrementalEvaluator eval(problem, weights, policy);
  result.score = eval.score(result.order);
  result.evaluations = 1;

  const std::size_t n = result.order.size();
  if (n < 2) {
    result.eval = eval.stats();
    return result;
  }

  // A candidate is kept only when it improves the incumbent under the
  // relative tolerance, so the evaluation may abort as soon as the bound
  // fails that same predicate (kTolerance) - rejections are then decided
  // without decoding the suffix. Accepting a candidate re-anchors the
  // evaluator's cache via commit_last(), reusing the trajectory the
  // accepting evaluation already decoded.
  bool improved = true;
  while (improved && result.evaluations < max_evaluations) {
    improved = false;
    // Adjacent swaps: the cheapest moves, scanned first.
    for (std::size_t i = 0; i + 1 < n && result.evaluations < max_evaluations; ++i) {
      std::swap(result.order[i], result.order[i + 1]);
      const auto r = eval.score_with_cutoff(result.order, result.score, CutoffMode::kTolerance);
      ++result.evaluations;
      if (r.exact && improves(r.value, result.score)) {
        result.score = r.value;
        improved = true;
        eval.commit_last();
      } else {
        std::swap(result.order[i], result.order[i + 1]);
      }
    }
    // Head-insertions: move a job to the front (breaks convoys fast).
    for (std::size_t i = 1; i < n && result.evaluations < max_evaluations; ++i) {
      const std::size_t v = result.order[i];
      result.order.erase(result.order.begin() + static_cast<std::ptrdiff_t>(i));
      result.order.insert(result.order.begin(), v);
      const auto r = eval.score_with_cutoff(result.order, result.score, CutoffMode::kTolerance);
      ++result.evaluations;
      if (r.exact && improves(r.value, result.score)) {
        result.score = r.value;
        improved = true;
        eval.commit_last();
      } else {
        result.order.erase(result.order.begin());
        result.order.insert(result.order.begin() + static_cast<std::ptrdiff_t>(i), v);
      }
    }
  }
  result.eval = eval.stats();
  return result;
}

}  // namespace reasched::opt
