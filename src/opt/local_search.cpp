#include "opt/local_search.hpp"

#include "opt/list_scheduler.hpp"

namespace reasched::opt {

LocalSearchResult local_search(const ProblemView& problem, std::vector<std::size_t> order,
                               const ObjectiveWeights& weights, std::size_t max_evaluations) {
  LocalSearchResult result;
  result.order = std::move(order);
  result.score = evaluate(decode_order(problem, result.order), weights);
  result.evaluations = 1;

  const std::size_t n = result.order.size();
  if (n < 2) return result;

  bool improved = true;
  while (improved && result.evaluations < max_evaluations) {
    improved = false;
    // Adjacent swaps: the cheapest moves, scanned first.
    for (std::size_t i = 0; i + 1 < n && result.evaluations < max_evaluations; ++i) {
      std::swap(result.order[i], result.order[i + 1]);
      const double score = evaluate(decode_order(problem, result.order), weights);
      ++result.evaluations;
      if (score + 1e-12 < result.score) {
        result.score = score;
        improved = true;
      } else {
        std::swap(result.order[i], result.order[i + 1]);
      }
    }
    // Head-insertions: move a job to the front (breaks convoys fast).
    for (std::size_t i = 1; i < n && result.evaluations < max_evaluations; ++i) {
      const std::size_t v = result.order[i];
      result.order.erase(result.order.begin() + static_cast<std::ptrdiff_t>(i));
      result.order.insert(result.order.begin(), v);
      const double score = evaluate(decode_order(problem, result.order), weights);
      ++result.evaluations;
      if (score + 1e-12 < result.score) {
        result.score = score;
        improved = true;
      } else {
        result.order.erase(result.order.begin());
        result.order.insert(result.order.begin() + static_cast<std::ptrdiff_t>(i), v);
      }
    }
  }
  return result;
}

}  // namespace reasched::opt
