#pragma once

#include <vector>

#include "opt/incremental.hpp"
#include "opt/model.hpp"
#include "opt/objective.hpp"
#include "util/rng.hpp"

namespace reasched::opt {

struct SaConfig {
  std::size_t iterations = 4000;
  double initial_temperature = 0.05;  ///< fraction of the seed score
  double cooling = 0.995;             ///< geometric cooling per iteration
  EvalPolicy eval;                    ///< incremental/cutoff evaluation wiring
};

struct SaResult {
  std::vector<std::size_t> order;
  double score = 0.0;
  std::size_t accepted_moves = 0;
  std::size_t evaluations = 0;
  EvalStats eval;  ///< incremental-evaluation counters (cutoff hit rate etc.)
};

/// Simulated annealing over permutations (swap / insert / block-reverse
/// moves). The classical metaheuristic the paper's related work cites
/// (Bertsimas & Tsitsiklis 1993) applied to the list-schedule decoder;
/// together with branch-and-bound it forms the OR-Tools-like baseline.
SaResult simulated_annealing(const ProblemView& problem, std::vector<std::size_t> seed_order,
                             const ObjectiveWeights& weights, const SaConfig& config,
                             util::Rng& rng);

inline SaResult simulated_annealing(const Problem& problem, std::vector<std::size_t> seed_order,
                                    const ObjectiveWeights& weights, const SaConfig& config,
                                    util::Rng& rng) {
  return simulated_annealing(ProblemView(problem), std::move(seed_order), weights, config, rng);
}

}  // namespace reasched::opt
