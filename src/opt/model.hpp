#pragma once

#include <map>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/job.hpp"
#include "sim/scheduler.hpp"

namespace reasched::opt {

/// Offline scheduling problem snapshot handed to the solvers: the waiting
/// jobs, the cluster capacities, the current time, and the resources pinned
/// by already-running jobs (which release at known end times).
struct Problem {
  double now = 0.0;
  int total_nodes = 0;
  double total_memory_gb = 0.0;
  std::vector<sim::Job> jobs;
  /// (end_time, nodes, memory) triples of running allocations.
  struct Pinned {
    double end_time;
    int nodes;
    double memory_gb;
  };
  std::vector<Pinned> pinned;

  static Problem from_context(const sim::DecisionContext& ctx);
};

/// Solver output: a start time per job id plus the realized makespan and
/// the permutation that produced it.
struct PlannedSchedule {
  std::map<sim::JobId, double> start_times;
  std::vector<sim::JobId> order;
  double makespan = 0.0;          ///< completion of the last planned job
  double total_completion = 0.0;  ///< sum of completion times (tie-break term)
  double total_wait = 0.0;        ///< sum of (start - release)

  bool contains(sim::JobId id) const { return start_times.count(id) != 0; }
};

}  // namespace reasched::opt
