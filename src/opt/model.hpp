#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/job.hpp"
#include "sim/scheduler.hpp"

namespace reasched::opt {

/// Offline scheduling problem snapshot handed to the solvers: the waiting
/// jobs, the cluster capacities, the current time, and the resources pinned
/// by already-running jobs (which release at known end times).
///
/// This is the *copying* representation: from_context materializes the whole
/// waiting queue and running set per decision. The solvers themselves run on
/// ProblemView below; Problem survives as the differential oracle
/// (tests/test_opt_golden.cpp proves the zero-copy path decides bit-
/// identically) and as the owning container for ad-hoc instances in tests
/// and benches.
struct Problem {
  double now = 0.0;
  int total_nodes = 0;
  double total_memory_gb = 0.0;
  std::vector<sim::Job> jobs;
  /// (end_time, nodes, memory) triples of running allocations.
  struct Pinned {
    double end_time;
    int nodes;
    double memory_gb;
  };
  std::vector<Pinned> pinned;

  static Problem from_context(const sim::DecisionContext& ctx);
};

/// Zero-copy problem the solvers actually run on: borrows the engine's
/// indexed views (DecisionContext::waiting / ::running) instead of copying
/// them, optionally through a planning-window index that restricts the job
/// set to the selected queue positions. Building a view is O(1); nothing is
/// materialized per decision.
///
/// Lifetime contract (same as the underlying ListViews): a view is valid
/// only while the DecisionContext - or the Problem it adapts - is alive and
/// unmodified, i.e. within one scheduler callback. The optional window index
/// array must outlive the view as well; ProblemView does not copy it.
class ProblemView {
 public:
  ProblemView() = default;

  /// Adapter over a copying Problem (oracle and ad-hoc instances). Borrows
  /// problem's vectors; the Problem must outlive the view.
  explicit ProblemView(const Problem& problem)
      : now_(problem.now),
        total_nodes_(problem.total_nodes),
        total_memory_gb_(problem.total_memory_gb),
        jobs_(problem.jobs),
        pinned_(problem.pinned.data()),
        n_pinned_(problem.pinned.size()) {}

  /// Zero-copy view over a decision point. `window` - ascending queue
  /// positions as produced by sim::PlanningWindow::select - restricts the
  /// job set when non-null; null means all waiting jobs.
  static ProblemView from_context(const sim::DecisionContext& ctx,
                                  const std::vector<std::uint32_t>* window = nullptr);

  double now() const { return now_; }
  int total_nodes() const { return total_nodes_; }
  double total_memory_gb() const { return total_memory_gb_; }

  std::size_t n_jobs() const { return window_ != nullptr ? n_window_ : jobs_.size(); }
  const sim::Job& job(std::size_t i) const {
    return window_ != nullptr ? jobs_[window_[i]] : jobs_[i];
  }

  std::size_t n_pinned() const { return pinned_ != nullptr ? n_pinned_ : running_.size(); }
  Problem::Pinned pinned(std::size_t i) const {
    if (pinned_ != nullptr) return pinned_[i];
    const sim::Allocation& alloc = running_[i];
    return {alloc.end_time, alloc.job.nodes, alloc.job.memory_gb};
  }

 private:
  double now_ = 0.0;
  int total_nodes_ = 0;
  double total_memory_gb_ = 0.0;
  sim::JobListView jobs_;
  const std::uint32_t* window_ = nullptr;  ///< positions into jobs_, ascending
  std::size_t n_window_ = 0;
  const Problem::Pinned* pinned_ = nullptr;  ///< adapter mode storage
  std::size_t n_pinned_ = 0;
  sim::AllocationListView running_;  ///< context mode storage
};

/// Solver output: a start time per job id plus the realized makespan and
/// the permutation that produced it.
struct PlannedSchedule {
  std::map<sim::JobId, double> start_times;
  std::vector<sim::JobId> order;
  double makespan = 0.0;          ///< completion of the last planned job
  double total_completion = 0.0;  ///< sum of completion times (tie-break term)
  double total_wait = 0.0;        ///< sum of (start - release)

  bool contains(sim::JobId id) const { return start_times.count(id) != 0; }
};

}  // namespace reasched::opt
