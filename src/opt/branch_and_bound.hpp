#pragma once

#include <cstddef>
#include <vector>

#include "opt/model.hpp"
#include "opt/objective.hpp"

namespace reasched::opt {

struct BnbConfig {
  /// Hard cap on explored nodes; on expiry the incumbent is returned with
  /// proven_optimal = false.
  std::size_t max_nodes = 250000;
};

struct BnbResult {
  std::vector<std::size_t> order;
  double score = 0.0;
  std::size_t explored = 0;
  bool proven_optimal = false;
};

/// Exact branch-and-bound over job permutations (depth-first, prefix
/// decoding, area + critical-path lower bounds, identical-job dominance).
/// Optimal within the list-schedule space - tests verify it matches
/// exhaustive enumeration on small instances. Practical up to ~10-12 jobs,
/// which covers the paper's smallest queue sizes; the optimizing scheduler
/// falls back to SA beyond that.
BnbResult branch_and_bound(const ProblemView& problem, const ObjectiveWeights& weights,
                           const BnbConfig& config = {});

inline BnbResult branch_and_bound(const Problem& problem, const ObjectiveWeights& weights,
                                  const BnbConfig& config = {}) {
  return branch_and_bound(ProblemView(problem), weights, config);
}

}  // namespace reasched::opt
