#pragma once

#include <cstddef>
#include <vector>

#include "opt/incremental.hpp"
#include "opt/model.hpp"
#include "opt/objective.hpp"

namespace reasched::opt {

struct BnbConfig {
  /// Hard cap on explored nodes; on expiry the incumbent is returned with
  /// proven_optimal = false.
  std::size_t max_nodes = 250000;
  EvalPolicy eval;  ///< incremental prefix-decode wiring (the search tree is
                    ///< identical either way; only the decode mechanics change)
};

struct BnbResult {
  std::vector<std::size_t> order;
  double score = 0.0;
  std::size_t explored = 0;
  std::size_t pruned = 0;  ///< subtrees cut by the lower bound
  bool proven_optimal = false;
};

/// Exact branch-and-bound over job permutations (depth-first, incrementally
/// cached prefix decoding, area + critical-path lower bounds with O(1)
/// running remaining-work sums, equivalence-class dominance, children
/// visited best-bound-first). Optimal within the list-schedule space - tests
/// verify it matches exhaustive enumeration on small instances. The node
/// budget makes it usable as an anytime solver on deep queues; the
/// optimizing scheduler still falls back to SA beyond its threshold.
BnbResult branch_and_bound(const ProblemView& problem, const ObjectiveWeights& weights,
                           const BnbConfig& config = {});

inline BnbResult branch_and_bound(const Problem& problem, const ObjectiveWeights& weights,
                                  const BnbConfig& config = {}) {
  return branch_and_bound(ProblemView(problem), weights, config);
}

}  // namespace reasched::opt
