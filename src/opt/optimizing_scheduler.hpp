#pragma once

#include <cstdint>
#include <vector>

#include "opt/branch_and_bound.hpp"
#include "opt/incremental.hpp"
#include "opt/objective.hpp"
#include "opt/simulated_annealing.hpp"
#include "sim/planning_window.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace reasched::opt {

struct OptimizingSchedulerConfig {
  ObjectiveWeights weights;
  /// Queue sizes up to this use exact branch-and-bound; larger fall back to
  /// seeds + local search + simulated annealing.
  std::size_t bnb_threshold = 9;
  SaConfig sa;
  std::size_t local_search_evals = 3000;
  /// Full metaheuristic re-optimization every this many greedy insertions
  /// (new arrivals are first placed by best-position insertion, which is
  /// cheap; periodic SA keeps the plan near-optimal).
  std::size_t reopt_every = 16;
  std::uint64_t seed = 1;
  /// Planning window bounding how many waiting jobs each plan considers
  /// (top_k = 0 reproduces the paper's all-jobs semantics exactly). Jobs
  /// outside the window are invisible to the plan until they enter it -
  /// the fixed-size-observation trade the related RL schedulers make.
  sim::PlanningWindow window;
  /// Incremental/cutoff evaluation wiring, forwarded to every solver in the
  /// portfolio (incremental=false restores the naive full-decode pipeline;
  /// cross_check=true runs the per-candidate differential oracle).
  EvalPolicy eval;
  /// Profile-guided SA/local-search budget tuning (`opt:portfolio?
  /// budget=auto`): a short wall-clock probe measures evaluations/sec on
  /// the live queue and sizes the metaheuristic budgets to auto_budget_ms
  /// per replan. Wall-clock-driven, hence machine-dependent and NOT
  /// run-to-run reproducible - keep it off (the default) for golden paths.
  bool auto_budget = false;
  double auto_budget_ms = 40.0;
  /// Differential-oracle mode (tests/test_opt_golden.cpp): plan over the
  /// copying Problem::from_context snapshot instead of the zero-copy
  /// ProblemView. Decisions must be bit-identical when window.top_k == 0.
  bool copy_problem_oracle = false;
};

/// The OR-Tools stand-in (see DESIGN.md "Substitutions"): computes
/// near-optimal offline schedules for the currently known queue and executes
/// them as a priority order through the simulator, re-planning as jobs
/// arrive. Like the paper's OR-Tools baseline it optimizes makespan/packing
/// with no fairness term, which yields the paper's signature behaviour:
/// highest utilization and throughput, degraded wait-time fairness.
class OptimizingScheduler final : public sim::Scheduler {
 public:
  explicit OptimizingScheduler(OptimizingSchedulerConfig config = {});

  sim::Action decide(const sim::DecisionContext& ctx) override;
  std::string name() const override { return "OR-Tools*"; }
  std::string last_thought() const override { return last_thought_; }
  void reset() override;

  /// Number of full plan computations performed (observability for tests).
  std::size_t replans() const { return replans_; }

  /// Lifetime solver counters (replans, incremental-evaluation totals, BnB
  /// nodes), sampled into decision spans and stats snapshots.
  std::vector<std::pair<std::string, double>> obs_counters() const override;

 private:
  void full_replan(const ProblemView& problem);
  void insert_new_jobs(const ProblemView& problem);
  void tune_budget(const ProblemView& problem);
  void accumulate_eval(const EvalStats& stats);

  OptimizingSchedulerConfig config_;
  util::Rng rng_;
  /// Priority order over job ids; execution starts the first fitting job.
  std::vector<sim::JobId> priority_;
  /// Reused window-position scratch (avoids a per-decision allocation).
  std::vector<std::uint32_t> window_scratch_;
  std::size_t insertions_since_reopt_ = 0;
  std::size_t replans_ = 0;
  /// Observe-only lifetime totals across every evaluator/solver the
  /// portfolio ran; never read back into planning.
  EvalStats eval_totals_;
  std::size_t bnb_nodes_ = 0;
  /// budget=auto calibration state (valid while the queue size stays within
  /// 2x of tuned_for_n_).
  std::size_t tuned_sa_iterations_ = 0;
  std::size_t tuned_ls_evals_ = 0;
  std::size_t tuned_for_n_ = 0;
  double probe_sink_ = 0.0;
  std::string last_thought_;
};

}  // namespace reasched::opt
