#include "opt/optimizing_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "opt/list_scheduler.hpp"
#include "opt/local_search.hpp"
#include "util/string_utils.hpp"

namespace reasched::opt {

OptimizingScheduler::OptimizingScheduler(OptimizingSchedulerConfig config)
    : config_(config), rng_(config.seed) {}

void OptimizingScheduler::reset() {
  rng_ = util::Rng(config_.seed);
  priority_.clear();
  window_scratch_.clear();
  insertions_since_reopt_ = 0;
  replans_ = 0;
  eval_totals_ = EvalStats{};
  bnb_nodes_ = 0;
  tuned_sa_iterations_ = 0;
  tuned_ls_evals_ = 0;
  tuned_for_n_ = 0;
  probe_sink_ = 0.0;
  last_thought_.clear();
}

void OptimizingScheduler::accumulate_eval(const EvalStats& stats) {
  eval_totals_.evaluations += stats.evaluations;
  eval_totals_.cutoff_hits += stats.cutoff_hits;
  eval_totals_.steps_decoded += stats.steps_decoded;
  eval_totals_.steps_reused += stats.steps_reused;
}

std::vector<std::pair<std::string, double>> OptimizingScheduler::obs_counters() const {
  return {{"opt/replans", static_cast<double>(replans_)},
          {"opt/evaluations", static_cast<double>(eval_totals_.evaluations)},
          {"opt/cutoff_hits", static_cast<double>(eval_totals_.cutoff_hits)},
          {"opt/steps_decoded", static_cast<double>(eval_totals_.steps_decoded)},
          {"opt/steps_reused", static_cast<double>(eval_totals_.steps_reused)},
          {"opt/bnb_nodes", static_cast<double>(bnb_nodes_)}};
}

void OptimizingScheduler::tune_budget(const ProblemView& problem) {
  const std::size_t n = problem.n_jobs();
  // A calibration stays valid while the queue size is within 2x: per-eval
  // cost is roughly linear in the decoded suffix, and the clamp absorbs the
  // rest. Avoids paying the probe on every replan.
  if (tuned_for_n_ != 0 && n <= tuned_for_n_ * 2 && tuned_for_n_ <= n * 2) return;

  std::size_t evals = 1;
  double elapsed_us = 1.0;
  if (n >= 2) {
    IncrementalEvaluator eval(problem, config_.weights, config_.eval);
    std::vector<std::size_t> order = order_by_arrival(problem);
    // LINT-ALLOW(wallclock): the opt-in budget=auto calibration probe deliberately measures
    // real eval cost to size metaheuristic budgets to a wall-clock target (see ARCHITECTURE.md).
    const auto t0 = std::chrono::steady_clock::now();
    probe_sink_ += eval.score(order);
    // Representative candidates: single adjacent swaps at varied depths,
    // since the replay + suffix cost an SA/LS candidate pays depends on
    // where it diverges from the cached incumbent.
    while (evals < 256) {
      const std::size_t i = (evals * 37) % (n - 1);
      std::swap(order[i], order[i + 1]);
      probe_sink_ +=
          eval.score_with_cutoff(order, IncrementalEvaluator::kNoCutoff, CutoffMode::kGreater)
              .value;
      std::swap(order[i], order[i + 1]);
      ++evals;
      elapsed_us =
          // LINT-ALLOW(wallclock): same calibration probe; elapsed time is the measurement.
          std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
              .count();
      if (elapsed_us > 2000.0) break;
    }
  }
  eval_totals_.evaluations += evals;  // probe evaluations, kept observable
  const double us_per_eval = std::max(1e-3, elapsed_us / static_cast<double>(evals));
  const double target_evals = config_.auto_budget_ms * 1000.0 / us_per_eval;
  // ~2/3 of the replan budget to SA, the rest across the two LS passes.
  tuned_sa_iterations_ =
      static_cast<std::size_t>(std::clamp(target_evals * 0.65, 500.0, 64000.0));
  tuned_ls_evals_ = static_cast<std::size_t>(std::clamp(target_evals * 0.22, 200.0, 20000.0));
  tuned_for_n_ = n;
}

void OptimizingScheduler::full_replan(const ProblemView& problem) {
  ++replans_;
  if (problem.n_jobs() <= config_.bnb_threshold) {
    BnbConfig bnb;
    bnb.eval = config_.eval;
    const BnbResult exact = branch_and_bound(problem, config_.weights, bnb);
    bnb_nodes_ += exact.explored;
    priority_.clear();
    for (const std::size_t idx : exact.order) priority_.push_back(problem.job(idx).id);
    last_thought_ = util::format("replan: branch-and-bound over %zu jobs (%zu nodes, %s)",
                                 problem.n_jobs(), exact.explored,
                                 exact.proven_optimal ? "proven optimal" : "budget-capped");
    return;
  }
  std::size_t sa_iterations = config_.sa.iterations;
  std::size_t ls_evals = config_.local_search_evals;
  if (config_.auto_budget) {
    tune_budget(problem);
    sa_iterations = tuned_sa_iterations_;
    ls_evals = tuned_ls_evals_;
  }
  // Portfolio: best seed -> local search -> SA -> final polish. A seeded
  // random restart joins the deterministic seeds; it is what makes repeated
  // runs explore different (equally good on makespan, different on
  // wait-fairness) plans - the run-to-run variance Figure 7 observes for
  // OR-Tools.
  std::vector<std::size_t> shuffled = order_by_arrival(problem);
  rng_.shuffle(shuffled);
  IncrementalEvaluator seed_eval(problem, config_.weights, config_.eval);
  std::vector<std::size_t> best = order_spt(problem);
  double best_score = seed_eval.score(best);
  for (const auto& seed : {order_by_arrival(problem), order_lpt(problem),
                           order_widest(problem), shuffled}) {
    const double s = seed_eval.score(seed);
    if (s < best_score) {
      best_score = s;
      best = seed;
    }
  }
  SaConfig sa_config = config_.sa;
  sa_config.iterations = sa_iterations;
  sa_config.eval = config_.eval;
  auto ls = local_search(problem, std::move(best), config_.weights, ls_evals, config_.eval);
  auto sa = simulated_annealing(problem, std::move(ls.order), config_.weights, sa_config, rng_);
  auto polished =
      local_search(problem, std::move(sa.order), config_.weights, ls_evals / 2, config_.eval);
  accumulate_eval(seed_eval.stats());
  accumulate_eval(ls.eval);
  accumulate_eval(sa.eval);
  accumulate_eval(polished.eval);
  priority_.clear();
  for (const std::size_t idx : polished.order) priority_.push_back(problem.job(idx).id);
  if (config_.auto_budget) {
    last_thought_ = util::format(
        "replan: SA portfolio over %zu jobs, objective %.1f (auto budget: sa=%zu ls=%zu)",
        problem.n_jobs(), polished.score, sa_iterations, ls_evals);
  } else {
    last_thought_ = util::format("replan: SA portfolio over %zu jobs, objective %.1f",
                                 problem.n_jobs(), polished.score);
  }
  insertions_since_reopt_ = 0;
}

void OptimizingScheduler::insert_new_jobs(const ProblemView& problem) {
  std::set<sim::JobId> planned(priority_.begin(), priority_.end());
  std::vector<sim::JobId> new_ids;
  std::unordered_map<sim::JobId, std::size_t> index_of;
  index_of.reserve(problem.n_jobs());
  for (std::size_t i = 0; i < problem.n_jobs(); ++i) {
    index_of.emplace(problem.job(i).id, i);
    if (planned.count(problem.job(i).id) == 0) new_ids.push_back(problem.job(i).id);
  }
  if (new_ids.empty()) return;

  const auto resolve = [&](sim::JobId id) {
    const auto it = index_of.find(id);
    if (it == index_of.end()) throw std::logic_error("OptimizingScheduler: id not in problem");
    return it->second;
  };

  // Greedy best-position insertion of each newcomer into the priority list.
  // The evaluator caches the current plan's decode; each position probe
  // replays only from its insertion point with the incumbent best as the
  // cutoff. An aborted probe proves score >= best_score, which the old
  // full-decode sweep would have rejected anyway (strict <, earliest
  // position keeps ties), so the chosen positions are bit-identical.
  IncrementalEvaluator eval(problem, config_.weights, config_.eval);
  std::vector<std::size_t> base;
  base.reserve(priority_.size() + new_ids.size());
  for (const sim::JobId pid : priority_) base.push_back(resolve(pid));

  for (const sim::JobId id : new_ids) {
    const std::size_t new_idx = resolve(id);
    eval.score(base);

    double best_score = 0.0;
    std::size_t best_pos = 0;
    bool first = true;
    for (std::size_t pos = 0; pos <= base.size(); ++pos) {
      const double cutoff = first ? IncrementalEvaluator::kNoCutoff : best_score;
      const auto r = eval.score_insertion(pos, new_idx, cutoff, CutoffMode::kGreaterEqual);
      if (!r.exact) continue;
      if (first || r.value < best_score) {
        best_score = r.value;
        best_pos = pos;
        first = false;
      }
    }
    base.insert(base.begin() + static_cast<std::ptrdiff_t>(best_pos), new_idx);
    priority_.insert(priority_.begin() + static_cast<std::ptrdiff_t>(best_pos), id);
    ++insertions_since_reopt_;
  }
  accumulate_eval(eval.stats());
  if (insertions_since_reopt_ >= config_.reopt_every) {
    full_replan(problem);
  }
}

sim::Action OptimizingScheduler::decide(const sim::DecisionContext& ctx) {
  if (ctx.waiting.empty()) {
    return ctx.arrivals_pending || !ctx.ineligible.empty() ? sim::Action::delay()
                                                           : sim::Action::stop();
  }
  // Oracle storage must outlive the view; it is only populated (and only
  // pays the copy) in copy_problem_oracle mode.
  Problem oracle;
  ProblemView problem;
  if (config_.copy_problem_oracle) {
    oracle = Problem::from_context(ctx);
    problem = ProblemView(oracle);
  } else {
    const bool bounded = config_.window.select(ctx.waiting, window_scratch_);
    problem = ProblemView::from_context(ctx, bounded ? &window_scratch_ : nullptr);
  }

  // Prune ids that left the (windowed) job set, then plan newcomers.
  std::set<sim::JobId> visible_ids;
  for (std::size_t i = 0; i < problem.n_jobs(); ++i) visible_ids.insert(problem.job(i).id);
  priority_.erase(std::remove_if(priority_.begin(), priority_.end(),
                                 [&](sim::JobId id) { return visible_ids.count(id) == 0; }),
                  priority_.end());
  if (priority_.empty()) {
    full_replan(problem);
  } else {
    insert_new_jobs(problem);
  }

  // Execute: start the highest-priority job that fits right now.
  for (const sim::JobId id : priority_) {
    for (std::size_t i = 0; i < problem.n_jobs(); ++i) {
      const sim::Job& j = problem.job(i);
      if (j.id == id && ctx.cluster.fits(j)) return sim::Action::start(id);
    }
  }
  return sim::Action::delay();
}

}  // namespace reasched::opt
