#include "opt/optimizing_scheduler.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "opt/list_scheduler.hpp"
#include "opt/local_search.hpp"
#include "util/string_utils.hpp"

namespace reasched::opt {

OptimizingScheduler::OptimizingScheduler(OptimizingSchedulerConfig config)
    : config_(config), rng_(config.seed) {}

void OptimizingScheduler::reset() {
  rng_ = util::Rng(config_.seed);
  priority_.clear();
  window_scratch_.clear();
  insertions_since_reopt_ = 0;
  replans_ = 0;
  last_thought_.clear();
}

void OptimizingScheduler::full_replan(const ProblemView& problem) {
  ++replans_;
  if (problem.n_jobs() <= config_.bnb_threshold) {
    const BnbResult exact = branch_and_bound(problem, config_.weights);
    priority_.clear();
    for (const std::size_t idx : exact.order) priority_.push_back(problem.job(idx).id);
    last_thought_ = util::format("replan: branch-and-bound over %zu jobs (%zu nodes, %s)",
                                 problem.n_jobs(), exact.explored,
                                 exact.proven_optimal ? "proven optimal" : "budget-capped");
    return;
  }
  // Portfolio: best seed -> local search -> SA -> final polish. A seeded
  // random restart joins the deterministic seeds; it is what makes repeated
  // runs explore different (equally good on makespan, different on
  // wait-fairness) plans - the run-to-run variance Figure 7 observes for
  // OR-Tools.
  std::vector<std::size_t> shuffled = order_by_arrival(problem);
  rng_.shuffle(shuffled);
  std::vector<std::size_t> best = order_spt(problem);
  double best_score = evaluate(decode_order(problem, best), config_.weights);
  for (const auto& seed : {order_by_arrival(problem), order_lpt(problem),
                           order_widest(problem), shuffled}) {
    const double s = evaluate(decode_order(problem, seed), config_.weights);
    if (s < best_score) {
      best_score = s;
      best = seed;
    }
  }
  auto ls = local_search(problem, std::move(best), config_.weights, config_.local_search_evals);
  auto sa = simulated_annealing(problem, std::move(ls.order), config_.weights, config_.sa, rng_);
  auto polished =
      local_search(problem, std::move(sa.order), config_.weights, config_.local_search_evals / 2);
  priority_.clear();
  for (const std::size_t idx : polished.order) priority_.push_back(problem.job(idx).id);
  last_thought_ = util::format("replan: SA portfolio over %zu jobs, objective %.1f",
                               problem.n_jobs(), polished.score);
  insertions_since_reopt_ = 0;
}

void OptimizingScheduler::insert_new_jobs(const ProblemView& problem) {
  std::set<sim::JobId> planned(priority_.begin(), priority_.end());
  std::vector<sim::JobId> new_ids;
  for (std::size_t i = 0; i < problem.n_jobs(); ++i) {
    if (planned.count(problem.job(i).id) == 0) new_ids.push_back(problem.job(i).id);
  }
  if (new_ids.empty()) return;

  // Map ids to indices in the problem's job set for decoding.
  auto index_of = [&problem](sim::JobId id) {
    for (std::size_t i = 0; i < problem.n_jobs(); ++i) {
      if (problem.job(i).id == id) return i;
    }
    throw std::logic_error("OptimizingScheduler: id not in problem");
  };

  for (const sim::JobId id : new_ids) {
    // Greedy best-position insertion of the newcomer into the priority list.
    std::vector<std::size_t> base;
    base.reserve(priority_.size());
    for (const sim::JobId pid : priority_) base.push_back(index_of(pid));
    const std::size_t new_idx = index_of(id);

    double best_score = 0.0;
    std::size_t best_pos = 0;
    bool first = true;
    for (std::size_t pos = 0; pos <= base.size(); ++pos) {
      std::vector<std::size_t> candidate = base;
      candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(pos), new_idx);
      const double score = evaluate(decode_subset(problem, candidate), config_.weights);
      if (first || score < best_score) {
        best_score = score;
        best_pos = pos;
        first = false;
      }
    }
    priority_.insert(priority_.begin() + static_cast<std::ptrdiff_t>(best_pos), id);
    ++insertions_since_reopt_;
  }
  if (insertions_since_reopt_ >= config_.reopt_every) {
    full_replan(problem);
  }
}

sim::Action OptimizingScheduler::decide(const sim::DecisionContext& ctx) {
  if (ctx.waiting.empty()) {
    return ctx.arrivals_pending || !ctx.ineligible.empty() ? sim::Action::delay()
                                                           : sim::Action::stop();
  }
  // Oracle storage must outlive the view; it is only populated (and only
  // pays the copy) in copy_problem_oracle mode.
  Problem oracle;
  ProblemView problem;
  if (config_.copy_problem_oracle) {
    oracle = Problem::from_context(ctx);
    problem = ProblemView(oracle);
  } else {
    const bool bounded = config_.window.select(ctx.waiting, window_scratch_);
    problem = ProblemView::from_context(ctx, bounded ? &window_scratch_ : nullptr);
  }

  // Prune ids that left the (windowed) job set, then plan newcomers.
  std::set<sim::JobId> visible_ids;
  for (std::size_t i = 0; i < problem.n_jobs(); ++i) visible_ids.insert(problem.job(i).id);
  priority_.erase(std::remove_if(priority_.begin(), priority_.end(),
                                 [&](sim::JobId id) { return visible_ids.count(id) == 0; }),
                  priority_.end());
  if (priority_.empty()) {
    full_replan(problem);
  } else {
    insert_new_jobs(problem);
  }

  // Execute: start the highest-priority job that fits right now.
  for (const sim::JobId id : priority_) {
    for (std::size_t i = 0; i < problem.n_jobs(); ++i) {
      const sim::Job& j = problem.job(i);
      if (j.id == id && ctx.cluster.fits(j)) return sim::Action::start(id);
    }
  }
  return sim::Action::delay();
}

}  // namespace reasched::opt
