#pragma once

#include <vector>

#include "opt/model.hpp"

namespace reasched::opt {

/// Fast serial list-schedule decoder: place jobs in permutation order, each
/// starting no earlier than its predecessor, advancing a completion heap
/// when resources are insufficient. O(n log n) per evaluation, which is what
/// makes simulated annealing affordable inside the replanning loop.
///
/// The search space is "all list schedules" - the same space OR-Tools-style
/// CP models effectively explore for cumulative scheduling when decoding
/// rank variables. branch_and_bound.cpp proves optimality within this space
/// on small instances (verified against brute force in tests).
///
/// `order` indexes into the view's job set (0..n_jobs-1). Jobs are never
/// started before max(problem.now(), job.submit_time).
PlannedSchedule decode_order(const ProblemView& problem, const std::vector<std::size_t>& order);

/// Decode only the listed jobs (a prefix or subset of the view's job set),
/// in the given order, against the same pinned resources. This is what
/// branch-and-bound uses to cost a placed prefix without materializing a
/// sub-Problem per node.
PlannedSchedule decode_subset(const ProblemView& problem, const std::vector<std::size_t>& order);

/// Common seed orderings for the metaheuristics.
std::vector<std::size_t> order_by_arrival(const ProblemView& problem);
std::vector<std::size_t> order_spt(const ProblemView& problem);    ///< shortest walltime first
std::vector<std::size_t> order_lpt(const ProblemView& problem);    ///< longest walltime first
std::vector<std::size_t> order_widest(const ProblemView& problem); ///< most nodes first

/// Copying-Problem overloads (oracle path, tests, benches): same semantics
/// through a borrowing view.
inline PlannedSchedule decode_order(const Problem& p, const std::vector<std::size_t>& order) {
  return decode_order(ProblemView(p), order);
}
inline std::vector<std::size_t> order_by_arrival(const Problem& p) {
  return order_by_arrival(ProblemView(p));
}
inline std::vector<std::size_t> order_spt(const Problem& p) { return order_spt(ProblemView(p)); }
inline std::vector<std::size_t> order_lpt(const Problem& p) { return order_lpt(ProblemView(p)); }
inline std::vector<std::size_t> order_widest(const Problem& p) {
  return order_widest(ProblemView(p));
}

}  // namespace reasched::opt
