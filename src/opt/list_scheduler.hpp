#pragma once

#include <vector>

#include "opt/model.hpp"

namespace reasched::opt {

/// Fast serial list-schedule decoder: place jobs in permutation order, each
/// starting no earlier than its predecessor, advancing a completion heap
/// when resources are insufficient. O(n log n) per evaluation, which is what
/// makes simulated annealing affordable inside the replanning loop.
///
/// The search space is "all list schedules" - the same space OR-Tools-style
/// CP models effectively explore for cumulative scheduling when decoding
/// rank variables. branch_and_bound.cpp proves optimality within this space
/// on small instances (verified against brute force in tests).
///
/// `order` indexes into problem.jobs. Jobs are never started before
/// max(problem.now, job.submit_time).
PlannedSchedule decode_order(const Problem& problem, const std::vector<std::size_t>& order);

/// Common seed orderings for the metaheuristics.
std::vector<std::size_t> order_by_arrival(const Problem& problem);
std::vector<std::size_t> order_spt(const Problem& problem);   ///< shortest walltime first
std::vector<std::size_t> order_lpt(const Problem& problem);   ///< longest walltime first
std::vector<std::size_t> order_widest(const Problem& problem);///< most nodes first

}  // namespace reasched::opt
