#include "opt/particle_swarm.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace reasched::opt {

std::vector<std::pair<std::size_t, std::size_t>> swap_sequence(
    std::vector<std::size_t> from, const std::vector<std::size_t>& to) {
  std::vector<std::pair<std::size_t, std::size_t>> swaps;
  const std::size_t n = from.size();
  // position_of[value] = index in `from`, maintained across swaps.
  std::vector<std::size_t> position_of(n);
  for (std::size_t i = 0; i < n; ++i) position_of[from[i]] = i;
  for (std::size_t i = 0; i < n; ++i) {
    if (from[i] == to[i]) continue;
    const std::size_t j = position_of[to[i]];
    swaps.emplace_back(i, j);
    position_of[from[i]] = j;
    position_of[from[j]] = i;
    std::swap(from[i], from[j]);
  }
  return swaps;
}

namespace {
struct OrderHash {
  std::size_t operator()(const std::vector<std::size_t>& order) const {
    std::size_t h = 14695981039346656037ull;
    for (const std::size_t x : order) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return h;
  }
};
}  // namespace

PsoResult particle_swarm(const ProblemView& problem, std::vector<std::size_t> seed_order,
                         const ObjectiveWeights& weights, const PsoConfig& config,
                         util::Rng& rng) {
  if (seed_order.size() != problem.n_jobs()) {
    throw std::invalid_argument("decode_order: order size mismatch");
  }
  PsoResult best;
  const std::size_t n = seed_order.size();
  best.order = seed_order;
  IncrementalEvaluator eval(problem, weights, config.eval);
  eval.set_commit_tracking(false);  // swarms never re-anchor the cache
  best.score = eval.score(best.order);
  best.evaluations = 1;
  if (n < 2 || config.particles == 0) {
    best.eval = eval.stats();
    return best;
  }

  // swap_sequence copies its `from` argument and allocates the position map
  // and the result on every call - twice per particle per iteration. These
  // reused buffers compute the identical sequence without the allocations.
  std::vector<std::size_t> seq_from(n);
  std::vector<std::size_t> seq_position_of(n);
  std::vector<std::pair<std::size_t, std::size_t>> seq_swaps;
  const auto swap_sequence_into = [&](const std::vector<std::size_t>& from,
                                      const std::vector<std::size_t>& to) {
    seq_swaps.clear();
    seq_from = from;
    for (std::size_t i = 0; i < n; ++i) seq_position_of[seq_from[i]] = i;
    for (std::size_t i = 0; i < n; ++i) {
      if (seq_from[i] == to[i]) continue;
      const std::size_t j = seq_position_of[to[i]];
      seq_swaps.emplace_back(i, j);
      seq_position_of[seq_from[i]] = j;
      seq_position_of[seq_from[j]] = i;
      std::swap(seq_from[i], seq_from[j]);
    }
  };

  struct Particle {
    std::vector<std::size_t> position;
    std::vector<std::size_t> personal_best;
    double personal_score;
  };

  // Memo over positions (converged swarms re-visit identical permutations).
  // An entry is either an exact score or, after a cutoff abort, the fact
  // "score >= value". The memo's key set and the hit/miss sequence are
  // identical whether or not cutoffs fire (misses always insert), so
  // `evaluations`/`memo_hits` match the naive evaluation mode bit-for-bit.
  struct Known {
    double value;
    bool exact;
  };
  std::unordered_map<std::vector<std::size_t>, Known, OrderHash> memo;
  memo.emplace(best.order, Known{best.score, true});

  auto exact_score = [&](const std::vector<std::size_t>& order) {
    return eval.score_with_cutoff(order, IncrementalEvaluator::kNoCutoff, CutoffMode::kGreaterEqual)
        .value;
  };

  std::vector<Particle> swarm;
  swarm.reserve(config.particles);
  for (std::size_t p = 0; p < config.particles; ++p) {
    auto pos = seed_order;
    if (p != 0) rng.shuffle(pos);
    double s;
    if (const auto it = memo.find(pos); it != memo.end()) {
      ++best.memo_hits;
      s = it->second.value;  // init entries are always exact
    } else {
      ++best.evaluations;
      s = exact_score(pos);
      memo.emplace(pos, Known{s, true});
    }
    if (s < best.score) {
      best.score = s;
      best.order = pos;
    }
    swarm.push_back({pos, pos, s});
  }

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    for (auto& particle : swarm) {
      // Pull toward personal best: apply each corrective swap with prob c1.
      swap_sequence_into(particle.position, particle.personal_best);
      for (const auto& [i, j] : seq_swaps) {
        if (rng.bernoulli(config.c1)) std::swap(particle.position[i], particle.position[j]);
      }
      // Pull toward global best with prob c2.
      swap_sequence_into(particle.position, best.order);
      for (const auto& [i, j] : seq_swaps) {
        if (rng.bernoulli(config.c2)) std::swap(particle.position[i], particle.position[j]);
      }
      // Inertia: random exploratory swaps.
      if (rng.bernoulli(std::min(1.0, config.inertia))) {
        const auto i =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        const auto j =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        std::swap(particle.position[i], particle.position[j]);
      }

      // Evaluate against the particle's personal best as the cutoff: the
      // global best is never above it, so an abort (score >= personal)
      // rejects both updates - exactly what the full score would decide.
      bool reject = false;
      double s = 0.0;
      if (const auto it = memo.find(particle.position); it != memo.end()) {
        ++best.memo_hits;
        if (it->second.exact) {
          s = it->second.value;
        } else if (it->second.value >= particle.personal_score) {
          reject = true;  // memoized bound still clears the new cutoff
        } else {
          // Bound is inconclusive against this cutoff; resolve exactly and
          // upgrade the entry (uncounted: a hit either way).
          s = exact_score(particle.position);
          it->second = Known{s, true};
        }
      } else {
        ++best.evaluations;
        const auto r =
            eval.score_with_cutoff(particle.position, particle.personal_score,
                                   CutoffMode::kGreaterEqual);
        memo.emplace(particle.position, Known{r.value, r.exact});
        if (r.exact) {
          s = r.value;
        } else {
          reject = true;
        }
      }
      if (reject) continue;
      if (s < particle.personal_score) {
        particle.personal_score = s;
        particle.personal_best = particle.position;
      }
      if (s < best.score) {
        best.score = s;
        best.order = particle.position;
      }
    }
  }
  best.eval = eval.stats();
  return best;
}

}  // namespace reasched::opt
