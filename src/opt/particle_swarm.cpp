#include "opt/particle_swarm.hpp"

#include <algorithm>

#include "opt/list_scheduler.hpp"

namespace reasched::opt {

std::vector<std::pair<std::size_t, std::size_t>> swap_sequence(
    std::vector<std::size_t> from, const std::vector<std::size_t>& to) {
  std::vector<std::pair<std::size_t, std::size_t>> swaps;
  const std::size_t n = from.size();
  // position_of[value] = index in `from`, maintained across swaps.
  std::vector<std::size_t> position_of(n);
  for (std::size_t i = 0; i < n; ++i) position_of[from[i]] = i;
  for (std::size_t i = 0; i < n; ++i) {
    if (from[i] == to[i]) continue;
    const std::size_t j = position_of[to[i]];
    swaps.emplace_back(i, j);
    position_of[from[i]] = j;
    position_of[from[j]] = i;
    std::swap(from[i], from[j]);
  }
  return swaps;
}

PsoResult particle_swarm(const ProblemView& problem, std::vector<std::size_t> seed_order,
                         const ObjectiveWeights& weights, const PsoConfig& config,
                         util::Rng& rng) {
  PsoResult best;
  const std::size_t n = seed_order.size();
  best.order = seed_order;
  best.score = evaluate(decode_order(problem, best.order), weights);
  best.evaluations = 1;
  if (n < 2 || config.particles == 0) return best;

  struct Particle {
    std::vector<std::size_t> position;
    std::vector<std::size_t> personal_best;
    double personal_score;
  };

  auto score_of = [&](const std::vector<std::size_t>& order) {
    ++best.evaluations;
    return evaluate(decode_order(problem, order), weights);
  };

  std::vector<Particle> swarm;
  swarm.reserve(config.particles);
  for (std::size_t p = 0; p < config.particles; ++p) {
    auto pos = seed_order;
    if (p != 0) rng.shuffle(pos);
    const double s = score_of(pos);
    if (s < best.score) {
      best.score = s;
      best.order = pos;
    }
    swarm.push_back({pos, pos, s});
  }

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    for (auto& particle : swarm) {
      // Pull toward personal best: apply each corrective swap with prob c1.
      for (const auto& [i, j] : swap_sequence(particle.position, particle.personal_best)) {
        if (rng.bernoulli(config.c1)) std::swap(particle.position[i], particle.position[j]);
      }
      // Pull toward global best with prob c2.
      for (const auto& [i, j] : swap_sequence(particle.position, best.order)) {
        if (rng.bernoulli(config.c2)) std::swap(particle.position[i], particle.position[j]);
      }
      // Inertia: random exploratory swaps.
      if (rng.bernoulli(std::min(1.0, config.inertia))) {
        const auto i =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        const auto j =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        std::swap(particle.position[i], particle.position[j]);
      }

      const double s = score_of(particle.position);
      if (s < particle.personal_score) {
        particle.personal_score = s;
        particle.personal_best = particle.position;
      }
      if (s < best.score) {
        best.score = s;
        best.order = particle.position;
      }
    }
  }
  return best;
}

}  // namespace reasched::opt
