#pragma once

#include <vector>

#include "opt/incremental.hpp"
#include "opt/model.hpp"
#include "opt/objective.hpp"

namespace reasched::opt {

/// First-improvement hill climbing over permutations with adjacent-swap and
/// single-insert neighbourhoods. Cheap polish applied to seed orderings and
/// to the simulated-annealing incumbent.
struct LocalSearchResult {
  std::vector<std::size_t> order;
  double score = 0.0;
  std::size_t evaluations = 0;
  EvalStats eval;  ///< incremental-evaluation counters (cutoff hit rate etc.)
};

LocalSearchResult local_search(const ProblemView& problem, std::vector<std::size_t> order,
                               const ObjectiveWeights& weights,
                               std::size_t max_evaluations = 20000, EvalPolicy policy = {});

inline LocalSearchResult local_search(const Problem& problem, std::vector<std::size_t> order,
                                      const ObjectiveWeights& weights,
                                      std::size_t max_evaluations = 20000,
                                      EvalPolicy policy = {}) {
  return local_search(ProblemView(problem), std::move(order), weights, max_evaluations, policy);
}

}  // namespace reasched::opt
