#pragma once

#include <vector>

#include "opt/incremental.hpp"
#include "opt/model.hpp"
#include "opt/objective.hpp"
#include "util/rng.hpp"

namespace reasched::opt {

/// Permutation genetic algorithm (the paper's related work cites GA -
/// Mirjalili 2019 - as a classical metaheuristic for HPC scheduling).
/// Tournament selection, order crossover (OX1), swap mutation, elitism,
/// all over the same list-schedule decoder as SA and B&B so solver quality
/// is directly comparable (bench/ablation_solvers).
struct GaConfig {
  std::size_t population = 40;
  std::size_t generations = 60;
  std::size_t tournament = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.25;
  std::size_t elites = 2;
  EvalPolicy eval;  ///< incremental evaluation wiring (GA never cuts off:
                    ///< sorting and tournaments need every exact score)
};

struct GaResult {
  std::vector<std::size_t> order;
  double score = 0.0;
  std::size_t evaluations = 0;
  std::size_t memo_hits = 0;  ///< duplicate candidates served from the memo
  EvalStats eval;             ///< incremental-evaluation counters
};

GaResult genetic_algorithm(const ProblemView& problem, std::vector<std::size_t> seed_order,
                           const ObjectiveWeights& weights, const GaConfig& config,
                           util::Rng& rng);

inline GaResult genetic_algorithm(const Problem& problem, std::vector<std::size_t> seed_order,
                                  const ObjectiveWeights& weights, const GaConfig& config,
                                  util::Rng& rng) {
  return genetic_algorithm(ProblemView(problem), std::move(seed_order), weights, config, rng);
}

/// Order crossover (OX1): copy a random slice from parent A, fill the rest
/// in parent B's relative order. Exposed for unit testing.
std::vector<std::size_t> order_crossover(const std::vector<std::size_t>& a,
                                         const std::vector<std::size_t>& b,
                                         util::Rng& rng);

}  // namespace reasched::opt
