#include "opt/simulated_annealing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reasched::opt {

SaResult simulated_annealing(const ProblemView& problem, std::vector<std::size_t> seed_order,
                             const ObjectiveWeights& weights, const SaConfig& config,
                             util::Rng& rng) {
  if (seed_order.size() != problem.n_jobs()) {
    throw std::invalid_argument("decode_order: order size mismatch");
  }
  SaResult best;
  best.order = seed_order;
  IncrementalEvaluator eval(problem, weights, config.eval);
  best.score = eval.score(best.order);
  best.evaluations = 1;

  const std::size_t n = seed_order.size();
  if (n < 2) {
    best.eval = eval.stats();
    return best;
  }

  std::vector<std::size_t> current = std::move(seed_order);
  double current_score = best.score;
  double temperature = std::max(1e-9, best.score * config.initial_temperature);

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    std::vector<std::size_t> candidate = current;
    const auto move = rng.uniform_int(0, 2);
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (i == j) j = (j + 1) % n;
    switch (move) {
      case 0:  // swap
        std::swap(candidate[i], candidate[j]);
        break;
      case 1: {  // insert i at position j
        const std::size_t v = candidate[i];
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
        candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(std::min(j, n - 1)), v);
        break;
      }
      default: {  // reverse the block between i and j
        const auto [lo, hi] = std::minmax(i, j);
        std::reverse(candidate.begin() + static_cast<std::ptrdiff_t>(lo),
                     candidate.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
        break;
      }
    }
    ++best.evaluations;
    // kGreater: an abort proves score > current_score, i.e. delta > 0 - the
    // branch where the baseline draws its acceptance uniform. Draw it here
    // too so the RNG stream stays aligned, then reject outright when the
    // draw already fails the *optimistic* acceptance probability: exp is
    // monotone, so u >= exp(-(bound-cur)/T) >= exp(-delta/T) rejects under
    // the exact delta as well. Only the inconclusive window pays for the
    // exact score.
    const auto r = eval.score_with_cutoff(candidate, current_score, CutoffMode::kGreater);
    double score = r.value;
    bool accept;
    if (r.exact) {
      const double delta = score - current_score;
      accept = delta <= 0.0 || rng.uniform_real(0.0, 1.0) < std::exp(-delta / temperature);
    } else {
      const double u = rng.uniform_real(0.0, 1.0);
      if (u >= std::exp(-(r.value - current_score) / temperature)) {
        accept = false;
      } else {
        // Inconclusive: resolve exactly by finishing the aborted decode from
        // its snapshot instead of re-decoding the candidate from scratch.
        score = eval.resume_exact(candidate).value;
        accept = u < std::exp(-(score - current_score) / temperature);
      }
    }
    if (accept) {
      current = std::move(candidate);
      current_score = score;
      ++best.accepted_moves;
      if (score < best.score) {
        best.score = score;
        best.order = current;
      }
      // Re-anchor the divergence cache on the incumbent: the accepting call
      // just decoded this exact order to completion, so the adoption is O(1).
      eval.commit_last();
    }
    temperature = std::max(1e-9, temperature * config.cooling);
  }
  best.eval = eval.stats();
  return best;
}

}  // namespace reasched::opt
