#include "opt/simulated_annealing.hpp"

#include <algorithm>
#include <cmath>

#include "opt/list_scheduler.hpp"

namespace reasched::opt {

SaResult simulated_annealing(const ProblemView& problem, std::vector<std::size_t> seed_order,
                             const ObjectiveWeights& weights, const SaConfig& config,
                             util::Rng& rng) {
  SaResult best;
  best.order = seed_order;
  best.score = evaluate(decode_order(problem, best.order), weights);
  best.evaluations = 1;

  const std::size_t n = seed_order.size();
  if (n < 2) return best;

  std::vector<std::size_t> current = std::move(seed_order);
  double current_score = best.score;
  double temperature = std::max(1e-9, best.score * config.initial_temperature);

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    std::vector<std::size_t> candidate = current;
    const auto move = rng.uniform_int(0, 2);
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (i == j) j = (j + 1) % n;
    switch (move) {
      case 0:  // swap
        std::swap(candidate[i], candidate[j]);
        break;
      case 1: {  // insert i at position j
        const std::size_t v = candidate[i];
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
        candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(std::min(j, n - 1)), v);
        break;
      }
      default: {  // reverse the block between i and j
        const auto [lo, hi] = std::minmax(i, j);
        std::reverse(candidate.begin() + static_cast<std::ptrdiff_t>(lo),
                     candidate.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
        break;
      }
    }
    const double score = evaluate(decode_order(problem, candidate), weights);
    ++best.evaluations;
    const double delta = score - current_score;
    if (delta <= 0.0 || rng.uniform_real(0.0, 1.0) < std::exp(-delta / temperature)) {
      current = std::move(candidate);
      current_score = score;
      ++best.accepted_moves;
      if (score < best.score) {
        best.score = score;
        best.order = current;
      }
    }
    temperature = std::max(1e-9, temperature * config.cooling);
  }
  return best;
}

}  // namespace reasched::opt
