#include "opt/branch_and_bound.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "opt/list_scheduler.hpp"

namespace reasched::opt {

namespace {

/// Children per node visited in best-bound-first order. Beyond this the
/// branching factor exceeds any realistic node budget, so only the best
/// kSortCap children are yielded by bound (under the total (bound, index)
/// order, which makes the chosen set unique and deterministic); the tail
/// keeps ascending index order and is reached only if every promising child
/// dies.
constexpr std::size_t kSortCap = 256;

struct Search {
  const ProblemView& problem;
  const ObjectiveWeights& weights;
  const BnbConfig& config;
  IncrementalEvaluator eval;
  BnbResult result;
  std::vector<std::size_t> prefix;
  std::vector<bool> used;
  bool budget_exhausted = false;

  /// Per-job bound ingredients, resolved once; the per-node remaining-work
  /// sums are threaded through dfs() as arguments so backtracking restores
  /// them exactly (no fragile subtract-then-re-add drift).
  std::vector<double> node_area, mem_area, completion_lb;
  double cp_global = 0.0;  ///< max over *all* jobs of release + duration -
                           ///< admissible even when some are placed (each
                           ///< placed job's end is itself >= its term)
  /// child_bound runs twice per unused job per node - two integer divides
  /// there dominated node expansion at large n. The reciprocals shift each
  /// bound by at most an ulp; both evaluation modes share this code, so the
  /// search tree stays mode-invariant.
  double now_cached = 0.0;
  double inv_nodes = 0.0;
  double inv_mem = 0.0;
  /// Equivalence classes of interchangeable jobs (identical duration/nodes/
  /// memory/submit); dominance branches only on the lowest-index unused
  /// member per class, stamped in O(1) per candidate per node.
  std::vector<std::size_t> class_id;
  std::vector<std::size_t> class_seen;
  std::size_t epoch = 0;

  Search(const ProblemView& p, const ObjectiveWeights& w, const BnbConfig& c)
      : problem(p), weights(w), config(c), eval(p, w, c.eval) {
    const std::size_t n = p.n_jobs();
    now_cached = p.now();
    if (p.total_nodes() > 0) inv_nodes = 1.0 / static_cast<double>(p.total_nodes());
    if (p.total_memory_gb() > 0.0) inv_mem = 1.0 / p.total_memory_gb();
    used.assign(n, false);
    node_area.resize(n);
    mem_area.resize(n);
    completion_lb.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const sim::Job& j = p.job(i);
      node_area[i] = static_cast<double>(j.nodes) * j.duration;
      mem_area[i] = j.memory_gb * j.duration;
      completion_lb[i] = std::max(p.now(), j.submit_time) + j.duration;
      cp_global = std::max(cp_global, completion_lb[i]);
    }
    std::vector<std::size_t> by_attrs(n);
    std::iota(by_attrs.begin(), by_attrs.end(), std::size_t{0});
    const auto attrs_less = [&](std::size_t a, std::size_t b) {
      const sim::Job& x = p.job(a);
      const sim::Job& y = p.job(b);
      if (x.duration != y.duration) return x.duration < y.duration;
      if (x.nodes != y.nodes) return x.nodes < y.nodes;
      if (x.memory_gb != y.memory_gb) return x.memory_gb < y.memory_gb;
      if (x.submit_time != y.submit_time) return x.submit_time < y.submit_time;
      return a < b;
    };
    const auto attrs_equal = [&](std::size_t a, std::size_t b) {
      const sim::Job& x = p.job(a);
      const sim::Job& y = p.job(b);
      return x.duration == y.duration && x.nodes == y.nodes && x.memory_gb == y.memory_gb &&
             x.submit_time == y.submit_time;
    };
    // total-order: attrs_less falls through to the unique problem index.
    std::sort(by_attrs.begin(), by_attrs.end(), attrs_less);
    class_id.resize(n);
    std::size_t classes = 0;
    for (std::size_t k = 0; k < n; ++k) {
      if (k == 0 || !attrs_equal(by_attrs[k], by_attrs[k - 1])) ++classes;
      class_id[by_attrs[k]] = classes - 1;
    }
    class_seen.assign(classes, 0);
  }

  /// Admissible lower bound from this prefix: max of the prefix's own
  /// makespan, the node/memory area bounds for the remaining work, and the
  /// global critical path; plus the completion-time term.
  double lower_bound(double prefix_makespan, double prefix_completion, double rem_node_area,
                     double rem_mem_area, double rem_completion) const {
    double lb_makespan = prefix_makespan;
    lb_makespan = std::max(lb_makespan, now_cached + rem_node_area * inv_nodes);
    if (inv_mem > 0.0) {
      lb_makespan = std::max(lb_makespan, now_cached + rem_mem_area * inv_mem);
    }
    lb_makespan = std::max(lb_makespan, cp_global);
    return weights.makespan_weight * lb_makespan +
           weights.completion_weight * (prefix_completion + rem_completion);
  }

  /// Cheap optimistic bound for ordering the children of a node: placing i
  /// next, nothing finishes before i's own release + duration, nor faster
  /// than the remaining work (minus i) can drain on the whole machine.
  double child_bound(std::size_t i, double rem_node_area, double rem_mem_area) const {
    double b = completion_lb[i];
    b = std::max(b, now_cached + (rem_node_area - node_area[i]) * inv_nodes);
    if (inv_mem > 0.0) {
      b = std::max(b, now_cached + (rem_mem_area - mem_area[i]) * inv_mem);
    }
    return b;
  }

  void dfs(double rem_node_area, double rem_mem_area, double rem_completion) {
    if (result.explored >= config.max_nodes) {
      budget_exhausted = true;
      return;
    }
    ++result.explored;

    if (prefix.size() == problem.n_jobs()) {
      const double score = eval.score(prefix);
      if (score < result.score) {
        result.score = score;
        result.order = prefix;
      }
      return;
    }

    // Prefix contribution: the evaluator re-decodes only from where this
    // prefix diverges from the previously cached one (one position per
    // descent step) instead of the whole prefix per node. The naive mode
    // decodes in full - both produce bit-identical accumulators, so the
    // bound values and hence the search tree are identical.
    double prefix_makespan;
    double prefix_completion;
    if (config.eval.incremental) {
      eval.score(prefix);
      const auto acc = eval.cached_accumulators();
      prefix_makespan = acc.makespan;
      prefix_completion = acc.completion;
    } else {
      const PlannedSchedule prefix_plan = decode_subset(problem, prefix);
      prefix_makespan = prefix_plan.makespan;
      prefix_completion = prefix_plan.total_completion;
    }
    if (!improves(lower_bound(prefix_makespan, prefix_completion, rem_node_area, rem_mem_area,
                              rem_completion),
                  result.score)) {
      ++result.pruned;
      return;
    }

    // Children are yielded lazily in ascending (bound, index) order, one
    // O(candidates) min-scan per yield. Eagerly materializing and sorting
    // the full child list per node - the previous implementation - was the
    // dominant cost of the whole search at large n: with max_nodes far below
    // the branching factor, a node's first child usually exhausts the budget
    // and the other ~n sorted entries are thrown away. The scan reproduces
    // the sorted sequence exactly: the k-th yield is the k-th smallest under
    // the same strict (bound, index) total order, and after kSortCap yields
    // it switches to the same ascending-index tail the sort-capped path
    // produced (reached only if every promising child dies).
    //
    // Dominance is stamped per scan (epoch'd visit marks): a job's class is
    // skipped if a lower-indexed unused member was seen earlier in this
    // scan. used[] is identical at every scan of one node, so each scan
    // sees the same candidate set the eager enumeration saw.
    struct Child {
      double bound;
      std::size_t index;
    };
    const auto by_bound = [](const Child& x, const Child& y) {
      if (x.bound != y.bound) return x.bound < y.bound;
      return x.index < y.index;
    };
    const std::size_t n = problem.n_jobs();
    Child last_yield{-std::numeric_limits<double>::infinity(), 0};
    Child pivot_tail{0.0, 0};   // valid once yields == kSortCap
    std::size_t tail_min = 0;   // tail resume cursor (tail indices ascend)
    for (std::size_t yields = 0;; ++yields) {
      Child next{std::numeric_limits<double>::infinity(),
                 std::numeric_limits<std::size_t>::max()};
      bool found = false;
      if (yields < kSortCap) {
        // Min scan: smallest (bound, index) strictly above the last yield.
        ++epoch;
        for (std::size_t i = 0; i < n; ++i) {
          if (used[i]) continue;
          if (class_seen[class_id[i]] == epoch) continue;  // dominated duplicate
          class_seen[class_id[i]] = epoch;
          const Child c{child_bound(i, rem_node_area, rem_mem_area), i};
          if (by_bound(last_yield, c) && by_bound(c, next)) {
            next = c;
            found = true;
          }
        }
        if (found && yields + 1 == kSortCap) pivot_tail = next;
      } else {
        // Tail: ascending index order, restricted to children strictly
        // above the kSortCap-th yield in the total order. Tail yields have
        // strictly ascending indices, so the cursor excludes exactly the
        // already-yielded ones (head yields are excluded by the pivot test:
        // they are <= pivot). The scan still starts at 0 because dominance
        // representatives (lowest unused index per class) must be stamped
        // even when they sit below the cursor.
        ++epoch;
        for (std::size_t i = 0; i < n; ++i) {
          if (used[i]) continue;
          if (class_seen[class_id[i]] == epoch) continue;
          class_seen[class_id[i]] = epoch;
          if (i < tail_min) continue;
          const Child c{child_bound(i, rem_node_area, rem_mem_area), i};
          if (by_bound(pivot_tail, c)) {
            next = c;
            tail_min = i + 1;
            found = true;
            break;
          }
        }
      }
      if (!found) break;
      last_yield = next;
      const std::size_t i = next.index;
      used[i] = true;
      prefix.push_back(i);
      dfs(rem_node_area - node_area[i], rem_mem_area - mem_area[i],
          rem_completion - completion_lb[i]);
      prefix.pop_back();
      used[i] = false;
      if (budget_exhausted) return;
    }
  }
};

}  // namespace

BnbResult branch_and_bound(const ProblemView& problem, const ObjectiveWeights& weights,
                           const BnbConfig& config) {
  Search search(problem, weights, config);

  // Incumbent: best of the standard seed orderings.
  BnbResult& result = search.result;
  result.order = order_spt(problem);
  result.score = search.eval.score(result.order);
  for (const auto& seed : {order_by_arrival(problem), order_lpt(problem), order_widest(problem)}) {
    const double s = search.eval.score(seed);
    if (s < result.score) {
      result.score = s;
      result.order = seed;
    }
  }

  double all_node_area = 0.0;
  double all_mem_area = 0.0;
  double all_completion = 0.0;
  for (std::size_t i = 0; i < problem.n_jobs(); ++i) {
    all_node_area += search.node_area[i];
    all_mem_area += search.mem_area[i];
    all_completion += search.completion_lb[i];
  }
  search.dfs(all_node_area, all_mem_area, all_completion);
  result.proven_optimal = !search.budget_exhausted;
  return result;
}

}  // namespace reasched::opt
