#include "opt/branch_and_bound.hpp"

#include <algorithm>
#include <numeric>

#include "opt/list_scheduler.hpp"

namespace reasched::opt {

namespace {

struct Search {
  const ProblemView& problem;
  const ObjectiveWeights& weights;
  const BnbConfig& config;
  BnbResult result;
  std::vector<std::size_t> prefix;
  std::vector<bool> used;
  bool budget_exhausted = false;

  /// Admissible lower bound on the best completion achievable from this
  /// prefix: max of (a) the prefix plan's own score contribution, (b) the
  /// node/memory area bounds for the remaining jobs, (c) the critical-path
  /// bound (some remaining job still has to run to completion).
  double lower_bound(const PlannedSchedule& prefix_plan) const {
    double remaining_node_area = 0.0;
    double remaining_mem_area = 0.0;
    double critical_path = 0.0;
    for (std::size_t i = 0; i < problem.n_jobs(); ++i) {
      if (used[i]) continue;
      const sim::Job& j = problem.job(i);
      remaining_node_area += static_cast<double>(j.nodes) * j.duration;
      remaining_mem_area += j.memory_gb * j.duration;
      critical_path =
          std::max(critical_path, std::max(problem.now(), j.submit_time) + j.duration);
    }
    double lb_makespan = prefix_plan.makespan;
    lb_makespan = std::max(lb_makespan,
                           problem.now() + remaining_node_area /
                                               static_cast<double>(problem.total_nodes()));
    if (problem.total_memory_gb() > 0.0) {
      lb_makespan = std::max(lb_makespan,
                             problem.now() + remaining_mem_area / problem.total_memory_gb());
    }
    lb_makespan = std::max(lb_makespan, critical_path);
    // Completion-time term: each remaining job completes no earlier than
    // release + duration.
    double lb_completion = prefix_plan.total_completion;
    for (std::size_t i = 0; i < problem.n_jobs(); ++i) {
      if (used[i]) continue;
      const sim::Job& j = problem.job(i);
      lb_completion += std::max(problem.now(), j.submit_time) + j.duration;
    }
    return weights.makespan_weight * lb_makespan + weights.completion_weight * lb_completion;
  }

  void dfs() {
    if (result.explored >= config.max_nodes) {
      budget_exhausted = true;
      return;
    }
    ++result.explored;

    if (prefix.size() == problem.n_jobs()) {
      const double score = evaluate(decode_order(problem, prefix), weights);
      if (score < result.score) {
        result.score = score;
        result.order = prefix;
      }
      return;
    }

    // Decode only the placed prefix; remaining jobs contribute via bounds.
    const PlannedSchedule prefix_plan = decode_subset(problem, prefix);
    if (lower_bound(prefix_plan) >= result.score - 1e-12) return;  // prune

    // Branch in SPT order so good incumbents are found early.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < problem.n_jobs(); ++i) {
      if (!used[i]) candidates.push_back(i);
    }
    std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
      if (problem.job(a).walltime != problem.job(b).walltime) {
        return problem.job(a).walltime < problem.job(b).walltime;
      }
      return a < b;
    });
    // Dominance: identical remaining jobs are interchangeable; branch only
    // on the first of each equivalence class.
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const std::size_t i = candidates[c];
      bool dominated = false;
      for (std::size_t d = 0; d < c; ++d) {
        const sim::Job& a = problem.job(i);
        const sim::Job& b = problem.job(candidates[d]);
        if (a.duration == b.duration && a.nodes == b.nodes && a.memory_gb == b.memory_gb &&
            a.submit_time == b.submit_time) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      used[i] = true;
      prefix.push_back(i);
      dfs();
      prefix.pop_back();
      used[i] = false;
      if (budget_exhausted) return;
    }
  }
};

}  // namespace

BnbResult branch_and_bound(const ProblemView& problem, const ObjectiveWeights& weights,
                           const BnbConfig& config) {
  Search search{problem, weights, config, {}, {}, {}, false};
  search.used.assign(problem.n_jobs(), false);

  // Incumbent: best of the standard seed orderings.
  BnbResult& result = search.result;
  result.order = order_spt(problem);
  result.score = evaluate(decode_order(problem, result.order), weights);
  for (const auto& seed : {order_by_arrival(problem), order_lpt(problem), order_widest(problem)}) {
    const double s = evaluate(decode_order(problem, seed), weights);
    if (s < result.score) {
      result.score = s;
      result.order = seed;
    }
  }

  search.dfs();
  result.proven_optimal = !search.budget_exhausted;
  return result;
}

}  // namespace reasched::opt
