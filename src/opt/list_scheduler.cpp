#include "opt/list_scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "sim/event.hpp"

namespace reasched::opt {

PlannedSchedule decode_subset(const ProblemView& problem, const std::vector<std::size_t>& order) {
  PlannedSchedule plan;
  plan.order.reserve(order.size());

  struct Release {
    double time;
    int nodes;
    double memory_gb;
  };
  struct Later {
    bool operator()(const Release& a, const Release& b) const { return a.time > b.time; }
  };
  std::priority_queue<Release, std::vector<Release>, Later> releases;

  int free_nodes = problem.total_nodes();
  double free_memory = problem.total_memory_gb();
  for (std::size_t p = 0; p < problem.n_pinned(); ++p) {
    const Problem::Pinned pin = problem.pinned(p);
    free_nodes -= pin.nodes;
    free_memory -= pin.memory_gb;
    releases.push({pin.end_time, pin.nodes, pin.memory_gb});
  }

  const double now = problem.now();
  double clock = now;
  for (const std::size_t idx : order) {
    const sim::Job& job = problem.job(idx);
    clock = std::max(clock, std::max(now, job.submit_time));
    // Advance until the job fits; each release strictly increases free
    // resources, so this terminates (validated capacities guarantee fit on
    // the empty cluster).
    while (free_nodes < job.nodes || !sim::mem_fits(free_memory, job.memory_gb)) {
      if (releases.empty()) {
        throw std::logic_error("decode_order: job never fits (capacity violation upstream)");
      }
      const Release r = releases.top();
      releases.pop();
      clock = std::max(clock, r.time);
      free_nodes += r.nodes;
      free_memory += r.memory_gb;
      // Drain co-timed releases so `fits` sees the full freed capacity.
      while (!releases.empty() && releases.top().time <= clock) {
        free_nodes += releases.top().nodes;
        free_memory += releases.top().memory_gb;
        releases.pop();
      }
    }
    const double start = clock;
    const double end = start + job.duration;
    free_nodes -= job.nodes;
    free_memory -= job.memory_gb;
    releases.push({end, job.nodes, job.memory_gb});

    plan.start_times[job.id] = start;
    plan.order.push_back(job.id);
    plan.makespan = std::max(plan.makespan, end);
    plan.total_completion += end;
    plan.total_wait += start - std::max(now, job.submit_time);
  }
  return plan;
}

PlannedSchedule decode_order(const ProblemView& problem, const std::vector<std::size_t>& order) {
  if (order.size() != problem.n_jobs()) {
    throw std::invalid_argument("decode_order: order size mismatch");
  }
  return decode_subset(problem, order);
}

namespace {
std::vector<std::size_t> sorted_order(const ProblemView& p,
                                      bool (*less)(const sim::Job&, const sim::Job&)) {
  std::vector<std::size_t> order(p.n_jobs());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return less(p.job(a), p.job(b));
  });
  return order;
}
}  // namespace

std::vector<std::size_t> order_by_arrival(const ProblemView& problem) {
  return sorted_order(problem, [](const sim::Job& a, const sim::Job& b) {
    return sim::arrival_order(a, b);
  });
}

std::vector<std::size_t> order_spt(const ProblemView& problem) {
  return sorted_order(problem, [](const sim::Job& a, const sim::Job& b) {
    if (a.walltime != b.walltime) return a.walltime < b.walltime;
    return a.id < b.id;
  });
}

std::vector<std::size_t> order_lpt(const ProblemView& problem) {
  return sorted_order(problem, [](const sim::Job& a, const sim::Job& b) {
    if (a.walltime != b.walltime) return a.walltime > b.walltime;
    return a.id < b.id;
  });
}

std::vector<std::size_t> order_widest(const ProblemView& problem) {
  return sorted_order(problem, [](const sim::Job& a, const sim::Job& b) {
    if (a.nodes != b.nodes) return a.nodes > b.nodes;
    return a.id < b.id;
  });
}

}  // namespace reasched::opt
