#pragma once

#include <vector>

#include "opt/incremental.hpp"
#include "opt/model.hpp"
#include "opt/objective.hpp"
#include "util/rng.hpp"

namespace reasched::opt {

/// Discrete particle swarm optimization over permutations (the paper's
/// related work cites PSO - Wang 2018 - among classical metaheuristics).
/// The standard combinatorial adaptation: a particle's "velocity" is a swap
/// sequence; each iteration the particle applies swaps that move it toward
/// its personal best and the global best with probabilities c1/c2, plus
/// random-walk swaps scaled by inertia.
struct PsoConfig {
  std::size_t particles = 24;
  std::size_t iterations = 80;
  double c1 = 0.5;       ///< pull toward personal best
  double c2 = 0.5;       ///< pull toward global best
  double inertia = 0.15; ///< random-walk swaps per particle per iteration (expected)
  EvalPolicy eval;       ///< incremental/cutoff evaluation wiring
};

struct PsoResult {
  std::vector<std::size_t> order;
  double score = 0.0;
  std::size_t evaluations = 0;
  std::size_t memo_hits = 0;  ///< duplicate positions served from the memo
  EvalStats eval;             ///< incremental-evaluation counters
};

PsoResult particle_swarm(const ProblemView& problem, std::vector<std::size_t> seed_order,
                         const ObjectiveWeights& weights, const PsoConfig& config,
                         util::Rng& rng);

inline PsoResult particle_swarm(const Problem& problem, std::vector<std::size_t> seed_order,
                                const ObjectiveWeights& weights, const PsoConfig& config,
                                util::Rng& rng) {
  return particle_swarm(ProblemView(problem), std::move(seed_order), weights, config, rng);
}

/// The swap sequence transforming `from` into `to` (both permutations of the
/// same elements); applying it to `from` yields `to`. Exposed for testing.
std::vector<std::pair<std::size_t, std::size_t>> swap_sequence(
    std::vector<std::size_t> from, const std::vector<std::size_t>& to);

}  // namespace reasched::opt
