#pragma once

namespace reasched::harness {
class MethodRegistry;
}

namespace reasched::opt {

/// Register the optimization baseline with the harness method registry:
/// `opt:portfolio` (the OR-Tools stand-in - B&B below `bnb_threshold`,
/// seeded local search + simulated annealing above). Solver budgets, replan
/// cadence and the planning window are spec parameters, so budget/window
/// sweeps are ordinary grid axes.
void register_methods(harness::MethodRegistry& registry);

}  // namespace reasched::opt
