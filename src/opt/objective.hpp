#pragma once

#include "opt/model.hpp"

namespace reasched::opt {

/// Scalarized objective for the optimization baseline. The default mirrors
/// the paper's OR-Tools configuration: *pure makespan*. Because no term
/// penalizes completion times or wait variance, the search freely reorders
/// and postpones individual jobs whenever that helps packing - which is
/// exactly the paper's observed OR-Tools signature: top utilization and
/// throughput, degraded wait/turnaround and fairness at scale.
///
/// `completion_weight` / `wait_weight` > 0 are ablation knobs
/// (bench/ablation_policy_weights) showing how adding completion-time or
/// fairness terms trades utilization away.
struct ObjectiveWeights {
  double makespan_weight = 1.0;
  double completion_weight = 0.0;
  double wait_weight = 0.0;
};

double evaluate(const PlannedSchedule& plan, const ObjectiveWeights& weights);

}  // namespace reasched::opt
