#pragma once

#include "opt/model.hpp"
#include "sim/event.hpp"

namespace reasched::opt {

/// Scalarized objective for the optimization baseline. The default mirrors
/// the paper's OR-Tools configuration: *pure makespan*. Because no term
/// penalizes completion times or wait variance, the search freely reorders
/// and postpones individual jobs whenever that helps packing - which is
/// exactly the paper's observed OR-Tools signature: top utilization and
/// throughput, degraded wait/turnaround and fairness at scale.
///
/// `completion_weight` / `wait_weight` > 0 are ablation knobs
/// (bench/ablation_policy_weights) showing how adding completion-time or
/// fairness terms trades utilization away.
struct ObjectiveWeights {
  double makespan_weight = 1.0;
  double completion_weight = 0.0;
  double wait_weight = 0.0;
};

double evaluate(const PlannedSchedule& plan, const ObjectiveWeights& weights);

/// Solver-side "candidate strictly beats incumbent" under the relative
/// tolerance convention of sim::tol_leq (PR 2). Replaces the absolute
/// `score + 1e-12 < incumbent` epsilons: at Polaris makespans (~1e7 s) one
/// ulp is already ~2e-9, so an absolute 1e-12 margin degenerates to a raw
/// `<` that accepts float-noise "improvements" and churns the incumbent.
inline bool improves(double candidate, double incumbent) {
  return !sim::tol_leq(incumbent, candidate);
}

}  // namespace reasched::opt
