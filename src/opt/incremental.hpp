#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "opt/model.hpp"
#include "opt/objective.hpp"

namespace reasched::opt {

/// How incremental/cutoff evaluation is wired into a solver. The default is
/// the fast path; `incremental = false` routes every candidate through the
/// untouched `evaluate(decode_subset(...))` pipeline — the pre-change
/// behaviour the golden tests diff against. `cross_check` is the
/// differential-oracle bit (PR 3 pattern): every incremental score is
/// recomputed through the full pipeline and must match bit-for-bit, and
/// every cutoff abort is verified safe against the full score. Tests and
/// `opt:portfolio?xcheck=1` run with it on; production paths leave it off.
struct EvalPolicy {
  bool incremental = true;
  /// Per-candidate differential oracle; throws std::logic_error on any
  /// divergence between the incremental and the full evaluation.
  bool cross_check = false;
};

/// Maps a solver's acceptance predicate onto the early-exit test. An
/// evaluation may be aborted only when the admissible lower bound already
/// proves the solver would discard the candidate:
///   kGreaterEqual  caller uses the score only when score <  cutoff
///   kGreater       caller needs certainty that       score >  cutoff
///   kTolerance     caller accepts only when improves(score, cutoff)
enum class CutoffMode { kGreaterEqual, kGreater, kTolerance };

/// Observability counters for the benches (ablation_solvers reports cutoff
/// hit rates so the speedup is attributable, not just observed).
struct EvalStats {
  std::size_t evaluations = 0;    ///< candidate evaluations (aborted included)
  std::size_t cutoff_hits = 0;    ///< evaluations aborted by the bound
  std::size_t steps_decoded = 0;  ///< placements actually decoded (incl. replay)
  std::size_t steps_reused = 0;   ///< placements reused from the cached prefix
};

/// Incremental objective evaluation over one ProblemView: caches the decoded
/// timeline of the last exactly-scored order and recomputes only from the
/// first position where a candidate diverges, with early exit the moment an
/// admissible bound proves the candidate cannot beat the caller's incumbent.
///
/// Bit-identity. Scores are bit-identical to
/// `evaluate(decode_subset(problem, order), weights)` by construction, not
/// by tolerance: the placement step replicates decode_subset's arithmetic
/// op-for-op (same clock max-chain, same fit test, same lazy release pops
/// with the same co-timed drain), and the release queue is a raw vector
/// driven by std::push_heap/std::pop_heap — exactly what std::priority_queue
/// is specified to do — so even the unspecified pop order of equal-time
/// releases matches. Suffix restart never re-derives state: full snapshots
/// (heap array included) are checkpointed every `stride_` positions during
/// caching decodes, and a candidate replays the few cached-prefix positions
/// between the checkpoint and its divergence point; replaying identical
/// operations from an identical snapshot is bit-identical by construction.
/// The only thing skipped relative to the full pipeline is materializing
/// PlannedSchedule (the per-candidate std::map of start times — the
/// dominant cost of the old path).
///
/// Cutoff soundness. With nonnegative weights every objective accumulator
/// is monotone in the remaining decode, so
///   lb = max(score-so-far, deflated optimistic-completion bound)
/// never exceeds the final score: the optimistic part reuses the admissible
/// critical-path and resource-area arguments of branch_and_bound's
/// lower_bound, anchored at the current clock, and is deflated by
/// kBoundSlack so float rounding in the running area sums cannot push the
/// bound past the true score. Aborting when `lb` already fails the caller's
/// acceptance predicate therefore never changes a solver decision. With any
/// negative weight the monotonicity argument dies and cutoffs are disabled
/// (exact evaluation only).
///
/// Lifetime: borrows the ProblemView; valid while the view is.
class IncrementalEvaluator {
 public:
  IncrementalEvaluator(const ProblemView& problem, const ObjectiveWeights& weights,
                       EvalPolicy policy = {});

  struct Result {
    double value = 0.0;  ///< exact score, or the admissible lower bound on abort
    bool exact = false;
  };

  static constexpr double kNoCutoff = std::numeric_limits<double>::infinity();

  /// Exact score of `order` (any job-index subset, decode_subset semantics).
  /// Re-caches the decoded trajectory, so subsequent candidates diverge
  /// against this order. Solvers call this for their incumbent.
  double score(const std::vector<std::size_t>& order);

  /// Score with early exit: {score, true} when the decode completed, or
  /// {lower_bound, false} the moment the bound proves the candidate cannot
  /// pass the caller's acceptance test against `cutoff` under `mode`. Does
  /// not re-cache (the incumbent stays the divergence anchor). Bounds are
  /// armed only when `order` is a full permutation of the view's jobs (the
  /// solver candidate case); other sizes decode exactly.
  Result score_with_cutoff(const std::vector<std::size_t>& order, double cutoff,
                           CutoffMode mode);

  /// Score of the cached base order with view job `job_index` inserted at
  /// `pos` (0..base length). Requires a preceding score(base); does not
  /// disturb the cache, so a position sweep reuses the base's prefix
  /// snapshots. Used by OptimizingScheduler's greedy arrival insertion.
  Result score_insertion(std::size_t pos, std::size_t job_index, double cutoff,
                         CutoffMode mode);

  /// Adopts the order evaluated by the most recent score_with_cutoff call as
  /// the new cache anchor, reusing the trajectory that call already decoded
  /// (checkpoints are recorded on the fly). Valid only when that call ran to
  /// completion; otherwise (abort, fast path, naive mode, or an intervening
  /// score/score_insertion call) this is a no-op returning false. Lets a
  /// solver accept a candidate in O(1) instead of re-decoding it via
  /// score().
  bool commit_last();

  /// Continues the decode the most recent score_with_cutoff call aborted and
  /// runs it to completion, returning the exact score. `order` must be the
  /// same sequence that call was given (the evaluator resumes from the abort
  /// snapshot and only decodes the untouched tail - with cross_check on, the
  /// oracle verifies the result against the caller's order). Throws
  /// std::logic_error unless the immediately preceding call was an aborted
  /// score_with_cutoff. Lets SA resolve an inconclusive abort for the cost
  /// of the remaining suffix instead of re-decoding from the divergence.
  Result resume_exact(const std::vector<std::size_t>& order);

  /// Solvers that never commit_last (GA/PSO evaluate diverse populations and
  /// re-anchoring on any one member buys nothing) can switch off the
  /// pending-trajectory recording score_with_cutoff does per candidate,
  /// saving the order copy and checkpoint snapshots. Scores are unaffected.
  void set_commit_tracking(bool on) { commit_tracking_ = on; }

  std::size_t base_length() const { return base_.size(); }
  const EvalStats& stats() const { return stats_; }

  /// Objective accumulators of the cached base order (valid after score()
  /// in incremental mode). Branch-and-bound reads the prefix contribution
  /// here instead of re-decoding the placed prefix per node.
  struct Accumulators {
    double makespan;
    double completion;
    double wait;
  };
  Accumulators cached_accumulators() const {
    return {final_.makespan, final_.completion, final_.wait};
  }

 private:
  /// Release-heap element. Only `time` drives the heap order; the resources
  /// freed are looked up in attr_ on pop (pinned allocations get synthetic
  /// attr_ slots after the real jobs). 16 bytes instead of 24 shrinks the
  /// sift traffic of the per-placement push/pop pair and halves-ish every
  /// checkpoint heap copy. The heap arrangement depends only on comparator
  /// outcomes, so slimming the payload cannot perturb equal-time pop order.
  struct Release {
    double time;
    std::uint32_t idx;  ///< attr_ index of the job (or pinned slot) releasing
  };
  struct LaterRelease {
    bool operator()(const Release& a, const Release& b) const { return a.time > b.time; }
  };
  /// Live decode state: decode_subset's scalars plus the running aggregates
  /// the lower bound needs (placed areas, critical-path max).
  struct State {
    double clock;
    int free_nodes;
    double free_memory;
    double makespan;
    double completion;
    double wait;
    double placed_node_area;
    double placed_mem_area;
    double placed_duration;
    double placed_cp;  ///< running max of completion_lb over placed jobs
  };
  struct Checkpoint {
    State state;
    std::vector<Release> heap;  ///< verbatim heap array at this position
  };
  /// Order-independent totals of a candidate's full job set, for the
  /// remaining-work terms of the bound.
  struct Totals {
    double node_area;
    double mem_area;
    double duration_sum;
    double cp;  ///< max over the set of max(now, submit) + duration
    std::size_t count;
  };

  /// Per-job attributes packed into one cache line: place() touches every
  /// field of exactly one entry per placement, and candidate orders visit
  /// jobs in effectively random sequence, so a struct-of-arrays layout would
  /// cost seven cache misses per placement where this costs one.
  struct alignas(64) Attr {
    double release;  ///< the exact std::max(now, submit_time) of decode_subset
    double duration;
    double memory_gb;
    double node_area;
    double mem_area;
    double completion_lb;
    int nodes;
  };

  void place(State& s, std::size_t job_index);
  double exact_score(const State& s) const;
  double lower_bound(const State& s, const Totals& totals, std::size_t placed) const;
  static bool cuts(double lb, double cutoff, CutoffMode mode);
  std::size_t divergence(const std::vector<std::size_t>& order) const;
  /// Loads checkpoint `index` into `s`/heap_ and returns its position.
  std::size_t load_checkpoint(std::size_t index, State& s);
  void record_checkpoint(std::size_t index, const State& s);
  void record_pending(std::size_t index, const State& s);
  double full_oracle(const std::vector<std::size_t>& order) const;
  void check_exact(const std::vector<std::size_t>& order, double got) const;
  void check_abort(const std::vector<std::size_t>& order, double lb, double cutoff,
                   CutoffMode mode) const;
  std::vector<std::size_t> materialize_insertion(std::size_t pos, std::size_t job_index) const;

  const ProblemView* problem_;
  ObjectiveWeights weights_;
  EvalPolicy policy_;
  bool cutoff_ok_;  ///< all weights nonnegative, so bounds are admissible

  double now_;
  int total_nodes_;
  double total_memory_;
  /// Reciprocals for the bound's area terms: a multiply instead of a divide
  /// per placement. The bound value shifts by ~1 ulp relative to the
  /// division, which kBoundSlack's 1e-10 deflation absorbs with eight
  /// orders of magnitude to spare - admissibility is unaffected.
  double inv_total_nodes_ = 0.0;
  double inv_total_memory_ = 0.0;
  /// Per-job attributes resolved once, then one synthetic slot per pinned
  /// allocation (nodes/memory only) so heap pops can resolve any Release.
  std::vector<Attr> attr_;
  Totals all_;  ///< totals over the whole view job set (full permutations)

  /// Cached trajectory of the last exactly-scored order: checkpoints at
  /// positions 0, stride_, 2*stride_, ... plus the final state and score.
  std::vector<std::size_t> base_;
  std::vector<Checkpoint> checkpoints_;
  std::size_t n_checkpoints_ = 0;  ///< valid prefix of checkpoints_
  std::size_t stride_;
  State final_;
  double cached_score_ = 0.0;

  /// Trajectory of the last completed score_with_cutoff call, promotable by
  /// commit_last() without re-decoding. Checkpoint indices below
  /// pending_first_ck_ are shared with the cached base (identical prefix).
  std::vector<std::size_t> pending_base_;
  std::vector<Checkpoint> pending_checkpoints_;
  std::size_t pending_first_ck_ = 0;
  std::size_t pending_n_checkpoints_ = 0;
  State pending_final_;
  double pending_score_ = 0.0;
  bool pending_valid_ = false;
  bool commit_tracking_ = true;

  /// Snapshot taken when score_with_cutoff aborts, from which resume_exact
  /// decodes the remaining tail. heap_ itself is the live heap at the abort
  /// and is left untouched until the next evaluation call.
  State resume_state_;
  std::size_t resume_pos_ = 0;  ///< next position to place on resume
  std::size_t resume_d_ = 0;    ///< divergence point of the aborted call
  bool resume_valid_ = false;

  std::vector<Release> heap_;  ///< reusable live heap (scratch)
  EvalStats stats_;
};

}  // namespace reasched::opt
