#pragma once

#include <map>
#include <vector>

namespace reasched::opt {

/// Piecewise-constant (nodes, memory) usage over time. Used to validate
/// planned schedules instant-by-instant and by tests as an independent
/// oracle against the fast list-schedule decoder.
class ResourceProfile {
 public:
  ResourceProfile(int total_nodes, double total_memory_gb);

  int total_nodes() const { return total_nodes_; }
  double total_memory_gb() const { return total_memory_gb_; }

  /// Reserve (nodes, memory) over [start, start + duration).
  /// Throws std::logic_error if capacity would be exceeded anywhere.
  void add(double start, double duration, int nodes, double memory_gb);

  /// True when the demand fits everywhere in [start, start + duration).
  bool fits(double start, double duration, int nodes, double memory_gb) const;

  /// Earliest t >= not_before such that the demand fits over [t, t+duration).
  double earliest_fit(double not_before, double duration, int nodes, double memory_gb) const;

  /// Peak node usage across all time (for utilization sanity checks).
  int peak_nodes() const;

 private:
  struct Usage {
    int nodes = 0;
    double memory_gb = 0.0;
  };
  /// usage_[t] = usage on [t, next key). Always contains key 0.
  std::map<double, Usage> usage_;
  int total_nodes_;
  double total_memory_gb_;

  /// Ensure a breakpoint exists at t (copying the prevailing usage).
  std::map<double, Usage>::iterator ensure_breakpoint(double t);
};

}  // namespace reasched::opt
