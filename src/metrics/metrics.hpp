#pragma once

#include <string>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/schedule_result.hpp"

namespace reasched::metrics {

/// The paper's evaluation objectives (Section 3.2) - the eight metrics of
/// Figure 7 (node and memory utilization reported separately).
enum class Metric {
  kMakespan,
  kAvgWait,
  kAvgTurnaround,
  kThroughput,
  kNodeUtil,
  kMemUtil,
  kWaitFairness,  ///< Jain's index over per-job wait times
  kUserFairness,  ///< Jain's index over per-user average wait times
};

const std::vector<Metric>& all_metrics();
std::string to_string(Metric m);
/// True for metrics where lower is better (makespan, wait, turnaround).
bool lower_is_better(Metric m);

/// One run's metric values.
struct MetricSet {
  double makespan = 0.0;
  double avg_wait = 0.0;
  double avg_turnaround = 0.0;
  double throughput = 0.0;
  double node_util = 0.0;
  double mem_util = 0.0;
  double wait_fairness = 1.0;
  double user_fairness = 1.0;
  /// Extension: energy integrated over the schedule horizon (kWh).
  double energy_kwh = 0.0;

  double get(Metric m) const;
};

/// Compute all metrics from a finished simulation (paper formulas):
///   makespan      = max_j end_j - min_j submit_j
///   avg wait      = mean(start_j - submit_j)
///   avg turnaround= mean(end_j - submit_j)
///   throughput    = n / (max_j end_j - min_j start_j)
///   node util     = sum(nodes_j * dur_j) / (C * makespan)
///   mem util      = sum(mem_j * dur_j)   / (M * makespan)
///   wait fairness = Jain({w_j})
///   user fairness = Jain({mean wait of user u})
/// Throws std::invalid_argument on empty results.
MetricSet compute_metrics(const sim::ScheduleResult& result, const sim::ClusterSpec& spec);

/// Per-user average wait times (sorted by user id), exposed for tests.
std::vector<double> per_user_mean_waits(const sim::ScheduleResult& result);

/// Average bounded slowdown - the standard supplementary HPC responsiveness
/// metric (not one of the paper's seven; provided for downstream studies):
///   mean over jobs of max(1, (wait + run) / max(run, tau))
/// with the customary tau = 10 s threshold guarding against division by
/// near-zero runtimes.
double avg_bounded_slowdown(const sim::ScheduleResult& result, double tau = 10.0);

}  // namespace reasched::metrics
