#pragma once

#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "metrics/normalize.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace reasched::metrics {

/// One (method -> metric set) row group for a figure.
struct MethodResult {
  std::string method;
  MetricSet metrics;
};

/// Render the paper-style normalized table: one row per metric, one column
/// per method, values as ratios against `baseline_method` (which must be
/// present). Undefined (0/0) cells print "n/a" exactly as the paper omits
/// them. Raw = true prints absolute values instead of ratios.
std::string render_normalized_table(const std::vector<MethodResult>& results,
                                    const std::string& baseline_method, bool raw = false);

/// CSV export of the same data (one row per method x metric).
util::CsvTable normalized_csv(const std::vector<MethodResult>& results,
                              const std::string& baseline_method);

}  // namespace reasched::metrics
