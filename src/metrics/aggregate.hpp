#pragma once

#include <map>
#include <vector>

#include "metrics/metrics.hpp"
#include "util/stats.hpp"

namespace reasched::metrics {

/// Distribution of each metric across repeated runs - the statistical
/// robustness analysis of paper Section 4 (Figure 7's box plots).
class MetricAggregate {
 public:
  void add(const MetricSet& sample);

  std::size_t n_samples() const { return samples_.size(); }
  const std::vector<MetricSet>& samples() const { return samples_; }

  std::vector<double> values(Metric m) const;
  double mean(Metric m) const;
  double stddev(Metric m) const;
  util::BoxStats box(Metric m) const;

  /// Mean metric set across repetitions (used as the representative value
  /// when a figure reports a single number per cell).
  MetricSet mean_set() const;

 private:
  std::vector<MetricSet> samples_;
};

}  // namespace reasched::metrics
