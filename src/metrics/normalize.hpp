#pragma once

#include <optional>

#include "metrics/metrics.hpp"

namespace reasched::metrics {

/// Value of one metric normalized against the FCFS baseline (= 1.0), as in
/// every results figure. Undefined when the ratio is 0/0 - the paper
/// explicitly omits such rows ("the resulting value becomes undefined (0/0)
/// and is therefore omitted", Section 3.5).
struct Normalized {
  double value = 1.0;
  bool defined = true;
};

Normalized normalize_value(double method_value, double baseline_value);

/// Normalize a whole metric set against a baseline set.
Normalized normalize(const MetricSet& method, const MetricSet& baseline, Metric metric);

}  // namespace reasched::metrics
