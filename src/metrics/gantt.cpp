#include "metrics/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/string_utils.hpp"

namespace reasched::metrics {

namespace {
struct Horizon {
  double t0 = 0.0;
  double t1 = 0.0;
  bool ok = false;
};

Horizon schedule_horizon(const sim::ScheduleResult& result) {
  Horizon h;
  if (result.completed.empty()) return h;
  h.t0 = result.completed.front().job.submit_time;
  for (const auto& c : result.completed) {
    h.t0 = std::min(h.t0, c.job.submit_time);
    h.t1 = std::max(h.t1, c.end_time);
  }
  h.ok = h.t1 > h.t0;
  return h;
}

std::size_t bucket_of(double t, const Horizon& h, std::size_t width) {
  const double frac = (t - h.t0) / (h.t1 - h.t0);
  const auto b = static_cast<std::ptrdiff_t>(frac * static_cast<double>(width));
  return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
      b, 0, static_cast<std::ptrdiff_t>(width) - 1));
}
}  // namespace

std::string render_utilization_profile(const sim::ScheduleResult& result,
                                       const sim::ClusterSpec& spec, std::size_t width) {
  const Horizon h = schedule_horizon(result);
  if (!h.ok || width == 0) return "(empty schedule)\n";
  std::vector<double> node_seconds(width, 0.0);
  const double bucket_span = (h.t1 - h.t0) / static_cast<double>(width);
  for (const auto& c : result.completed) {
    for (std::size_t b = bucket_of(c.start_time, h, width);
         b <= bucket_of(c.end_time - 1e-9, h, width); ++b) {
      const double bucket_start = h.t0 + static_cast<double>(b) * bucket_span;
      const double overlap = std::max(
          0.0, std::min(c.end_time, bucket_start + bucket_span) - std::max(c.start_time,
                                                                           bucket_start));
      node_seconds[b] += overlap * c.job.nodes;
    }
  }
  std::string line;
  line.reserve(width);
  for (const double ns : node_seconds) {
    const double util = ns / (bucket_span * spec.total_nodes);
    const int level = std::clamp(static_cast<int>(std::floor(util * 10.0)), 0, 9);
    line += static_cast<char>('0' + level);
  }
  return line;
}

std::string render_gantt(const sim::ScheduleResult& result, const sim::ClusterSpec& spec,
                         const GanttOptions& options) {
  const Horizon h = schedule_horizon(result);
  if (!h.ok || options.width == 0) return "(empty schedule)\n";

  // Rows sorted by start time; if over the cap, keep the widest jobs.
  std::vector<const sim::CompletedJob*> rows;
  rows.reserve(result.completed.size());
  for (const auto& c : result.completed) rows.push_back(&c);
  // total-order: start-time ties broken by unique JobId.
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    if (a->start_time != b->start_time) return a->start_time < b->start_time;
    return a->job.id < b->job.id;
  });
  if (rows.size() > options.max_rows) {
    std::nth_element(rows.begin(), rows.begin() + static_cast<std::ptrdiff_t>(options.max_rows),
                     rows.end(), [](const auto* a, const auto* b) {
                       return a->job.node_seconds() > b->job.node_seconds();
                     });
    rows.resize(options.max_rows);
    // total-order: start-time ties broken by unique JobId (without the tiebreak
    // this re-sort ordered tied rows by whatever permutation nth_element left).
    std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
      if (a->start_time != b->start_time) return a->start_time < b->start_time;
      return a->job.id < b->job.id;
    });
  }

  std::ostringstream os;
  os << util::format("Gantt: %zu job(s), t=[%.0f, %.0f]s, %d nodes\n",
                     result.completed.size(), h.t0, h.t1, spec.total_nodes);
  for (const auto* c : rows) {
    std::string bar(options.width, ' ');
    const std::size_t qs = bucket_of(c->job.submit_time, h, options.width);
    const std::size_t s = bucket_of(c->start_time, h, options.width);
    const std::size_t e = bucket_of(std::max(c->end_time - 1e-9, c->start_time), h,
                                    options.width);
    for (std::size_t b = qs; b < s; ++b) bar[b] = options.queue;
    for (std::size_t b = s; b <= e; ++b) bar[b] = options.bar;
    os << util::format("J%-4d %3dn |%s|\n", c->job.id, c->job.nodes, bar.c_str());
  }
  os << util::format("util (0-9)  |%s|\n",
                     render_utilization_profile(result, spec, options.width).c_str());
  return os.str();
}

}  // namespace reasched::metrics
