#include "metrics/normalize.hpp"

#include <cmath>

namespace reasched::metrics {

Normalized normalize_value(double method_value, double baseline_value) {
  Normalized n;
  // LINT-ALLOW(epsilon): zero-magnitude guard before a division, not a closeness test.
  if (std::fabs(baseline_value) < 1e-12) {
    // 0/0 (and x/0) are undefined; the paper omits these comparisons.
    n.defined = false;
    n.value = 0.0;
    return n;
  }
  n.value = method_value / baseline_value;
  return n;
}

Normalized normalize(const MetricSet& method, const MetricSet& baseline, Metric metric) {
  return normalize_value(method.get(metric), baseline.get(metric));
}

}  // namespace reasched::metrics
