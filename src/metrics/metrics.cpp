#include "metrics/metrics.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "sim/energy.hpp"
#include "util/stats.hpp"

namespace reasched::metrics {

const std::vector<Metric>& all_metrics() {
  static const std::vector<Metric> v = {
      Metric::kMakespan,  Metric::kAvgWait,      Metric::kAvgTurnaround,
      Metric::kThroughput, Metric::kNodeUtil,    Metric::kMemUtil,
      Metric::kWaitFairness, Metric::kUserFairness,
  };
  return v;
}

std::string to_string(Metric m) {
  switch (m) {
    case Metric::kMakespan: return "Makespan";
    case Metric::kAvgWait: return "Avg Wait";
    case Metric::kAvgTurnaround: return "Avg Turnaround";
    case Metric::kThroughput: return "Throughput";
    case Metric::kNodeUtil: return "Node Util";
    case Metric::kMemUtil: return "Memory Util";
    case Metric::kWaitFairness: return "Wait Fairness";
    case Metric::kUserFairness: return "User Fairness";
  }
  return "?";
}

bool lower_is_better(Metric m) {
  switch (m) {
    case Metric::kMakespan:
    case Metric::kAvgWait:
    case Metric::kAvgTurnaround: return true;
    default: return false;
  }
}

double MetricSet::get(Metric m) const {
  switch (m) {
    case Metric::kMakespan: return makespan;
    case Metric::kAvgWait: return avg_wait;
    case Metric::kAvgTurnaround: return avg_turnaround;
    case Metric::kThroughput: return throughput;
    case Metric::kNodeUtil: return node_util;
    case Metric::kMemUtil: return mem_util;
    case Metric::kWaitFairness: return wait_fairness;
    case Metric::kUserFairness: return user_fairness;
  }
  return 0.0;
}

std::vector<double> per_user_mean_waits(const sim::ScheduleResult& result) {
  std::map<sim::UserId, std::pair<double, std::size_t>> acc;
  for (const auto& c : result.completed) {
    auto& [total, n] = acc[c.job.user];
    total += c.wait_time();
    ++n;
  }
  std::vector<double> out;
  out.reserve(acc.size());
  for (const auto& [user, pair] : acc) {
    out.push_back(pair.first / static_cast<double>(pair.second));
  }
  return out;
}

double avg_bounded_slowdown(const sim::ScheduleResult& result, double tau) {
  if (result.completed.empty()) return 0.0;
  double total = 0.0;
  for (const auto& c : result.completed) {
    const double run = c.end_time - c.start_time;
    const double slowdown = (c.wait_time() + run) / std::max(run, tau);
    total += std::max(1.0, slowdown);
  }
  return total / static_cast<double>(result.completed.size());
}

MetricSet compute_metrics(const sim::ScheduleResult& result, const sim::ClusterSpec& spec) {
  if (result.completed.empty()) {
    throw std::invalid_argument("compute_metrics: empty schedule result");
  }
  MetricSet m;
  double min_submit = result.completed.front().job.submit_time;
  double min_start = result.completed.front().start_time;
  double max_end = 0.0;
  double node_seconds = 0.0, mem_gb_seconds = 0.0;
  for (const auto& c : result.completed) {
    min_submit = std::min(min_submit, c.job.submit_time);
    min_start = std::min(min_start, c.start_time);
    max_end = std::max(max_end, c.end_time);
    node_seconds += static_cast<double>(c.job.nodes) * (c.end_time - c.start_time);
    mem_gb_seconds += c.job.memory_gb * (c.end_time - c.start_time);
  }
  const auto n = static_cast<double>(result.completed.size());
  m.makespan = max_end - min_submit;
  m.avg_wait = util::mean(result.wait_times());
  m.avg_turnaround = util::mean(result.turnaround_times());
  const double window = max_end - min_start;
  m.throughput = window > 0.0 ? n / window : 0.0;
  if (m.makespan > 0.0) {
    m.node_util = node_seconds / (static_cast<double>(spec.total_nodes) * m.makespan);
    m.mem_util = mem_gb_seconds / (spec.total_memory_gb * m.makespan);
  }
  m.wait_fairness = util::jain_index(result.wait_times());
  m.user_fairness = util::jain_index(per_user_mean_waits(result));
  m.energy_kwh = sim::compute_energy(result, spec).energy_kwh;
  return m;
}

}  // namespace reasched::metrics
