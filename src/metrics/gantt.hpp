#pragma once

#include <string>

#include "sim/cluster.hpp"
#include "sim/schedule_result.hpp"

namespace reasched::metrics {

/// ASCII Gantt / utilization view of a finished schedule: one row per job
/// (start..end as a bar over a bucketed time axis) plus a node-utilization
/// sparkline. Makes convoy effects and packing quality visible at a glance
/// in terminals and docs - the qualitative story behind Figures 3-4.
struct GanttOptions {
  std::size_t width = 72;     ///< characters across the time axis
  std::size_t max_rows = 40;  ///< cap on job rows (largest-first beyond it)
  char bar = '#';
  char queue = '.';           ///< waiting period (submit..start)
};

std::string render_gantt(const sim::ScheduleResult& result, const sim::ClusterSpec& spec,
                         const GanttOptions& options = {});

/// Just the utilization sparkline row (0-9 scaled node usage per bucket).
std::string render_utilization_profile(const sim::ScheduleResult& result,
                                       const sim::ClusterSpec& spec,
                                       std::size_t width = 72);

}  // namespace reasched::metrics
