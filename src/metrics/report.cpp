#include "metrics/report.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/string_utils.hpp"

namespace reasched::metrics {

namespace {
const MetricSet& find_baseline(const std::vector<MethodResult>& results,
                               const std::string& baseline_method) {
  const auto it = std::find_if(results.begin(), results.end(), [&](const MethodResult& r) {
    return r.method == baseline_method;
  });
  if (it == results.end()) {
    throw std::invalid_argument("render_normalized_table: baseline method '" + baseline_method +
                                "' not among results");
  }
  return it->metrics;
}
}  // namespace

std::string render_normalized_table(const std::vector<MethodResult>& results,
                                    const std::string& baseline_method, bool raw) {
  const MetricSet& baseline = find_baseline(results, baseline_method);

  std::vector<std::string> header = {"Metric", "Better"};
  for (const auto& r : results) header.push_back(r.method);
  util::TextTable table(std::move(header));

  for (const Metric m : all_metrics()) {
    std::vector<std::string> row = {to_string(m), lower_is_better(m) ? "lower" : "higher"};
    for (const auto& r : results) {
      if (raw) {
        row.push_back(util::TextTable::num(r.metrics.get(m), 3));
        continue;
      }
      const Normalized n = normalize(r.metrics, baseline, m);
      row.push_back(n.defined ? util::TextTable::num(n.value, 3) : util::TextTable::na());
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

util::CsvTable normalized_csv(const std::vector<MethodResult>& results,
                              const std::string& baseline_method) {
  const MetricSet& baseline = find_baseline(results, baseline_method);
  util::CsvTable csv(
      {"method", "metric", "value", "normalized_vs_fcfs", "normalized_defined"});
  for (const auto& r : results) {
    for (const Metric m : all_metrics()) {
      const Normalized n = normalize(r.metrics, baseline, m);
      csv.add_row({r.method, to_string(m), util::format("%.6f", r.metrics.get(m)),
                   util::format("%.6f", n.value), n.defined ? "1" : "0"});
    }
  }
  return csv;
}

}  // namespace reasched::metrics
