#include "metrics/aggregate.hpp"

namespace reasched::metrics {

void MetricAggregate::add(const MetricSet& sample) { samples_.push_back(sample); }

std::vector<double> MetricAggregate::values(Metric m) const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.get(m));
  return out;
}

double MetricAggregate::mean(Metric m) const { return util::mean(values(m)); }

double MetricAggregate::stddev(Metric m) const { return util::stddev(values(m)); }

util::BoxStats MetricAggregate::box(Metric m) const { return util::box_stats(values(m)); }

MetricSet MetricAggregate::mean_set() const {
  MetricSet out;
  if (samples_.empty()) return out;
  for (const auto& s : samples_) {
    out.makespan += s.makespan;
    out.avg_wait += s.avg_wait;
    out.avg_turnaround += s.avg_turnaround;
    out.throughput += s.throughput;
    out.node_util += s.node_util;
    out.mem_util += s.mem_util;
    out.wait_fairness += s.wait_fairness;
    out.user_fairness += s.user_fairness;
    out.energy_kwh += s.energy_kwh;
  }
  const auto n = static_cast<double>(samples_.size());
  out.makespan /= n;
  out.avg_wait /= n;
  out.avg_turnaround /= n;
  out.throughput /= n;
  out.node_util /= n;
  out.mem_util /= n;
  out.wait_fairness /= n;
  out.user_fairness /= n;
  out.energy_kwh /= n;
  return out;
}

}  // namespace reasched::metrics
