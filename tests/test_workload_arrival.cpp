#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "workload/arrival.hpp"

namespace rw = reasched::workload;
namespace rs = reasched::sim;

namespace {
std::vector<rs::Job> blank_jobs(std::size_t n) {
  std::vector<rs::Job> jobs(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs[i].id = static_cast<int>(i + 1);
    jobs[i].duration = jobs[i].walltime = 10;
    jobs[i].nodes = 1;
  }
  return jobs;
}
}  // namespace

TEST(PoissonArrivals, FirstAtZeroAndMonotone) {
  auto jobs = blank_jobs(50);
  reasched::util::Rng rng(1);
  rw::assign_poisson_arrivals(jobs, 60.0, rng);
  EXPECT_DOUBLE_EQ(jobs.front().submit_time, 0.0);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].submit_time, jobs[i - 1].submit_time);
  }
}

TEST(PoissonArrivals, MeanInterarrivalApproximatelyCorrect) {
  auto jobs = blank_jobs(5000);
  reasched::util::Rng rng(2);
  rw::assign_poisson_arrivals(jobs, 60.0, rng);
  const double span = jobs.back().submit_time;
  EXPECT_NEAR(span / 4999.0, 60.0, 4.0);
}

TEST(StaticArrivals, AllZero) {
  auto jobs = blank_jobs(10);
  for (auto& j : jobs) j.submit_time = 99.0;
  rw::assign_static_arrivals(jobs);
  for (const auto& j : jobs) EXPECT_DOUBLE_EQ(j.submit_time, 0.0);
}

TEST(BurstyArrivals, GapsBetweenBursts) {
  auto jobs = blank_jobs(24);
  reasched::util::Rng rng(3);
  rw::assign_bursty_arrivals(jobs, /*burst_size=*/8, /*within_burst=*/5.0,
                             /*idle_gap=*/1000.0, rng);
  // Jobs 8->9 and 16->17 cross burst boundaries: the gap must be >= the idle
  // gap, far larger than any within-burst spacing.
  const double gap1 = jobs[8].submit_time - jobs[7].submit_time;
  const double gap2 = jobs[16].submit_time - jobs[15].submit_time;
  EXPECT_GE(gap1, 1000.0);
  EXPECT_GE(gap2, 1000.0);
  // Within-burst gaps are small on average.
  double within = 0.0;
  int count = 0;
  for (std::size_t i = 1; i < 8; ++i) {
    within += jobs[i].submit_time - jobs[i - 1].submit_time;
    ++count;
  }
  EXPECT_LT(within / count, 50.0);
}
