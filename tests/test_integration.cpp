// Cross-module integration tests: full pipelines over generated workloads
// and the Polaris substrate, asserting the qualitative relationships the
// paper's evaluation depends on.

#include <gtest/gtest.h>

#include "harness/sweep.hpp"
#include "metrics/report.hpp"
#include "workload/polaris.hpp"

namespace rh = reasched::harness;
namespace rw = reasched::workload;
namespace rm = reasched::metrics;
namespace rs = reasched::sim;

TEST(Integration, AllScenariosAllPaperMethodsProduceSaneMetrics) {
  for (const auto scenario : rw::all_scenarios()) {
    const auto jobs = rw::make_generator(scenario)->generate(16, 11);
    for (const auto method : rh::paper_methods()) {
      const auto outcome = rh::run_method(jobs, method, 11);
      const auto& m = outcome.metrics;
      EXPECT_GT(m.makespan, 0.0);
      EXPECT_GE(m.avg_wait, 0.0);
      EXPECT_GE(m.avg_turnaround, m.avg_wait);
      EXPECT_GT(m.throughput, 0.0);
      EXPECT_GT(m.node_util, 0.0);
      EXPECT_LE(m.node_util, 1.0 + 1e-9);
      EXPECT_LE(m.mem_util, 1.0 + 1e-9);
      EXPECT_GE(m.wait_fairness, 0.0);
      EXPECT_LE(m.wait_fairness, 1.0 + 1e-9);
      EXPECT_GE(m.user_fairness, 0.0);
      EXPECT_LE(m.user_fairness, 1.0 + 1e-9);
    }
  }
}

TEST(Integration, LlmAgentsReduceWaitInLongJobDominant) {
  // The paper's headline Long-Job-Dominant claim: FCFS suffers the convoy
  // effect; the LLM agents dramatically reduce average wait and turnaround.
  const auto jobs = rw::make_generator(rw::Scenario::kLongJobDominant)->generate(40, 21);
  const auto fcfs = rh::run_method(jobs, rh::Method::kFcfs, 21);
  const auto claude = rh::run_method(jobs, rh::Method::kClaude37, 21);
  const auto o4 = rh::run_method(jobs, rh::Method::kO4Mini, 21);
  EXPECT_LT(claude.metrics.avg_wait, 0.6 * fcfs.metrics.avg_wait);
  EXPECT_LT(o4.metrics.avg_wait, 0.6 * fcfs.metrics.avg_wait);
  EXPECT_LT(claude.metrics.avg_turnaround, fcfs.metrics.avg_turnaround);
}

TEST(Integration, OrToolsWinsUtilizationLosesFairnessInHetMix) {
  // The paper's OR-Tools signature (Sections 3.5-3.6).
  const auto jobs =
      rw::make_generator(rw::Scenario::kHeterogeneousMix)->generate(60, 42);
  const auto fcfs = rh::run_method(jobs, rh::Method::kFcfs, 42);
  const auto ortools = rh::run_method(jobs, rh::Method::kOrTools, 42);
  const auto claude = rh::run_method(jobs, rh::Method::kClaude37, 42);
  EXPECT_GT(ortools.metrics.node_util, fcfs.metrics.node_util);
  EXPECT_LT(ortools.metrics.makespan, fcfs.metrics.makespan);
  EXPECT_LT(ortools.metrics.wait_fairness, fcfs.metrics.wait_fairness);
  // The LLM agent keeps fairness far above the pure optimizer.
  EXPECT_GT(claude.metrics.wait_fairness, ortools.metrics.wait_fairness);
}

TEST(Integration, AdversarialScenarioFlattensDifferences) {
  // Section 3.5: "Adversarial conditions lead to flattened differences".
  const auto jobs = rw::make_generator(rw::Scenario::kAdversarial)->generate(40, 5);
  const auto fcfs = rh::run_method(jobs, rh::Method::kFcfs, 5);
  for (const auto method : {rh::Method::kSjf, rh::Method::kClaude37}) {
    const auto other = rh::run_method(jobs, method, 5);
    EXPECT_NEAR(other.metrics.makespan / fcfs.metrics.makespan, 1.0, 0.05);
    EXPECT_NEAR(other.metrics.throughput / fcfs.metrics.throughput, 1.0, 0.05);
  }
}

TEST(Integration, PolarisTraceEndToEnd) {
  // Section 5 pipeline: synthetic raw trace -> preprocessing -> simulation
  // on the 560-node Polaris partition, idle at t=0.
  const auto jobs = rw::polaris_jobs(50, 11);
  rs::EngineConfig engine;
  engine.cluster = rs::ClusterSpec::polaris();
  std::vector<rm::MethodResult> rows;
  for (const auto method : rh::paper_methods()) {
    const auto outcome = rh::run_method(jobs, method, 11, engine);
    EXPECT_EQ(outcome.schedule.completed.size(), 50u) << rh::method_name(method);
    rows.push_back({rh::method_name(method), outcome.metrics});
  }
  // The normalized table renders without error and contains every method.
  const std::string table = rm::render_normalized_table(rows, "FCFS");
  for (const auto& row : rows) {
    EXPECT_NE(table.find(row.method), std::string::npos);
  }
}

TEST(Integration, FastLocalProfileSlashesOverhead) {
  // Extension (Section 3.7.3): an on-prem fast reasoner makes LLM scheduling
  // latency-viable; decisions stay Claude-like but total elapsed collapses.
  const auto jobs =
      rw::make_generator(rw::Scenario::kHeterogeneousMix)->generate(30, 31);
  const auto claude = rh::run_method(jobs, rh::Method::kClaude37, 31);
  const auto fast = rh::run_method(jobs, rh::Method::kFastLocal, 31);
  ASSERT_TRUE(claude.overhead.has_value());
  ASSERT_TRUE(fast.overhead.has_value());
  EXPECT_LT(fast.overhead->total_elapsed_s * 5.0, claude.overhead->total_elapsed_s);
}

TEST(Integration, CallCountsTrackJobCounts) {
  // Figure 5 (middle): LLM call counts approximately equal job count, with
  // slight variation due to backfills/delays.
  for (const std::size_t n : {10u, 20u, 40u}) {
    const auto jobs = rw::make_generator(rw::Scenario::kHomogeneousShort)->generate(n, 7);
    const auto outcome = rh::run_method(jobs, rh::Method::kClaude37, 7);
    ASSERT_TRUE(outcome.overhead.has_value());
    EXPECT_EQ(outcome.overhead->n_successful, n);
    EXPECT_GE(outcome.overhead->n_calls, n);          // + delays/stop
    EXPECT_LE(outcome.overhead->n_calls, 3 * n + 10);  // bounded overhead
  }
}

TEST(Integration, EasyBackfillBeatsFcfsOnConvoy) {
  const auto jobs = rw::make_generator(rw::Scenario::kLongJobDominant)->generate(30, 17);
  const auto fcfs = rh::run_method(jobs, rh::Method::kFcfs, 17);
  const auto easy = rh::run_method(jobs, rh::Method::kEasyBackfill, 17);
  EXPECT_LE(easy.metrics.avg_wait, fcfs.metrics.avg_wait);
  EXPECT_LE(easy.metrics.makespan, fcfs.metrics.makespan * 1.001);
}

TEST(Integration, StaticArrivalFormulationRuns) {
  // Section 3.3's static formulation: all jobs at t=0.
  const auto jobs = rw::make_generator(rw::Scenario::kHeterogeneousMix)
                        ->generate(20, 13, rw::ArrivalMode::kStatic);
  for (const auto method : rh::paper_methods()) {
    const auto outcome = rh::run_method(jobs, method, 13);
    EXPECT_EQ(outcome.schedule.completed.size(), 20u);
    // With s_j = 0, wait equals start time (w_j = x_j).
    for (const auto& c : outcome.schedule.completed) {
      EXPECT_DOUBLE_EQ(c.wait_time(), c.start_time);
    }
  }
}
