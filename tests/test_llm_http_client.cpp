#include <gtest/gtest.h>

#include "llm/http_client.hpp"
#include "util/json_parser.hpp"

namespace rl = reasched::llm;
namespace ru = reasched::util;

TEST(ProviderPayload, AnthropicShape) {
  rl::Request req;
  req.prompt = "You are an expert HPC resource manager...";
  req.max_tokens = 5000;
  req.temperature = 0.0;
  const std::string payload =
      rl::build_provider_payload(rl::ProviderKind::kAnthropic, rl::claude37_profile(), req);
  const auto doc = ru::parse_json(payload);
  EXPECT_EQ(doc.at("model").as_string(), "claude-3-7-sonnet@vertex");
  EXPECT_DOUBLE_EQ(doc.at("max_tokens").as_number(), 5000.0);
  EXPECT_DOUBLE_EQ(doc.at("temperature").as_number(), 0.0);
  const auto& msg = doc.at("messages").at(std::size_t{0});
  EXPECT_EQ(msg.at("role").as_string(), "user");
  EXPECT_EQ(msg.at("content").as_string(), req.prompt);
}

TEST(ProviderPayload, OpenAiShapeWithReasoningEffort) {
  rl::Request req;
  req.prompt = "schedule things";
  req.max_tokens = 100000;
  const std::string payload =
      rl::build_provider_payload(rl::ProviderKind::kOpenAi, rl::o4mini_profile(), req);
  const auto doc = ru::parse_json(payload);
  EXPECT_EQ(doc.at("model").as_string(), "o4-mini@azure");
  // The paper ran O4-Mini at "reasoning effort: high"; temperature is fixed
  // internally and must not appear in the payload.
  EXPECT_EQ(doc.at("reasoning_effort").as_string(), "high");
  EXPECT_FALSE(doc.contains("temperature"));
  EXPECT_DOUBLE_EQ(doc.at("max_completion_tokens").as_number(), 100000.0);
}

TEST(ProviderResponse, AnthropicParsing) {
  const std::string body = R"({
    "content": [{"type": "text", "text": "Thought: ok\nAction: Delay"}],
    "usage": {"input_tokens": 900, "output_tokens": 120}
  })";
  EXPECT_EQ(rl::parse_provider_response(rl::ProviderKind::kAnthropic, body),
            "Thought: ok\nAction: Delay");
  const auto usage = rl::parse_provider_usage(rl::ProviderKind::kAnthropic, body);
  EXPECT_EQ(usage.prompt_tokens, 900);
  EXPECT_EQ(usage.completion_tokens, 120);
}

TEST(ProviderResponse, OpenAiParsing) {
  const std::string body = R"({
    "choices": [{"message": {"role": "assistant", "content": "Action: Stop"}}],
    "usage": {"prompt_tokens": 1500, "completion_tokens": 40}
  })";
  EXPECT_EQ(rl::parse_provider_response(rl::ProviderKind::kOpenAi, body), "Action: Stop");
  const auto usage = rl::parse_provider_usage(rl::ProviderKind::kOpenAi, body);
  EXPECT_EQ(usage.prompt_tokens, 1500);
  EXPECT_EQ(usage.completion_tokens, 40);
}

TEST(ProviderResponse, ErrorPayloadThrows) {
  const std::string body = R"({"error": {"type": "rate_limit", "message": "slow down"}})";
  EXPECT_THROW(rl::parse_provider_response(rl::ProviderKind::kAnthropic, body),
               std::runtime_error);
  try {
    rl::parse_provider_response(rl::ProviderKind::kOpenAi, body);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("slow down"), std::string::npos);
  }
}

TEST(ProviderResponse, MalformedThrows) {
  EXPECT_THROW(rl::parse_provider_response(rl::ProviderKind::kAnthropic, "{}"),
               std::runtime_error);
  EXPECT_THROW(rl::parse_provider_response(rl::ProviderKind::kOpenAi,
                                           R"({"choices": []})"),
               std::runtime_error);
  EXPECT_THROW(rl::parse_provider_response(rl::ProviderKind::kOpenAi, "not json"),
               std::runtime_error);
}

TEST(ProviderResponse, MissingUsageIsZero) {
  const auto usage = rl::parse_provider_usage(
      rl::ProviderKind::kAnthropic, R"({"content": [{"type":"text","text":"x"}]})");
  EXPECT_EQ(usage.prompt_tokens, 0);
  EXPECT_EQ(usage.completion_tokens, 0);
}

TEST(HttpClient, EndToEndWithMockTransport) {
  // Canned Anthropic-shaped response; records the exchange for inspection.
  rl::HttpExchange seen;
  auto transport = [&seen](const rl::HttpExchange& ex) {
    seen = ex;
    return std::string(R"json({
      "content": [{"type": "text", "text": "Thought: t\nAction: StartJob(job_id=4)"}],
      "usage": {"input_tokens": 777, "output_tokens": 42}
    })json");
  };
  rl::HttpClient client(
      {rl::ProviderKind::kAnthropic, "https://example.invalid/v1/messages",
       "x-api-key: test"},
      rl::claude37_profile(), transport);

  rl::Request req;
  req.prompt = "the prompt";
  req.max_tokens = 5000;
  const auto resp = client.complete(req);

  EXPECT_EQ(resp.text, "Thought: t\nAction: StartJob(job_id=4)");
  EXPECT_EQ(resp.prompt_tokens, 777);
  EXPECT_EQ(resp.completion_tokens, 42);
  EXPECT_GE(resp.latency_seconds, 0.0);
  EXPECT_EQ(client.calls_made(), 1u);
  EXPECT_EQ(client.model_name(), "Claude 3.7");

  // The transport saw the configured endpoint, auth and a valid payload.
  EXPECT_EQ(seen.url, "https://example.invalid/v1/messages");
  EXPECT_EQ(seen.auth_header, "x-api-key: test");
  const auto payload = ru::parse_json(seen.body);
  EXPECT_EQ(payload.at("messages").at(std::size_t{0}).at("content").as_string(),
            "the prompt");
}

TEST(HttpClient, UsageFallbackToEstimates) {
  auto transport = [](const rl::HttpExchange&) {
    return std::string(R"({"content": [{"type": "text", "text": "Action: Delay"}]})");
  };
  rl::HttpClient client({rl::ProviderKind::kAnthropic, "u", "a"}, rl::claude37_profile(),
                        transport);
  rl::Request req;
  req.prompt = std::string(400, 'x');  // ~100 tokens
  const auto resp = client.complete(req);
  EXPECT_EQ(resp.prompt_tokens, 100);
  EXPECT_GT(resp.completion_tokens, 0);
}

TEST(HttpClient, NullTransportRejected) {
  EXPECT_THROW(rl::HttpClient({}, rl::claude37_profile(), nullptr),
               std::invalid_argument);
}

TEST(HttpClient, TransportErrorsPropagate) {
  auto transport = [](const rl::HttpExchange&) -> std::string {
    throw std::runtime_error("connection refused");
  };
  rl::HttpClient client({rl::ProviderKind::kOpenAi, "u", "a"}, rl::o4mini_profile(),
                        transport);
  rl::Request req;
  EXPECT_THROW(client.complete(req), std::runtime_error);
}
