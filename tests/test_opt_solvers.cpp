#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "opt/branch_and_bound.hpp"
#include "opt/list_scheduler.hpp"
#include "opt/local_search.hpp"
#include "opt/optimizing_scheduler.hpp"
#include "opt/simulated_annealing.hpp"
#include "sched/fcfs.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace ro = reasched::opt;
namespace rs = reasched::sim;

namespace {
rs::Job make_job(int id, int nodes, double mem, double dur, double submit = 0.0) {
  rs::Job j;
  j.id = id;
  j.nodes = nodes;
  j.memory_gb = mem;
  j.duration = dur;
  j.walltime = dur;
  j.submit_time = submit;
  return j;
}

ro::Problem random_problem(reasched::util::Rng& rng, std::size_t n) {
  ro::Problem p;
  p.total_nodes = 256;
  p.total_memory_gb = 2048;
  for (std::size_t i = 0; i < n; ++i) {
    p.jobs.push_back(make_job(static_cast<int>(i + 1),
                              static_cast<int>(rng.uniform_int(1, 200)),
                              rng.uniform_real(1.0, 1024.0),
                              rng.uniform_real(10.0, 400.0)));
  }
  return p;
}

double brute_force_best(const ro::Problem& p, const ro::ObjectiveWeights& w) {
  std::vector<std::size_t> order(p.jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, ro::evaluate(ro::decode_order(p, order), w));
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}
}  // namespace

// The headline solver guarantee: B&B matches exhaustive enumeration over the
// list-schedule space on small random instances.
class BnbExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbExactness, MatchesBruteForce) {
  reasched::util::Rng rng(GetParam());
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const auto p = random_problem(rng, n);
  const ro::ObjectiveWeights w;  // pure makespan
  const auto exact = ro::branch_and_bound(p, w);
  EXPECT_TRUE(exact.proven_optimal);
  EXPECT_NEAR(exact.score, brute_force_best(p, w), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbExactness, ::testing::Range<std::uint64_t>(0, 20));

TEST(Bnb, TrivialInstances) {
  ro::Problem p;
  p.total_nodes = 256;
  p.total_memory_gb = 2048;
  const ro::ObjectiveWeights w;
  const auto empty = ro::branch_and_bound(p, w);
  EXPECT_TRUE(empty.proven_optimal);
  EXPECT_TRUE(empty.order.empty());

  p.jobs.push_back(make_job(1, 10, 10, 100));
  const auto single = ro::branch_and_bound(p, w);
  EXPECT_DOUBLE_EQ(single.score, 100.0);
}

TEST(Bnb, BudgetCapReported) {
  reasched::util::Rng rng(123);
  const auto p = random_problem(rng, 9);
  ro::BnbConfig config;
  config.max_nodes = 5;  // absurdly small
  const auto capped = ro::branch_and_bound(p, {}, config);
  EXPECT_FALSE(capped.proven_optimal);
  EXPECT_FALSE(capped.order.empty());  // still returns the incumbent
}

TEST(LocalSearch, NeverWorseThanSeed) {
  reasched::util::Rng rng(5);
  const auto p = random_problem(rng, 12);
  const ro::ObjectiveWeights w;
  const auto seed = ro::order_by_arrival(p);
  const double seed_score = ro::evaluate(ro::decode_order(p, seed), w);
  const auto improved = ro::local_search(p, seed, w);
  EXPECT_LE(improved.score, seed_score + 1e-9);
  EXPECT_GT(improved.evaluations, 0u);
}

TEST(LocalSearch, RespectsEvaluationBudget) {
  reasched::util::Rng rng(6);
  const auto p = random_problem(rng, 15);
  const auto r = ro::local_search(p, ro::order_by_arrival(p), {}, 50);
  EXPECT_LE(r.evaluations, 50u);
}

TEST(SimulatedAnnealing, NeverWorseThanSeedAndDeterministic) {
  reasched::util::Rng rng(7);
  const auto p = random_problem(rng, 14);
  const ro::ObjectiveWeights w;
  const auto seed = ro::order_by_arrival(p);
  const double seed_score = ro::evaluate(ro::decode_order(p, seed), w);

  ro::SaConfig config;
  config.iterations = 800;
  reasched::util::Rng sa_rng1(11), sa_rng2(11), sa_rng3(12);
  const auto r1 = ro::simulated_annealing(p, seed, w, config, sa_rng1);
  const auto r2 = ro::simulated_annealing(p, seed, w, config, sa_rng2);
  EXPECT_LE(r1.score, seed_score + 1e-9);
  EXPECT_EQ(r1.order, r2.order);  // same rng seed -> same trajectory
  EXPECT_EQ(r1.score, r2.score);
  const auto r3 = ro::simulated_annealing(p, seed, w, config, sa_rng3);
  (void)r3;  // different seed may differ; just must not crash
}

TEST(SimulatedAnnealing, FindsKnownPackingImprovement) {
  // Arrival order wastes the cluster: two 128-node jobs could run together.
  ro::Problem p;
  p.total_nodes = 256;
  p.total_memory_gb = 2048;
  p.jobs = {make_job(1, 128, 10, 100), make_job(2, 256, 10, 100),
            make_job(3, 128, 10, 100)};
  const std::vector<std::size_t> bad = {0, 1, 2};  // 1 | 2 | 3 -> makespan 300
  const ro::ObjectiveWeights w;
  EXPECT_DOUBLE_EQ(ro::evaluate(ro::decode_order(p, bad), w), 300.0);
  ro::SaConfig config;
  config.iterations = 500;
  reasched::util::Rng rng(3);
  const auto r = ro::simulated_annealing(p, bad, w, config, rng);
  EXPECT_DOUBLE_EQ(r.score, 200.0);  // 1+3 together, then 2
}

TEST(OptimizingScheduler, CompletesAndBeatsFcfsOnPackableInstance) {
  // Alternating wide/narrow jobs where FCFS head-of-line blocking hurts.
  std::vector<rs::Job> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(i % 2 == 0 ? make_job(i + 1, 250, 100, 100)
                              : make_job(i + 1, 6, 10, 100));
  }
  rs::Engine engine;
  reasched::sched::FcfsScheduler fcfs;
  const auto fcfs_result = engine.run(jobs, fcfs);

  ro::OptimizingSchedulerConfig config;
  config.seed = 1;
  ro::OptimizingScheduler opt(config);
  const auto opt_result = engine.run(jobs, opt);

  ASSERT_EQ(opt_result.completed.size(), jobs.size());
  EXPECT_LE(opt_result.final_time, fcfs_result.final_time + 1e-9);
  EXPECT_GT(opt.replans(), 0u);
}

TEST(OptimizingScheduler, HandlesDynamicArrivals) {
  std::vector<rs::Job> jobs;
  for (int i = 0; i < 30; ++i) {
    jobs.push_back(make_job(i + 1, 32 + (i % 4) * 32, 64, 200.0 + i, i * 20.0));
  }
  ro::OptimizingScheduler opt;
  rs::Engine engine;
  const auto result = engine.run(jobs, opt);
  EXPECT_EQ(result.completed.size(), jobs.size());
  EXPECT_EQ(result.n_invalid_actions, 0u);  // planner never proposes infeasible
}

TEST(OptimizingScheduler, ResetRestoresDeterminism) {
  const auto jobs = [&] {
    std::vector<rs::Job> v;
    for (int i = 0; i < 20; ++i) v.push_back(make_job(i + 1, 64, 128, 100.0 + 7 * i));
    return v;
  }();
  ro::OptimizingSchedulerConfig config;
  config.seed = 9;
  ro::OptimizingScheduler opt(config);
  rs::Engine engine;
  const auto r1 = engine.run(jobs, opt);
  const auto r2 = engine.run(jobs, opt);  // engine calls reset()
  for (std::size_t i = 0; i < r1.completed.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.completed[i].start_time, r2.completed[i].start_time);
  }
}

TEST(Objective, WeightsCompose) {
  ro::PlannedSchedule plan;
  plan.makespan = 100.0;
  plan.total_completion = 50.0;
  plan.total_wait = 10.0;
  EXPECT_DOUBLE_EQ(ro::evaluate(plan, {1.0, 0.0, 0.0}), 100.0);
  EXPECT_DOUBLE_EQ(ro::evaluate(plan, {1.0, 0.1, 0.0}), 105.0);
  EXPECT_DOUBLE_EQ(ro::evaluate(plan, {1.0, 0.0, 2.0}), 120.0);
}
