#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "service/protocol.hpp"
#include "service/service_engine.hpp"
#include "service/snapshot.hpp"
#include "workload/arrival_stream.hpp"

namespace rm = reasched::metrics;
namespace rsvc = reasched::service;
namespace rs = reasched::sim;
namespace rw = reasched::workload;

// Checkpoint round-trip property golden: a reference session executes a
// fixed op sequence; for every prefix length k we checkpoint the session
// after k ops, restore from the snapshot text, and demand (a) the restored
// digest equals the reference digest at k and (b) replaying the remaining
// ops plus the final drain lands on the bit-identical decision trace and
// MetricSet. This is the exactness claim behind service checkpoint/restart:
// a snapshot is config + op log, and replay reproduces the session.

namespace {

rsvc::ServiceConfig session_config() {
  rsvc::ServiceConfig config;
  config.method = reasched::harness::MethodSpec::parse("easy");
  config.seed = 424242;
  // A streamed source makes restore non-trivial: the restored session must
  // re-derive the stream state purely from config + replayed advances.
  config.stream = rw::make_stream_spec("bursty_idle", 16, 1, 1.0);
  return config;
}

rs::Job client_job(double submit, double duration, int nodes) {
  rs::Job j;
  j.submit_time = submit;
  j.duration = duration;
  j.walltime = duration;
  j.nodes = nodes;
  j.memory_gb = 8.0;
  j.user = 9;
  return j;
}

// The scripted client: interleaves external submissions and a cancel with
// clock advances that pull stream arrivals in. Returns the logged ops.
std::vector<rsvc::ServiceOp> drive_reference(rsvc::ServiceEngine& engine) {
  engine.advance_to(10.0);
  const rs::JobId a = engine.submit(client_job(20.0, 300.0, 8));
  engine.advance_to(50.0);
  engine.submit(client_job(60.0, 120.0, 4));
  const rs::JobId doomed = engine.submit(client_job(400.0, 1e6, 16));
  engine.advance_to(200.0);
  engine.cancel(doomed);
  engine.submit(client_job(250.0, 40.0, 2));
  engine.advance_to(600.0);
  (void)a;
  return engine.ops();
}

struct FinalState {
  std::uint64_t digest = 0;
  std::string trace;
  rm::MetricSet metrics;
};

FinalState finish(rsvc::ServiceEngine& engine) {
  FinalState out;
  const rsvc::DrainResult result = engine.drain();
  out.digest = engine.state_digest();
  out.trace = rsvc::render_decision_trace(result.schedule);
  out.metrics = result.metrics;
  return out;
}

void expect_same_metrics(const rm::MetricSet& a, const rm::MetricSet& b) {
  for (const rm::Metric m : rm::all_metrics()) {
    EXPECT_EQ(a.get(m), b.get(m)) << rm::to_string(m);
  }
  EXPECT_EQ(a.energy_kwh, b.energy_kwh);
}

}  // namespace

TEST(ServiceCheckpointGolden, EveryPrefixRestoresBitIdentically) {
  // Reference: the full session, uninterrupted, with per-prefix digests.
  rsvc::ServiceEngine reference(session_config());
  const std::vector<rsvc::ServiceOp> ops = drive_reference(reference);
  ASSERT_GE(ops.size(), 8u);

  std::vector<std::uint64_t> digest_at(ops.size() + 1);
  {
    rsvc::ServiceEngine walker(session_config());
    digest_at[0] = walker.state_digest();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      walker.apply(ops[i]);
      digest_at[i + 1] = walker.state_digest();
    }
  }
  EXPECT_EQ(digest_at[ops.size()], reference.state_digest());
  const FinalState expected = finish(reference);

  for (std::size_t k = 0; k <= ops.size(); ++k) {
    // Run k ops, checkpoint, restore from the snapshot text.
    rsvc::ServiceEngine interrupted(session_config());
    for (std::size_t i = 0; i < k; ++i) interrupted.apply(ops[i]);
    const std::string snapshot = rsvc::snapshot_to_json(interrupted);
    std::unique_ptr<rsvc::ServiceEngine> restored = rsvc::restore_snapshot_text(snapshot);

    EXPECT_EQ(restored->state_digest(), digest_at[k]) << "prefix " << k;
    EXPECT_EQ(restored->ops().size(), k);

    // The resumed session must see the identical remaining event sequence:
    // replay the rest of the script and compare the final state bit-for-bit.
    for (std::size_t i = k; i < ops.size(); ++i) restored->apply(ops[i]);
    const FinalState resumed = finish(*restored);
    EXPECT_EQ(resumed.digest, expected.digest) << "prefix " << k;
    EXPECT_EQ(resumed.trace, expected.trace) << "prefix " << k;
    expect_same_metrics(resumed.metrics, expected.metrics);
  }
}

TEST(ServiceCheckpointGolden, SnapshotSurvivesDiskRoundTrip) {
  rsvc::ServiceEngine engine(session_config());
  drive_reference(engine);

  const std::string path = testing::TempDir() + "reasched_snapshot_roundtrip.json";
  rsvc::save_snapshot(engine, path);
  std::unique_ptr<rsvc::ServiceEngine> restored = rsvc::load_snapshot(path);
  std::remove(path.c_str());

  EXPECT_EQ(restored->state_digest(), engine.state_digest());
  // And the serialized form is stable: snapshotting the restored session
  // reproduces the original snapshot text byte-for-byte.
  EXPECT_EQ(rsvc::snapshot_to_json(*restored), rsvc::snapshot_to_json(engine));
}

TEST(ServiceCheckpointGolden, TamperedSnapshotsAreRejected) {
  rsvc::ServiceEngine engine(session_config());
  drive_reference(engine);
  std::string snapshot = rsvc::snapshot_to_json(engine);

  // Flip one digest nibble: restore must refuse rather than resume a
  // session that does not reproduce the checkpointed state.
  const std::size_t pos = snapshot.rfind("\"digest\":\"");
  ASSERT_NE(pos, std::string::npos);
  char& nibble = snapshot[pos + 10];
  nibble = nibble == '0' ? '1' : '0';
  EXPECT_THROW(rsvc::restore_snapshot_text(snapshot), rsvc::SnapshotError);

  EXPECT_THROW(rsvc::restore_snapshot_text("{\"version\":99}"), rsvc::SnapshotError);
  EXPECT_THROW(rsvc::restore_snapshot_text("not json"), rsvc::SnapshotError);
}

TEST(ServiceCheckpointGolden, DrainedSessionCheckpointsAndRestores) {
  // A finished session is still checkpointable (for archival): restore
  // replays through the drain op and reproduces the terminal state.
  rsvc::ServiceEngine engine(session_config());
  drive_reference(engine);
  const FinalState expected = finish(engine);

  const std::string snapshot = rsvc::snapshot_to_json(engine);
  std::unique_ptr<rsvc::ServiceEngine> restored = rsvc::restore_snapshot_text(snapshot);
  EXPECT_TRUE(restored->drained());
  EXPECT_EQ(restored->state_digest(), expected.digest);
  EXPECT_EQ(rsvc::render_decision_trace(restored->schedule_view()), expected.trace);
}
