// Behavior-preservation golden for the ScenarioSpec redesign: the scenario
// axis rekey (enum -> spec) must leave every recorded result bit-identical
// for the seven paper scenarios:
//
//   1. cell_jobs() through the enum shim vs through the parsed canonical
//      spec string - identical job vectors, because scenario labels (the
//      seed-derivation keys) and the registered generators reproduce the
//      pre-registry construction verbatim;
//   2. a direct-construction oracle replicating the pre-registry cell_jobs
//      body (make_generator(enum)->generate with the label-derived seed);
//   3. full sweep RunOutcomes (metrics, schedule, decisions, counters)
//      keyed by enum scenarios vs by parsed spec strings;
//   4. a piped transform spec re-parsed from its canonical to_string()
//      generates - and schedules - deterministically identically.

#include <gtest/gtest.h>

#include "harness/sweep.hpp"
#include "metrics/metrics.hpp"
#include "workload/generator.hpp"
#include "workload/scenario_spec.hpp"

namespace rh = reasched::harness;
namespace rw = reasched::workload;
namespace rm = reasched::metrics;
using namespace reasched;

namespace {

constexpr std::uint64_t kSeed = 20260727;

struct GoldenCase {
  rw::Scenario scenario;
  const char* canonical_spec;
};

const GoldenCase kCases[] = {
    {rw::Scenario::kHomogeneousShort, "homog_short"},
    {rw::Scenario::kHeterogeneousMix, "hetero_mix"},
    {rw::Scenario::kLongJobDominant, "long_job"},
    {rw::Scenario::kHighParallelism, "high_parallel"},
    {rw::Scenario::kResourceSparse, "resource_sparse"},
    {rw::Scenario::kBurstyIdle, "bursty_idle"},
    {rw::Scenario::kAdversarial, "adversarial"},
};

void expect_identical_jobs(const std::vector<sim::Job>& a, const std::vector<sim::Job>& b,
                           const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << label << " job " << i;
    EXPECT_EQ(a[i].user, b[i].user) << label << " job " << i;
    EXPECT_EQ(a[i].group, b[i].group) << label << " job " << i;
    EXPECT_EQ(a[i].submit_time, b[i].submit_time) << label << " job " << i;
    EXPECT_EQ(a[i].duration, b[i].duration) << label << " job " << i;
    EXPECT_EQ(a[i].walltime, b[i].walltime) << label << " job " << i;
    EXPECT_EQ(a[i].nodes, b[i].nodes) << label << " job " << i;
    EXPECT_EQ(a[i].memory_gb, b[i].memory_gb) << label << " job " << i;
    EXPECT_EQ(a[i].dependencies, b[i].dependencies) << label << " job " << i;
  }
}

void expect_identical_outcomes(const rh::RunOutcome& a, const rh::RunOutcome& b,
                               const std::string& label) {
  for (const auto metric : rm::all_metrics()) {
    EXPECT_EQ(a.metrics.get(metric), b.metrics.get(metric))
        << label << " metric " << rm::to_string(metric);
  }
  EXPECT_EQ(a.metrics.energy_kwh, b.metrics.energy_kwh) << label;
  ASSERT_EQ(a.schedule.completed.size(), b.schedule.completed.size()) << label;
  for (std::size_t i = 0; i < a.schedule.completed.size(); ++i) {
    EXPECT_EQ(a.schedule.completed[i].job.id, b.schedule.completed[i].job.id)
        << label << " job " << i;
    EXPECT_EQ(a.schedule.completed[i].start_time, b.schedule.completed[i].start_time)
        << label << " job " << i;
    EXPECT_EQ(a.schedule.completed[i].end_time, b.schedule.completed[i].end_time)
        << label << " job " << i;
  }
  ASSERT_EQ(a.schedule.decisions.size(), b.schedule.decisions.size()) << label;
  for (std::size_t i = 0; i < a.schedule.decisions.size(); ++i) {
    EXPECT_EQ(a.schedule.decisions[i].time, b.schedule.decisions[i].time)
        << label << " decision " << i;
    EXPECT_EQ(a.schedule.decisions[i].action.type, b.schedule.decisions[i].action.type)
        << label << " decision " << i;
    EXPECT_EQ(a.schedule.decisions[i].action.job_id, b.schedule.decisions[i].action.job_id)
        << label << " decision " << i;
  }
  EXPECT_EQ(a.schedule.final_time, b.schedule.final_time) << label;
  EXPECT_EQ(a.schedule.n_decisions, b.schedule.n_decisions) << label;
  EXPECT_EQ(a.schedule.n_invalid_actions, b.schedule.n_invalid_actions) << label;
  EXPECT_EQ(a.schedule.n_backfills, b.schedule.n_backfills) << label;
}

}  // namespace

TEST(ScenarioSpecGolden, CellJobsBitIdenticalAcrossEnumShimSpecAndLegacyOracle) {
  rh::SweepConfig config;
  config.base_seed = kSeed;

  for (const auto& test_case : kCases) {
    const std::string label = test_case.canonical_spec;
    for (const std::size_t n : {10u, 60u}) {
      for (const std::size_t rep : {0u, 1u}) {
        // Enum shim vs parsed canonical spec string.
        const auto via_enum = rh::cell_jobs(config, test_case.scenario, n, rep);
        const auto via_spec =
            rh::cell_jobs(config, rw::ScenarioSpec::parse(test_case.canonical_spec), n, rep);
        expect_identical_jobs(via_enum, via_spec, label + " (enum vs spec)");

        // The pre-registry cell_jobs body, preserved verbatim as the oracle:
        // seed derived from the legacy display label, workload drawn from
        // the enum-keyed generator factory.
        const std::uint64_t workload_seed = util::derive_seed(
            util::derive_seed(config.base_seed, rw::to_string(test_case.scenario), n), "rep",
            rep);
        const auto legacy = rw::make_generator(test_case.scenario)
                                ->generate(n, workload_seed, config.arrival_mode,
                                           config.engine.cluster);
        expect_identical_jobs(via_spec, legacy, label + " (legacy oracle)");
      }
    }
  }
}

TEST(ScenarioSpecGolden, SweepOutcomesUnchangedByScenarioRekey) {
  // The spec-keyed sweep must reproduce the enum-keyed sweep bit-for-bit:
  // one grid run over all seven scenarios as enums, one as parsed spec
  // strings, identical RunOutcomes cell by cell.
  rh::SweepConfig enum_config;
  enum_config.scenarios.assign(rw::all_scenarios().begin(), rw::all_scenarios().end());
  enum_config.job_counts = {12};
  enum_config.methods = {rh::Method::kFcfs, rh::Method::kSjf, rh::Method::kEasyBackfill};
  enum_config.repetitions = 1;
  enum_config.base_seed = 777;
  enum_config.threads = 2;

  rh::SweepConfig spec_config = enum_config;
  spec_config.scenarios.clear();
  for (const auto& test_case : kCases) {
    spec_config.scenarios.push_back(rw::ScenarioSpec::parse(test_case.canonical_spec));
  }

  const auto enum_results = rh::run_sweep(enum_config);
  const auto spec_results = rh::run_sweep(spec_config);
  ASSERT_EQ(enum_results.size(), 21u);
  ASSERT_EQ(spec_results.size(), enum_results.size());

  auto it_enum = enum_results.begin();
  auto it_spec = spec_results.begin();
  for (; it_enum != enum_results.end(); ++it_enum, ++it_spec) {
    // Cells key identically: the enum shim converts to the canonical spec.
    ASSERT_EQ(it_enum->first.scenario, it_spec->first.scenario);
    ASSERT_EQ(it_enum->first.method, it_spec->first.method);
    expect_identical_outcomes(it_enum->second, it_spec->second,
                              rw::scenario_label(it_enum->first.scenario) + "/" +
                                  rh::method_name(it_enum->first.method));
  }

  // Labels the seed derivation keys off are the pre-redesign strings.
  EXPECT_EQ(rw::scenario_label(spec_config.scenarios[0]), "Homogeneous Short");
  EXPECT_EQ(rw::scenario_label(spec_config.scenarios[1]), "Heterogeneous Mix");
  EXPECT_EQ(rw::scenario_label(spec_config.scenarios[5]), "Bursty + Idle");
}

TEST(ScenarioSpecGolden, PipedTransformDeterministicAcrossCanonicalReparse) {
  // A piped transform spec re-parsed from its canonical to_string() must
  // generate identical jobs AND produce identical sweep outcomes - the
  // canonical string is the cell's durable identity in exports.
  const rw::ScenarioSpec spec(
      "mix(long_job:0.3,hetero_mix?walltime_noise=1.0%3a2.0:0.7)"
      "|perturb?walltime_noise=1.1:1.8|dag?fanout=3&depth=3|stretch?load=1.5");
  const rw::ScenarioSpec reparsed = rw::ScenarioSpec::parse(spec.to_string());
  ASSERT_EQ(spec, reparsed);

  rh::SweepConfig config;
  config.job_counts = {20};
  config.methods = {rh::Method::kFcfs, rh::Method::kEasyBackfill};
  config.base_seed = 4242;
  config.threads = 2;

  expect_identical_jobs(rh::cell_jobs(config, spec, 20, 0),
                        rh::cell_jobs(config, reparsed, 20, 0), "piped cell_jobs");

  config.scenarios = {spec};
  const auto first = rh::run_sweep(config);
  config.scenarios = {reparsed};
  const auto second = rh::run_sweep(config);
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), first.size());
  auto it_first = first.begin();
  auto it_second = second.begin();
  for (; it_first != first.end(); ++it_first, ++it_second) {
    ASSERT_EQ(it_first->first.scenario, it_second->first.scenario);
    expect_identical_outcomes(it_first->second, it_second->second,
                              "piped " + rh::method_name(it_first->first.method));
  }
}
