// Behavior-preservation golden for the MethodSpec redesign: for every method
// of the legacy enum, three construction paths must produce bit-identical
// RunOutcomes (metrics, full schedule, decision trace, counters, overhead):
//
//   1. the enum shim        run_method(jobs, Method::kX, seed)
//   2. the parsed spec      run_method(jobs, MethodSpec::parse("..."), seed)
//   3. a direct-construction oracle replicating the pre-registry
//      make_scheduler switch verbatim (FcfsScheduler{}, OptimizingScheduler
//      with default config + seed, core::make_*_agent(seed)).
//
// Path 3 is the real guard: it pins the registered builders to the exact
// defaults the enum era hard-coded, so a drifting registry default cannot
// silently change recorded results.

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "metrics/metrics.hpp"
#include "opt/optimizing_scheduler.hpp"
#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "sched/sjf.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace rh = reasched::harness;
namespace rw = reasched::workload;
namespace rm = reasched::metrics;
using namespace reasched;

namespace {

constexpr std::uint64_t kSeed = 1337;

struct GoldenCase {
  rh::Method method;
  const char* canonical_spec;
};

const GoldenCase kCases[] = {
    {rh::Method::kFcfs, "fcfs"},
    {rh::Method::kSjf, "sjf"},
    {rh::Method::kOrTools, "opt:portfolio"},
    {rh::Method::kClaude37, "agent:claude37"},
    {rh::Method::kO4Mini, "agent:o4mini"},
    {rh::Method::kEasyBackfill, "easy"},
    {rh::Method::kFastLocal, "agent:fastlocal"},
};

/// The pre-registry make_scheduler switch, preserved verbatim as the oracle.
std::unique_ptr<sim::Scheduler> legacy_make_scheduler(rh::Method m, std::uint64_t seed) {
  switch (m) {
    case rh::Method::kFcfs: return std::make_unique<sched::FcfsScheduler>();
    case rh::Method::kSjf: return std::make_unique<sched::SjfScheduler>();
    case rh::Method::kEasyBackfill: return std::make_unique<sched::EasyBackfillScheduler>();
    case rh::Method::kOrTools: {
      opt::OptimizingSchedulerConfig config;
      config.seed = seed;
      return std::make_unique<opt::OptimizingScheduler>(config);
    }
    case rh::Method::kClaude37: return core::make_claude37_agent(seed);
    case rh::Method::kO4Mini: return core::make_o4mini_agent(seed);
    case rh::Method::kFastLocal: return core::make_fast_local_agent(seed);
  }
  throw std::invalid_argument("legacy_make_scheduler: unknown method");
}

void expect_identical_schedules(const sim::ScheduleResult& a, const sim::ScheduleResult& b,
                                const std::string& label) {
  ASSERT_EQ(a.completed.size(), b.completed.size()) << label;
  for (std::size_t i = 0; i < a.completed.size(); ++i) {
    EXPECT_EQ(a.completed[i].job.id, b.completed[i].job.id) << label << " job " << i;
    EXPECT_EQ(a.completed[i].start_time, b.completed[i].start_time) << label << " job " << i;
    EXPECT_EQ(a.completed[i].end_time, b.completed[i].end_time) << label << " job " << i;
    EXPECT_EQ(a.completed[i].killed_at_walltime, b.completed[i].killed_at_walltime)
        << label << " job " << i;
  }
  ASSERT_EQ(a.decisions.size(), b.decisions.size()) << label;
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].time, b.decisions[i].time) << label << " decision " << i;
    EXPECT_EQ(a.decisions[i].action.type, b.decisions[i].action.type)
        << label << " decision " << i;
    EXPECT_EQ(a.decisions[i].action.job_id, b.decisions[i].action.job_id)
        << label << " decision " << i;
    EXPECT_EQ(a.decisions[i].accepted, b.decisions[i].accepted) << label << " decision " << i;
    EXPECT_EQ(a.decisions[i].thought, b.decisions[i].thought) << label << " decision " << i;
    EXPECT_EQ(a.decisions[i].feedback, b.decisions[i].feedback) << label << " decision " << i;
  }
  EXPECT_EQ(a.final_time, b.final_time) << label;
  EXPECT_EQ(a.n_decisions, b.n_decisions) << label;
  EXPECT_EQ(a.n_invalid_actions, b.n_invalid_actions) << label;
  EXPECT_EQ(a.n_forced_delays, b.n_forced_delays) << label;
  EXPECT_EQ(a.n_backfills, b.n_backfills) << label;
}

void expect_identical_outcomes(const rh::RunOutcome& a, const rh::RunOutcome& b,
                               const std::string& label) {
  for (const auto metric : rm::all_metrics()) {
    EXPECT_EQ(a.metrics.get(metric), b.metrics.get(metric))
        << label << " metric " << rm::to_string(metric);
  }
  EXPECT_EQ(a.metrics.energy_kwh, b.metrics.energy_kwh) << label;
  expect_identical_schedules(a.schedule, b.schedule, label);
  ASSERT_EQ(a.overhead.has_value(), b.overhead.has_value()) << label;
  if (a.overhead) {
    EXPECT_EQ(a.overhead->n_calls, b.overhead->n_calls) << label;
    EXPECT_EQ(a.overhead->n_successful, b.overhead->n_successful) << label;
    EXPECT_EQ(a.overhead->total_elapsed_s, b.overhead->total_elapsed_s) << label;
    EXPECT_EQ(a.overhead->latencies, b.overhead->latencies) << label;
    EXPECT_EQ(a.overhead->prompt_tokens, b.overhead->prompt_tokens) << label;
    EXPECT_EQ(a.overhead->completion_tokens, b.overhead->completion_tokens) << label;
  }
}

}  // namespace

TEST(MethodSpecGolden, EnumSpecAndLegacyConstructionBitIdentical) {
  const auto jobs =
      rw::make_generator(rw::Scenario::kHeterogeneousMix)->generate(24, kSeed);
  const sim::EngineConfig engine_config;

  for (const auto& test_case : kCases) {
    const std::string label = test_case.canonical_spec;

    // Enum shim vs parsed spec through the registry.
    const auto via_enum = rh::run_method(jobs, test_case.method, kSeed, engine_config);
    const auto via_spec =
        rh::run_method(jobs, rh::MethodSpec::parse(test_case.canonical_spec), kSeed,
                       engine_config);
    expect_identical_outcomes(via_enum, via_spec, label + " (enum vs spec)");

    // Registry path vs the pre-registry construction, run outside run_method.
    const auto scheduler = legacy_make_scheduler(test_case.method, kSeed);
    sim::Engine engine(engine_config);
    rh::RunOutcome legacy;
    legacy.schedule = engine.run(jobs, *scheduler);
    legacy.metrics = rm::compute_metrics(legacy.schedule, engine_config.cluster);
    for (const auto metric : rm::all_metrics()) {
      EXPECT_EQ(via_spec.metrics.get(metric), legacy.metrics.get(metric))
          << label << " (legacy) metric " << rm::to_string(metric);
    }
    expect_identical_schedules(via_spec.schedule, legacy.schedule, label + " (legacy)");
  }
}

TEST(MethodSpecGolden, SweepCellsUnchangedByRedesign) {
  // The spec-keyed sweep must reproduce the enum-keyed sweep bit-for-bit:
  // labels (and therefore derived cell seeds), cell enumeration and results
  // are unchanged for the canonical paper panel.
  rh::SweepConfig config;
  config.scenarios = {rw::Scenario::kResourceSparse};
  config.job_counts = {12};
  config.methods = rh::paper_methods();
  config.repetitions = 2;
  config.base_seed = 4242;
  config.threads = 2;

  const auto results = rh::run_sweep(config);
  ASSERT_EQ(results.size(), 10u);  // 5 methods x 2 reps

  for (const auto& [cell, outcome] : results) {
    // Re-run the cell standalone from its derived seed: identical outcome.
    const auto jobs = rh::cell_jobs(config, cell.scenario, cell.n_jobs, cell.repetition);
    const auto standalone =
        rh::run_method(jobs, cell.method, rh::cell_seed(config, cell), config.engine);
    expect_identical_outcomes(outcome, standalone,
                              rh::method_name(cell.method) + " standalone");
  }

  // Labels the seed derivation keys off are the pre-redesign strings.
  EXPECT_EQ(rh::method_name(config.methods[0]), "FCFS");
  EXPECT_EQ(rh::method_name(config.methods[1]), "SJF");
  EXPECT_EQ(rh::method_name(config.methods[2]), "OR-Tools*");
  EXPECT_EQ(rh::method_name(config.methods[3]), "Claude 3.7");
  EXPECT_EQ(rh::method_name(config.methods[4]), "O4-Mini");
}
