// Golden determinism regression: the indexed Engine must reproduce the seed
// engine's behaviour bit-for-bit. ReferenceEngine preserves the seed's data
// structures and algorithms, so running both over the same workloads and
// comparing full decision traces proves the refactor changed cost, not
// semantics.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sched/easy_backfill.hpp"
#include "sched/fcfs.hpp"
#include "sched/sjf.hpp"
#include "sim/engine.hpp"
#include "sim/reference_engine.hpp"
#include "workload/generator.hpp"

namespace rs = reasched::sim;
namespace rc = reasched::sched;
namespace rw = reasched::workload;

namespace {

void expect_identical(const rs::ScheduleResult& got, const rs::ScheduleResult& want,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(got.n_decisions, want.n_decisions);
  EXPECT_EQ(got.n_invalid_actions, want.n_invalid_actions);
  EXPECT_EQ(got.n_forced_delays, want.n_forced_delays);
  EXPECT_EQ(got.n_backfills, want.n_backfills);
  EXPECT_DOUBLE_EQ(got.final_time, want.final_time);

  // Completion records (sorted by job id in both engines): identical
  // schedules, including walltime-kill flags.
  ASSERT_EQ(got.completed.size(), want.completed.size());
  for (std::size_t i = 0; i < got.completed.size(); ++i) {
    const auto& g = got.completed[i];
    const auto& w = want.completed[i];
    ASSERT_EQ(g.job.id, w.job.id);
    EXPECT_DOUBLE_EQ(g.start_time, w.start_time) << "job " << g.job.id;
    EXPECT_DOUBLE_EQ(g.end_time, w.end_time) << "job " << g.job.id;
    EXPECT_EQ(g.killed_at_walltime, w.killed_at_walltime) << "job " << g.job.id;
  }

  // The full decision sequence: same queries, same actions, same order,
  // same verdicts. This is the strongest form of "same decisions".
  ASSERT_EQ(got.decisions.size(), want.decisions.size());
  for (std::size_t i = 0; i < got.decisions.size(); ++i) {
    const auto& g = got.decisions[i];
    const auto& w = want.decisions[i];
    EXPECT_DOUBLE_EQ(g.time, w.time) << "decision " << i;
    EXPECT_EQ(g.action, w.action) << "decision " << i;
    EXPECT_EQ(g.accepted, w.accepted) << "decision " << i;
  }
}

void run_golden(const std::vector<rs::Job>& jobs, const std::string& label,
                const rs::EngineConfig& config = {}) {
  struct Method {
    const char* name;
    std::unique_ptr<rs::Scheduler> scheduler;
  };
  Method methods[] = {{"FCFS", std::make_unique<rc::FcfsScheduler>()},
                      {"SJF", std::make_unique<rc::SjfScheduler>()},
                      {"EASY", std::make_unique<rc::EasyBackfillScheduler>()}};
  for (auto& m : methods) {
    rs::Engine engine(config);
    rs::ReferenceEngine reference(config);
    const auto got = engine.run(jobs, *m.scheduler);
    const auto want = reference.run(jobs, *m.scheduler);
    expect_identical(got, want, label + "/" + m.name);
  }
}

std::vector<rs::Job> scenario_jobs(rw::Scenario scenario, std::size_t n, std::uint64_t seed) {
  return rw::make_generator(scenario)->generate(n, seed, rw::ArrivalMode::kPoisson);
}

}  // namespace

TEST(EngineGolden, HeterogeneousMix) {
  for (const std::size_t n : {40u, 120u}) {
    run_golden(scenario_jobs(rw::Scenario::kHeterogeneousMix, n, 7),
               "hetmix/" + std::to_string(n));
  }
}

TEST(EngineGolden, HighParallelism) {
  for (const std::size_t n : {40u, 120u}) {
    run_golden(scenario_jobs(rw::Scenario::kHighParallelism, n, 11),
               "highpar/" + std::to_string(n));
  }
}

TEST(EngineGolden, BurstyIdle) {
  for (const std::size_t n : {40u, 120u}) {
    run_golden(scenario_jobs(rw::Scenario::kBurstyIdle, n, 13),
               "bursty/" + std::to_string(n));
  }
}

TEST(EngineGolden, DependencyDag) {
  // Scenario generators emit independent jobs; cover the dependency-counter
  // promotion path explicitly with a layered DAG: chains, a fan-out and a
  // diamond join, interleaved with independent arrivals.
  std::vector<rs::Job> jobs;
  auto add = [&](int id, int nodes, double mem, double dur, double submit,
                 std::vector<rs::JobId> deps = {}) {
    rs::Job j;
    j.id = id;
    j.nodes = nodes;
    j.memory_gb = mem;
    j.duration = dur;
    j.walltime = dur;
    j.submit_time = submit;
    j.user = 1 + id % 4;
    j.dependencies = std::move(deps);
    jobs.push_back(j);
  };
  add(1, 64, 256, 120, 0.0);
  add(2, 32, 128, 60, 0.0, {1});
  add(3, 32, 128, 45, 0.0, {1});
  add(4, 16, 64, 30, 5.0, {2, 3});   // diamond join
  add(5, 8, 32, 200, 10.0);          // independent long job
  add(6, 128, 512, 40, 20.0, {4});
  add(7, 4, 16, 15, 25.0);
  add(8, 4, 16, 15, 400.0, {6, 7});  // arrives after some deps finished
  add(9, 200, 1024, 80, 0.0);
  add(10, 8, 32, 10, 0.0, {9});
  run_golden(jobs, "dag");
}

TEST(EngineGolden, WalltimeEnforcement) {
  // Underestimated jobs are killed at their walltime in both engines.
  auto jobs = scenario_jobs(rw::Scenario::kHeterogeneousMix, 40, 17);
  for (std::size_t i = 0; i < jobs.size(); i += 3) {
    jobs[i].walltime = jobs[i].duration * 0.5;  // underestimate
  }
  rs::EngineConfig config;
  config.enforce_walltime = true;
  run_golden(jobs, "walltime", config);
}

TEST(EngineGolden, LargeSimulationTimes) {
  // The relative event tolerance must keep batching consistent at Polaris
  // time scales (~1e7 s), where the seed's absolute 1e-12 is below one ulp.
  auto jobs = scenario_jobs(rw::Scenario::kHeterogeneousMix, 60, 19);
  for (auto& j : jobs) j.submit_time += 1.0e7;
  run_golden(jobs, "late-times");
}
