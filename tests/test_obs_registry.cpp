// MetricRegistry unit tests: cell semantics, the re-registration contract,
// and - because the unit binary runs under ASan and TSan in CI - a
// multi-writer stress that pins the lock-free cell design: registration
// takes the registry mutex once, afterwards four threads hammer the same
// cells through cached pointers with nothing but relaxed atomics, and the
// final totals must still be exact (relaxed ordering never drops
// increments; it only relaxes cross-cell ordering).

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace ro = reasched::obs;

TEST(ObsRegistry, CounterGaugeBasics) {
  ro::MetricRegistry reg;
  auto& c = reg.counter("a/count");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Lookup-or-create: the same name resolves to the same cell.
  EXPECT_EQ(&reg.counter("a/count"), &c);

  auto& g = reg.gauge("a/depth");
  g.set(3.5);
  g.set(-1.0);  // last write wins
  EXPECT_EQ(g.value(), -1.0);
}

TEST(ObsRegistry, HistogramBucketPlacement) {
  ro::MetricRegistry reg;
  auto& h = reg.histogram("a/lat", {1.0, 2.0, 4.0});
  // Upper-inclusive bounds: 0.5 and 1.0 land in bucket 0 (<= 1), 3.0 in
  // bucket 2 (<= 4), 100.0 in the overflow bucket.
  h.observe(0.5);
  h.observe(1.0);
  h.observe(3.0);
  h.observe(100.0);
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);  // bounds + overflow
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 0u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 104.5);
}

TEST(ObsRegistry, HistogramReboundsThrow) {
  ro::MetricRegistry reg;
  reg.histogram("a/lat", {1.0, 2.0});
  // Same bounds: fine, same cell.
  EXPECT_NO_THROW(reg.histogram("a/lat", {1.0, 2.0}));
  // Different bounds would silently merge incompatible bucket layouts.
  EXPECT_THROW(reg.histogram("a/lat", {1.0, 3.0}), std::invalid_argument);
}

TEST(ObsRegistry, SnapshotIsNameSorted) {
  ro::MetricRegistry reg;
  reg.counter("z/last").add(1);
  reg.counter("a/first").add(2);
  reg.counter("m/mid").add(3);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "a/first");
  EXPECT_EQ(snap.counters[1].first, "m/mid");
  EXPECT_EQ(snap.counters[2].first, "z/last");
}

TEST(ObsRegistry, ResetKeepsRegistrationsValid) {
  ro::MetricRegistry reg;
  auto& c = reg.counter("a/count");
  auto& h = reg.histogram("a/lat", {1.0});
  c.add(5);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  // Cached pointers stay valid across reset (the hot path never re-resolves).
  c.add(1);
  EXPECT_EQ(reg.counter("a/count").value(), 1u);
}

TEST(ObsRegistry, ConcurrentWritersExactTotals) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;

  ro::MetricRegistry reg;
  // Register up front, as the instrumentation does: the threads below touch
  // only the lock-free cells.
  auto& shared = reg.counter("stress/shared");
  auto& hist = reg.histogram("stress/lat", {0.25, 0.5, 0.75});

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&shared, &hist, &reg, t] {
      // Per-thread cells are registered concurrently too - the registry
      // mutex makes lookup-or-create safe from any thread.
      auto& own = reg.counter("stress/thread" + std::to_string(t));
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        shared.add();
        own.add();
        hist.observe(static_cast<double>(i % 4) * 0.25);
      }
    });
  }

  // Concurrent snapshots: values must be monotone while the writers run
  // (counters only ever grow) and every read must be tear-free.
  std::uint64_t last_seen = 0;
  for (int s = 0; s < 50; ++s) {
    const auto snap = reg.snapshot();
    for (const auto& [name, value] : snap.counters) {
      if (name == "stress/shared") {
        EXPECT_GE(value, last_seen);
        last_seen = value;
      }
    }
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(shared.value(), kThreads * kPerThread);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("stress/thread" + std::to_string(t)).value(), kPerThread);
  }
  const auto hs = hist.snapshot();
  EXPECT_EQ(hs.count, kThreads * kPerThread);
  ASSERT_EQ(hs.counts.size(), 4u);
  // i % 4 spreads observations evenly: 0 -> bucket 0, 0.25 -> bucket 0,
  // 0.5 -> bucket 1, 0.75 -> bucket 2 (upper-inclusive bounds).
  EXPECT_EQ(hs.counts[0], kThreads * kPerThread / 2);
  EXPECT_EQ(hs.counts[1], kThreads * kPerThread / 4);
  EXPECT_EQ(hs.counts[2], kThreads * kPerThread / 4);
  EXPECT_EQ(hs.counts[3], 0u);
}
